//! Integration tests of the experiment runners (shape and invariants, at a
//! scale small enough for CI).

use ecofusion::core::{Dataset, DatasetMix, DatasetSpec, TrainConfig, Trainer};
use ecofusion::eval::experiments::{common::Setup, fig1, table1, table2, table3};

fn tiny_setup() -> Setup {
    let mut spec = DatasetSpec::small(33);
    spec.num_scenes = 64;
    spec.mix = DatasetMix::Balanced;
    let dataset = Dataset::generate(&spec);
    let config = TrainConfig { branch_epochs: 1, gate_epochs: 1, ..TrainConfig::fast_demo() };
    let model = Trainer::new(config, 34).train(&dataset).expect("training");
    Setup { model, dataset, num_classes: 8 }
}

#[test]
fn table3_runner_matches_paper() {
    let r = table3::run();
    assert_eq!(r.columns.len(), 8);
    // Late fusion column constant at 13.27 J.
    for c in &r.columns {
        assert!((c.late_fusion_j - 13.273).abs() < 0.01);
    }
    // City savings as in the paper.
    assert!((r.columns[0].savings_pct - 58.9).abs() < 0.5);
    // Printing never panics.
    r.print();
}

#[test]
fn table1_runner_produces_paper_rows() {
    let mut setup = tiny_setup();
    let r = table1::run(&mut setup);
    assert_eq!(r.rows.len(), 9, "4 singles + early + late + 3 eco rows");
    // Energy column must match the calibrated model regardless of mAP.
    assert!((r.row("L. Camera").unwrap().energy_j - 0.945).abs() < 1e-6);
    assert!((r.row("C_L + C_R + L + R").unwrap().energy_j - 3.798).abs() < 1e-6);
    // mAP percentages live in [0, 100].
    for row in &r.rows {
        assert!((0.0..=100.0).contains(&row.map_pct), "{row:?}");
    }
    r.print();
}

#[test]
fn table2_runner_covers_all_gates_and_lambdas() {
    let mut setup = tiny_setup();
    let r = table2::run(&mut setup);
    assert_eq!(r.rows.len(), 12, "3 lambdas x 4 gates");
    // Knowledge gating is lambda-independent (paper: "lacks tunability").
    let k0 = r.row("Knowledge", 0.0).unwrap();
    let k1 = r.row("Knowledge", 0.1).unwrap();
    assert!((k0.energy_j - k1.energy_j).abs() < 1e-9);
    assert!((k0.avg_loss - k1.avg_loss).abs() < 1e-9);
    r.print();
}

#[test]
fn fig1_runner_covers_city_and_rain() {
    let mut setup = tiny_setup();
    let r = fig1::run(&mut setup);
    assert_eq!(r.rows.len(), 8, "4 methods x 2 contexts");
    // Late fusion always costs 3.798 J platform energy.
    for row in r.rows.iter().filter(|r| r.method == "Late Fusion") {
        assert!((row.avg_energy_j - 3.798).abs() < 1e-6);
    }
    r.print();
}
