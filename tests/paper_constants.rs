//! Integration checks that the calibrated models reproduce the paper's
//! published numbers through the public facade.

use ecofusion::core::{default_knowledge_rules, ConfigId, ConfigSpace};
use ecofusion::energy::{EnergyBreakdown, Joules, Millis, StemPolicy, Watts};
use ecofusion::prelude::*;
use ecofusion::scene::Context;

#[test]
fn table1_energy_and_latency_columns() {
    let space = ConfigSpace::canonical();
    let px2 = Px2Model::default();
    let b = space.baseline_ids();
    let e = space.energies(&px2, StemPolicy::Static);
    let t = space.latencies(&px2, StemPolicy::Static);
    let rows = [
        (b.camera_left, 0.945, 21.57),
        (b.camera_right, 0.945, 21.57),
        (b.radar, 0.954, 21.85),
        (b.lidar, 0.954, 21.85),
        (b.early, 1.379, 31.36),
        (b.late, 3.798, 84.32),
    ];
    for (id, energy, latency) in rows {
        assert!((e[id.0].joules() - energy).abs() < 1e-6, "{}", space.label(id));
        assert!((t[id.0].millis() - latency).abs() < 0.35, "{}", space.label(id));
    }
}

#[test]
fn table3_cells_through_facade() {
    let space = ConfigSpace::canonical();
    let rules = default_knowledge_rules(&space);
    let px2 = Px2Model::default();
    let sensors = SensorPowerModel::default();
    let expect = [
        (Context::City, 5.45),
        (Context::Fog, 13.96),
        (Context::Junction, 2.87),
        (Context::Motorway, 2.87),
        (Context::Night, 12.10),
        (Context::Rain, 13.27),
        (Context::Rural, 3.81),
        (Context::Snow, 13.96),
    ];
    for (ctx, want) in expect {
        let specs = space.branch_specs(ConfigId(rules[&ctx]));
        let b = EnergyBreakdown::compute(&px2, &sensors, &specs, StemPolicy::Static);
        assert!((b.total_gated().joules() - want).abs() < 0.011, "{ctx:?}");
    }
}

#[test]
fn px2_average_power_is_about_45w() {
    // The paper measures 45.4 W average under load; implied per-config
    // power of the calibration sits in the 43-46 W band.
    let space = ConfigSpace::canonical();
    let px2 = Px2Model::default();
    let b = space.baseline_ids();
    for id in [b.camera_left, b.early, b.late] {
        let e = space.energies(&px2, StemPolicy::Static)[id.0];
        let t = space.latencies(&px2, StemPolicy::Static)[id.0];
        let p = e.average_power(t).value();
        assert!((43.0..=46.5).contains(&p), "{}: {p} W", space.label(id));
    }
}

#[test]
fn sensor_datasheet_constants() {
    let m = SensorPowerModel::default();
    use ecofusion::sensors::SensorKind;
    assert_eq!(m.spec(SensorKind::Radar).power_w, 24.0); // Navtech CTS350-X
    assert_eq!(m.spec(SensorKind::Radar).measurement_w(), 21.6); // paper
    assert_eq!(m.spec(SensorKind::Lidar).power_w, 12.0); // Velodyne HDL-32e
    assert_eq!(m.spec(SensorKind::Lidar).measurement_w(), 9.6); // paper
    assert_eq!(m.spec(SensorKind::CameraLeft).power_w, 1.9); // ZED
}

#[test]
fn eq6_energy_power_time_units() {
    // E = P * t with real paper magnitudes.
    let e = Watts::new(45.4).energy_over(Millis::new(21.57));
    assert!((e.joules() - 0.979).abs() < 1e-3);
    let j: Joules = [Joules::new(0.945), Joules::new(0.954)].into_iter().sum();
    assert!((j.joules() - 1.899).abs() < 1e-9);
}
