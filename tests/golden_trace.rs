//! Golden-trace determinism tests.
//!
//! Every generator and the inference pipeline must be reproducible from a
//! seed — the property every experiment table and every runtime replay
//! rests on. These tests pin traces three ways:
//!
//! 1. *run-to-run*: the same seed twice gives structurally identical
//!    output (exact equality);
//! 2. *cross-backend*: the `Reference` and `Blocked` compute backends
//!    agree on every discrete decision (gate choice, detection count) of
//!    a short inference trace;
//! 3. *cross-session*: hard-coded snapshots catch silent drift of the
//!    seeded streams (a changed RNG consumption order, a reordered
//!    sampling step). Integer-valued snapshots are asserted exactly;
//!    float snapshots use a small epsilon so libm differences across
//!    hosts cannot flake the suite.

use ecofusion::core::Frame;
use ecofusion::prelude::*;
use ecofusion::scene::SceneSequence;
use ecofusion::tensor::backend::{self, BackendKind};
use ecofusion::tensor::rng::Rng;

/// Object counts and class ids of the first scene of every context at
/// seed 42, in `Context::ALL` order (snapshot).
const SCENARIO_OBJECT_COUNTS: [usize; 8] = [4, 2, 3, 3, 2, 4, 1, 7];
const SCENARIO_CLASSES: [&[usize]; 8] = [
    &[5, 6, 2, 6],
    &[6, 5],
    &[0, 2, 0],
    &[0, 4, 2],
    &[5, 3],
    &[2, 6, 0, 6],
    &[0],
    &[4, 7, 4, 5, 0, 5, 4],
];
const SCENARIO_EGO_SPEEDS: [f64; 8] =
    [8.084984, 9.536010, 5.719649, 25.986090, 11.373794, 9.592225, 14.707282, 6.258459];

#[test]
fn scenario_generator_matches_snapshot_and_reruns() {
    let mut g1 = ScenarioGenerator::new(42);
    let mut g2 = ScenarioGenerator::new(42);
    for (i, c) in Context::ALL.into_iter().enumerate() {
        let a = g1.scene(c);
        let b = g2.scene(c);
        assert_eq!(a, b, "run-to-run divergence in {c:?}");
        assert_eq!(a.objects.len(), SCENARIO_OBJECT_COUNTS[i], "{c:?} object count drifted");
        let classes: Vec<usize> = a.objects.iter().map(|o| o.class.id()).collect();
        assert_eq!(classes, SCENARIO_CLASSES[i], "{c:?} class sequence drifted");
        assert!(
            (a.ego_speed - SCENARIO_EGO_SPEEDS[i]).abs() < 1e-6,
            "{c:?} ego speed drifted: {}",
            a.ego_speed
        );
    }
}

#[test]
fn scene_sequence_matches_snapshot_and_reruns() {
    let run = || {
        let mut g = ScenarioGenerator::new(7);
        SceneSequence::simulate(g.scene(Context::City), 10, 0.1)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "sequence simulation must be deterministic");
    assert_eq!(a.len(), 11);
    let per_frame: Vec<usize> = a.frames().iter().map(|f| f.objects.len()).collect();
    // Snapshot: the city scene at seed 7 keeps all five objects in view
    // over the whole 1-second roll-forward.
    assert_eq!(per_frame, vec![5; 11]);
}

/// One short inference trace: 4 test frames of `DatasetSpec::small(24)`
/// through an untrained model seeded 7, for a learned and the rule-based
/// gate. Snapshots pin the selected configuration label and the decoded
/// detection count per frame.
fn infer_trace(gate: GateKind) -> Vec<(String, usize)> {
    let data = Dataset::generate(&DatasetSpec::small(24));
    let frames: Vec<Frame> = data.test().iter().take(4).cloned().collect();
    let mut model = EcoFusionModel::new(32, 8, &mut Rng::new(7));
    let opts = InferenceOptions::new(0.01, 0.5).with_gate(gate);
    frames
        .iter()
        .map(|f| {
            let out = model.infer(f, &opts).unwrap();
            (out.selected_label, out.detections.len())
        })
        .collect()
}

const ATTENTION_TRACE: [(&str, usize); 4] =
    [("{C_L}", 64), ("{C_R}", 63), ("{C_L}", 64), ("{C_L}", 64)];
const KNOWLEDGE_TRACE: [(&str, usize); 4] = [
    ("{C_R, E(C_L+C_R)}", 56),
    ("{E(C_L+C_R)}", 64),
    ("{E(C_L+C_R+L)}", 54),
    ("{C_R, E(C_L+C_R)}", 16),
];

fn assert_trace(actual: &[(String, usize)], expected: &[(&str, usize)], what: &str) {
    assert_eq!(actual.len(), expected.len());
    for (i, ((label, count), (exp_label, exp_count))) in actual.iter().zip(expected).enumerate() {
        assert_eq!(label, exp_label, "{what} frame {i}: gate choice drifted");
        assert_eq!(count, exp_count, "{what} frame {i}: detection count drifted");
    }
}

#[test]
fn infer_trace_matches_snapshot_and_reruns() {
    for gate in [GateKind::Attention, GateKind::Knowledge] {
        let a = infer_trace(gate);
        let b = infer_trace(gate);
        assert_eq!(a, b, "{gate:?} trace must be deterministic run-to-run");
        let expected: &[(&str, usize)] = match gate {
            GateKind::Attention => &ATTENTION_TRACE,
            _ => &KNOWLEDGE_TRACE,
        };
        assert_trace(&a, expected, "blocked");
    }
}

#[test]
fn infer_trace_identical_across_backends() {
    let trace = |kind: BackendKind, gate: GateKind| {
        backend::set_backend(kind);
        let t = infer_trace(gate);
        backend::set_backend(BackendKind::Blocked);
        t
    };
    for gate in [GateKind::Attention, GateKind::Knowledge] {
        let blocked = trace(BackendKind::Blocked, gate);
        let reference = trace(BackendKind::Reference, gate);
        // The two backends differ in FMA rounding, but every discrete
        // decision of the trace — which configuration the gate picked and
        // how many detections survived decoding — must agree.
        assert_eq!(blocked, reference, "{gate:?}: backends diverged on the trace");
        let expected: &[(&str, usize)] = match gate {
            GateKind::Attention => &ATTENTION_TRACE,
            _ => &KNOWLEDGE_TRACE,
        };
        assert_trace(&reference, expected, "reference");
    }
}

#[test]
fn dataset_and_runtime_streams_rerun_identically() {
    // Dataset: scene sampling + parallel rendering + split.
    let a = Dataset::generate(&DatasetSpec::small(31));
    let b = Dataset::generate(&DatasetSpec::small(31));
    assert_eq!(a.train().len(), b.train().len());
    for (fa, fb) in a.train().iter().zip(b.train()) {
        assert_eq!(fa.scene, fb.scene);
    }
    // Runtime vehicle streams: drift walk + segment simulation + render.
    let spec = ecofusion::runtime::StreamSpec::new(9, 32);
    let mut s1 = ecofusion::runtime::VehicleStream::new(spec);
    let mut s2 = ecofusion::runtime::VehicleStream::new(spec);
    for k in 0..20 {
        let fa = s1.next_frame();
        let fb = s2.next_frame();
        assert_eq!(fa.scene, fb.scene, "frame {k}");
        for sk in ecofusion::sensors::SensorKind::ALL {
            assert_eq!(fa.obs.grid(sk), fb.obs.grid(sk), "frame {k} sensor {sk:?}");
        }
    }
}
