//! End-to-end integration: data generation → training → adaptive
//! inference, across all four gating strategies.

use ecofusion::core::{Dataset, DatasetSpec, InferenceOptions, TrainConfig, Trainer};
use ecofusion::gating::GateKind;

fn trained() -> (ecofusion::core::EcoFusionModel, Dataset) {
    let mut spec = DatasetSpec::small(11);
    spec.num_scenes = 28;
    let dataset = Dataset::generate(&spec);
    let config = TrainConfig { branch_epochs: 1, gate_epochs: 1, ..TrainConfig::fast_demo() };
    let model = Trainer::new(config, 12).train(&dataset).expect("training");
    (model, dataset)
}

#[test]
fn every_gate_produces_a_valid_decision() {
    let (mut model, dataset) = trained();
    let frame = &dataset.test()[0];
    for gate in GateKind::ALL {
        let opts = InferenceOptions::new(0.01, 0.5).with_gate(gate);
        let out = model.infer(frame, &opts).expect("inference");
        assert_eq!(out.predicted_losses.len(), model.space().num_configs(), "{gate}");
        assert!(out.energy_joules() > 0.0, "{gate}");
        assert!(out.energy.latency.millis() > 0.0, "{gate}");
        assert!(!out.selected_label.is_empty(), "{gate}");
        // Detections stay within the raster.
        let g = model.grid() as f32;
        for d in &out.detections {
            assert!(d.bbox.x1 >= 0.0 && d.bbox.x2 <= g && d.bbox.y1 >= 0.0 && d.bbox.y2 <= g);
            assert!(d.score.is_finite() && d.score >= 0.0 && d.score <= 1.0);
            assert!(d.class_id < model.num_classes());
        }
    }
}

#[test]
fn inference_is_deterministic() {
    let (mut model, dataset) = trained();
    let frame = &dataset.test()[1];
    let opts = InferenceOptions::new(0.05, 0.5);
    let a = model.infer(frame, &opts).expect("inference");
    let b = model.infer(frame, &opts).expect("inference");
    assert_eq!(a.selected_config, b.selected_config);
    assert_eq!(a.predicted_losses, b.predicted_losses);
    assert_eq!(a.detections, b.detections);
}

#[test]
fn higher_lambda_never_costs_more_energy_on_average() {
    let (mut model, dataset) = trained();
    // Energy should be non-increasing (on average) as λ_E rises.
    let avg_energy = |model: &mut ecofusion::core::EcoFusionModel, lambda: f64| {
        let opts = InferenceOptions::new(lambda, 0.5);
        let mut total = 0.0;
        for f in dataset.test() {
            total += model.infer(f, &opts).expect("inference").energy_joules();
        }
        total / dataset.test().len() as f64
    };
    let low = avg_energy(&mut model, 0.0);
    let high = avg_energy(&mut model, 1.0);
    assert!(
        high <= low + 1e-9,
        "lambda=1 should be at most as expensive as lambda=0: {high} vs {low}"
    );
}

#[test]
fn adaptive_pipeline_charges_all_stems() {
    let (mut model, dataset) = trained();
    let frame = &dataset.test()[0];
    // Even a single-branch selection pays four stems in adaptive mode.
    let opts = InferenceOptions { lambda_e: 1.0, gamma: 1e9, ..InferenceOptions::new(1.0, 0.5) };
    let out = model.infer(frame, &opts).expect("inference");
    assert_eq!(model.space().branch_ids(out.selected_config).len(), 1);
    // 4 stems (0.088 each) + cheapest branch (0.857) = 1.209.
    assert!((out.energy_joules() - 1.209).abs() < 1e-6, "{}", out.energy_joules());
}
