//! Deterministic observability: the flight recorder on a live server.
//!
//! Runs a four-stream server — tight budgets on the odd streams so the
//! budget ladder moves, a mid-run sensor dropout on stream 0 so health
//! monitoring and fault events fire — with a `TraceSink` installed, then
//! exports the recording twice: a Chrome `trace_event` JSON you can load
//! in Perfetto (one track per stream, per shard, plus the scheduler) and
//! a Prometheus-style text snapshot. A `SimObserver` watches the same
//! per-step scheduler stats the tracer records.
//!
//! Everything is on virtual, tick-derived time. Stream-track events
//! replay the global pick order, so that part of the trace is
//! bit-identical across reruns and shard counts; the shard tracks
//! (which worker ran a unit, who stole what) follow the actual
//! work-steal schedule and vary with thread timing — by design, that is
//! exactly what they are for.
//!
//! ```text
//! cargo run --release --example trace_observability            # demo scale
//! cargo run --release --example trace_observability -- --smoke # CI smoke
//! ```

use ecofusion::faults::{FaultKind, FaultSchedule};
use ecofusion::prelude::*;
use ecofusion::tensor::rng::Rng;
use ecofusion::trace::{EventKind, Track};

const GRID: usize = 32;
const NUM_STREAMS: u64 = 4;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let ticks = if smoke { 16 } else { 80 };

    let specs: Vec<StreamSpec> = (0..NUM_STREAMS)
        .map(|i| {
            let budget = if i % 2 == 1 {
                EnergyBudget { target_j: 4.0, window: 8, relax_margin: 0.5 }
            } else {
                EnergyBudget::unlimited()
            };
            StreamSpec::new(4000 + i, GRID)
                .with_context(Context::ALL[i as usize % Context::ALL.len()])
                .with_budget(budget)
                .with_opts(InferenceOptions::new(0.01, 0.5).with_gate(GateKind::Knowledge))
                .with_health_gating(true)
        })
        .collect();
    let model = EcoFusionModel::new(GRID, 8, &mut Rng::new(77));
    let cfg =
        RuntimeConfig { max_batch: 8, num_classes: 8, ..RuntimeConfig::default() }.with_shards(2);
    let mut server = PerceptionServer::new(model, &specs, cfg);

    // Arm the recorder: a bounded ring — when it overflows, the oldest
    // events go first and `dropped()` counts them.
    server.set_tracer(TraceSink::with_capacity(1 << 16));

    // Stream 0 loses its lidar for a stretch mid-run.
    let dropout = FaultSchedule::empty().with_event(
        SensorKind::Lidar,
        FaultKind::Dropout,
        ticks / 4,
        ticks / 2,
        1.0,
    );
    let mut streams: Vec<VehicleStream> = specs
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let stream = VehicleStream::new(*s);
            if i == 0 {
                stream.with_faults(dropout.clone())
            } else {
                stream
            }
        })
        .collect();

    // The observer hook sees the same per-step scheduler stats the
    // tracer records — one observation path for harness and trace.
    let mut steps = 0u64;
    let mut max_batch = 0usize;
    struct StepWatch<'a> {
        steps: &'a mut u64,
        max_batch: &'a mut usize,
    }
    impl SimObserver for StepWatch<'_> {
        fn on_step(&mut self, stats: &StepStats) {
            *self.steps += 1;
            *self.max_batch =
                (*self.max_batch).max(stats.batch_sizes.iter().copied().max().unwrap_or(0));
        }
    }
    run_simulation_observed(
        &mut server,
        &mut streams,
        ticks,
        StepWatch { steps: &mut steps, max_batch: &mut max_batch },
    )?;
    let report = server.report();
    let sink = server.take_tracer().expect("the tracer we installed");

    println!(
        "served {} frames over {steps} observed steps (max micro-batch {max_batch}); \
         recorded {} events ({} dropped, ring seq up to {})",
        report.frames,
        sink.len(),
        sink.dropped(),
        sink.total_emitted(),
    );
    let count = |kind: EventKind| sink.events().filter(|e| e.kind == kind).count();
    println!(
        "event mix: {} span begin/end pairs, {} instants, {} counters",
        count(EventKind::Begin),
        count(EventKind::Instant),
        count(EventKind::Counter),
    );
    for name in ["ladder", "health", "fault", "steal"] {
        let n = sink.events().filter(|e| e.name == name).count();
        println!("  {name:<7} events: {n}");
    }
    let stream_spans = sink
        .events()
        .filter(|e| matches!(e.track, Track::Stream(_)) && e.kind == EventKind::Begin)
        .count();
    println!("  stream-track spans: {stream_spans} (frame + 7 stages per frame)");

    // The ladder must have moved on the tight-budget streams, and the
    // dropout must have surfaced; fail loudly in CI if not.
    assert!(
        sink.events().any(|e| e.name == "ladder"),
        "tight budgets should force at least one ladder move"
    );
    assert!(
        sink.events().any(|e| e.name == "fault"),
        "the scripted dropout should record fault events"
    );

    std::fs::create_dir_all("results")?;
    std::fs::write("results/observability.trace.json", chrome_trace_json(&sink))?;
    std::fs::write("results/observability.prom", prometheus_snapshot(&sink))?;
    println!(
        "wrote results/observability.trace.json (load in Perfetto / chrome://tracing) \
         and results/observability.prom"
    );
    Ok(())
}
