//! Quickstart: generate data, train EcoFusion, run adaptive inference.
//!
//! ```text
//! cargo run --release --example quickstart           # demo scale
//! cargo run --release --example quickstart -- --smoke # CI smoke
//! ```

use ecofusion::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // 1. A small synthetic RADIATE-like dataset (70:30 split), fully
    //    deterministic in the seed.
    let mut spec = DatasetSpec::small(42);
    if smoke {
        spec.num_scenes = 24;
    }
    let dataset = Dataset::generate(&spec);
    println!(
        "dataset: {} train / {} test frames at {}x{} px",
        dataset.train().len(),
        dataset.test().len(),
        dataset.grid(),
        dataset.grid()
    );

    // 2. Train the stems + branches, then the gates (a couple of minutes
    //    of CPU at this demo scale; seconds under --smoke).
    let mut config = TrainConfig::fast_demo();
    config.verbose = true;
    if smoke {
        config.branch_epochs = 1;
        config.gate_epochs = 1;
    }
    let mut trainer = Trainer::new(config, 42);
    let mut model = trainer.train(&dataset)?;

    // 3. Adaptive inference with the attention gate: the gate looks at the
    //    stem features, the joint optimizer (Eq. 7-9) picks the cheapest
    //    configuration within gamma of the predicted-best loss.
    let opts = InferenceOptions::new(0.01, 0.5);
    for frame in dataset.test().iter().take(5) {
        let out = model.infer(frame, &opts)?;
        println!(
            "context {:<6} -> selected {:<28} {} detections, {:>5.3} J, {:>6.2} ms",
            frame.scene.context.label(),
            out.selected_label,
            out.detections.len(),
            out.energy_joules(),
            out.energy.latency.millis(),
        );
    }

    // 4. Compare with the static late-fusion baseline on the same frames.
    let late = model.baseline_ids().late;
    let (dets, energy) = model.detect_static(&dataset.test()[0], late, &opts);
    println!(
        "late fusion baseline: {} detections at {:.3} J / {:.2} ms per frame",
        dets.len(),
        energy.platform.joules(),
        energy.latency.millis()
    );
    Ok(())
}
