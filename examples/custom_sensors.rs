//! Using the substrate crates directly: render raw observations, run a
//! single branch, and fuse hand-built detector outputs with weighted boxes
//! fusion — the building blocks a downstream project would compose into
//! its own pipeline.
//!
//! ```text
//! cargo run --example custom_sensors            # full output
//! cargo run --example custom_sensors -- --smoke  # CI smoke (same run,
//!                                                # already instant)
//! ```

use ecofusion::detect::{weighted_boxes_fusion, BBox, Detection};
use ecofusion::prelude::*;
use ecofusion::scene::{ObjectClass, SceneObject};
use ecofusion::tensor::rng::Rng;

fn main() {
    // No training and no sweep here: --smoke runs the identical (already
    // instant) workload, and the asserts below give CI something to fail.
    let _smoke = std::env::args().any(|a| a == "--smoke");
    // 1. Author a scene by hand instead of sampling one.
    let mut scene = Scene::empty(Context::Fog, 0);
    scene.objects.push(SceneObject::new(ObjectClass::Car, -3.0, 12.0));
    scene.objects.push(SceneObject::new(ObjectClass::Truck, 4.0, 18.0));
    scene.objects.push(SceneObject::new(ObjectClass::Pedestrian, 0.5, 6.0));

    // 2. Render it through the four-sensor rig.
    let suite = SensorSuite::new(48);
    let obs = suite.observe(&scene, &mut Rng::new(3));
    for kind in SensorKind::ALL {
        let g = obs.grid(kind);
        println!(
            "{:<12} grid mean {:.4}, max {:.3} (fog hits optics, radar barely)",
            kind.abbrev(),
            g.mean(),
            g.max()
        );
    }

    // 3. Ground truth in grid coordinates.
    let gts = scene.ground_truth_boxes(48);
    println!("\nground truth: {} boxes, first at ({:.1}, {:.1})", gts.len(), gts[0].x1, gts[0].y1);

    // 4. Fuse synthetic per-model detections with the paper's WBF block.
    let camera_guess = vec![Detection::new(BBox::new(10.0, 20.0, 16.0, 28.0), 0, 0.4)];
    let radar_guess = vec![Detection::new(BBox::new(10.5, 20.5, 16.5, 28.5), 0, 0.7)];
    let fused = weighted_boxes_fusion(&[camera_guess, radar_guess], &WbfParams::default(), 2);
    assert_eq!(fused.len(), 1, "overlapping same-class boxes must fuse to one");
    assert!(fused[0].score >= 0.4, "WBF may not discard the confident radar hit");
    println!(
        "\nWBF fused {} detection(s); top box ({:.1}, {:.1})-({:.1}, {:.1}) score {:.2}",
        fused.len(),
        fused[0].bbox.x1,
        fused[0].bbox.y1,
        fused[0].bbox.x2,
        fused[0].bbox.y2,
        fused[0].score
    );

    // 5. Energy accounting for a custom branch mix via the PX2 model.
    let px2 = Px2Model::default();
    use ecofusion::energy::{BranchSpec, StemPolicy};
    let my_config = vec![
        BranchSpec::Single(SensorKind::Radar),
        BranchSpec::Early(vec![SensorKind::CameraLeft, SensorKind::CameraRight]),
    ];
    println!(
        "\ncustom config {{R + E(C_L+C_R)}}: {} / {} (static pipeline)",
        px2.config_energy(&my_config, StemPolicy::Static),
        px2.config_latency(&my_config, StemPolicy::Static),
    );
}
