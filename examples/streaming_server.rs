//! Multi-stream perception serving with cross-stream batching, sharded
//! multi-core execution, and per-stream energy budgets.
//!
//! Part 1 runs a live simulation: eight simulated vehicles — different
//! seeds, starting contexts, frame phases, and budgets — feed one
//! `PerceptionServer` running on two worker shards, which coalesces
//! ready frames across streams into per-shard micro-batches and walks
//! each over-budget stream down its policy ladder. Part 2 is a
//! throughput shootout on pre-generated frames: cross-stream batched
//! scheduling (1 shard and 2 shards) vs. per-stream sequential `infer`
//! — all three produce bit-identical results, so any speedup is free.
//!
//! ```text
//! cargo run --release --example streaming_server            # full demo
//! cargo run --release --example streaming_server -- --smoke # CI smoke
//! ```

use ecofusion::faults::{FaultKind, FaultSchedule};
use ecofusion::prelude::*;
use ecofusion::tensor::rng::Rng;
use std::time::Instant;

const GRID: usize = 32;
const NUM_STREAMS: u64 = 8;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::args().any(|a| a == "--smoke");
    live_simulation(if smoke { 16 } else { 60 })?;
    throughput_shootout(if smoke { 4 } else { 16 })?;
    Ok(())
}

/// Live serving: staggered streams, drifting contexts, tight budgets on
/// the odd streams.
fn live_simulation(ticks: u64) -> Result<(), Box<dyn std::error::Error>> {
    let contexts = Context::ALL;
    let specs: Vec<StreamSpec> = (0..NUM_STREAMS)
        .map(|i| {
            let budget = if i % 2 == 1 {
                EnergyBudget { target_j: 4.0, window: 8, relax_margin: 0.5 }
            } else {
                EnergyBudget::unlimited()
            };
            StreamSpec::new(1000 + i, GRID)
                .with_context(contexts[i as usize % contexts.len()])
                .with_budget(budget)
                .with_timing(1, i % 3)
                .with_opts(InferenceOptions::new(0.01, 0.5).with_gate(GateKind::Knowledge))
        })
        .collect();

    let model = EcoFusionModel::new(GRID, 8, &mut Rng::new(77));
    // Two worker shards: streams are dealt round-robin across them, and
    // the per-stream results are bit-identical to a 1-shard server (the
    // runtime's determinism invariant).
    let cfg =
        RuntimeConfig { max_batch: 8, num_classes: 8, ..RuntimeConfig::default() }.with_shards(2);
    let mut server = PerceptionServer::new(model, &specs, cfg);
    // Stream 0 suffers a frozen-frame fault on every sensor: its grids
    // stop changing, so the per-stream stem cache serves its features
    // without re-running the stem convolutions.
    let freeze_onset = 4u64;
    let mut freeze = FaultSchedule::empty();
    for sensor in SensorKind::ALL {
        freeze = freeze.with_event(sensor, FaultKind::FrozenFrame, freeze_onset, u64::MAX, 1.0);
    }
    let mut streams: Vec<VehicleStream> = specs
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let stream = VehicleStream::new(*s);
            if i == 0 {
                stream.with_faults(freeze.clone())
            } else {
                stream
            }
        })
        .collect();
    run_simulation(&mut server, &mut streams, ticks)?;
    let report = server.report();

    println!(
        "live: {} frames from {} streams in {} micro-batches (avg batch {:.1})",
        report.frames,
        report.per_stream.len(),
        report.batches,
        report.avg_batch_size
    );
    for shard in &report.shards {
        println!(
            "  shard {}: {} streams, {} frames in {} batches, {} steals, busy {:.1} ms",
            shard.shard, shard.streams, shard.frames, shard.batches, shard.steals, shard.busy_ms
        );
    }
    println!(
        "fleet latency: mean {:.1} ms, p50 {:.1}, p95 {:.1}, p99 {:.1}, max {:.1}",
        report.latency_mean_ms,
        report.latency_p50_ms,
        report.latency_p95_ms,
        report.latency_p99_ms,
        report.latency_max_ms
    );
    println!(
        "total energy: {:.1} J platform, {:.1} J with gated sensors\n",
        report.total_platform_j, report.total_gated_j
    );
    println!(
        "{:<6} {:>6} {:>7} {:>9} {:>9} {:>7} {:>6} {:>6} {:>10} {:>10}  gate",
        "stream",
        "frames",
        "mAP%",
        "J/frame",
        "budget",
        "escal.",
        "level",
        "drop",
        "stems r/s",
        "cache h/m"
    );
    for s in &report.per_stream {
        let budget = specs[s.stream].budget.target_j;
        println!(
            "{:<6} {:>6} {:>7.1} {:>9.2} {:>9} {:>7} {:>6} {:>6} {:>10} {:>10}  {:?} λ={:.2}",
            s.stream,
            s.summary.frames,
            s.summary.map_pct,
            s.summary.avg_total_gated_j,
            if budget.is_finite() { format!("{budget:.1}") } else { "∞".to_string() },
            s.escalations,
            s.final_level,
            s.dropped,
            format!("{}/{}", s.stems_executed, s.stems_cached + s.stems_skipped),
            format!("{}/{}", s.stem_cache_hits, s.stem_cache_misses),
            s.final_gate,
            s.final_lambda_e,
        );
    }
    println!(
        "stems: {} executed, {} saved (pruned or cache-served) across all streams",
        report.total_stems_executed, report.total_stems_saved
    );
    // The staged-pipeline guarantees, asserted so the smoke run fails
    // loudly if they regress: knowledge-gated streams prune stems, and
    // the frozen stream's cache serves repeated grids.
    assert!(
        report.total_stems_saved > 0,
        "knowledge-gated streams must skip stems via the demand-driven plan"
    );
    let frozen = &report.per_stream[0];
    assert!(
        frozen.stem_cache_hits > 0,
        "frozen-frame stream should hit the stem cache ({} misses)",
        frozen.stem_cache_misses
    );
    println!();
    Ok(())
}

/// Pure scheduling/inference throughput on pre-generated frames: the
/// quantity the `pipeline` bench tracks.
fn throughput_shootout(frames_per_stream: usize) -> Result<(), Box<dyn std::error::Error>> {
    let specs: Vec<StreamSpec> = (0..NUM_STREAMS)
        .map(|i| {
            StreamSpec::new(2000 + i, GRID)
                .with_opts(InferenceOptions::new(0.01, 0.5).with_gate(GateKind::Attention))
        })
        .collect();
    let frames: Vec<Vec<Frame>> =
        specs.iter().map(|spec| VehicleStream::new(*spec).generate(frames_per_stream)).collect();

    // Cross-stream batched: one ingest round per frame index, then a
    // processing step — exactly what the live scheduler does per tick.
    let run_server = |shards: usize| -> Result<_, Box<dyn std::error::Error>> {
        let model = EcoFusionModel::new(GRID, 8, &mut Rng::new(5));
        let cfg = RuntimeConfig { max_batch: 8, num_classes: 8, ..RuntimeConfig::default() }
            .with_shards(shards);
        let mut server = PerceptionServer::new(model, &specs, cfg);
        let t = Instant::now();
        for round in 0..frames_per_stream {
            for (i, stream_frames) in frames.iter().enumerate() {
                server.ingest(i, stream_frames[round].clone());
            }
            server.process_step()?;
            server.advance_tick();
        }
        server.drain()?;
        Ok((server, t.elapsed().as_secs_f64()))
    };
    let (server, batched_s) = run_server(1)?;
    let (sharded, sharded_s) = run_server(2)?;
    // The determinism invariant, checked live: the 2-shard server made
    // exactly the decisions of the 1-shard one, stream by stream.
    for i in 0..specs.len() {
        assert_eq!(
            server.telemetry(i).selected_configs(),
            sharded.telemetry(i).selected_configs(),
            "stream {i}: shard count changed a selection"
        );
        assert_eq!(
            server.telemetry(i).detections(),
            sharded.telemetry(i).detections(),
            "stream {i}: shard count changed detections"
        );
    }

    // Per-stream sequential on an identically-seeded model.
    let mut twin = EcoFusionModel::new(GRID, 8, &mut Rng::new(5));
    let t = Instant::now();
    for (spec, stream_frames) in specs.iter().zip(&frames) {
        for frame in stream_frames {
            let _ = twin.infer(frame, &spec.base_opts)?;
        }
    }
    let sequential_s = t.elapsed().as_secs_f64();

    let n = NUM_STREAMS as usize * frames_per_stream;
    println!(
        "shootout over {n} frames ({NUM_STREAMS} streams x {frames_per_stream}): \
         batched {:.1} ms ({:.0} fps) vs sequential {:.1} ms ({:.0} fps) -> {:.2}x",
        batched_s * 1e3,
        n as f64 / batched_s,
        sequential_s * 1e3,
        n as f64 / sequential_s,
        sequential_s / batched_s
    );
    println!(
        "2-shard run: {:.1} ms ({:.0} fps), outputs bit-identical to 1 shard \
         (speedup needs a multi-core host)",
        sharded_s * 1e3,
        n as f64 / sharded_s,
    );
    Ok(())
}
