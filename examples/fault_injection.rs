//! Sensor fault injection, health monitoring, and fault-aware gating.
//!
//! Two identically-seeded vehicle streams are served side by side: stream
//! 0 is clean, stream 1 suffers a scripted camera dropout and a later
//! lidar noise burst. Both run with fault-aware gating enabled, so the
//! clean stream demonstrates the identity property (an all-healthy mask
//! never changes a decision) while the degraded stream shows the health
//! monitor failing sensors and the knowledge gate rerouting to its
//! degraded-context fallbacks.
//!
//! ```text
//! cargo run --release --example fault_injection            # full demo
//! cargo run --release --example fault_injection -- --smoke # CI smoke
//! ```

use ecofusion::faults::{FaultKind, FaultSchedule};
use ecofusion::prelude::*;
use ecofusion::tensor::rng::Rng;

const GRID: usize = 32;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let ticks: u64 = if smoke { 16 } else { 40 };
    let camera_onset = 5u64;
    let noise_onset = if smoke { 10 } else { 24 };

    // One spec, two streams: same seed => identical scenes and clean
    // renders, so every divergence below is caused by the faults alone.
    let spec = StreamSpec::new(4242, GRID)
        .with_context(Context::City)
        .with_opts(InferenceOptions::new(0.01, 0.5).with_gate(GateKind::Knowledge))
        .with_health_gating(true);
    let spec = StreamSpec { dwell_frames: 64, drift_stay_prob: 1.0, ..spec };

    let schedule = FaultSchedule::empty().with_camera_dropout(camera_onset, u64::MAX).with_event(
        SensorKind::Lidar,
        FaultKind::NoiseBurst,
        noise_onset,
        u64::MAX,
        1.0,
    );
    println!("fault schedule for stream 1:");
    for e in schedule.events() {
        println!(
            "  {} on {} from frame {} ({} frames, severity {:.1})",
            e.kind,
            e.sensor,
            e.onset,
            if e.duration == u64::MAX { "∞".to_string() } else { e.duration.to_string() },
            e.severity
        );
    }
    println!();

    let model = EcoFusionModel::new(GRID, 8, &mut Rng::new(7));
    let specs = [spec, spec];
    let mut server = PerceptionServer::new(
        model,
        &specs,
        RuntimeConfig { max_batch: 2, num_classes: 8, ..RuntimeConfig::default() },
    );
    let mut clean = VehicleStream::new(spec);
    let mut faulty = VehicleStream::new(spec).with_faults(schedule);

    let space = ConfigSpace::canonical();
    println!(
        "{:<5} {:<18} {:<22} {:<12} health (C_L C_R L R)",
        "frame", "clean gate", "degraded gate", "mask"
    );
    for tick in 0..ticks {
        server.ingest(0, clean.next_frame());
        server.ingest(1, faulty.next_frame());
        server.process_step()?;
        server.advance_tick();

        let frame = tick as usize;
        let label = |stream: usize| {
            server
                .telemetry(stream)
                .selected_configs()
                .get(frame)
                .map(|c| space.label(*c))
                .unwrap_or_default()
        };
        let health = server.health(1);
        let scores = health.scores();
        println!(
            "{:<5} {:<18} {:<22} {:<12} {:.2} {:.2} {:.2} {:.2}",
            frame,
            label(0),
            label(1),
            health.mask().to_string(),
            scores[0],
            scores[1],
            scores[2],
            scores[3],
        );
    }
    server.drain()?;

    let report = server.report();
    println!();
    let (fault_frames, fault_events) = faulty.fault_counts();
    println!(
        "stream 1 injected faults: {fault_frames} faulty frames, {fault_events} event applications"
    );
    for s in &report.per_stream {
        println!(
            "stream {}: {} frames, mAP {:.1} %, {:.2} J/frame, degraded {} / masked {} frames, \
             {} health transitions, final mask {}",
            s.stream,
            s.summary.frames,
            s.summary.map_pct,
            s.summary.avg_total_gated_j,
            s.degraded_frames,
            s.masked_frames,
            s.health_transitions,
            s.final_mask,
        );
    }

    // The properties the subsystem guarantees, asserted so the smoke run
    // fails loudly if they regress.
    let clean_report = &report.per_stream[0];
    let degraded_report = &report.per_stream[1];
    assert_eq!(clean_report.masked_frames, 0, "clean stream must never be masked");
    assert!(clean_report.final_mask.is_all_available());
    assert!(degraded_report.masked_frames > 0, "camera dropout must engage the mask");
    assert!(
        !degraded_report.final_mask.is_available(SensorKind::CameraLeft),
        "left camera should be masked at the end of the run"
    );
    println!("\nok: clean stream untouched, degraded stream masked and rerouted");
    Ok(())
}
