//! Sensor clock gating (the paper's §5.5.2 / Table 3): how much energy the
//! knowledge-gated EcoFusion saves per driving scenario when unused
//! sensors stop measuring (motors keep spinning for safety).
//!
//! Pure energy-model arithmetic — no training, instant.
//!
//! ```text
//! cargo run --example clock_gating            # full output
//! cargo run --example clock_gating -- --smoke  # CI smoke (same run,
//!                                              # already instant)
//! ```

use ecofusion::core::{default_knowledge_rules, ConfigId, ConfigSpace};
use ecofusion::energy::{EnergyBreakdown, SensorSpec, SensorState, StemPolicy};
use ecofusion::prelude::*;
use ecofusion::sensors::SensorKind;

fn main() {
    // Pure energy-model arithmetic: --smoke runs the identical workload
    // (it is already CI-fast); the assertions below make the smoke run a
    // real check rather than a print-and-exit.
    let _smoke = std::env::args().any(|a| a == "--smoke");
    let space = ConfigSpace::canonical();
    let rules = default_knowledge_rules(&space);
    let px2 = Px2Model::default();
    let sensors = SensorPowerModel::default();

    // Reproduce Table 3 row by row.
    let late = space.baseline_ids().late;
    let late_total =
        EnergyBreakdown::compute(&px2, &sensors, &space.branch_specs(late), StemPolicy::Static)
            .total_ungated();
    println!("late fusion baseline: {late_total} per frame in every scenario\n");
    println!(
        "{:<8} {:<34} {:>10} {:>9}",
        "scene", "knowledge-gate configuration", "total (J)", "savings"
    );
    for context in Context::ALL {
        let config = ConfigId(rules[&context]);
        let b = EnergyBreakdown::compute(
            &px2,
            &sensors,
            &space.branch_specs(config),
            StemPolicy::Static,
        );
        let total = b.total_gated().joules();
        // Table 3's core claim: whenever the knowledge config leaves a
        // sensor unused, clock gating beats the always-on late-fusion
        // baseline. (Fog/Snow keep all four sensors busy and pay extra
        // branch compute, so their rows legitimately show no savings.)
        let used = Px2Model::sensors_used(&space.branch_specs(config));
        if used.len() < SensorKind::ALL.len() {
            assert!(
                total < late_total.joules(),
                "{} idles a sensor yet spends more than late fusion",
                context.label()
            );
        }
        println!(
            "{:<8} {:<34} {:>10.2} {:>8.1}%",
            context.label(),
            space.label(config),
            total,
            (late_total.joules() - total) / late_total.joules() * 100.0
        );
    }

    // What-if: a next-generation solid-state lidar with no motor.
    let mut future = SensorPowerModel::default();
    future.set_spec(SensorKind::Lidar, SensorSpec { power_w: 8.0, motor_w: 0.0, rate_hz: 10.0 });
    let gated_now = sensors.frame_energy(SensorKind::Lidar, SensorState::Gated);
    let gated_future = future.frame_energy(SensorKind::Lidar, SensorState::Gated);
    println!(
        "\nwhat-if solid-state lidar: gated frame energy {} -> {} (motor eliminated)",
        gated_now, gated_future
    );

    // Temporal controller (paper §5.5.2's future-work paragraph): gate a
    // sensor only after it has been idle for a hold window; rotating
    // sensors pay a spin-up delay when demanded again.
    use ecofusion::core::{ClockGatingController, EpisodeEnergyReport};
    let mut controller = ClockGatingController::new(3, 2);
    // A 60-frame city episode: cameras + lidar wanted, radar never.
    let city_demand: Vec<Vec<SensorKind>> = (0..60)
        .map(|_| vec![SensorKind::CameraLeft, SensorKind::CameraRight, SensorKind::Lidar])
        .collect();
    let report = EpisodeEnergyReport::simulate(&mut controller, &sensors, &city_demand);
    assert!(report.savings_pct() > 0.0, "gating an idle radar must save energy");
    println!(
        "\ntemporal controller over a {}-frame city episode: {} gated vs {} always-on ({:.1}% saved)",
        report.frames,
        report.gated,
        report.always_on,
        report.savings_pct()
    );
}
