//! The λ_E energy–performance dial (the workload behind the paper's
//! Fig. 4): sweeping λ_E from 0 (performance-only) to 1 (energy-only)
//! trades loss for energy along a Pareto-like frontier.
//!
//! ```text
//! cargo run --release --example energy_tradeoff            # demo scale
//! cargo run --release --example energy_tradeoff -- --smoke  # CI smoke
//! ```

use ecofusion::detect::fusion_loss;
use ecofusion::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut spec = DatasetSpec::small(21);
    if smoke {
        spec.num_scenes = 24;
    }
    let dataset = Dataset::generate(&spec);
    let mut config = TrainConfig::fast_demo();
    config.verbose = true;
    if smoke {
        config.branch_epochs = 1;
        config.gate_epochs = 1;
    }
    let mut model = Trainer::new(config, 21).train(&dataset)?;

    println!(
        "{:>8} | {:>10} | {:>10} | {:>12}",
        "lambda_E", "avg loss", "energy (J)", "latency (ms)"
    );
    let sweep: &[f64] =
        if smoke { &[0.0, 0.05, 1.0] } else { &[0.0, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0] };
    let mut energies = Vec::new();
    for &lambda in sweep {
        let opts = InferenceOptions::new(lambda, 0.5).with_gate(GateKind::Attention);
        let mut loss = 0.0f64;
        let mut energy = 0.0f64;
        let mut latency = 0.0f64;
        for frame in dataset.test() {
            let out = model.infer(frame, &opts)?;
            loss += fusion_loss(&out.detections, &frame.gt_boxes()).total() as f64;
            energy += out.energy_joules();
            latency += out.energy.latency.millis();
        }
        let n = dataset.test().len() as f64;
        energies.push(energy / n);
        println!(
            "{:>8} | {:>10.3} | {:>10.3} | {:>12.2}",
            lambda,
            loss / n,
            energy / n,
            latency / n
        );
    }
    // The dial must actually trade: the energy-only end of the sweep may
    // not spend more than the performance-only end.
    assert!(
        energies.last().unwrap() <= energies.first().unwrap(),
        "lambda_E = 1 spent more energy than lambda_E = 0"
    );
    println!("\nRaising lambda_E buys energy with (bounded, via gamma) loss increase —");
    println!("the dial a deployment tunes to its battery and safety budget.");
    Ok(())
}
