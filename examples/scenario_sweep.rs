//! Scenario sweep: how each fusion method behaves per driving context
//! (the workload behind the paper's Fig. 5).
//!
//! ```text
//! cargo run --release --example scenario_sweep            # demo scale
//! cargo run --release --example scenario_sweep -- --smoke  # CI smoke
//! ```

use ecofusion::core::{Dataset, DatasetMix, DatasetSpec};
use ecofusion::detect::fusion_loss;
use ecofusion::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut spec = DatasetSpec::small(7);
    if smoke {
        spec.num_scenes = 24;
    }
    let dataset = Dataset::generate(&spec);
    let mut config = TrainConfig::fast_demo();
    config.verbose = true;
    if smoke {
        config.branch_epochs = 1;
        config.gate_epochs = 1;
    }
    let mut model = Trainer::new(config, 7).train(&dataset)?;
    let opts = InferenceOptions::new(0.01, 0.5);
    let b = model.baseline_ids();

    println!(
        "{:<6} | {:>12} | {:>12} | {:>12} | {:>18}",
        "scene", "none (radar)", "early", "late", "ecofusion (attn)"
    );
    let contexts: &[Context] = if smoke {
        &[Context::City, Context::Fog] // one clear + one adverse context
    } else {
        &Context::ALL
    };
    for (ci, context) in contexts.iter().copied().enumerate() {
        // A fresh evaluation set per context, disjoint from training.
        let eval = Dataset::generate(&DatasetSpec {
            seed: 1000 + ci as u64,
            grid: dataset.grid(),
            num_scenes: if smoke { 6 } else { 12 },
            train_fraction: 0.5,
            mix: DatasetMix::Single(context),
        });
        let frames: Vec<_> = eval.train().iter().chain(eval.test().iter()).collect();
        let avg_loss = |model: &mut EcoFusionModel, config| {
            let mut s = 0.0;
            for f in &frames {
                let (dets, _) = model.detect_static(f, config, &opts);
                s += fusion_loss(&dets, &f.gt_boxes()).total();
            }
            s / frames.len() as f32
        };
        let none = avg_loss(&mut model, b.radar);
        let early = avg_loss(&mut model, b.early);
        let late = avg_loss(&mut model, b.late);
        let mut eco = 0.0;
        for f in &frames {
            let out = model.infer(f, &opts)?;
            eco += fusion_loss(&out.detections, &f.gt_boxes()).total();
        }
        eco /= frames.len() as f32;
        println!(
            "{:<6} | {:>12.2} | {:>12.2} | {:>12.2} | {:>18.2}",
            context.label(),
            none,
            early,
            late,
            eco
        );
    }
    println!("\nLower is better; early fusion should degrade in Fog/Snow while");
    println!("EcoFusion tracks late fusion at a fraction of the energy.");
    Ok(())
}
