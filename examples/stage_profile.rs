//! Per-stage profile of the staged perception pipeline.
//!
//! For every driving context this example runs the pipeline three ways —
//! attention gate (all stems), knowledge gate (demand-driven stems), and
//! the knowledge gate under full camera dropout (degraded fallback) —
//! and prints the per-stage modeled energy/latency from the `StageTrace`
//! next to the stems the demand-driven plan actually executed.
//!
//! ```text
//! cargo run --release --example stage_profile            # full profile
//! cargo run --release --example stage_profile -- --smoke # CI smoke
//! ```

use ecofusion::core::pipeline::account;
use ecofusion::energy::{StageKind, StemPolicy};
use ecofusion::prelude::*;
use ecofusion::tensor::rng::Rng;

const GRID: usize = 32;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut model = EcoFusionModel::new(GRID, 8, &mut Rng::new(33));
    let mut generator = ScenarioGenerator::new(500);
    let suite = SensorSuite::new(GRID);

    let attention = InferenceOptions::new(0.01, 0.5);
    let knowledge = attention.with_gate(GateKind::Knowledge);
    let no_cams = SensorMask::all_available()
        .without(SensorKind::CameraLeft)
        .without(SensorKind::CameraRight);
    // The budget ladder's emergency rung: every configuration is a
    // candidate and λ_E = 1 picks the single cheapest branch.
    let emergency = InferenceOptions {
        lambda_e: 1.0,
        gamma: 1.0e9,
        ..InferenceOptions::new(1.0, 0.5).with_gate(GateKind::Knowledge)
    };

    println!(
        "{:<10} {:>14} {:>14} {:>16} {:>15}",
        "context", "attention", "knowledge", "know.+cam-drop", "emergency rung"
    );
    println!(
        "{:<10} {:>14} {:>14} {:>16} {:>15}",
        "", "stems (cfg)", "stems (cfg)", "stems", "stems"
    );
    let mut pruned_somewhere = false;
    for context in Context::ALL {
        let scene = generator.scene(context);
        let frame = Frame { obs: suite.observe(&scene, &mut Rng::new(9)), scene };
        let a = model.infer(&frame, &attention)?;
        let k = model.infer(&frame, &knowledge)?;
        let d = model.infer(&frame, &knowledge.with_health(no_cams))?;
        let e = model.infer(&frame, &emergency)?;
        // Every trace must decompose its own Eq. 11 breakdown exactly.
        for out in [&a, &k, &d, &e] {
            assert!(out.stage_trace.matches(&out.energy), "trace/breakdown mismatch");
        }
        println!(
            "{:<10} {:>9}/4     {:>9}/4     {:>11}/4     {:>10}/4",
            format!("{context:?}"),
            a.stage_trace.stems_executed,
            k.stage_trace.stems_executed,
            d.stage_trace.stems_executed,
            e.stage_trace.stems_executed,
        );
        assert_eq!(a.stage_trace.stems_executed, 4, "learned gates need every modality");
        pruned_somewhere |= k.stage_trace.stems_executed < 4;
        assert!(d.stage_trace.stems_executed <= 2, "camera dropout leaves at most L+R");
        assert_eq!(e.stage_trace.stems_executed, 1, "emergency rung runs one branch");
    }
    assert!(pruned_somewhere, "knowledge gate should prune stems in some context");

    // Per-stage accounting of one representative selection (City's
    // early-3 under the adaptive policy), decomposed stage by stage.
    let city = model.space().branch_specs(model.baseline_ids().early);
    let (breakdown, trace) =
        account(model.px2(), model.sensor_power(), &city, StemPolicy::Adaptive);
    println!("\nstage accounting for {{E(C_L+C_R+L)}} (adaptive policy):");
    println!("{:<10} {:>12} {:>14}", "stage", "energy (J)", "latency (ms)");
    for stage in StageKind::ALL {
        let cost = trace.cost(stage);
        println!(
            "{:<10} {:>12.4} {:>14.3}",
            stage.label(),
            cost.energy.joules(),
            cost.latency.millis()
        );
    }
    println!(
        "{:<10} {:>12.4} {:>14.3}  (= Eq. 11 total {:.4} J / {:.3} ms)",
        "sum",
        trace.total_energy().joules(),
        trace.total_latency().millis(),
        breakdown.total_gated().joules(),
        breakdown.latency.millis()
    );
    assert!(trace.matches(&breakdown));

    if smoke {
        println!("\nok: stage traces decompose Eq. 11 and demand-driven stems prune");
    }
    Ok(())
}
