//! Batched inference and compute-backend selection.
//!
//! Demonstrates the two speed levers the compute layer exposes:
//!
//! * `EcoFusionModel::infer_batch` — amortizes the four stems, the gate
//!   pass, and branch execution across a whole batch of frames;
//! * `ecofusion_tensor::backend` — swaps every GEMM/conv kernel in the
//!   process between the `Blocked` default and the `Reference` oracle.
//!
//! ```text
//! cargo run --release --example batched_inference            # demo scale
//! cargo run --release --example batched_inference -- --smoke  # CI smoke
//! ```

use ecofusion::prelude::*;
use ecofusion::tensor::backend::{self, BackendKind};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut spec = DatasetSpec::small(42);
    let mut config = TrainConfig::fast_demo();
    if smoke {
        spec.num_scenes = 24;
        config.branch_epochs = 1;
        config.gate_epochs = 1;
    }
    let dataset = Dataset::generate(&spec);
    let mut trainer = Trainer::new(config, 42);
    let mut model = trainer.train(&dataset)?;
    let frames: Vec<Frame> = dataset.test().to_vec();
    let opts = InferenceOptions::new(0.01, 0.5);

    // Sequential vs batched over the same frames: identical outputs, one
    // shared stem/gate/branch pass instead of one per frame.
    let t = Instant::now();
    let mut sequential = Vec::new();
    for frame in &frames {
        sequential.push(model.infer(frame, &opts)?);
    }
    let t_seq = t.elapsed();
    let t = Instant::now();
    let batched = model.infer_batch(&frames, &opts)?;
    let t_batch = t.elapsed();
    assert_eq!(sequential.len(), batched.len());
    for (s, b) in sequential.iter().zip(&batched) {
        assert_eq!(s.selected_config, b.selected_config);
        assert_eq!(s.detections, b.detections);
    }
    println!(
        "{} frames: sequential {:>7.1} ms, batched {:>7.1} ms ({:.2}x)",
        frames.len(),
        t_seq.as_secs_f64() * 1e3,
        t_batch.as_secs_f64() * 1e3,
        t_seq.as_secs_f64() / t_batch.as_secs_f64()
    );

    // Same model on the reference backend: the correctness oracle every
    // optimized backend is validated against (expect a several-fold
    // slowdown; see crates/bench/benches/tensor_ops.rs for exact ratios).
    backend::set_backend(BackendKind::Reference);
    let t = Instant::now();
    let oracle = model.infer_batch(&frames, &opts)?;
    let t_ref = t.elapsed();
    backend::set_backend(BackendKind::Blocked);
    println!(
        "reference backend: {:>7.1} ms ({:.2}x slower than blocked)",
        t_ref.as_secs_f64() * 1e3,
        t_ref.as_secs_f64() / t_batch.as_secs_f64()
    );
    // Backends agree on what was selected (they differ only in rounding).
    let agree =
        oracle.iter().zip(&batched).filter(|(a, b)| a.selected_config == b.selected_config).count();
    println!("backend agreement: {agree}/{} configs identical", batched.len());
    Ok(())
}
