//! Seeded mutation operators over a scenario's three adversarial axes.
//!
//! Every operator is structure-preserving by construction: it either
//! applies a valid edit or reports "no change" — a mutated scenario is
//! always [structurally valid](ecofusion_harness::Scenario::is_structurally_valid)
//! if its parent was (the property tests hammer this). Operators draw
//! *only* from the passed RNG, so a mutation chain is a pure function
//! of `(parent, seed)`.

use ecofusion_faults::{FaultEvent, FaultKind};
use ecofusion_harness::{Scenario, ScenarioStream};
use ecofusion_runtime::{BudgetPhase, BudgetTimeline};
use ecofusion_scene::{Context, WalkSegment};
use ecofusion_sensors::SensorKind;
use ecofusion_tensor::rng::Rng;

/// Number of distinct mutation operators (the RNG draws op indices in
/// `0..MUTATION_OPS`).
pub const MUTATION_OPS: usize = 16;

/// Fault kinds a mutation may inject.
const FAULT_KINDS: [FaultKind; 5] = [
    FaultKind::Dropout,
    FaultKind::FrozenFrame,
    FaultKind::NoiseBurst,
    FaultKind::CalibrationDrift,
    FaultKind::WeatherAttenuation,
];

/// Applies one randomly chosen mutation operator to a randomly chosen
/// stream of `scenario`. Returns `false` when the drawn operator was a
/// no-op on the drawn stream (e.g. "remove a fault event" on a clean
/// stream) — callers typically draw again.
pub fn mutate_scenario(scenario: &mut Scenario, rng: &mut Rng) -> bool {
    let stream_idx = rng.uniform_usize(0, scenario.streams.len());
    let horizon = scenario.ticks;
    let op = rng.uniform_usize(0, MUTATION_OPS);
    let stream = &mut scenario.streams[stream_idx];
    match op {
        // --- fault-schedule axis --------------------------------------
        0 => add_fault_event(stream, horizon, rng),
        1 => with_fault_idx(stream, rng, |faults, idx, _| faults.remove_event(idx)),
        2 => with_fault_idx(stream, rng, |faults, idx, rng| {
            let delta = rng.uniform(-(horizon as f64) / 2.0, horizon as f64 / 2.0) as i64;
            faults.shift_event(idx, delta)
        }),
        3 => with_fault_idx(stream, rng, |faults, idx, rng| {
            let ev = faults.events()[idx];
            if ev.duration < 2 || ev.duration == u64::MAX {
                return false;
            }
            let at = ev.onset + 1 + rng.uniform(0.0, (ev.duration - 1) as f64) as u64;
            faults.split_event(idx, at)
        }),
        4 => {
            let n = stream.faults.events().len();
            if n < 2 {
                return false;
            }
            let i = rng.uniform_usize(0, n);
            let j = rng.uniform_usize(0, n);
            i != j && stream.faults.merge_events(i, j)
        }
        5 => with_fault_idx(stream, rng, |faults, idx, rng| {
            let delta = rng.uniform(-0.4, 0.4);
            faults.perturb_severity(idx, delta)
        }),
        // --- context-walk axis ----------------------------------------
        6 => {
            let idx = rng.uniform_usize(0, stream.walk.len());
            let dwell = 1 + rng.uniform(0.0, (horizon as f64 / 2.0).max(2.0)) as u32;
            stream.walk.set_dwell(idx, dwell)
        }
        7 => {
            // Forced transition into a random (possibly ambiguous)
            // context — edits the drift walk never produce.
            let idx = rng.uniform_usize(0, stream.walk.len());
            let ctx = random_context(rng);
            stream.walk.set_context(idx, ctx)
        }
        8 => {
            let idx = rng.uniform_usize(0, stream.walk.len());
            let dwell = stream.walk.segments()[idx].dwell;
            if dwell < 2 {
                return false;
            }
            let at = 1 + rng.uniform(0.0, (dwell - 1) as f64) as u32;
            stream.walk.split_segment(idx, at)
        }
        9 => {
            let idx = rng.uniform_usize(0, stream.walk.len() + 1);
            let seg = WalkSegment {
                context: random_context(rng),
                dwell: 1 + rng.uniform(0.0, 8.0) as u32,
            };
            stream.walk.insert_segment(idx, seg)
        }
        10 => {
            if stream.walk.len() < 2 {
                return false;
            }
            let idx = rng.uniform_usize(0, stream.walk.len());
            stream.walk.remove_segment(idx)
        }
        // --- budget-timeline axis -------------------------------------
        11 => install_squeeze_ramp(stream, horizon, rng),
        12 => install_oscillation(stream, horizon, rng),
        13 => with_timeline(
            stream,
            |t, rng| {
                let idx = rng.uniform_usize(0, t.phases().len());
                let target = t.phases()[idx].target_j * rng.uniform(0.3, 2.0);
                t.set_target(idx, target)
            },
            rng,
        ),
        14 => with_timeline(
            stream,
            |t, rng| {
                let idx = rng.uniform_usize(0, t.phases().len());
                let delta = rng.uniform(-(horizon as f64) / 2.0, horizon as f64 / 2.0) as i64;
                t.shift_phase(idx, delta)
            },
            rng,
        ),
        15 => match &mut stream.timeline {
            Some(t) if t.phases().len() > 1 => {
                let n = t.phases().len();
                // Draw unconditionally so the RNG stream stays aligned
                // whether or not the removal succeeds.
                let idx = rng.uniform_usize(0, n);
                t.remove_phase(idx)
            }
            Some(_) => {
                stream.timeline = None;
                true
            }
            None => false,
        },
        _ => unreachable!("op index out of range"),
    }
}

/// Adds a random fault event scaled to the run horizon.
fn add_fault_event(stream: &mut ScenarioStream, horizon: u64, rng: &mut Rng) -> bool {
    let sensor = *rng.choose(&SensorKind::ALL).expect("non-empty sensor list");
    let kind = *rng.choose(&FAULT_KINDS).expect("non-empty kind list");
    let onset = rng.uniform(0.0, horizon.max(1) as f64) as u64;
    let duration = 1 + rng.uniform(0.0, (horizon as f64 / 2.0).max(2.0)) as u64;
    let severity = rng.uniform(0.2, 1.0).min(1.0);
    stream.faults.push(FaultEvent::new(sensor, kind, onset, duration, severity));
    true
}

/// Runs `f` on a random fault-event index (no-op on a clean stream).
fn with_fault_idx(
    stream: &mut ScenarioStream,
    rng: &mut Rng,
    f: impl FnOnce(&mut ecofusion_faults::FaultSchedule, usize, &mut Rng) -> bool,
) -> bool {
    let n = stream.faults.events().len();
    if n == 0 {
        return false;
    }
    let idx = rng.uniform_usize(0, n);
    f(&mut stream.faults, idx, rng)
}

/// Runs `f` on the stream's timeline (no-op without one).
fn with_timeline(
    stream: &mut ScenarioStream,
    f: impl FnOnce(&mut BudgetTimeline, &mut Rng) -> bool,
    rng: &mut Rng,
) -> bool {
    match &mut stream.timeline {
        Some(t) => f(t, rng),
        None => false,
    }
}

/// A uniformly random RADIATE context.
fn random_context(rng: &mut Rng) -> Context {
    *rng.choose(&Context::ALL).expect("non-empty context list")
}

/// Installs (or replaces with) a descending squeeze ramp: the budget
/// target steps down across the horizon, forcing the ladder to climb
/// mid-run instead of starting squeezed.
fn install_squeeze_ramp(stream: &mut ScenarioStream, horizon: u64, rng: &mut Rng) -> bool {
    let steps = 2 + rng.uniform_usize(0, 3);
    let start_j = rng.uniform(4.0, 10.0);
    let floor_j = rng.uniform(0.3, 1.5);
    let phases: Vec<BudgetPhase> = (0..steps)
        .map(|i| {
            let frac = i as f64 / (steps - 1).max(1) as f64;
            BudgetPhase {
                start_tick: (horizon * i as u64) / steps as u64,
                target_j: start_j + (floor_j - start_j) * frac,
            }
        })
        .collect();
    stream.timeline = Some(BudgetTimeline::new(phases));
    true
}

/// Installs (or replaces with) a budget oscillation: the target flips
/// between a generous and a squeezed level every few ticks, stressing
/// the relax/escalate hysteresis.
fn install_oscillation(stream: &mut ScenarioStream, horizon: u64, rng: &mut Rng) -> bool {
    let period = (2 + rng.uniform_usize(0, (horizon as usize / 4).max(2))) as u64;
    let hi = rng.uniform(4.0, 10.0);
    let lo = rng.uniform(0.3, 1.5);
    let phases: Vec<BudgetPhase> = (0..(horizon / period).max(2))
        .map(|i| BudgetPhase { start_tick: i * period, target_j: if i % 2 == 0 { hi } else { lo } })
        .collect();
    stream.timeline = Some(BudgetTimeline::new(phases));
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecofusion_scene::ContextWalk;

    fn base_scenario() -> Scenario {
        let walk = ContextWalk::from_pairs(&[(Context::City, 8), (Context::Rain, 8)]);
        Scenario {
            name: "base".to_string(),
            ticks: 32,
            max_batch: 4,
            streams: vec![ScenarioStream::baseline(7, walk)],
        }
    }

    #[test]
    fn mutation_chains_preserve_validity() {
        let mut rng = Rng::new(0xBEEF);
        let mut s = base_scenario();
        for step in 0..500 {
            mutate_scenario(&mut s, &mut rng);
            assert!(s.is_structurally_valid(), "invalid after step {step}: {s:?}");
        }
    }

    #[test]
    fn mutations_are_deterministic_in_the_seed() {
        let mut a = base_scenario();
        let mut b = base_scenario();
        let mut ra = Rng::new(42);
        let mut rb = Rng::new(42);
        for _ in 0..100 {
            mutate_scenario(&mut a, &mut ra);
            mutate_scenario(&mut b, &mut rb);
        }
        assert_eq!(a, b);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "bit-identical serialized form"
        );
    }

    #[test]
    fn every_axis_is_eventually_touched() {
        let mut rng = Rng::new(1);
        let mut s = base_scenario();
        for _ in 0..300 {
            mutate_scenario(&mut s, &mut rng);
        }
        let stream = &s.streams[0];
        assert!(!stream.faults.is_empty(), "fault axis never mutated");
        assert!(stream.walk.len() > 1, "walk axis collapsed");
        // The timeline axis flips between installed and removed; after
        // 300 draws the install ops have fired with overwhelming
        // probability, so just assert the scenario is still coherent.
        assert!(s.is_structurally_valid());
    }
}
