//! Suite distillation: greedy signature-preserving minimization and the
//! final [`DistilledSuite`] record.
//!
//! Minimization is delta-debugging in a fixed order: repeatedly try to
//! drop one mutable input — a fault event, a whole budget timeline, a
//! timeline phase, a walk segment — re-run the shrunken scenario (and
//! its clean twin, which walk edits change), and keep the drop iff the
//! coverage signature is unchanged. The loop is a fixed point: one full
//! pass with no successful drop terminates it. Everything is
//! deterministic — candidates are tried in descending index order per
//! stream, so the same corpus entry always minimizes to the same
//! scenario.

use crate::search::{CorpusEntry, Evaluator};
use ecofusion_core::model::InferError;
use ecofusion_harness::{DistilledProvenance, DistilledSuite, Scenario};

/// One shrink candidate: drop a single mutable input from a scenario.
#[derive(Debug, Clone, Copy)]
enum Drop {
    FaultEvent { stream: usize, idx: usize },
    Timeline { stream: usize },
    TimelinePhase { stream: usize, idx: usize },
    WalkSegment { stream: usize, idx: usize },
}

/// All drop candidates of `scenario`, in the fixed deterministic order
/// minimization tries them (per stream: fault events descending, whole
/// timeline, timeline phases descending, walk segments descending).
fn drop_candidates(scenario: &Scenario) -> Vec<Drop> {
    let mut out = Vec::new();
    for (si, s) in scenario.streams.iter().enumerate() {
        for idx in (0..s.faults.events().len()).rev() {
            out.push(Drop::FaultEvent { stream: si, idx });
        }
        if let Some(t) = &s.timeline {
            out.push(Drop::Timeline { stream: si });
            if t.phases().len() > 1 {
                for idx in (0..t.phases().len()).rev() {
                    out.push(Drop::TimelinePhase { stream: si, idx });
                }
            }
        }
        if s.walk.len() > 1 {
            for idx in (0..s.walk.len()).rev() {
                out.push(Drop::WalkSegment { stream: si, idx });
            }
        }
    }
    out
}

/// Applies one drop to a clone of `scenario`; `None` when the drop is
/// structurally impossible (e.g. the timeline was already removed by an
/// earlier drop this pass).
fn apply_drop(scenario: &Scenario, drop: Drop) -> Option<Scenario> {
    let mut shrunk = scenario.clone();
    let ok = match drop {
        Drop::FaultEvent { stream, idx } => shrunk.streams[stream].faults.remove_event(idx),
        Drop::Timeline { stream } => shrunk.streams[stream].timeline.take().is_some(),
        Drop::TimelinePhase { stream, idx } => {
            shrunk.streams[stream].timeline.as_mut().is_some_and(|t| t.remove_phase(idx))
        }
        Drop::WalkSegment { stream, idx } => shrunk.streams[stream].walk.remove_segment(idx),
    };
    ok.then_some(shrunk)
}

/// Shrinks `entry`'s scenario as far as possible without changing its
/// coverage signature. Returns the minimized corpus entry (same
/// signature, usually far fewer mutable inputs).
///
/// # Errors
/// Propagates [`InferError`] from the serving model.
pub fn minimize(entry: &CorpusEntry, evaluator: &mut Evaluator) -> Result<CorpusEntry, InferError> {
    let mut current = entry.scenario.clone();
    let mut outcome = entry.outcome.clone();
    let target = entry.signature;
    loop {
        let mut progressed = false;
        for drop in drop_candidates(&current) {
            let Some(shrunk) = apply_drop(&current, drop) else {
                continue;
            };
            debug_assert!(shrunk.is_structurally_valid());
            let (signature, shrunk_outcome) = evaluator.evaluate(&shrunk)?;
            if signature == target {
                current = shrunk;
                outcome = shrunk_outcome;
                progressed = true;
                break;
            }
        }
        if !progressed {
            return Ok(CorpusEntry { scenario: current, signature: target, outcome });
        }
    }
}

/// Minimizes `entry` and freezes it as a [`DistilledSuite`] named
/// `name`, recording the search seed and the size reduction as
/// provenance.
///
/// # Errors
/// Propagates [`InferError`] from the serving model.
pub fn distill(
    entry: &CorpusEntry,
    name: &str,
    search_seed: u64,
    evaluator: &mut Evaluator,
) -> Result<DistilledSuite, InferError> {
    let discovered = entry.scenario.size();
    let minimized = minimize(entry, evaluator)?;
    let minimized_size = minimized.scenario.size();
    let mut scenario = minimized.scenario;
    scenario.name = name.to_string();
    DistilledSuite::record(
        name,
        scenario,
        minimized.signature,
        DistilledProvenance { search_seed, discovered, minimized: minimized_size },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{search, SearchConfig};
    use ecofusion_harness::replay_distilled;

    #[test]
    fn minimization_preserves_the_signature_and_shrinks() {
        let cfg = SearchConfig { seed: 3, candidates: 4, ticks: 10 };
        let corpus = search(&cfg).unwrap();
        let mut evaluator = Evaluator::new();
        // The storm seed template has the largest schedule — minimize it.
        let fattest =
            corpus.iter().max_by_key(|e| e.scenario.size().total()).expect("non-empty corpus");
        let minimized = minimize(fattest, &mut evaluator).unwrap();
        assert_eq!(minimized.signature, fattest.signature);
        assert!(
            minimized.scenario.size().total() <= fattest.scenario.size().total(),
            "minimization never grows a scenario"
        );
        assert!(minimized.scenario.is_structurally_valid());
    }

    #[test]
    fn distilled_suites_replay_cleanly() {
        let cfg = SearchConfig { seed: 3, candidates: 2, ticks: 10 };
        let corpus = search(&cfg).unwrap();
        let mut evaluator = Evaluator::new();
        let suite = distill(&corpus[0], "distill_test", cfg.seed, &mut evaluator).unwrap();
        assert_eq!(suite.name, "distill_test");
        assert!(suite.provenance.minimized.total() <= suite.provenance.discovered.total());
        assert!(replay_distilled(&suite).unwrap().is_empty(), "fresh suite replays drift-free");
    }
}
