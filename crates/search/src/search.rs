//! The coverage-guided search loop: seeded templates, novelty
//! acceptance, and the clean-twin evaluator.

use crate::mutate::mutate_scenario;
use ecofusion_faults::FaultSchedule;
use ecofusion_harness::{
    run_scenario, CoverageSignature, Scenario, ScenarioOutcome, ScenarioStream,
};
use ecofusion_runtime::{BackpressurePolicy, BudgetPhase, BudgetTimeline, EnergyBudget};
use ecofusion_scene::{Context, ContextWalk};
use ecofusion_tensor::rng::Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

use ecofusion_core::model::InferError;

/// Search parameters. Everything that affects the corpus is in here —
/// two searches with equal configs produce bit-identical corpora.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchConfig {
    /// Seed of the mutation RNG.
    pub seed: u64,
    /// Mutated candidates to evaluate (on top of the seed templates).
    pub candidates: usize,
    /// Scheduler ticks every scenario runs for.
    pub ticks: u64,
}

impl SearchConfig {
    /// The CI-budget quick shape: enough candidates to reliably surface
    /// several distinct behavior classes in well under a minute.
    pub fn quick(seed: u64) -> Self {
        SearchConfig { seed, candidates: 48, ticks: 48 }
    }
}

/// One corpus member: a scenario, the behavior class it was kept for,
/// and the measured outcome behind that class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusEntry {
    /// The (possibly mutated) scenario.
    pub scenario: Scenario,
    /// Its coverage signature vs. its clean twin.
    pub signature: CoverageSignature,
    /// The measured run outcome.
    pub outcome: ScenarioOutcome,
}

/// Evaluates scenarios against their clean twins, memoizing twin runs.
///
/// Many candidates share a twin (mutating faults or timelines leaves
/// the twin unchanged), so the cache typically saves close to half the
/// server runs of a search.
#[derive(Default)]
pub struct Evaluator {
    twins: BTreeMap<String, ScenarioOutcome>,
}

impl Evaluator {
    /// Fresh evaluator with an empty twin cache.
    pub fn new() -> Self {
        Evaluator::default()
    }

    /// Runs `scenario` and its clean twin (cached) and returns the
    /// signature plus the candidate's outcome.
    ///
    /// # Errors
    /// Propagates [`InferError`] from the serving model.
    pub fn evaluate(
        &mut self,
        scenario: &Scenario,
    ) -> Result<(CoverageSignature, ScenarioOutcome), InferError> {
        let mut twin = scenario.clean_twin();
        // The twin's name carries the candidate's name; blank it so the
        // cache key (and the run) depend only on behavior-relevant
        // fields.
        twin.name = String::new();
        let key = serde_json::to_string(&twin).expect("scenario serializes");
        let clean = match self.twins.get(&key) {
            Some(clean) => clean.clone(),
            None => {
                let clean = run_scenario(&twin)?;
                self.twins.insert(key, clean.clone());
                clean
            }
        };
        let outcome = run_scenario(scenario)?;
        let signature = CoverageSignature::from_outcomes(&outcome, &clean);
        Ok((signature, outcome))
    }

    /// The clean twin's outcome for `scenario` (cached).
    ///
    /// # Errors
    /// Propagates [`InferError`] from the serving model.
    pub fn clean_outcome(&mut self, scenario: &Scenario) -> Result<ScenarioOutcome, InferError> {
        let mut twin = scenario.clean_twin();
        twin.name = String::new();
        let key = serde_json::to_string(&twin).expect("scenario serializes");
        if let Some(clean) = self.twins.get(&key) {
            return Ok(clean.clone());
        }
        let clean = run_scenario(&twin)?;
        self.twins.insert(key, clean.clone());
        Ok(clean)
    }
}

/// The seeded starting templates, one per adversarial axis: a fault
/// storm, a budget squeeze with a scripted ramp, and an
/// ambiguous-context churn under a budget oscillation. Search mutates
/// from here; the templates themselves already land in three different
/// behavior classes.
pub fn seed_scenarios(ticks: u64) -> Vec<Scenario> {
    let storm = Scenario {
        name: "seed_storm".to_string(),
        ticks,
        max_batch: 8,
        streams: (0..2)
            .map(|i| {
                let walk = ContextWalk::from_pairs(&[
                    (if i == 0 { Context::City } else { Context::Rain }, (ticks / 2).max(1) as u32),
                    (Context::Fog, (ticks / 2).max(1) as u32),
                ]);
                let mut s = ScenarioStream::baseline(9001 + i, walk);
                s.faults = FaultSchedule::storm(ticks);
                s
            })
            .collect(),
    };
    let squeeze = Scenario {
        name: "seed_squeeze_ramp".to_string(),
        ticks,
        max_batch: 8,
        streams: vec![{
            let walk = ContextWalk::from_pairs(&[
                (Context::Motorway, (ticks / 2).max(1) as u32),
                (Context::City, (ticks / 2).max(1) as u32),
            ]);
            let mut s = ScenarioStream::baseline(9101, walk);
            s.budget = EnergyBudget { target_j: 8.0, window: 8, relax_margin: 0.8 };
            s.timeline = Some(BudgetTimeline::new(vec![
                BudgetPhase { start_tick: 0, target_j: 8.0 },
                BudgetPhase { start_tick: ticks / 3, target_j: 2.0 },
                BudgetPhase { start_tick: (2 * ticks) / 3, target_j: 0.5 },
            ]));
            s
        }],
    };
    let churn = Scenario {
        name: "seed_churn_oscillation".to_string(),
        ticks,
        max_batch: 8,
        streams: vec![{
            let ambiguous = [Context::Fog, Context::Night, Context::Rain, Context::Junction];
            let pairs: Vec<(Context, u32)> = (0..(ticks / 3).max(2))
                .map(|i| (ambiguous[i as usize % ambiguous.len()], 3))
                .collect();
            let mut s = ScenarioStream::baseline(9201, ContextWalk::from_pairs(&pairs));
            s.budget = EnergyBudget { target_j: 6.0, window: 8, relax_margin: 0.8 };
            s.timeline = Some(BudgetTimeline::new(
                (0..(ticks / 8).max(2))
                    .map(|i| BudgetPhase {
                        start_tick: i * 8,
                        target_j: if i % 2 == 0 { 6.0 } else { 1.0 },
                    })
                    .collect(),
            ));
            s.queue_capacity = 4;
            s.backpressure = BackpressurePolicy::Stall;
            s.frames_per_tick = 2;
            s
        }],
    };
    vec![storm, squeeze, churn]
}

/// Runs the coverage-guided search: evaluates the seed templates, then
/// `cfg.candidates` mutated candidates (parent drawn uniformly from the
/// corpus, 1–3 mutations each), accepting a candidate iff its signature
/// is new. Deterministic: the corpus is a pure function of `cfg`.
///
/// # Errors
/// Propagates [`InferError`] from the serving model.
pub fn search(cfg: &SearchConfig) -> Result<Vec<CorpusEntry>, InferError> {
    let mut rng = Rng::new(cfg.seed);
    let mut evaluator = Evaluator::new();
    let mut corpus: Vec<CorpusEntry> = Vec::new();
    let mut seen: BTreeSet<CoverageSignature> = BTreeSet::new();
    for scenario in seed_scenarios(cfg.ticks) {
        let (signature, outcome) = evaluator.evaluate(&scenario)?;
        if seen.insert(signature) {
            corpus.push(CorpusEntry { scenario, signature, outcome });
        }
    }
    for candidate_idx in 0..cfg.candidates {
        let parent = rng.uniform_usize(0, corpus.len());
        let mut scenario = corpus[parent].scenario.clone();
        scenario.name = format!("found_{:04}", candidate_idx);
        let mutations = 1 + rng.uniform_usize(0, 3);
        let mut changed = false;
        for _ in 0..mutations {
            changed |= mutate_scenario(&mut scenario, &mut rng);
        }
        if !changed {
            continue;
        }
        debug_assert!(scenario.is_structurally_valid());
        let (signature, outcome) = evaluator.evaluate(&scenario)?;
        if seen.insert(signature) {
            corpus.push(CorpusEntry { scenario, signature, outcome });
        }
    }
    Ok(corpus)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_templates_are_valid_and_distinctly_shaped() {
        let seeds = seed_scenarios(24);
        assert_eq!(seeds.len(), 3);
        for s in &seeds {
            assert!(s.is_structurally_valid(), "{} invalid", s.name);
        }
        assert!(!seeds[0].streams[0].faults.is_empty(), "storm template has faults");
        assert!(seeds[1].streams[0].timeline.is_some(), "squeeze template has a ramp");
        assert!(seeds[2].streams[0].frames_per_tick > 1, "churn template over-produces");
    }

    #[test]
    fn tiny_search_is_bit_deterministic_and_finds_novelty() {
        let cfg = SearchConfig { seed: 7, candidates: 6, ticks: 10 };
        let a = search(&cfg).unwrap();
        let b = search(&cfg).unwrap();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "identical (seed, config) searches must produce bit-identical corpora"
        );
        assert!(a.len() >= 2, "even a tiny search separates the seed templates");
        let mut sigs: Vec<_> = a.iter().map(|e| e.signature).collect();
        sigs.sort();
        sigs.dedup();
        assert_eq!(sigs.len(), a.len(), "corpus signatures are unique");
    }
}
