//! Coverage-guided adversarial scenario search.
//!
//! The hand-written workload suites only defend scenarios someone
//! thought to author. This crate *discovers* them: starting from a few
//! seeded templates, it mutates the three adversarial input axes of a
//! [`Scenario`](ecofusion_harness::Scenario) — fault schedules
//! (shift/split/merge/severity-perturb events), scripted context walks
//! (dwell edits, forced ambiguous transitions), and budget timelines
//! (squeeze ramps, oscillations) — entirely under one seeded RNG, runs
//! every candidate through the real
//! [`PerceptionServer`](ecofusion_runtime::PerceptionServer), and keeps
//! a candidate only when its
//! [`CoverageSignature`](ecofusion_harness::CoverageSignature) (ladder
//! rungs hit, gate-decision churn, health transitions, knowledge-gate
//! fallbacks, per-stage energy overshoot, mAP loss vs. the clean twin)
//! lands in a behavior class the corpus has not seen.
//!
//! ```text
//!  seed templates ──▶ mutate (faults / walks / timelines, seeded RNG)
//!        ▲                      │
//!        │                      ▼
//!     corpus ◀── novel? ── CoverageSignature ◀── run_scenario (real server)
//!        │                                            ▲ clean twin (memoized)
//!        ▼
//!   minimize (drop events/segments/phases while the signature holds)
//!        │
//!        ▼
//!   DistilledSuite JSON ──▶ suites/distilled/ ──▶ scenario-regression CI
//! ```
//!
//! Everything is deterministic: the same `(seed, config)` search
//! produces a bit-identical corpus, minimization is a fixed-point
//! greedy pass in a fixed order, and the distilled suites record the
//! exact digest and counters a replay must reproduce (the property
//! tests assert both).
//!
//! The `scenario_search` binary in `ecofusion-bench` fronts the whole
//! lifecycle (`--search`, `--minimize`, `--replay`).

pub mod minimize;
pub mod mutate;
pub mod search;

pub use minimize::{distill, minimize};
pub use mutate::{mutate_scenario, MUTATION_OPS};
pub use search::{search, seed_scenarios, CorpusEntry, Evaluator, SearchConfig};
