//! Property tests of the mutation operators and the search loop's
//! determinism contract.
//!
//! The structural invariants under test are exactly the ones the
//! runtime relies on: fault events keep half-open intervals with
//! severity in `[0, 1]`, walks stay non-empty with every dwell ≥ 1,
//! timelines stay sorted with finite positive targets — and a search is
//! a pure function of its `(seed, config)`.

use ecofusion_harness::{Scenario, ScenarioStream};
use ecofusion_scene::{Context, ContextWalk};
use ecofusion_search::mutate_scenario;
use ecofusion_search::search::{search, seed_scenarios, SearchConfig};
use ecofusion_tensor::rng::Rng;
use proptest::prelude::*;

/// A small but non-degenerate scenario to mutate from.
fn base_scenario(seed: u64) -> Scenario {
    let walk = ContextWalk::from_pairs(&[(Context::City, 6), (Context::Night, 6)]);
    Scenario {
        name: "prop".to_string(),
        ticks: 24,
        max_batch: 4,
        streams: vec![ScenarioStream::baseline(seed, walk)],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mutated_scenarios_stay_structurally_valid(seed in 0u64..10_000, steps in 1usize..120) {
        let mut scenario = base_scenario(seed);
        let mut rng = Rng::new(seed ^ 0xA11CE);
        for step in 0..steps {
            mutate_scenario(&mut scenario, &mut rng);
            prop_assert!(
                scenario.is_structurally_valid(),
                "invalid after {step} mutations (seed {seed})"
            );
            for s in &scenario.streams {
                for ev in s.faults.events() {
                    prop_assert!((0.0..=1.0).contains(&ev.severity));
                    prop_assert!(ev.duration >= 1, "faults keep non-empty half-open intervals");
                }
                prop_assert!(!s.walk.is_empty());
                prop_assert!(s.walk.segments().iter().all(|seg| seg.dwell >= 1));
                if let Some(t) = &s.timeline {
                    prop_assert!(!t.phases().is_empty());
                    let mut prev = 0u64;
                    for p in t.phases() {
                        prop_assert!(p.start_tick >= prev, "timeline stays sorted");
                        prop_assert!(p.target_j.is_finite() && p.target_j > 0.0);
                        prev = p.start_tick;
                    }
                }
            }
        }
    }

    #[test]
    fn mutation_chains_are_seed_deterministic(seed in 0u64..10_000) {
        let mut a = base_scenario(1);
        let mut b = base_scenario(1);
        let mut ra = Rng::new(seed);
        let mut rb = Rng::new(seed);
        for _ in 0..40 {
            mutate_scenario(&mut a, &mut ra);
            mutate_scenario(&mut b, &mut rb);
        }
        prop_assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn seed_templates_are_valid_at_any_horizon(ticks in 4u64..200) {
        for s in seed_scenarios(ticks) {
            prop_assert!(s.is_structurally_valid(), "{} invalid at ticks={ticks}", s.name);
        }
    }
}

/// Identical `(seed, config)` searches produce bit-identical corpora —
/// a single deliberately tiny end-to-end case (it runs real servers, so
/// it is not under `proptest!`'s case multiplier).
#[test]
fn identical_searches_produce_bit_identical_corpora() {
    let cfg = SearchConfig { seed: 99, candidates: 5, ticks: 8 };
    let a = search(&cfg).unwrap();
    let b = search(&cfg).unwrap();
    assert_eq!(serde_json::to_string(&a).unwrap(), serde_json::to_string(&b).unwrap());
    assert!(!a.is_empty());
}
