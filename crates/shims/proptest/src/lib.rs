//! Offline shim for the `proptest` crate (see `crates/shims/README.md`).
//!
//! Provides the subset this workspace uses: the [`proptest!`] test macro,
//! `prop_assert!`/`prop_assert_eq!`, [`prop_oneof!`], range and tuple
//! strategies, `prop_map`, and `collection::{vec, btree_set}`. Cases are
//! generated from a deterministic per-test RNG; there is no shrinking — a
//! failing case panics with the values embedded in the assertion message.

use std::collections::BTreeSet;
use std::ops::Range;

/// Number of cases each test runs by default (overridable per block with
/// `#![proptest_config(ProptestConfig::with_cases(n))]` or globally with
/// the `PROPTEST_CASES` environment variable).
pub const DEFAULT_CASES: u32 = 256;

/// Per-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(DEFAULT_CASES);
        ProptestConfig { cases }
    }
}

/// Deterministic split-mix RNG driving case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG seeded from a test's identity, so every test draws a
    /// reproducible but distinct stream.
    pub fn deterministic(file: &str, test: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in file.bytes().chain(test.bytes()) {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: seed | 1 }
    }

    /// Next raw 64-bit draw (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// A value generator.
///
/// Unlike real proptest there is no shrinking, so a strategy is just a
/// seeded generation function plus combinators.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (built by [`prop_oneof!`]).
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Creates a uniform choice over `options`.
    ///
    /// # Panics
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one strategy");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + rng.below(span) as i64) as $t
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.unit_f64() as $t;
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($t:ident . $i:tt),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Collection strategies (`prop::collection::*`).
pub mod collection {
    use super::*;

    /// Strategy for `Vec<T>` with a length drawn from `sizes`.
    pub struct VecStrategy<S> {
        element: S,
        sizes: Range<usize>,
    }

    /// Generates vectors whose lengths fall in `sizes`.
    pub fn vec<S: Strategy>(element: S, sizes: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, sizes }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.sizes.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>` with a target size drawn from `sizes`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        sizes: Range<usize>,
    }

    /// Generates sets whose sizes fall in `sizes` (best effort: if the
    /// element domain is too small to reach the drawn size, the set is as
    /// large as the domain allows).
    pub fn btree_set<S>(element: S, sizes: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, sizes }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.sizes.clone().generate(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0;
            while set.len() < target && attempts < 64 * (target + 1) {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// Prelude mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just, ProptestConfig,
        Strategy, TestRng,
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Declares property tests: each `fn` runs its body for every generated
/// case of its `arg in strategy` inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strategy:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(file!(), stringify!($name));
                for __case in 0..cfg.cases {
                    let ( $($arg,)+ ) =
                        ( $($crate::Strategy::generate(&$strategy, &mut __rng),)+ );
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn arb_even() -> impl Strategy<Value = u32> {
        (0u32..50).prop_map(|n| n * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(a in 3usize..9, b in -2.0f32..2.0, c in 1u64..4) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((-2.0..2.0).contains(&b));
            prop_assert!((1..4).contains(&c));
        }

        #[test]
        fn tuples_and_maps_compose((x, y) in (0u32..10, 0u32..10), e in arb_even()) {
            prop_assert!(x < 10 && y < 10);
            prop_assert_eq!(e % 2, 0);
        }

        #[test]
        fn collections_respect_sizes(
            v in prop::collection::vec(0u8..5, 2..6),
            s in prop::collection::btree_set(0u32..100, 0..4),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(s.len() < 4);
        }

        #[test]
        fn oneof_draws_from_all(x in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(x == 1 || x == 2);
        }
    }

    #[test]
    fn deterministic_per_test() {
        let mut a = TestRng::deterministic("f", "t");
        let mut b = TestRng::deterministic("f", "t");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("f", "other");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
