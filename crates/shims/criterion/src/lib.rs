//! Offline shim for the `criterion` crate (see `crates/shims/README.md`).
//!
//! Implements the measurement surface this workspace's benches use:
//! `criterion_group!` / `criterion_main!`, [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] with `bench_function` /
//! `bench_with_input`, [`BenchmarkId`], and [`black_box`]. Each benchmark
//! is timed adaptively (warm-up, then enough iterations to fill the
//! measurement window) and the median per-iteration wall time is printed.
//! A `--quick` CLI flag (or `ECOFUSION_BENCH_QUICK=1`) shrinks the window
//! for smoke runs; any benchmark name passed on the command line acts as a
//! substring filter, mirroring `cargo bench -- <filter>`.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver: runs and reports individual benchmark functions.
pub struct Criterion {
    filter: Option<String>,
    ran: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo passes flags like `--bench`; the first non-flag argument is
        // a name filter.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter, ran: 0 }
    }
}

impl Criterion {
    /// Runs one benchmark under `name`.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if self.matches(name) {
            let mut bencher = Bencher { samples: Vec::new() };
            f(&mut bencher);
            self.report(name, &bencher);
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }

    /// Prints a trailing summary (called by `criterion_main!`).
    pub fn final_summary(&self) {
        eprintln!("\n{} benchmark(s) run", self.ran);
    }

    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    fn report(&mut self, name: &str, bencher: &Bencher) {
        self.ran += 1;
        let mut per_iter: Vec<f64> = bencher.samples.clone();
        if per_iter.is_empty() {
            eprintln!("{name:<50} no samples");
            return;
        }
        per_iter.sort_by(f64::total_cmp);
        let median = per_iter[per_iter.len() / 2];
        let lo = per_iter[0];
        let hi = per_iter[per_iter.len() - 1];
        eprintln!(
            "{name:<50} time: [{} {} {}]",
            format_time(lo),
            format_time(median),
            format_time(hi)
        );
    }
}

/// A named group of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        if self.criterion.matches(&full) {
            let mut bencher = Bencher { samples: Vec::new() };
            f(&mut bencher);
            self.criterion.report(&full, &bencher);
        }
        self
    }

    /// Runs one parameterized benchmark inside the group.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        if self.criterion.matches(&full) {
            let mut bencher = Bencher { samples: Vec::new() };
            f(&mut bencher, input);
            self.criterion.report(&full, &bencher);
        }
        self
    }

    /// Ends the group (no-op; mirrors the real API).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter into an id.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    /// Id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Conversion into a printable benchmark id (accepts `&str` and
/// [`BenchmarkId`], as the real API does).
pub trait IntoBenchmarkId {
    /// The printable id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    /// Per-iteration seconds of each measured sample.
    samples: Vec<f64>,
}

/// Measurement parameters shared by every `iter` call: the enclosing
/// `Criterion`'s windows are fixed at construction, so `Bencher` reads the
/// global quick flag directly to stay a plain value type.
fn windows() -> (Duration, Duration) {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("ECOFUSION_BENCH_QUICK").is_ok_and(|v| v == "1");
    if quick {
        (Duration::from_millis(50), Duration::from_millis(10))
    } else {
        (Duration::from_millis(400), Duration::from_millis(100))
    }
}

impl Bencher {
    /// Measures `f`, recording per-iteration wall time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let (measurement, warm_up) = windows();
        // Warm-up: also calibrates the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < warm_up {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        // Sample batches sized to ~1/8 of the measurement window each.
        let batch = ((measurement.as_secs_f64() / 8.0 / per_iter).ceil() as u64).max(1);
        let deadline = Instant::now() + measurement;
        while Instant::now() < deadline {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(start.elapsed().as_secs_f64() / batch as f64);
        }
        if self.samples.is_empty() {
            self.samples.push(per_iter);
        }
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Groups benchmark functions under one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $( $group(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_scale() {
        assert!(format_time(2.0).ends_with("s"));
        assert!(format_time(2e-3).ends_with("ms"));
        assert!(format_time(2e-6).ends_with("µs"));
        assert!(format_time(2e-9).ends_with("ns"));
    }

    #[test]
    fn bencher_records_samples() {
        std::env::set_var("ECOFUSION_BENCH_QUICK", "1");
        let mut b = Bencher { samples: Vec::new() };
        b.iter(|| black_box(3u64.wrapping_mul(7)));
        assert!(!b.samples.is_empty());
        assert!(b.samples.iter().all(|s| *s >= 0.0));
    }
}
