//! Offline shim for the `serde` crate (see `crates/shims/README.md`).
//!
//! Instead of serde's zero-copy serializer/deserializer traits, this shim
//! round-trips every value through a JSON-oriented [`Value`] tree. That is
//! dramatically simpler, fast enough for model snapshots, and keeps the
//! `#[derive(Serialize, Deserialize)]` + `serde_json::{to_string, from_str}`
//! surface of the real crate source-compatible.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// A JSON-shaped value tree: the serialization data model of the shim.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object (insertion-ordered).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The entries of an object, if this value is one.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The elements of an array, if this value is one.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string content, if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Short human-readable kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        }
    }
}

/// Error produced while mapping a [`Value`] back into a Rust type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }

    /// Standard "expected X, found Y" error.
    pub fn expected(what: &str, found: &Value) -> Self {
        DeError::custom(format!("expected {what}, found {}", found.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types convertible into the shim's [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from the shim's [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Looks up a field in an object by name (derive-macro helper).
pub fn find_field<'a>(map: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
    map.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: i64 = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| DeError::custom("integer out of range"))?,
                    Value::F64(f) if f.fract() == 0.0 => *f as i64,
                    other => return Err(DeError::expected("integer", other)),
                };
                <$t>::try_from(n).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: u64 = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) => u64::try_from(*n)
                        .map_err(|_| DeError::custom("negative integer for unsigned type"))?,
                    Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    other => return Err(DeError::expected("unsigned integer", other)),
                };
                <$t>::try_from(n).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::F64(f) => Ok(*f as $t),
                    Value::I64(n) => Ok(*n as $t),
                    Value::U64(n) => Ok(*n as $t),
                    other => Err(DeError::expected("number", other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-character string", other)),
        }
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (*self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let seq = v.as_seq().ok_or_else(|| DeError::expected("array", v))?;
        seq.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let seq = v.as_seq().ok_or_else(|| DeError::expected("array", v))?;
        if seq.len() != N {
            return Err(DeError::custom(format!(
                "expected array of length {N}, found {}",
                seq.len()
            )));
        }
        let items: Vec<T> = seq.iter().map(T::from_value).collect::<Result<_, _>>()?;
        items.try_into().map_err(|_| DeError::custom("array length conversion failed"))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let seq = v.as_seq().ok_or_else(|| DeError::expected("array", v))?;
                let want = [$(stringify!($i)),+].len();
                if seq.len() != want {
                    return Err(DeError::custom(format!(
                        "expected tuple of length {want}, found {}", seq.len()
                    )));
                }
                Ok(($($t::from_value(&seq[$i])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Renders a map key: JSON objects require string keys, so non-string
/// serializable keys (unit enum variants, integers) are stringified the
/// same way `serde_json`'s map-key serializer does.
fn key_string(v: Value) -> Result<String, DeError> {
    match v {
        Value::Str(s) => Ok(s),
        Value::I64(n) => Ok(n.to_string()),
        Value::U64(n) => Ok(n.to_string()),
        Value::Bool(b) => Ok(b.to_string()),
        other => Err(DeError::custom(format!("map key must be a string, got {}", other.kind()))),
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| {
                    let key = key_string(k.to_value())
                        .expect("BTreeMap key does not serialize to a string");
                    (key, v.to_value())
                })
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let map = v.as_map().ok_or_else(|| DeError::expected("object", v))?;
        map.iter()
            .map(|(k, v)| {
                // Keys arrive as JSON strings; non-string key types
                // (integers, bools) parse back from the stringified form.
                let key = K::from_value(&Value::Str(k.clone())).or_else(|e| {
                    if let Ok(n) = k.parse::<u64>() {
                        K::from_value(&Value::U64(n))
                    } else if let Ok(n) = k.parse::<i64>() {
                        K::from_value(&Value::I64(n))
                    } else if let Ok(b) = k.parse::<bool>() {
                        K::from_value(&Value::Bool(b))
                    } else {
                        Err(e)
                    }
                })?;
                Ok((key, V::from_value(v)?))
            })
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<f64> = Some(2.5);
        assert_eq!(Option::<f64>::from_value(&o.to_value()).unwrap(), o);
        let n: Option<f64> = None;
        assert_eq!(Option::<f64>::from_value(&n.to_value()).unwrap(), n);
        let t = (1u8, -2i64, 0.5f32);
        assert_eq!(<(u8, i64, f32)>::from_value(&t.to_value()).unwrap(), t);
        let a = [1usize, 2, 3, 4];
        assert_eq!(<[usize; 4]>::from_value(&a.to_value()).unwrap(), a);
    }

    #[test]
    fn map_with_integer_keys() {
        let mut m = BTreeMap::new();
        m.insert(3u32, "three".to_string());
        let back = BTreeMap::<u32, String>::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn type_mismatch_errors() {
        assert!(bool::from_value(&Value::I64(1)).is_err());
        assert!(u8::from_value(&Value::I64(300)).is_err());
        assert!(u64::from_value(&Value::I64(-1)).is_err());
    }
}
