//! Offline shim for `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` implemented with a hand-rolled token parser
//! (no `syn`/`quote`, which are unavailable offline).
//!
//! Supported item shapes — exactly what this workspace uses:
//!
//! * structs with named fields (incl. the `#[serde(default)]` field attr)
//! * tuple structs; single-field tuple structs serialize transparently as
//!   their inner value (newtype convention, as real serde does)
//! * enums with unit, tuple, and struct variants (externally tagged:
//!   `"Variant"` / `{"Variant": value}` / `{"Variant": [values...]}` /
//!   `{"Variant": {"field": value, ...}}`)
//!
//! Generic items are rejected with a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the shim `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives the shim `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

struct Field {
    name: String,
    has_default: bool,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

enum Item {
    NamedStruct { name: String, fields: Vec<Field> },
    TupleStruct { name: String, arity: usize },
    Enum { name: String, variants: Vec<(String, VariantKind)> },
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match parse_item(input) {
        Ok(item) => {
            let code = match mode {
                Mode::Serialize => gen_serialize(&item),
                Mode::Deserialize => gen_deserialize(&item),
            };
            code.parse().expect("serde_derive shim generated invalid code")
        }
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);
    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("serde shim: expected struct/enum, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("serde shim: expected type name, found {other:?}")),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("serde shim: generic type `{name}` is not supported"));
    }
    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::NamedStruct { name, fields: parse_named_fields(g.stream())? })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Item::TupleStruct { name, arity: count_tuple_fields(g.stream()) })
            }
            other => Err(format!("serde shim: unsupported struct body {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::Enum { name, variants: parse_variants(g.stream())? })
            }
            other => Err(format!("serde shim: unsupported enum body {other:?}")),
        },
        kw => Err(format!("serde shim: cannot derive for `{kw}` items")),
    }
}

/// Advances past `#[...]` attribute groups, returning whether any of them
/// was `#[serde(default)]`.
fn skip_attributes(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut has_default = false;
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
            if g.delimiter() == Delimiter::Bracket && attr_is_serde_default(g.stream()) {
                has_default = true;
            }
        }
        *i += 2;
    }
    has_default
}

fn attr_is_serde_default(stream: TokenStream) -> bool {
    let parts: Vec<TokenTree> = stream.into_iter().collect();
    match (parts.first(), parts.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g)))
            if id.to_string() == "serde" && g.delimiter() == Delimiter::Parenthesis =>
        {
            g.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "default"))
        }
        _ => false,
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        // `pub(crate)`, `pub(super)`, ...
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Skips a type expression: consumes tokens until a top-level `,`
/// (generic-angle-bracket depth tracked manually; parenthesized tuple types
/// arrive as single groups, so they need no special handling).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while let Some(t) = tokens.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let has_default = skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("serde shim: expected field name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("serde shim: expected `:`, found {other:?}")),
        }
        skip_type(&tokens, &mut i);
        i += 1; // consume the separating comma, if any
        fields.push(Field { name, has_default });
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        skip_type(&tokens, &mut i);
        i += 1;
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, VariantKind)>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("serde shim: expected variant name, found {other:?}")),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream())?)
            }
            _ => VariantKind::Unit,
        };
        // Skip a discriminant (`= expr`) if present, then the comma.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            i += 1;
            while i < tokens.len()
                && !matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',')
            {
                i += 1;
            }
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push((name, kind));
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({:?}), ::serde::Serialize::to_value(&self.{}))",
                        f.name, f.name
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Map(::std::vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, kind)| match kind {
                    VariantKind::Unit => format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from({v:?})),"
                    ),
                    VariantKind::Tuple(1) => format!(
                        "{name}::{v}(x0) => ::serde::Value::Map(::std::vec![(\
                         ::std::string::String::from({v:?}), ::serde::Serialize::to_value(x0))]),"
                    ),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        let vals: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_value(x{i})"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Map(::std::vec![(\
                             ::std::string::String::from({v:?}), \
                             ::serde::Value::Seq(::std::vec![{}]))]),",
                            binds.join(", "),
                            vals.join(", ")
                        )
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from({:?}), \
                                     ::serde::Serialize::to_value({}))",
                                    f.name, f.name
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {} }} => ::serde::Value::Map(::std::vec![(\
                             ::std::string::String::from({v:?}), \
                             ::serde::Value::Map(::std::vec![{}]))]),",
                            binds.join(", "),
                            entries.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    let missing = if f.has_default {
                        "::std::default::Default::default()".to_string()
                    } else {
                        format!(
                            "return ::std::result::Result::Err(::serde::DeError::custom(\
                             ::std::format!(\"missing field `{}` of {}\")))",
                            f.name, name
                        )
                    };
                    format!(
                        "{}: match ::serde::find_field(map, {:?}) {{\n\
                             ::std::option::Option::Some(v) => ::serde::Deserialize::from_value(v)?,\n\
                             ::std::option::Option::None => {missing},\n\
                         }}",
                        f.name, f.name
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         let map = v.as_map().ok_or_else(|| ::serde::DeError::expected({name:?}, v))?;\n\
                         ::std::result::Result::Ok({name} {{ {} }})\n\
                     }}\n\
                 }}",
                inits.join(",\n")
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Deserialize::from_value(&seq[{i}])?"))
                    .collect();
                format!(
                    "let seq = v.as_seq().ok_or_else(|| ::serde::DeError::expected({name:?}, v))?;\n\
                     if seq.len() != {arity} {{\n\
                         return ::std::result::Result::Err(::serde::DeError::custom(\
                         ::std::format!(\"expected {arity} elements for {name}\")));\n\
                     }}\n\
                     ::std::result::Result::Ok({name}({}))",
                    items.join(", ")
                )
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, kind)| matches!(kind, VariantKind::Unit))
                .map(|(v, _)| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter(|(_, kind)| !matches!(kind, VariantKind::Unit))
                .map(|(v, kind)| match kind {
                    VariantKind::Unit => unreachable!(),
                    VariantKind::Tuple(1) => format!(
                        "{v:?} => ::std::result::Result::Ok(\
                         {name}::{v}(::serde::Deserialize::from_value(inner)?)),"
                    ),
                    VariantKind::Tuple(arity) => {
                        let items: Vec<String> = (0..*arity)
                            .map(|i| format!("::serde::Deserialize::from_value(&seq[{i}])?"))
                            .collect();
                        format!(
                            "{v:?} => {{\n\
                                 let seq = inner.as_seq().ok_or_else(|| \
                                 ::serde::DeError::expected(\"variant data array\", inner))?;\n\
                                 if seq.len() != {arity} {{\n\
                                     return ::std::result::Result::Err(::serde::DeError::custom(\
                                     \"wrong variant arity\"));\n\
                                 }}\n\
                                 ::std::result::Result::Ok({name}::{v}({}))\n\
                             }},",
                            items.join(", ")
                        )
                    }
                    VariantKind::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                let missing = if f.has_default {
                                    "::std::default::Default::default()".to_string()
                                } else {
                                    format!(
                                        "return ::std::result::Result::Err(\
                                         ::serde::DeError::custom(::std::format!(\
                                         \"missing field `{}` of variant {}\")))",
                                        f.name, v
                                    )
                                };
                                format!(
                                    "{}: match ::serde::find_field(vmap, {:?}) {{\n\
                                         ::std::option::Option::Some(fv) => \
                                         ::serde::Deserialize::from_value(fv)?,\n\
                                         ::std::option::Option::None => {missing},\n\
                                     }}",
                                    f.name, f.name
                                )
                            })
                            .collect();
                        format!(
                            "{v:?} => {{\n\
                                 let vmap = inner.as_map().ok_or_else(|| \
                                 ::serde::DeError::expected(\"variant data object\", inner))?;\n\
                                 ::std::result::Result::Ok({name}::{v} {{ {} }})\n\
                             }},",
                            inits.join(",\n")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {}\n\
                                 other => ::std::result::Result::Err(::serde::DeError::custom(\
                                 ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Map(m) if m.len() == 1 => {{\n\
                                 let (tag, inner) = &m[0];\n\
                                 match tag.as_str() {{\n\
                                     {}\n\
                                     other => ::std::result::Result::Err(::serde::DeError::custom(\
                                     ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             other => ::std::result::Result::Err(\
                             ::serde::DeError::expected({name:?}, other)),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit_arms.join("\n"),
                data_arms.join("\n")
            )
        }
    }
}
