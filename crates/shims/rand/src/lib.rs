//! Offline shim for the `rand` crate (see `crates/shims/README.md`).
//!
//! Unlike the other shims, this one is **stream-compatible** with
//! `rand 0.8` + `rand_chacha 0.3` for the API it covers: `rngs::StdRng`
//! is a faithful ChaCha12 implementation seeded with `rand_core`'s
//! `seed_from_u64` PCG32 expansion, `gen::<f64>` uses the same 53-bit
//! conversion, and `gen_range` uses the same widening-multiply rejection
//! sampling. Every stochastic fixture in this workspace (weight init,
//! scene generation, statistical test thresholds) was produced against the
//! real `StdRng` stream, so the shim must reproduce it bit for bit. The
//! block function is validated against the RFC 8439 ChaCha20 test vector
//! in this crate's tests.

/// Sampling support for `Rng::gen` (mirrors rand's `Standard`
/// distribution).
pub trait Standard: Sized {
    /// Draws one value from the generator.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // rand 0.8: 53 mantissa bits, multiply into [0, 1).
        let value = rng.next_u64() >> 11;
        value as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        let value = rng.next_u32() >> 8;
        value as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

#[inline]
fn wmul64(a: u64, b: u64) -> (u64, u64) {
    let wide = (a as u128) * (b as u128);
    ((wide >> 64) as u64, wide as u64)
}

/// Ranges usable with `Rng::gen_range` (rand's `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value inside the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// rand 0.8 `UniformInt::sample_single` for 64-bit types: Lemire
/// widening-multiply with rejection zone `(range << lz) - 1`.
#[inline]
fn sample_single_u64<R: RngCore>(range: u64, rng: &mut R) -> u64 {
    debug_assert!(range > 0);
    let zone = (range << range.leading_zeros()).wrapping_sub(1);
    loop {
        let v = rng.next_u64();
        let (hi, lo) = wmul64(v, range);
        if lo <= zone {
            return hi;
        }
    }
}

macro_rules! impl_u64_like_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let range = (self.end - self.start) as u64;
                self.start + sample_single_u64(range, rng) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let range = ((hi - lo) as u64).wrapping_add(1);
                if range == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo + sample_single_u64(range, rng) as $t
            }
        }
    )*};
}

impl_u64_like_range!(usize, u64);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Raw generator core (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next raw 32-bit draw.
    fn next_u32(&mut self) -> u32;

    /// Next raw 64-bit draw (little-endian composition of two 32-bit
    /// draws, as `rand_core` does for 32-bit generators).
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

/// User-facing sampling methods (blanket-implemented over [`RngCore`]).
pub trait Rng: RngCore {
    /// Draws a value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Generators constructible from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed using `rand_core`'s PCG32
    /// seed-expansion routine.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// ChaCha quarter round.
    #[inline(always)]
    fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(16);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(12);
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(8);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(7);
    }

    /// One ChaCha block: `rounds` must be even.
    pub(super) fn chacha_block(input: &[u32; 16], rounds: usize) -> [u32; 16] {
        let mut x = *input;
        for _ in 0..rounds / 2 {
            // Column round.
            quarter(&mut x, 0, 4, 8, 12);
            quarter(&mut x, 1, 5, 9, 13);
            quarter(&mut x, 2, 6, 10, 14);
            quarter(&mut x, 3, 7, 11, 15);
            // Diagonal round.
            quarter(&mut x, 0, 5, 10, 15);
            quarter(&mut x, 1, 6, 11, 12);
            quarter(&mut x, 2, 7, 8, 13);
            quarter(&mut x, 3, 4, 9, 14);
        }
        for (o, i) in x.iter_mut().zip(input.iter()) {
            *o = o.wrapping_add(*i);
        }
        x
    }

    /// `"expand 32-byte k"` as little-endian words.
    const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

    /// ChaCha12 generator, stream-compatible with `rand 0.8`'s `StdRng`
    /// (`rand_chacha::ChaCha12Rng` with stream id 0): 64-bit block
    /// counter in words 12–13, stream id in words 14–15, output consumed
    /// as sequential little-endian 32-bit words.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        key: [u32; 8],
        counter: u64,
        buffer: [u32; 16],
        index: usize,
    }

    impl StdRng {
        fn refill(&mut self) {
            let mut state = [0u32; 16];
            state[..4].copy_from_slice(&SIGMA);
            state[4..12].copy_from_slice(&self.key);
            state[12] = self.counter as u32;
            state[13] = (self.counter >> 32) as u32;
            state[14] = 0;
            state[15] = 0;
            self.buffer = chacha_block(&state, 12);
            self.counter = self.counter.wrapping_add(1);
            self.index = 0;
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            // rand_core 0.6's default seed_from_u64: PCG32 output fills
            // the 32-byte seed as little-endian u32 chunks.
            const MUL: u64 = 6_364_136_223_846_793_005;
            const INC: u64 = 11_634_580_027_462_260_723;
            let mut key = [0u32; 8];
            for word in &mut key {
                state = state.wrapping_mul(MUL).wrapping_add(INC);
                let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
                let rot = (state >> 59) as u32;
                // Seed bytes are little-endian; the key words are read
                // back little-endian, so the rotated word passes through.
                *word = xorshifted.rotate_right(rot);
            }
            StdRng { key, counter: 0, buffer: [0; 16], index: 16 }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            if self.index >= 16 {
                self.refill();
            }
            let w = self.buffer[self.index];
            self.index += 1;
            w
        }

        fn next_u64(&mut self) -> u64 {
            // rand_chacha composes u64s from two sequential words
            // (low word first) and refills block-at-a-time; a u64 never
            // straddles blocks because 16 words divide evenly.
            let lo = self.next_u32() as u64;
            let hi = self.next_u32() as u64;
            lo | (hi << 32)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{chacha_block, StdRng};
    use super::*;

    /// RFC 8439 §2.3.2: ChaCha20 block function test vector. Validates the
    /// quarter-round network and the final state addition; ChaCha12 runs
    /// the same network for fewer rounds.
    #[test]
    fn chacha20_block_matches_rfc8439() {
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        // Key 00 01 02 .. 1f as little-endian words.
        for i in 0..8 {
            let b = (4 * i) as u32;
            state[4 + i] = b | (b + 1) << 8 | (b + 2) << 16 | (b + 3) << 24;
        }
        state[12] = 1; // counter
        state[13] = 0x0900_0000; // nonce words from the RFC
        state[14] = 0x4a00_0000;
        state[15] = 0;
        let out = chacha_block(&state, 20);
        let expect: [u32; 16] = [
            0xe4e7_f110,
            0x1559_3bd1,
            0x1fdd_0f50,
            0xc471_20a3,
            0xc7f4_d1c7,
            0x0368_c033,
            0x9aaa_2204,
            0x4e6c_d4c3,
            0x4664_82d2,
            0x09aa_9f07,
            0x05d7_c214,
            0xa202_8bd9,
            0xd19c_12b5,
            0xb94e_16de,
            0xe883_d0cb,
            0x4e3c_50a2,
        ];
        assert_eq!(out, expect);
    }

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..9);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(0usize..=4);
            assert!(w <= 4);
        }
    }

    #[test]
    fn mean_is_centred() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
