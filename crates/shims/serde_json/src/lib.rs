//! Offline shim for `serde_json`: JSON text on top of the shim `serde`
//! crate's [`Value`] data model (see `crates/shims/README.md`).

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes a value to compact JSON.
///
/// # Errors
/// Never fails for the types in this workspace; the `Result` mirrors the
/// real crate's signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to 2-space-indented JSON.
///
/// # Errors
/// Never fails for the types in this workspace.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses a value from JSON text.
///
/// # Errors
/// Returns an error describing the first syntax or shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // `{}` prints the shortest representation that round-trips.
                let s = f.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // Real serde_json also emits null for non-finite floats.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(item, out, indent, level + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, level);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, level + 1);
            }
            if !entries.is_empty() {
                newline_indent(out, indent, level);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid keyword at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            // Surrogate pairs are not needed for this
                            // workspace's data (plain ASCII identifiers).
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    let chunk =
                        rest.get(..len).ok_or_else(|| Error::new("truncated UTF-8 sequence"))?;
                    s.push_str(
                        std::str::from_utf8(chunk).map_err(|_| Error::new("invalid UTF-8"))?,
                    );
                    self.pos += len;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if text.starts_with('-') {
                if let Ok(n) = text.parse::<i64>() {
                    return Ok(Value::I64(n));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        assert_eq!(to_string(&1.5f32).unwrap(), "1.5");
        assert_eq!(from_str::<f32>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-42").unwrap(), -42);
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn float_precision_roundtrip() {
        for &x in &[0.1f32, 1.0e-7, 3.4e38, -2.5, 0.0] {
            let s = to_string(&x).unwrap();
            assert_eq!(from_str::<f32>(&s).unwrap(), x, "{s}");
        }
        for &x in &[0.1f64, 1.0e-300, std::f64::consts::PI] {
            let s = to_string(&x).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), x, "{s}");
        }
    }

    #[test]
    fn nested_containers() {
        let v = vec![vec![1u32, 2], vec![], vec![3]];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[[1,2],[],[3]]");
        assert_eq!(from_str::<Vec<Vec<u32>>>(&s).unwrap(), v);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![(1u32, "x".to_string())];
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        assert_eq!(from_str::<Vec<(u32, String)>>(&s).unwrap(), v);
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<u32>("{").is_err());
        assert!(from_str::<u32>("12 34").is_err());
        assert!(from_str::<u32>("\"no\"").is_err());
    }
}
