//! Property-based tests of the energy models.

use ecofusion_energy::{
    BranchSpec, EnergyBreakdown, Px2Model, SensorPowerModel, SensorState, StemPolicy,
};
use ecofusion_sensors::SensorKind;
use proptest::prelude::*;

fn arb_sensor() -> impl Strategy<Value = SensorKind> {
    (0usize..4).prop_map(|i| SensorKind::from_index(i).expect("index < 4"))
}

fn arb_branch() -> impl Strategy<Value = BranchSpec> {
    prop_oneof![
        arb_sensor().prop_map(BranchSpec::Single),
        prop::collection::btree_set(arb_sensor(), 2..4)
            .prop_map(|s| BranchSpec::Early(s.into_iter().collect())),
    ]
}

proptest! {
    #[test]
    fn config_energy_positive_and_monotone(
        branches in prop::collection::vec(arb_branch(), 1..6),
        extra in arb_branch(),
    ) {
        let px2 = Px2Model::default();
        for policy in [StemPolicy::Static, StemPolicy::Adaptive] {
            let base = px2.config_energy(&branches, policy);
            prop_assert!(base.joules() > 0.0);
            let mut bigger = branches.clone();
            bigger.push(extra.clone());
            let more = px2.config_energy(&bigger, policy);
            prop_assert!(more.joules() > base.joules(), "{policy:?}");
        }
    }

    #[test]
    fn static_energy_is_additive_over_branches(
        a in arb_branch(),
        b in arb_branch(),
    ) {
        let px2 = Px2Model::default();
        let ea = px2.config_energy(std::slice::from_ref(&a), StemPolicy::Static);
        let eb = px2.config_energy(std::slice::from_ref(&b), StemPolicy::Static);
        let eab = px2.config_energy(&[a, b], StemPolicy::Static);
        // Static pipelines replicate stems per branch, so energy adds
        // exactly (the paper's late-4 row validates this).
        prop_assert!((eab.joules() - (ea.joules() + eb.joules())).abs() < 1e-9);
    }

    #[test]
    fn latency_positive_and_monotone(
        branches in prop::collection::vec(arb_branch(), 1..6),
        extra in arb_branch(),
    ) {
        let px2 = Px2Model::default();
        for policy in [StemPolicy::Static, StemPolicy::Adaptive] {
            let t = px2.config_latency(&branches, policy);
            prop_assert!(t.millis() > 0.0);
            let mut bigger = branches.clone();
            bigger.push(extra.clone());
            prop_assert!(px2.config_latency(&bigger, policy).millis() > t.millis());
        }
    }

    #[test]
    fn adaptive_charges_at_least_four_stems(branches in prop::collection::vec(arb_branch(), 1..4)) {
        let px2 = Px2Model::default();
        let e = px2.config_energy(&branches, StemPolicy::Adaptive);
        let branch_only: f64 = branches.iter().map(|b| px2.branch_cost(b).0.joules()).sum();
        prop_assert!(e.joules() >= branch_only + 4.0 * px2.stem_energy.joules() - 1e-9);
    }

    #[test]
    fn breakdown_totals_non_negative_and_consistent(
        branches in prop::collection::vec(arb_branch(), 1..6),
    ) {
        let px2 = Px2Model::default();
        let sensors = SensorPowerModel::default();
        for policy in [StemPolicy::Static, StemPolicy::Adaptive] {
            let b = EnergyBreakdown::compute(&px2, &sensors, &branches, policy);
            prop_assert!(b.platform.joules() > 0.0);
            prop_assert!(b.sensors_gated.joules() >= 0.0);
            prop_assert!(b.latency.millis() > 0.0);
            // Eq. 11 additivity: the totals are exactly platform + the
            // matching sensor share.
            prop_assert!(
                (b.total_gated().joules() - (b.platform.joules() + b.sensors_gated.joules()))
                    .abs() < 1e-12
            );
            prop_assert!(
                (b.total_ungated().joules()
                    - (b.platform.joules() + b.sensors_all_active.joules()))
                .abs() < 1e-12
            );
            // Clock gating can only save sensor energy, never cost.
            prop_assert!(b.total_gated().joules() <= b.total_ungated().joules() + 1e-12);
        }
    }

    #[test]
    fn breakdown_monotone_in_executed_branches(
        branches in prop::collection::vec(arb_branch(), 1..5),
        extra in arb_branch(),
    ) {
        let px2 = Px2Model::default();
        let sensors = SensorPowerModel::default();
        for policy in [StemPolicy::Static, StemPolicy::Adaptive] {
            let base = EnergyBreakdown::compute(&px2, &sensors, &branches, policy);
            let mut bigger = branches.clone();
            bigger.push(extra.clone());
            let more = EnergyBreakdown::compute(&px2, &sensors, &bigger, policy);
            // Executing one more branch never reduces platform energy,
            // sensor energy, or the Eq. 11 total.
            prop_assert!(more.platform.joules() > base.platform.joules(), "{policy:?}");
            prop_assert!(more.sensors_gated.joules() >= base.sensors_gated.joules() - 1e-12);
            prop_assert!(more.total_gated().joules() > base.total_gated().joules());
        }
    }

    #[test]
    fn gating_a_sensor_never_costs_more(active in prop::collection::btree_set(arb_sensor(), 0..4)) {
        let m = SensorPowerModel::default();
        let active: Vec<SensorKind> = active.into_iter().collect();
        let gated = m.total_frame_energy(&active);
        let all = m.total_frame_energy_all_active();
        prop_assert!(gated.joules() <= all.joules() + 1e-12);
    }

    #[test]
    fn per_sensor_gated_energy_below_active(s in arb_sensor()) {
        let m = SensorPowerModel::default();
        let active = m.frame_energy(s, SensorState::Active);
        let gated = m.frame_energy(s, SensorState::Gated);
        prop_assert!(gated.joules() <= active.joules());
        prop_assert!(gated.joules() >= 0.0);
    }
}
