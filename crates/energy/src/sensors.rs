//! Sensor power and clock-gating model (paper §5.5.2, Eq. 10–11).

use crate::units::Joules;
use ecofusion_sensors::SensorKind;
use serde::{Deserialize, Serialize};

/// Datasheet power characteristics of one physical sensor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensorSpec {
    /// Total operating power, Watts.
    pub power_w: f64,
    /// Motor power, Watts: the share that keeps spinning when the sensor
    /// is clock gated (zero for cameras).
    pub motor_w: f64,
    /// Measurement rate, Hz, at which frames are consumed.
    pub rate_hz: f64,
}

impl SensorSpec {
    /// Measurement power `P_meas = P − P_motor` (Eq. 10).
    pub fn measurement_w(&self) -> f64 {
        self.power_w - self.motor_w
    }

    /// Energy per frame while active: `E_s = (P_meas + P_motor) / f` (Eq. 10).
    pub fn frame_energy_active(&self) -> Joules {
        Joules::new(self.power_w / self.rate_hz)
    }

    /// Energy per frame while clock gated: measurements stopped
    /// (`P_meas = 0`) but the motor keeps spinning — rotating sensors need
    /// seconds to spin back up, which would compromise safety.
    pub fn frame_energy_gated(&self) -> Joules {
        Joules::new(self.motor_w / self.rate_hz)
    }
}

/// Whether a sensor is measuring or clock gated for a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SensorState {
    /// Sensor measuring normally.
    Active,
    /// Sensor clock gated (motor power only).
    Gated,
}

/// The four-sensor power model with the paper's datasheet constants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensorPowerModel {
    specs: [SensorSpec; SensorKind::COUNT],
}

impl Default for SensorPowerModel {
    fn default() -> Self {
        // Paper constants: Navtech CTS350-X 24 W total / 2.4 W motor;
        // Velodyne HDL-32e 12 W total / P_meas 9.6 W (=> 2.4 W motor);
        // ZED camera 1.9 W, no motor. Frame rates: RADIATE annotations are
        // synchronized at the 4 Hz radar keyframe rate (radar + lidar);
        // the cameras' effective synchronized rate of 8 Hz is implied by
        // Table 3's late-fusion total (13.27 J = 3.798 + 24/4 + 12/4 +
        // 2·1.9/8) — see DESIGN.md.
        let camera = SensorSpec { power_w: 1.9, motor_w: 0.0, rate_hz: 8.0 };
        let lidar = SensorSpec { power_w: 12.0, motor_w: 2.4, rate_hz: 4.0 };
        let radar = SensorSpec { power_w: 24.0, motor_w: 2.4, rate_hz: 4.0 };
        let mut specs = [camera; SensorKind::COUNT];
        specs[SensorKind::CameraLeft.index()] = camera;
        specs[SensorKind::CameraRight.index()] = camera;
        specs[SensorKind::Lidar.index()] = lidar;
        specs[SensorKind::Radar.index()] = radar;
        SensorPowerModel { specs }
    }
}

impl SensorPowerModel {
    /// The spec of one sensor.
    pub fn spec(&self, kind: SensorKind) -> SensorSpec {
        self.specs[kind.index()]
    }

    /// Overwrites the spec of one sensor (for what-if studies).
    pub fn set_spec(&mut self, kind: SensorKind, spec: SensorSpec) {
        self.specs[kind.index()] = spec;
    }

    /// Per-frame energy of one sensor in the given state (Eq. 10 with
    /// `P_meas = 0` when gated).
    pub fn frame_energy(&self, kind: SensorKind, state: SensorState) -> Joules {
        let spec = self.spec(kind);
        match state {
            SensorState::Active => spec.frame_energy_active(),
            SensorState::Gated => {
                if kind.has_motor() {
                    spec.frame_energy_gated()
                } else {
                    Joules::zero()
                }
            }
        }
    }

    /// Total per-frame sensor energy when `active` lists the sensors a
    /// configuration uses and every other sensor is clock gated
    /// (Eq. 11's sensor sum).
    pub fn total_frame_energy(&self, active: &[SensorKind]) -> Joules {
        SensorKind::ALL
            .iter()
            .map(|&k| {
                let state =
                    if active.contains(&k) { SensorState::Active } else { SensorState::Gated };
                self.frame_energy(k, state)
            })
            .sum()
    }

    /// Total per-frame sensor energy with *no* clock gating (every sensor
    /// active) — the paper's late-fusion baseline in Table 3.
    pub fn total_frame_energy_all_active(&self) -> Joules {
        self.total_frame_energy(&SensorKind::ALL)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let m = SensorPowerModel::default();
        assert_eq!(m.spec(SensorKind::Radar).power_w, 24.0);
        assert_eq!(m.spec(SensorKind::Radar).measurement_w(), 21.6); // paper: 21.6 W
        assert_eq!(m.spec(SensorKind::Lidar).measurement_w(), 9.6); // paper: 9.6 W
        assert_eq!(m.spec(SensorKind::CameraLeft).power_w, 1.9);
    }

    #[test]
    fn active_frame_energies() {
        let m = SensorPowerModel::default();
        assert_eq!(m.frame_energy(SensorKind::Radar, SensorState::Active).joules(), 6.0);
        assert_eq!(m.frame_energy(SensorKind::Lidar, SensorState::Active).joules(), 3.0);
        assert_eq!(m.frame_energy(SensorKind::CameraLeft, SensorState::Active).joules(), 1.9 / 8.0);
    }

    #[test]
    fn gated_rotating_sensors_keep_motor_power() {
        let m = SensorPowerModel::default();
        assert_eq!(m.frame_energy(SensorKind::Radar, SensorState::Gated).joules(), 0.6);
        assert_eq!(m.frame_energy(SensorKind::Lidar, SensorState::Gated).joules(), 0.6);
        assert_eq!(m.frame_energy(SensorKind::CameraRight, SensorState::Gated).joules(), 0.0);
    }

    #[test]
    fn all_active_matches_table3_late_fusion_sensor_share() {
        let m = SensorPowerModel::default();
        // Table 3 late fusion: 13.27 total − 3.798 platform = 9.47 sensors.
        let s = m.total_frame_energy_all_active().joules();
        assert!((s - 9.475).abs() < 1e-9, "{s}");
    }

    #[test]
    fn gating_always_saves_energy() {
        let m = SensorPowerModel::default();
        let all = m.total_frame_energy_all_active().joules();
        for k in SensorKind::ALL {
            let others: Vec<SensorKind> =
                SensorKind::ALL.iter().copied().filter(|&s| s != k).collect();
            assert!(m.total_frame_energy(&others).joules() < all);
        }
    }

    #[test]
    fn set_spec_overrides() {
        let mut m = SensorPowerModel::default();
        m.set_spec(SensorKind::Lidar, SensorSpec { power_w: 20.0, motor_w: 5.0, rate_hz: 10.0 });
        assert_eq!(m.frame_energy(SensorKind::Lidar, SensorState::Active).joules(), 2.0);
        assert_eq!(m.frame_energy(SensorKind::Lidar, SensorState::Gated).joules(), 0.5);
    }
}
