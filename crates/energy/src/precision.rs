//! The numeric-precision axis of the staged pipeline.
//!
//! EcoFusion's compute-bound stages (stems and branch bodies) can run
//! either in full f32 or as post-training int8 (per-channel symmetric
//! weights, per-tensor activation scales). The precision is a property of
//! the *inference request*, not of the model: the same trained weights
//! serve both paths, with the quantized image derived once and cached.
//!
//! This crate owns the enum because the Eq. 11 cost model is the lowest
//! layer that must understand it — int8 stems and branches are charged a
//! measured fraction of their f32 cost (see
//! [`Px2Model`](crate::px2::Px2Model)'s `int8_stem_scale` /
//! `int8_branch_scale`), while the gate, selection, fusion, and sensor
//! stages are precision-invariant.

use serde::{Deserialize, Serialize};

/// Numeric precision of the stems and branch bodies for one inference.
///
/// `GateScore`, `Select`, `Fuse`, and `Sense` always run at full
/// precision; only the convolution-heavy `Stems` and `Branch` stages
/// switch kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Precision {
    /// Full-precision f32 (the default; bit-identical to the
    /// pre-quantization pipeline).
    #[default]
    F32,
    /// Post-training int8: i8×i8→i32 GEMM with dequantization at stage
    /// boundaries.
    Int8,
}

impl Precision {
    /// Short label for reports and bench IDs.
    pub fn label(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::Int8 => "int8",
        }
    }

    /// Stable one-byte discriminant for hashing/keying.
    pub fn discriminant(self) -> u8 {
        match self {
            Precision::F32 => 0,
            Precision::Int8 => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_f32() {
        assert_eq!(Precision::default(), Precision::F32);
    }

    #[test]
    fn labels_and_discriminants_are_distinct() {
        assert_ne!(Precision::F32.label(), Precision::Int8.label());
        assert_ne!(Precision::F32.discriminant(), Precision::Int8.discriminant());
    }
}
