//! Energy and latency modelling for the EcoFusion reproduction.
//!
//! The paper measures every detector configuration φ on an Nvidia Drive
//! PX2 (Eq. 6: `E(φ, X) = P(φ, X) · t(φ, X)`, average platform power
//! 45.4 W under load) and the sensor powers from datasheets (§5.5.2). A
//! PX2 is not available to a reproduction, but the paper's published
//! numbers *are* the measurement — so this crate encodes them as a
//! calibrated analytical model:
//!
//! * [`Px2Model`] — per-component (stem / branch / gate / fusion-block)
//!   energy and latency calibrated to Table 1, with additive composition
//!   for ensembles. The paper's own data validates additivity: its
//!   late-fusion energy 3.798 J is exactly the sum of the four
//!   single-sensor configuration energies.
//! * [`SensorPowerModel`] — Navtech CTS350-X radar (24 W, 2.4 W motor),
//!   Velodyne HDL-32e lidar (12 W, 9.6 W measurement power), ZED camera
//!   (1.9 W), with Eq. 10–11 clock gating: a gated rotating sensor still
//!   pays its motor power.
//! * Typed units ([`Joules`], [`Watts`], [`Millis`]) so energies and
//!   latencies cannot be mixed up.
//!
//! Wall-clock latency of the *Rust* pipeline is a different quantity and
//! is measured separately by the criterion benches; experiment tables
//! always report the calibrated PX2 model (what the paper reports).

pub mod precision;
pub mod px2;
pub mod report;
pub mod sensors;
pub mod stage;
pub mod units;

pub use precision::Precision;
pub use px2::{BranchSpec, Px2Model, StemPolicy};
pub use report::EnergyBreakdown;
pub use sensors::{SensorPowerModel, SensorSpec, SensorState};
pub use stage::{StageCost, StageKind, StageRollup, StageTrace};
pub use units::{Joules, Millis, Watts};
