//! Calibrated Nvidia Drive PX2 platform model.
//!
//! # Calibration (derived from paper Table 1)
//!
//! The paper reports, per static configuration (energy J / latency ms):
//!
//! ```text
//! single camera     0.945 / 21.57      early-3 (C_L+C_R+L)  1.379 / 31.36
//! single radar      0.954 / 21.85      late-4 (all)         3.798 / 84.32
//! single lidar      0.954 / 21.85
//! ```
//!
//! Late-4 energy is *exactly* the sum of the four single-sensor energies
//! (0.945·2 + 0.954·2 = 3.798), so energy composes additively. Splitting
//! each single configuration into stem + branch with a stem share of
//! 0.088 J / 2.0 ms (one convolution block ≈ 9 % of the single-sensor
//! pipeline) reproduces every published row; the early-2 branch energy
//! 1.019 J is implied by Table 3's junction/motorway row
//! (1.195 + 2·(1.9/8) + 2·(2.4/4) = 2.87 J, matching the paper exactly).
//!
//! Latency composes additively with an ensemble-overlap factor of 0.958
//! applied to the branch sum when two or more branches run (the PX2's two
//! GPUs pipeline independent branches): 8 + 0.958·78.84 + 0.8 ≈ 84.3 ms
//! matches the late-4 row.

use crate::precision::Precision;
use crate::units::{Joules, Millis, Watts};
use ecofusion_sensors::SensorKind;
use serde::{Deserialize, Serialize};

/// Default int8/f32 cost ratio of a stem execution, measured on the host
/// GEMM kernels (i8×i8→i32 blocked vs f32 blocked) and applied to the PX2
/// calibration as a multiplicative scale. The PX2's Pascal GPUs expose
/// dp4a int8 dot products at ~4× the f32 MAC rate; the measured host
/// ratio lands in the same regime.
pub const INT8_STEM_SCALE: f64 = 0.41;

/// Default int8/f32 cost ratio of a branch-body execution. Branches are
/// deeper (three convolution blocks + head) and pay more dequantization
/// traffic at stage boundaries, so the ratio is slightly worse than the
/// stem's.
pub const INT8_BRANCH_SCALE: f64 = 0.45;

/// What a branch consumes: one sensor (no fusion) or an early-fused set.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BranchSpec {
    /// Single-sensor branch (paper: "no fusion" within the branch).
    Single(SensorKind),
    /// Early-fusion branch over the given sensors (raw/stem-feature concat).
    Early(Vec<SensorKind>),
}

impl BranchSpec {
    /// The sensors this branch consumes.
    pub fn sensors(&self) -> Vec<SensorKind> {
        match self {
            BranchSpec::Single(s) => vec![*s],
            BranchSpec::Early(v) => v.clone(),
        }
    }

    /// Number of sensors consumed.
    pub fn arity(&self) -> usize {
        match self {
            BranchSpec::Single(_) => 1,
            BranchSpec::Early(v) => v.len(),
        }
    }

    /// Compact label (e.g. `C_L`, `E(C_L+C_R+L)`).
    pub fn label(&self) -> String {
        match self {
            BranchSpec::Single(s) => s.abbrev().to_string(),
            BranchSpec::Early(v) => {
                let inner: Vec<&str> = v.iter().map(|s| s.abbrev()).collect();
                format!("E({})", inner.join("+"))
            }
        }
    }
}

/// How stems are charged to a configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StemPolicy {
    /// Static pipeline (paper Table 1 baselines and Table 3 knowledge
    /// configurations): every branch is compiled as an independent network
    /// with its *own* stems, so a configuration pays one stem per sensor
    /// per branch (Table 3's fog row is only reproduced with this
    /// accounting — its config energy is the plain sum of the published
    /// per-configuration energies).
    Static,
    /// Adaptive EcoFusion pipeline: all four stems always run (the gate
    /// needs every modality's features to identify the context) and run
    /// concurrently, so they contribute the energy of four stems but the
    /// latency of one.
    Adaptive,
}

/// Calibrated PX2 cost model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Px2Model {
    /// Energy of one stem execution.
    pub stem_energy: Joules,
    /// Latency of one stem execution.
    pub stem_latency: Millis,
    /// Energy/latency of a single-sensor camera branch.
    pub camera_branch: (Joules, Millis),
    /// Energy/latency of a single-sensor radar or lidar branch.
    pub range_branch: (Joules, Millis),
    /// Energy/latency of the two-camera early-fusion branch.
    pub early2_branch: (Joules, Millis),
    /// Energy/latency of the three-sensor early-fusion branch.
    pub early3_branch: (Joules, Millis),
    /// Energy/latency of the lidar+radar early-fusion branch (not in the
    /// paper's tables; interpolated between early-2 and the range-sensor
    /// premium).
    pub early_lr_branch: (Joules, Millis),
    /// Gate inference cost. The paper measures < 0.005 J after TensorRT
    /// compilation and ignores it; the default charges zero energy and
    /// 1 ms latency.
    pub gate: (Joules, Millis),
    /// Weighted-boxes-fusion block cost (CPU-side, negligible energy).
    pub fusion_block: (Joules, Millis),
    /// Multiplier on the branch-latency sum when ≥ 2 branches run.
    pub ensemble_overlap: f64,
    /// Average platform power under load (paper: 45.4 W), for reporting.
    pub platform_power: Watts,
    /// Int8/f32 cost ratio of one stem execution (energy and latency).
    /// `0.0` means "unset" (e.g. a snapshot written before the int8 path
    /// existed) and falls back to [`INT8_STEM_SCALE`].
    #[serde(default)]
    pub int8_stem_scale: f64,
    /// Int8/f32 cost ratio of one branch-body execution. `0.0` means
    /// "unset" and falls back to [`INT8_BRANCH_SCALE`].
    #[serde(default)]
    pub int8_branch_scale: f64,
}

impl Default for Px2Model {
    fn default() -> Self {
        Px2Model {
            stem_energy: Joules::new(0.088),
            stem_latency: Millis::new(2.0),
            camera_branch: (Joules::new(0.857), Millis::new(19.57)),
            range_branch: (Joules::new(0.866), Millis::new(19.85)),
            early2_branch: (Joules::new(1.019), Millis::new(22.90)),
            early3_branch: (Joules::new(1.115), Millis::new(25.36)),
            early_lr_branch: (Joules::new(1.037), Millis::new(23.30)),
            gate: (Joules::zero(), Millis::new(1.0)),
            fusion_block: (Joules::zero(), Millis::new(0.8)),
            ensemble_overlap: 0.958,
            platform_power: Watts::new(45.4),
            int8_stem_scale: INT8_STEM_SCALE,
            int8_branch_scale: INT8_BRANCH_SCALE,
        }
    }
}

impl Px2Model {
    /// Energy and latency of one branch body (stems excluded).
    pub fn branch_cost(&self, spec: &BranchSpec) -> (Joules, Millis) {
        match spec {
            BranchSpec::Single(s) if s.is_camera() => self.camera_branch,
            BranchSpec::Single(_) => self.range_branch,
            BranchSpec::Early(v) => match v.len() {
                0 | 1 => self.camera_branch, // degenerate; treated as single
                2 if v.iter().all(|s| s.is_camera()) => self.early2_branch,
                2 if v.iter().all(|s| !s.is_camera()) => self.early_lr_branch,
                2 => self.early2_branch,
                3 => self.early3_branch,
                // Wider fusions extrapolate the per-sensor increment of
                // the 2 -> 3 step (+0.096 J / +2.46 ms per extra sensor).
                m => {
                    let extra = (m - 3) as f64;
                    (
                        self.early3_branch.0 + Joules::new(0.096) * extra,
                        self.early3_branch.1 + Millis::new(2.46) * extra,
                    )
                }
            },
        }
    }

    /// The effective int8/f32 stem cost ratio: the configured field, or
    /// [`INT8_STEM_SCALE`] when the field is unset (`0.0`).
    pub fn stem_scale(&self, precision: Precision) -> f64 {
        match precision {
            Precision::F32 => 1.0,
            Precision::Int8 => {
                if self.int8_stem_scale > 0.0 {
                    self.int8_stem_scale
                } else {
                    INT8_STEM_SCALE
                }
            }
        }
    }

    /// The effective int8/f32 branch cost ratio: the configured field, or
    /// [`INT8_BRANCH_SCALE`] when the field is unset (`0.0`).
    pub fn branch_scale(&self, precision: Precision) -> f64 {
        match precision {
            Precision::F32 => 1.0,
            Precision::Int8 => {
                if self.int8_branch_scale > 0.0 {
                    self.int8_branch_scale
                } else {
                    INT8_BRANCH_SCALE
                }
            }
        }
    }

    /// [`branch_cost`](Self::branch_cost) under a given precision: int8
    /// scales both energy and latency by the measured ratio.
    pub fn branch_cost_prec(&self, spec: &BranchSpec, precision: Precision) -> (Joules, Millis) {
        let (e, t) = self.branch_cost(spec);
        let s = self.branch_scale(precision);
        (e * s, t * s)
    }

    /// [`config_energy`](Self::config_energy) under a given precision.
    /// Only the stem and branch shares scale; the gate and fusion block
    /// always run at full precision (Eq. 11 with int8 stage costs).
    pub fn config_energy_prec(
        &self,
        branches: &[BranchSpec],
        policy: StemPolicy,
        precision: Precision,
    ) -> Joules {
        if precision == Precision::F32 {
            return self.config_energy(branches, policy);
        }
        let stems: usize = match policy {
            StemPolicy::Static => branches.iter().map(|b| b.arity()).sum(),
            StemPolicy::Adaptive => SensorKind::COUNT,
        };
        let gate = match policy {
            StemPolicy::Static => Joules::zero(),
            StemPolicy::Adaptive => self.gate.0,
        };
        let branch_total: Joules =
            branches.iter().map(|b| self.branch_cost_prec(b, precision).0).sum();
        let fusion = if branches.len() >= 2 { self.fusion_block.0 } else { Joules::zero() };
        self.stem_energy * (stems as f64 * self.stem_scale(precision))
            + branch_total
            + gate
            + fusion
    }

    /// [`config_latency`](Self::config_latency) under a given precision.
    pub fn config_latency_prec(
        &self,
        branches: &[BranchSpec],
        policy: StemPolicy,
        precision: Precision,
    ) -> Millis {
        if precision == Precision::F32 {
            return self.config_latency(branches, policy);
        }
        let stem_lat = match policy {
            StemPolicy::Static => {
                self.stem_latency
                    * (branches.iter().map(|b| b.arity()).sum::<usize>() as f64
                        * self.stem_scale(precision))
            }
            StemPolicy::Adaptive => self.stem_latency * self.stem_scale(precision),
        };
        let gate_lat = match policy {
            StemPolicy::Static => Millis::zero(),
            StemPolicy::Adaptive => self.gate.1,
        };
        let branch_sum: Millis =
            branches.iter().map(|b| self.branch_cost_prec(b, precision).1).sum();
        let branch_lat =
            if branches.len() >= 2 { branch_sum * self.ensemble_overlap } else { branch_sum };
        let fusion = if branches.len() >= 2 { self.fusion_block.1 } else { Millis::zero() };
        stem_lat + gate_lat + branch_lat + fusion
    }

    /// The unique sensors used by a set of branches.
    pub fn sensors_used(branches: &[BranchSpec]) -> Vec<SensorKind> {
        let mut used = [false; SensorKind::COUNT];
        for b in branches {
            for s in b.sensors() {
                used[s.index()] = true;
            }
        }
        SensorKind::ALL.iter().copied().filter(|s| used[s.index()]).collect()
    }

    /// Total platform energy of running `branches` under a stem policy
    /// (Eq. 6, composed per DESIGN.md's calibration).
    pub fn config_energy(&self, branches: &[BranchSpec], policy: StemPolicy) -> Joules {
        let stems = match policy {
            StemPolicy::Static => branches.iter().map(|b| b.arity()).sum(),
            StemPolicy::Adaptive => SensorKind::COUNT,
        };
        let gate = match policy {
            StemPolicy::Static => Joules::zero(),
            StemPolicy::Adaptive => self.gate.0,
        };
        let branch_total: Joules = branches.iter().map(|b| self.branch_cost(b).0).sum();
        let fusion = if branches.len() >= 2 { self.fusion_block.0 } else { Joules::zero() };
        self.stem_energy * stems as f64 + branch_total + gate + fusion
    }

    /// Total pipeline latency of running `branches` under a stem policy.
    pub fn config_latency(&self, branches: &[BranchSpec], policy: StemPolicy) -> Millis {
        let stem_lat = match policy {
            StemPolicy::Static => {
                self.stem_latency * branches.iter().map(|b| b.arity()).sum::<usize>() as f64
            }
            // All four stems run concurrently in the compiled adaptive
            // engine: one stem of latency.
            StemPolicy::Adaptive => self.stem_latency,
        };
        let gate_lat = match policy {
            StemPolicy::Static => Millis::zero(),
            StemPolicy::Adaptive => self.gate.1,
        };
        let branch_sum: Millis = branches.iter().map(|b| self.branch_cost(b).1).sum();
        let branch_lat =
            if branches.len() >= 2 { branch_sum * self.ensemble_overlap } else { branch_sum };
        let fusion = if branches.len() >= 2 { self.fusion_block.1 } else { Millis::zero() };
        stem_lat + gate_lat + branch_lat + fusion
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use SensorKind::{CameraLeft as CL, CameraRight as CR, Lidar as L, Radar as R};

    fn m() -> Px2Model {
        Px2Model::default()
    }

    #[test]
    fn single_camera_matches_table1() {
        let b = [BranchSpec::Single(CL)];
        let e = m().config_energy(&b, StemPolicy::Static);
        let t = m().config_latency(&b, StemPolicy::Static);
        assert!((e.joules() - 0.945).abs() < 1e-9, "{e}");
        assert!((t.millis() - 21.57).abs() < 1e-9, "{t}");
    }

    #[test]
    fn single_radar_matches_table1() {
        let b = [BranchSpec::Single(R)];
        let e = m().config_energy(&b, StemPolicy::Static);
        let t = m().config_latency(&b, StemPolicy::Static);
        assert!((e.joules() - 0.954).abs() < 1e-9);
        assert!((t.millis() - 21.85).abs() < 1e-9);
    }

    #[test]
    fn early3_matches_table1() {
        let b = [BranchSpec::Early(vec![CL, CR, L])];
        let e = m().config_energy(&b, StemPolicy::Static);
        let t = m().config_latency(&b, StemPolicy::Static);
        assert!((e.joules() - 1.379).abs() < 1e-9, "{e}");
        assert!((t.millis() - 31.36).abs() < 1e-9, "{t}");
    }

    #[test]
    fn late4_matches_table1() {
        let b = [
            BranchSpec::Single(CL),
            BranchSpec::Single(CR),
            BranchSpec::Single(L),
            BranchSpec::Single(R),
        ];
        let e = m().config_energy(&b, StemPolicy::Static);
        let t = m().config_latency(&b, StemPolicy::Static);
        assert!((e.joules() - 3.798).abs() < 1e-9, "{e}");
        assert!((t.millis() - 84.32).abs() < 0.35, "{t}");
    }

    #[test]
    fn adaptive_charges_all_stems() {
        let b = [BranchSpec::Early(vec![CL, CR, L])];
        let e = m().config_energy(&b, StemPolicy::Adaptive);
        // 4 stems + early3 branch.
        assert!((e.joules() - (0.088 * 4.0 + 1.115)).abs() < 1e-9);
        // Latency: 1 stem (parallel) + gate + branch.
        let t = m().config_latency(&b, StemPolicy::Adaptive);
        assert!((t.millis() - (2.0 + 1.0 + 25.36)).abs() < 1e-9, "{t}");
    }

    #[test]
    fn adaptive_early3_close_to_paper_eco_row() {
        // The paper's EcoFusion λE=0.01 row: 1.533 J / 35.14 ms. A gate
        // that mostly selects the early-3 branch gives 1.467 J / 28.36 ms;
        // mixing in heavier picks raises the mean. Sanity: within range.
        let b = [BranchSpec::Early(vec![CL, CR, L])];
        let e = m().config_energy(&b, StemPolicy::Adaptive).joules();
        assert!(e > 1.3 && e < 1.6, "{e}");
    }

    #[test]
    fn energy_additivity_over_branches() {
        let single: f64 =
            [BranchSpec::Single(CL)].iter().map(|b| m().branch_cost(b).0.joules()).sum();
        let ens = [BranchSpec::Single(CL), BranchSpec::Single(CL)];
        let both: f64 = ens.iter().map(|b| m().branch_cost(b).0.joules()).sum();
        assert!((both - 2.0 * single).abs() < 1e-12);
    }

    #[test]
    fn more_branches_cost_more() {
        let small = [BranchSpec::Single(CL)];
        let big = [BranchSpec::Single(CL), BranchSpec::Single(R)];
        assert!(
            m().config_energy(&big, StemPolicy::Static).joules()
                > m().config_energy(&small, StemPolicy::Static).joules()
        );
        assert!(
            m().config_latency(&big, StemPolicy::Static).millis()
                > m().config_latency(&small, StemPolicy::Static).millis()
        );
    }

    #[test]
    fn sensors_used_dedupes() {
        let b = [BranchSpec::Single(CL), BranchSpec::Early(vec![CL, CR])];
        let used = Px2Model::sensors_used(&b);
        assert_eq!(used, vec![CL, CR]);
    }

    #[test]
    fn wide_fusion_extrapolates() {
        let b4 = BranchSpec::Early(vec![CL, CR, L, R]);
        let (e4, t4) = m().branch_cost(&b4);
        let (e3, t3) = m().early3_branch;
        assert!(e4.joules() > e3.joules());
        assert!(t4.millis() > t3.millis());
    }

    #[test]
    fn labels() {
        assert_eq!(BranchSpec::Single(CL).label(), "C_L");
        assert_eq!(BranchSpec::Early(vec![CL, CR, L]).label(), "E(C_L+C_R+L)");
    }

    #[test]
    fn f32_precision_delegates_exactly() {
        let b = [BranchSpec::Early(vec![CL, CR, L]), BranchSpec::Single(R)];
        for policy in [StemPolicy::Static, StemPolicy::Adaptive] {
            assert_eq!(
                m().config_energy_prec(&b, policy, Precision::F32),
                m().config_energy(&b, policy)
            );
            assert_eq!(
                m().config_latency_prec(&b, policy, Precision::F32),
                m().config_latency(&b, policy)
            );
        }
    }

    #[test]
    fn int8_is_cheaper_on_stems_and_branches_only() {
        let b = [BranchSpec::Single(CL)];
        let e8 = m().config_energy_prec(&b, StemPolicy::Adaptive, Precision::Int8);
        let e32 = m().config_energy(&b, StemPolicy::Adaptive);
        // 4 stems and the camera branch scale; the gate does not.
        let expected = 0.088 * 4.0 * INT8_STEM_SCALE + 0.857 * INT8_BRANCH_SCALE;
        assert!((e8.joules() - expected).abs() < 1e-9, "{e8}");
        assert!(e8.joules() < e32.joules());
        let t8 = m().config_latency_prec(&b, StemPolicy::Adaptive, Precision::Int8);
        let t32 = m().config_latency(&b, StemPolicy::Adaptive);
        assert!(t8.millis() < t32.millis());
        // Gate latency share is unscaled (1 ms sits in both totals).
        assert!(
            (t8.millis() - (2.0 * INT8_STEM_SCALE + 1.0 + 19.57 * INT8_BRANCH_SCALE)).abs() < 1e-9
        );
    }

    #[test]
    fn zero_scale_fields_fall_back_to_measured_defaults() {
        // A Px2Model deserialized from a snapshot that predates the int8
        // path has both scale fields at serde's 0.0 default.
        let mut px2 = m();
        px2.int8_stem_scale = 0.0;
        px2.int8_branch_scale = 0.0;
        assert_eq!(px2.stem_scale(Precision::Int8), INT8_STEM_SCALE);
        assert_eq!(px2.branch_scale(Precision::Int8), INT8_BRANCH_SCALE);
        assert_eq!(px2.stem_scale(Precision::F32), 1.0);
        let b = [BranchSpec::Single(R)];
        assert_eq!(
            px2.config_energy_prec(&b, StemPolicy::Static, Precision::Int8),
            m().config_energy_prec(&b, StemPolicy::Static, Precision::Int8)
        );
    }
}
