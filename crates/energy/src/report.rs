//! Combined energy reporting (Eq. 11).

use crate::px2::{BranchSpec, Px2Model, StemPolicy};
use crate::sensors::SensorPowerModel;
use crate::units::{Joules, Millis};
use ecofusion_sensors::SensorKind;
use serde::{Deserialize, Serialize};

/// Energy and latency of one frame under a configuration, split into the
/// platform (PX2) share and the sensor share.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// PX2 platform energy `E(φ)` (Eq. 6).
    pub platform: Joules,
    /// Sensor energy `Σ E_s` with unused sensors clock gated (Eq. 10).
    pub sensors_gated: Joules,
    /// Sensor energy with all sensors active (no clock gating).
    pub sensors_all_active: Joules,
    /// Pipeline latency of the configuration.
    pub latency: Millis,
}

impl EnergyBreakdown {
    /// Computes the full breakdown for a set of branches.
    pub fn compute(
        px2: &Px2Model,
        sensors: &SensorPowerModel,
        branches: &[BranchSpec],
        policy: StemPolicy,
    ) -> Self {
        Self::compute_prec(px2, sensors, branches, policy, crate::Precision::F32)
    }

    /// [`compute`](Self::compute) under a given precision: the platform
    /// share scales its stem/branch components by the measured int8
    /// ratios; sensor energy is precision-invariant (the sensors measure
    /// the same either way).
    pub fn compute_prec(
        px2: &Px2Model,
        sensors: &SensorPowerModel,
        branches: &[BranchSpec],
        policy: StemPolicy,
        precision: crate::Precision,
    ) -> Self {
        let active: Vec<SensorKind> = Px2Model::sensors_used(branches);
        EnergyBreakdown {
            platform: px2.config_energy_prec(branches, policy, precision),
            sensors_gated: sensors.total_frame_energy(&active),
            sensors_all_active: sensors.total_frame_energy_all_active(),
            latency: px2.config_latency_prec(branches, policy, precision),
        }
    }

    /// Total energy with clock gating: `E_total = E(φ) + Σ_{s∈φ} E_s`
    /// (Eq. 11; unused sensors pay motor power only).
    pub fn total_gated(&self) -> Joules {
        self.platform + self.sensors_gated
    }

    /// Total energy without clock gating (all sensors always measuring).
    pub fn total_ungated(&self) -> Joules {
        self.platform + self.sensors_all_active
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use SensorKind::{CameraLeft as CL, CameraRight as CR, Lidar as L, Radar as R};

    fn late4() -> Vec<BranchSpec> {
        vec![
            BranchSpec::Single(CL),
            BranchSpec::Single(CR),
            BranchSpec::Single(L),
            BranchSpec::Single(R),
        ]
    }

    #[test]
    fn late_fusion_matches_table3_baseline() {
        let b = EnergyBreakdown::compute(
            &Px2Model::default(),
            &SensorPowerModel::default(),
            &late4(),
            StemPolicy::Static,
        );
        // Table 3: late fusion total 13.27 J in every scene.
        assert!((b.total_gated().joules() - 13.273).abs() < 0.01, "{}", b.total_gated());
        // With all sensors in use, gated == ungated.
        assert!((b.total_gated().joules() - b.total_ungated().joules()).abs() < 1e-9);
    }

    #[test]
    fn city_config_matches_table3() {
        // Knowledge gate in City: early-3 (C_L+C_R+L), radar gated.
        let b = EnergyBreakdown::compute(
            &Px2Model::default(),
            &SensorPowerModel::default(),
            &[BranchSpec::Early(vec![CL, CR, L])],
            StemPolicy::Static,
        );
        // 1.379 + 0.475 (cams) + 3.0 (lidar) + 0.6 (radar motor) = 5.454.
        assert!((b.total_gated().joules() - 5.454).abs() < 0.01, "{}", b.total_gated());
    }

    #[test]
    fn junction_config_matches_table3() {
        // Knowledge gate at junctions: early-2 cameras, radar+lidar gated.
        let b = EnergyBreakdown::compute(
            &Px2Model::default(),
            &SensorPowerModel::default(),
            &[BranchSpec::Early(vec![CL, CR])],
            StemPolicy::Static,
        );
        // 1.195 + 0.475 + 0.6 + 0.6 = 2.87.
        assert!((b.total_gated().joules() - 2.87).abs() < 0.01, "{}", b.total_gated());
    }

    #[test]
    fn night_config_matches_table3() {
        // Night: late fusion of {R, L, C_R}; left camera gated (free).
        let b = EnergyBreakdown::compute(
            &Px2Model::default(),
            &SensorPowerModel::default(),
            &[BranchSpec::Single(R), BranchSpec::Single(L), BranchSpec::Single(CR)],
            StemPolicy::Static,
        );
        // 2.853 platform + 6 + 3 + 0.2375 = 12.09.
        assert!((b.total_gated().joules() - 12.091).abs() < 0.01, "{}", b.total_gated());
    }

    #[test]
    fn gating_saves_vs_ungated() {
        let b = EnergyBreakdown::compute(
            &Px2Model::default(),
            &SensorPowerModel::default(),
            &[BranchSpec::Early(vec![CL, CR])],
            StemPolicy::Static,
        );
        assert!(b.total_gated().joules() < b.total_ungated().joules());
    }
}
