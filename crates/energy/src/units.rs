//! Typed physical units.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

macro_rules! unit {
    ($(#[$doc:meta])* $name:ident, $suffix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        pub struct $name(f64);

        impl $name {
            /// Wraps a raw value.
            pub fn new(v: f64) -> Self {
                $name(v)
            }

            /// The raw value.
            pub fn value(&self) -> f64 {
                self.0
            }

            /// A zero quantity.
            pub fn zero() -> Self {
                $name(0.0)
            }
        }

        impl Add for $name {
            type Output = $name;
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = $name;
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                $name(iter.map(|v| v.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:.3} {}", self.0, $suffix)
            }
        }
    };
}

unit!(
    /// Energy in Joules.
    Joules,
    "J"
);
unit!(
    /// Power in Watts.
    Watts,
    "W"
);
unit!(
    /// Time in milliseconds.
    Millis,
    "ms"
);

impl Joules {
    /// Energy in Joules (alias for [`Joules::value`]).
    pub fn joules(&self) -> f64 {
        self.0
    }
}

impl Millis {
    /// Time in milliseconds (alias for [`Millis::value`]).
    pub fn millis(&self) -> f64 {
        self.0
    }

    /// Time in seconds.
    pub fn seconds(&self) -> f64 {
        self.0 / 1000.0
    }
}

impl Watts {
    /// `E = P · t` (Eq. 6 of the paper).
    pub fn energy_over(&self, t: Millis) -> Joules {
        Joules(self.0 * t.seconds())
    }
}

impl Joules {
    /// Average power implied by this energy over duration `t`.
    ///
    /// Returns zero power for a zero duration.
    pub fn average_power(&self, t: Millis) -> Watts {
        if t.seconds() <= 0.0 {
            Watts(0.0)
        } else {
            Watts(self.0 / t.seconds())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Joules::new(1.5);
        let b = Joules::new(0.5);
        assert_eq!((a + b).value(), 2.0);
        assert_eq!((a - b).value(), 1.0);
        assert_eq!((a * 2.0).value(), 3.0);
        assert_eq!((a / 3.0).value(), 0.5);
        let total: Joules = vec![a, b, b].into_iter().sum();
        assert_eq!(total.value(), 2.5);
    }

    #[test]
    fn power_times_time_is_energy() {
        // Paper Eq. 6 with the PX2's 45.4 W over 84.32 ms.
        let e = Watts::new(45.4).energy_over(Millis::new(84.32));
        assert!((e.joules() - 3.828).abs() < 0.01);
    }

    #[test]
    fn average_power_inverts() {
        let p = Joules::new(3.798).average_power(Millis::new(84.32));
        assert!((p.value() - 45.04).abs() < 0.05);
        assert_eq!(Joules::new(1.0).average_power(Millis::zero()).value(), 0.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Joules::new(1.2345).to_string(), "1.234 J");
        assert_eq!(Millis::new(21.57).to_string(), "21.570 ms");
        assert_eq!(Watts::new(45.4).to_string(), "45.400 W");
    }

    #[test]
    fn seconds_conversion() {
        assert_eq!(Millis::new(1500.0).seconds(), 1.5);
    }
}
