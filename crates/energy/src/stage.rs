//! Per-stage decomposition of the Eq. 11 energy/latency accounting.
//!
//! The staged perception pipeline (`ecofusion-core`'s `pipeline` module)
//! executes seven explicit stage units per frame. This module gives each
//! stage its share of the calibrated cost model, such that the per-stage
//! energies sum *exactly* to [`EnergyBreakdown::total_gated`] and the
//! per-stage latencies to `EnergyBreakdown::latency` — the decomposition
//! is an accounting view of the same Eq. 6/10/11 numbers, never a second
//! model that could drift from the first.

use crate::precision::Precision;
use crate::px2::{BranchSpec, Px2Model, StemPolicy};
use crate::report::EnergyBreakdown;
use crate::sensors::SensorPowerModel;
use crate::units::{Joules, Millis};
use ecofusion_sensors::SensorKind;
use serde::{Deserialize, Serialize};

/// The seven stage units of the staged perception pipeline, in execution
/// order on the default path. Demand-driven execution may reorder
/// `GateScore`/`Select` ahead of `Stems` (feature-free gates), but the
/// accounting order is fixed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StageKind {
    /// Sensor measurement: the Eq. 10 clock-gated sensor energy.
    Sense,
    /// Per-modality stem convolutions.
    Stems,
    /// Gate network / rule evaluation producing `L_f(Φ)` estimates.
    GateScore,
    /// Eq. 7–9 joint optimization picking φ*.
    Select,
    /// Execution of the selected branch ensemble.
    Branch,
    /// Weighted-boxes-fusion block.
    Fuse,
    /// Energy/latency accounting itself (charged zero by the model).
    Account,
}

impl StageKind {
    /// All stages in accounting order.
    pub const ALL: [StageKind; 7] = [
        StageKind::Sense,
        StageKind::Stems,
        StageKind::GateScore,
        StageKind::Select,
        StageKind::Branch,
        StageKind::Fuse,
        StageKind::Account,
    ];

    /// Number of stages.
    pub const COUNT: usize = 7;

    /// Position in [`StageKind::ALL`].
    pub fn index(self) -> usize {
        match self {
            StageKind::Sense => 0,
            StageKind::Stems => 1,
            StageKind::GateScore => 2,
            StageKind::Select => 3,
            StageKind::Branch => 4,
            StageKind::Fuse => 5,
            StageKind::Account => 6,
        }
    }

    /// Short label for tables and benches.
    pub fn label(self) -> &'static str {
        match self {
            StageKind::Sense => "sense",
            StageKind::Stems => "stems",
            StageKind::GateScore => "gate",
            StageKind::Select => "select",
            StageKind::Branch => "branch",
            StageKind::Fuse => "fuse",
            StageKind::Account => "account",
        }
    }
}

/// Modeled energy/latency of one stage for one frame.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StageCost {
    /// Energy charged to the stage.
    pub energy: Joules,
    /// Latency charged to the stage.
    pub latency: Millis,
}

/// Per-stage accounting of one inference, plus the stem-execution
/// counters the demand-driven pipeline actually observed.
///
/// The modeled costs always describe the *charged* pipeline (Eq. 11 with
/// the configured [`StemPolicy`]); the counters describe the *executed*
/// one. Under the adaptive policy the model charges all four stems — the
/// paper's compiled engine runs them unconditionally — so a pruned run
/// shows `stems_executed < 4` next to an unchanged `Stems` charge: the
/// compute saved on this host, without silently re-calibrating the PX2
/// numbers the tables are pinned to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageTrace {
    /// Modeled cost per stage, indexed by [`StageKind::index`].
    pub costs: [StageCost; StageKind::COUNT],
    /// Stems actually run on the host for this frame (0–4).
    pub stems_executed: u8,
    /// Stems served from a feature cache instead of running (0–4).
    pub stems_cached: u8,
    /// Stems neither run nor cached: pruned by the demand-driven plan.
    pub stems_skipped: u8,
}

impl StageTrace {
    /// Decomposes the Eq. 11 accounting of `branches` under `policy` into
    /// per-stage costs. The counters default to the modeled stem count
    /// (everything executed); the pipeline executor overwrites them with
    /// what actually ran.
    pub fn compute(
        px2: &Px2Model,
        sensors: &SensorPowerModel,
        branches: &[BranchSpec],
        policy: StemPolicy,
    ) -> Self {
        Self::compute_prec(px2, sensors, branches, policy, Precision::F32)
    }

    /// [`compute`](Self::compute) under a given precision: the `Stems` and
    /// `Branch` stages carry the int8-scaled costs
    /// ([`Px2Model::stem_scale`] / [`Px2Model::branch_scale`]); every
    /// other stage is precision-invariant. The decomposition still sums
    /// exactly to [`EnergyBreakdown::compute_prec`] at the same precision.
    pub fn compute_prec(
        px2: &Px2Model,
        sensors: &SensorPowerModel,
        branches: &[BranchSpec],
        policy: StemPolicy,
        precision: Precision,
    ) -> Self {
        let active: Vec<SensorKind> = Px2Model::sensors_used(branches);
        let stems = match policy {
            StemPolicy::Static => branches.iter().map(|b| b.arity()).sum(),
            StemPolicy::Adaptive => SensorKind::COUNT,
        };
        let stem_scale = px2.stem_scale(precision);
        let stem_cost = StageCost {
            energy: px2.stem_energy * (stems as f64 * stem_scale),
            latency: match policy {
                StemPolicy::Static => px2.stem_latency * (stems as f64 * stem_scale),
                // All four stems run concurrently in the adaptive engine.
                StemPolicy::Adaptive => px2.stem_latency * stem_scale,
            },
        };
        let gate_cost = match policy {
            StemPolicy::Static => StageCost::default(),
            StemPolicy::Adaptive => StageCost { energy: px2.gate.0, latency: px2.gate.1 },
        };
        let branch_energy: Joules =
            branches.iter().map(|b| px2.branch_cost_prec(b, precision).0).sum();
        let branch_sum: Millis =
            branches.iter().map(|b| px2.branch_cost_prec(b, precision).1).sum();
        let branch_latency =
            if branches.len() >= 2 { branch_sum * px2.ensemble_overlap } else { branch_sum };
        let fuse_cost = if branches.len() >= 2 {
            StageCost { energy: px2.fusion_block.0, latency: px2.fusion_block.1 }
        } else {
            StageCost::default()
        };
        let mut costs = [StageCost::default(); StageKind::COUNT];
        costs[StageKind::Sense.index()] =
            StageCost { energy: sensors.total_frame_energy(&active), latency: Millis::zero() };
        costs[StageKind::Stems.index()] = stem_cost;
        costs[StageKind::GateScore.index()] = gate_cost;
        costs[StageKind::Branch.index()] =
            StageCost { energy: branch_energy, latency: branch_latency };
        costs[StageKind::Fuse.index()] = fuse_cost;
        StageTrace {
            costs,
            stems_executed: stems.min(SensorKind::COUNT) as u8,
            stems_cached: 0,
            stems_skipped: 0,
        }
    }

    /// The cost of one stage.
    pub fn cost(&self, stage: StageKind) -> StageCost {
        self.costs[stage.index()]
    }

    /// Sum of per-stage energies: equals
    /// [`EnergyBreakdown::total_gated`] for the breakdown computed from
    /// the same branches and policy.
    pub fn total_energy(&self) -> Joules {
        self.costs.iter().map(|c| c.energy).sum()
    }

    /// Sum of per-stage latencies: equals the breakdown's pipeline
    /// latency.
    pub fn total_latency(&self) -> Millis {
        self.costs.iter().map(|c| c.latency).sum()
    }

    /// Same trace with the executor's observed stem counters.
    pub fn with_stem_counts(mut self, executed: u8, cached: u8, skipped: u8) -> Self {
        debug_assert!(
            (executed + cached + skipped) as usize <= SensorKind::COUNT,
            "stem counters exceed the sensor count"
        );
        self.stems_executed = executed;
        self.stems_cached = cached;
        self.stems_skipped = skipped;
        self
    }

    /// Checks the decomposition against its breakdown (used by tests and
    /// the `stage_profile` example).
    pub fn matches(&self, breakdown: &EnergyBreakdown) -> bool {
        (self.total_energy().joules() - breakdown.total_gated().joules()).abs() < 1e-9
            && (self.total_latency().millis() - breakdown.latency.millis()).abs() < 1e-9
    }
}

/// A labeled per-stage energy rollup: the report-facing view of
/// accumulated [`StageTrace`] sums. Telemetry keeps per-stage totals as a
/// bare `[f64; StageKind::COUNT]` indexed by [`StageKind::index`]; a
/// machine-readable report wants them keyed by stage *name* so a reader
/// (or a diff tool) never depends on the array order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageRollup {
    /// Energy per stage, Joules, keyed by [`StageKind::label`].
    pub per_stage_j: std::collections::BTreeMap<String, f64>,
    /// Sum over all stages, Joules (equals the Eq. 11 gated total of the
    /// runs the sums came from).
    pub total_j: f64,
}

impl StageRollup {
    /// Builds a rollup from per-stage sums in [`StageKind::ALL`] order
    /// (the layout `StreamTelemetry` and `EvalSummary` carry).
    ///
    /// # Panics
    /// Panics if `sums` does not have [`StageKind::COUNT`] entries.
    pub fn from_sums(sums: &[f64]) -> Self {
        assert_eq!(sums.len(), StageKind::COUNT, "need one sum per stage");
        let per_stage_j: std::collections::BTreeMap<String, f64> = StageKind::ALL
            .into_iter()
            .zip(sums)
            .map(|(stage, &j)| (stage.label().to_string(), j))
            .collect();
        StageRollup { total_j: sums.iter().sum(), per_stage_j }
    }

    /// The rolled-up energy of one stage, Joules (0 for a stage absent
    /// from the map — e.g. a report written before a stage existed).
    pub fn stage_j(&self, stage: StageKind) -> f64 {
        self.per_stage_j.get(stage.label()).copied().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use SensorKind::{CameraLeft as CL, CameraRight as CR, Lidar as L, Radar as R};

    fn configs() -> Vec<Vec<BranchSpec>> {
        vec![
            vec![BranchSpec::Single(CL)],
            vec![BranchSpec::Single(R)],
            vec![BranchSpec::Early(vec![CL, CR, L])],
            vec![
                BranchSpec::Single(CL),
                BranchSpec::Single(CR),
                BranchSpec::Single(L),
                BranchSpec::Single(R),
            ],
            vec![BranchSpec::Early(vec![L, R]), BranchSpec::Single(CR)],
        ]
    }

    #[test]
    fn trace_sums_to_breakdown_for_both_policies() {
        let px2 = Px2Model::default();
        let sensors = SensorPowerModel::default();
        for branches in configs() {
            for policy in [StemPolicy::Static, StemPolicy::Adaptive] {
                let breakdown = EnergyBreakdown::compute(&px2, &sensors, &branches, policy);
                let trace = StageTrace::compute(&px2, &sensors, &branches, policy);
                assert!(
                    trace.matches(&breakdown),
                    "{branches:?} {policy:?}: trace {} J / {} vs breakdown {} J / {}",
                    trace.total_energy(),
                    trace.total_latency(),
                    breakdown.total_gated(),
                    breakdown.latency
                );
            }
        }
    }

    #[test]
    fn int8_trace_sums_to_int8_breakdown() {
        let px2 = Px2Model::default();
        let sensors = SensorPowerModel::default();
        for branches in configs() {
            for policy in [StemPolicy::Static, StemPolicy::Adaptive] {
                let breakdown = EnergyBreakdown::compute_prec(
                    &px2,
                    &sensors,
                    &branches,
                    policy,
                    Precision::Int8,
                );
                let trace =
                    StageTrace::compute_prec(&px2, &sensors, &branches, policy, Precision::Int8);
                assert!(
                    trace.matches(&breakdown),
                    "{branches:?} {policy:?}: trace {} J / {} vs breakdown {} J / {}",
                    trace.total_energy(),
                    trace.total_latency(),
                    breakdown.total_gated(),
                    breakdown.latency
                );
            }
        }
    }

    #[test]
    fn int8_scales_only_stems_and_branch_stages() {
        let px2 = Px2Model::default();
        let sensors = SensorPowerModel::default();
        let branches = [BranchSpec::Single(CL), BranchSpec::Single(R)];
        let f32_trace = StageTrace::compute_prec(
            &px2,
            &sensors,
            &branches,
            StemPolicy::Adaptive,
            Precision::F32,
        );
        let i8_trace = StageTrace::compute_prec(
            &px2,
            &sensors,
            &branches,
            StemPolicy::Adaptive,
            Precision::Int8,
        );
        assert!(
            i8_trace.cost(StageKind::Stems).energy.joules()
                < f32_trace.cost(StageKind::Stems).energy.joules()
        );
        assert!(
            i8_trace.cost(StageKind::Branch).latency.millis()
                < f32_trace.cost(StageKind::Branch).latency.millis()
        );
        for stage in [StageKind::Sense, StageKind::GateScore, StageKind::Select, StageKind::Fuse] {
            assert_eq!(i8_trace.cost(stage), f32_trace.cost(stage), "{stage:?}");
        }
    }

    #[test]
    fn single_branch_has_no_fuse_cost() {
        let trace = StageTrace::compute(
            &Px2Model::default(),
            &SensorPowerModel::default(),
            &[BranchSpec::Single(L)],
            StemPolicy::Adaptive,
        );
        assert_eq!(trace.cost(StageKind::Fuse), StageCost::default());
        assert_eq!(trace.cost(StageKind::Select), StageCost::default());
        assert!(trace.cost(StageKind::Branch).energy.joules() > 0.0);
    }

    #[test]
    fn adaptive_charges_four_stems_regardless_of_counters() {
        let px2 = Px2Model::default();
        let trace = StageTrace::compute(
            &px2,
            &SensorPowerModel::default(),
            &[BranchSpec::Early(vec![L, R])],
            StemPolicy::Adaptive,
        )
        .with_stem_counts(2, 0, 2);
        assert_eq!(trace.stems_executed, 2);
        assert_eq!(trace.stems_skipped, 2);
        // The charge stays at the compiled engine's four stems.
        assert!((trace.cost(StageKind::Stems).energy.joules() - 0.088 * 4.0).abs() < 1e-12);
    }

    #[test]
    fn rollup_keys_every_stage_and_sums() {
        let sums = [0.25, 0.352, 0.01, 0.0, 3.0, 0.05, 0.0];
        let r = StageRollup::from_sums(&sums);
        assert_eq!(r.per_stage_j.len(), StageKind::COUNT);
        for (i, stage) in StageKind::ALL.into_iter().enumerate() {
            assert_eq!(r.stage_j(stage), sums[i]);
        }
        assert!((r.total_j - sums.iter().sum::<f64>()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "one sum per stage")]
    fn rollup_rejects_wrong_arity() {
        let _ = StageRollup::from_sums(&[1.0, 2.0]);
    }

    #[test]
    fn stage_indexing_is_consistent() {
        for (i, s) in StageKind::ALL.into_iter().enumerate() {
            assert_eq!(s.index(), i);
            assert!(!s.label().is_empty());
        }
        assert_eq!(StageKind::COUNT, StageKind::ALL.len());
    }
}
