//! The EcoFusion model: Fig. 3 / Algorithm 1.

use crate::config::{BaselineIds, ConfigId, ConfigSpace};
use crate::optimizer::{select_config, CandidateRule};
use ecofusion_detect::weighted_boxes_fusion;
use ecofusion_detect::{fusion_loss, BranchConfig, BranchDetector, Detection, Stem, WbfParams};
use ecofusion_energy::{
    EnergyBreakdown, Joules, Precision, Px2Model, SensorPowerModel, StageTrace, StemPolicy,
};
use ecofusion_gating::{AttentionGate, DeepGate, GateKind, KnowledgeGate, LossBasedGate};
use ecofusion_scene::GtBox;
use ecofusion_sensors::{Observation, SensorKind, SensorMask};
use ecofusion_tensor::layer::Layer;
use ecofusion_tensor::rng::Rng;
use ecofusion_tensor::tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

use crate::dataset::Frame;
use crate::knowledge::{default_degraded_fallbacks, default_knowledge_rules};

/// Loss penalty added to every configuration that requires a sensor the
/// health mask rules out. It exceeds [`KNOWLEDGE_REJECT_LOSS`], so under
/// fault-aware gating a rejected-but-healthy configuration always beats a
/// preferred-but-broken one.
///
/// [`KNOWLEDGE_REJECT_LOSS`]: ecofusion_gating::knowledge::KNOWLEDGE_REJECT_LOSS
pub const UNAVAILABLE_SENSOR_PENALTY: f32 = 4.0e6;

/// All four gating strategies over one configuration space.
pub struct GateSet {
    /// Static context rules (§4.2.1).
    pub knowledge: KnowledgeGate,
    /// Learned CNN+MLP gate (§4.2.2).
    pub deep: DeepGate,
    /// Learned gate with self-attention (§4.2.3).
    pub attention: AttentionGate,
    /// A-posteriori oracle (§4.2.4).
    pub loss_based: LossBasedGate,
}

impl fmt::Debug for GateSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GateSet(knowledge, deep, attention, loss-based)")
    }
}

/// Options for one adaptive inference (Algorithm 1's tunables).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InferenceOptions {
    /// Energy weight `λ_E ∈ [0, 1]` in Eq. 8.
    pub lambda_e: f64,
    /// Candidate margin `γ` in Eq. 7 (the paper uses 0.5).
    pub gamma: f32,
    /// Which gating strategy to use.
    pub gate: GateKind,
    /// Candidate-selection rule variant.
    pub rule: CandidateRule,
    /// Objectness threshold for branch decoding.
    pub score_thresh: f32,
    /// Per-class NMS IoU for branch decoding.
    pub nms_iou: f32,
    /// Sensor availability for fault-aware gating. With the default
    /// all-available mask, inference is bit-identical to mask-less
    /// operation; with sensors masked out, configurations that need them
    /// are penalized by [`UNAVAILABLE_SENSOR_PENALTY`] before selection,
    /// and the knowledge gate switches to its degraded-context fallbacks.
    #[serde(default)]
    pub health: SensorMask,
    /// Numeric precision of the stems and branch bodies. The default
    /// [`Precision::F32`] is bit-identical to the pre-quantization
    /// pipeline; [`Precision::Int8`] runs the post-training-quantized
    /// image of the same weights (built lazily on first use, see
    /// [`EcoFusionModel::ensure_quant`]) and charges the int8-scaled
    /// Eq. 11 costs.
    #[serde(default)]
    pub precision: Precision,
}

impl InferenceOptions {
    /// Creates options with the paper's defaults: attention gating, margin
    /// rule, decode thresholds 0.3 / 0.5.
    pub fn new(lambda_e: f64, gamma: f32) -> Self {
        InferenceOptions {
            lambda_e,
            gamma,
            gate: GateKind::Attention,
            rule: CandidateRule::Margin,
            score_thresh: 0.2,
            nms_iou: 0.5,
            health: SensorMask::all_available(),
            precision: Precision::F32,
        }
    }

    /// Same options with a different gate.
    pub fn with_gate(mut self, gate: GateKind) -> Self {
        self.gate = gate;
        self
    }

    /// Same options with a sensor availability mask (fault-aware gating).
    pub fn with_health(mut self, health: SensorMask) -> Self {
        self.health = health;
        self
    }

    /// Same options with a different stem/branch precision.
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }
}

/// Result of one adaptive inference.
#[derive(Debug, Clone)]
pub struct InferenceOutput {
    /// Final fused detections Ŷ.
    pub detections: Vec<Detection>,
    /// The selected configuration φ*.
    pub selected_config: ConfigId,
    /// Human-readable label of φ*.
    pub selected_label: String,
    /// The gate's per-configuration loss estimates L_f(Φ).
    pub predicted_losses: Vec<f32>,
    /// Energy/latency breakdown of executing φ* (adaptive stem policy,
    /// at the precision the frame ran).
    pub energy: EnergyBreakdown,
    /// Per-stage decomposition of `energy` (sums to its Eq. 11 totals)
    /// plus the stem executions the demand-driven pipeline observed.
    pub stage_trace: StageTrace,
    /// Precision the stems and branches ran at for this frame.
    pub precision: Precision,
    /// 1 when the knowledge gate had no rule for the frame's context and
    /// fell back to its cheapest configuration, 0 otherwise (always 0 for
    /// other gates).
    pub gate_fallbacks: u32,
}

impl InferenceOutput {
    /// Platform energy of the executed configuration (Eq. 6).
    pub fn energy_joules(&self) -> f64 {
        self.energy.platform.joules()
    }
}

/// Error from [`EcoFusionModel::infer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InferError {
    /// The frame's observation grid does not match the model.
    GridMismatch {
        /// Grid the model was built for.
        expected: usize,
        /// Grid of the offending frame.
        found: usize,
    },
    /// Building the int8 image of the model failed (an
    /// [`Precision::Int8`] inference on an unquantizable architecture).
    Quantize(ecofusion_tensor::QuantizeError),
}

impl fmt::Display for InferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InferError::GridMismatch { expected, found } => {
                write!(f, "frame grid {found} does not match model grid {expected}")
            }
            InferError::Quantize(e) => write!(f, "int8 quantization failed: {e}"),
        }
    }
}

impl Error for InferError {}

/// The full adaptive perception model: four stems, seven branches, four
/// gates, the joint optimizer, and the WBF fusion block.
#[derive(Debug)]
pub struct EcoFusionModel {
    pub(crate) stems: Vec<Stem>,
    pub(crate) branches: Vec<BranchDetector>,
    pub(crate) space: ConfigSpace,
    pub(crate) gates: GateSet,
    pub(crate) px2: Px2Model,
    pub(crate) sensor_power: SensorPowerModel,
    wbf: WbfParams,
    adaptive_energies: Vec<Joules>,
    /// Required-sensor bitmask per configuration (bit `i` = canonical
    /// sensor `i`), for fault-aware selection.
    pub(crate) config_sensors: Vec<u8>,
    pub(crate) grid: usize,
    num_classes: usize,
    /// Lazily built int8 image of the stems and branches, invalidated by
    /// any mutable weight access ([`EcoFusionModel::stems_mut`] /
    /// [`EcoFusionModel::branches_mut`]).
    pub(crate) quant: Option<crate::snapshot::QuantSnapshot>,
    /// Memoized fused-operator plans for the staged pipeline, keyed by
    /// (structural fingerprint, input shape, precision). Invalidation
    /// mirrors the int8 image: every mutable weight access clears it.
    pub(crate) plans: ecofusion_tensor::graph::PlanCache,
}

impl EcoFusionModel {
    /// Builds an untrained model for `grid`-pixel observations and
    /// `num_classes` object classes.
    ///
    /// # Panics
    /// Panics if `grid` is not a multiple of 16 (stems halve the
    /// resolution and branches need a multiple of 8).
    pub fn new(grid: usize, num_classes: usize, rng: &mut Rng) -> Self {
        assert!(
            grid.is_multiple_of(16) && grid >= 32,
            "grid must be a multiple of 16, at least 32"
        );
        let space = ConfigSpace::canonical();
        let stems: Vec<Stem> = (0..SensorKind::COUNT).map(|_| Stem::new(1, rng)).collect();
        let branches: Vec<BranchDetector> = space
            .branches()
            .iter()
            .map(|spec| {
                BranchDetector::new(
                    BranchConfig { num_sensors: spec.arity(), num_classes, raster: grid },
                    rng,
                )
            })
            .collect();
        let px2 = Px2Model::default();
        let adaptive_energies = space.energies(&px2, StemPolicy::Adaptive);
        let n = space.num_configs();
        let config_sensors: Vec<u8> = (0..n)
            .map(|i| {
                space
                    .branch_specs(ConfigId(i))
                    .iter()
                    .flat_map(|spec| spec.sensors())
                    .fold(0u8, |mask, k| mask | (1 << k.index()))
            })
            .collect();
        let stem_c = ecofusion_detect::stem::STEM_CHANNELS * SensorKind::COUNT;
        let gates = GateSet {
            knowledge: KnowledgeGate::new(default_knowledge_rules(&space), n)
                .with_degraded_rules(default_degraded_fallbacks(&space), config_sensors.clone()),
            deep: DeepGate::new(stem_c, grid / 2, n, rng),
            attention: AttentionGate::new(stem_c, grid / 2, n, rng),
            loss_based: LossBasedGate::new(n),
        };
        EcoFusionModel {
            stems,
            branches,
            space,
            gates,
            px2,
            sensor_power: SensorPowerModel::default(),
            wbf: WbfParams::default(),
            adaptive_energies,
            config_sensors,
            grid,
            num_classes,
            quant: None,
            plans: ecofusion_tensor::graph::PlanCache::new(),
        }
    }

    /// The configuration space Φ.
    pub fn space(&self) -> &ConfigSpace {
        &self.space
    }

    /// The paper's fixed baseline configuration ids.
    pub fn baseline_ids(&self) -> BaselineIds {
        self.space.baseline_ids()
    }

    /// The PX2 cost model.
    pub fn px2(&self) -> &Px2Model {
        &self.px2
    }

    /// The sensor power model.
    pub fn sensor_power(&self) -> &SensorPowerModel {
        &self.sensor_power
    }

    /// Required-sensor bitmask of every configuration (bit `i` =
    /// canonical sensor `i` consumed by at least one branch).
    pub fn config_sensor_bits(&self) -> &[u8] {
        &self.config_sensors
    }

    /// Adds [`UNAVAILABLE_SENSOR_PENALTY`] to every configuration that
    /// requires a sensor `mask` rules out, in place. A no-op for the
    /// all-available mask.
    pub fn penalize_unavailable(&self, losses: &mut [f32], mask: SensorMask) {
        if mask.is_all_available() {
            return;
        }
        for (loss, bits) in losses.iter_mut().zip(&self.config_sensors) {
            if !mask.allows_bits(*bits) {
                *loss += UNAVAILABLE_SENSOR_PENALTY;
            }
        }
    }

    /// Eq. 7–9 selection over predicted losses, with fault-aware masking:
    /// configurations needing a sensor the options' health mask rules out
    /// are penalized out of contention first. The all-available mask is a
    /// guaranteed no-op that also skips the copy — the single selection
    /// path both [`EcoFusionModel::infer`] and
    /// [`EcoFusionModel::infer_batch`] go through, so the two can never
    /// diverge on masking policy.
    pub(crate) fn select_with_health(
        &self,
        predicted: &[f32],
        opts: &InferenceOptions,
    ) -> ConfigId {
        let idx = if opts.health.is_all_available() {
            select_config(predicted, &self.adaptive_energies, opts.lambda_e, opts.gamma, opts.rule)
        } else {
            let mut adjusted = predicted.to_vec();
            self.penalize_unavailable(&mut adjusted, opts.health);
            select_config(&adjusted, &self.adaptive_energies, opts.lambda_e, opts.gamma, opts.rule)
        };
        ConfigId(idx)
    }

    /// Observation grid size the model expects.
    pub fn grid(&self) -> usize {
        self.grid
    }

    /// Number of object classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Mutable access to the stems (training). Drops any cached int8
    /// image: the quantized weights must track the f32 ones.
    pub fn stems_mut(&mut self) -> &mut [Stem] {
        self.quant = None;
        self.plans.clear();
        &mut self.stems
    }

    /// Mutable access to the branches (training). Drops any cached int8
    /// image: the quantized weights must track the f32 ones.
    pub fn branches_mut(&mut self) -> &mut [BranchDetector] {
        self.quant = None;
        self.plans.clear();
        &mut self.branches
    }

    /// Mutable access to the gates (training).
    pub fn gates_mut(&mut self) -> &mut GateSet {
        &mut self.gates
    }

    /// Runs every stem over an observation. `train` controls batch-norm
    /// statistics and activation caching.
    pub fn stem_features(&mut self, obs: &Observation, train: bool) -> Vec<Tensor> {
        SensorKind::ALL.iter().map(|k| self.stems[k.index()].forward(obs.grid(*k), train)).collect()
    }

    /// Runs every stem once over a whole batch of observations: each
    /// sensor's grids are stacked along the batch axis, so the stem's
    /// convolution lowering and GEMM amortize across frames. Returns one
    /// `(N, 8, g/2, g/2)` tensor per sensor.
    ///
    /// Only meaningful in eval mode (`train = false` semantics): batched
    /// batch-norm statistics would couple the frames during training.
    pub fn stem_features_batch(&mut self, observations: &[&Observation]) -> Vec<Tensor> {
        SensorKind::ALL
            .iter()
            .map(|k| {
                let grids: Vec<&Tensor> = observations.iter().map(|o| o.grid(*k)).collect();
                let stacked = Tensor::stack_batch(&grids);
                self.stems[k.index()].forward(&stacked, false)
            })
            .collect()
    }

    /// Concatenates per-sensor stem features into the gate input F.
    pub fn gate_features(stem_feats: &[Tensor]) -> Tensor {
        let refs: Vec<&Tensor> = stem_feats.iter().collect();
        Tensor::concat_channels(&refs)
    }

    /// The stem-feature input of one branch (concatenation of the stems of
    /// the sensors the branch consumes, in spec order).
    pub fn branch_input(&self, branch: usize, stem_feats: &[Tensor]) -> Tensor {
        let spec = &self.space.branches()[branch];
        let parts: Vec<&Tensor> = spec.sensors().iter().map(|k| &stem_feats[k.index()]).collect();
        Tensor::concat_channels(&parts)
    }

    /// Runs one branch and decodes its detections.
    pub fn run_branch(
        &mut self,
        branch: usize,
        stem_feats: &[Tensor],
        score_thresh: f32,
        nms_iou: f32,
    ) -> Vec<Detection> {
        let input = self.branch_input(branch, stem_feats);
        self.branches[branch].detect(&input, score_thresh, nms_iou)
    }

    /// Runs all branches once, returning per-branch detections.
    pub fn all_branch_detections(
        &mut self,
        stem_feats: &[Tensor],
        score_thresh: f32,
        nms_iou: f32,
    ) -> Vec<Vec<Detection>> {
        (0..self.branches.len())
            .map(|b| self.run_branch(b, stem_feats, score_thresh, nms_iou))
            .collect()
    }

    /// Runs one branch over batched per-sensor stem features (from
    /// [`EcoFusionModel::stem_features_batch`]), returning detections for
    /// every frame in the batch.
    pub fn run_branch_batch(
        &mut self,
        branch: usize,
        batch_feats: &[Tensor],
        score_thresh: f32,
        nms_iou: f32,
    ) -> Vec<Vec<Detection>> {
        let input = self.branch_input(branch, batch_feats);
        self.branches[branch].detect_batch(&input, score_thresh, nms_iou)
    }

    /// Runs all branches over batched stem features, returning detections
    /// indexed `[frame][branch]` (the shape `config_losses_from` expects
    /// per frame).
    pub fn all_branch_detections_batch(
        &mut self,
        batch_feats: &[Tensor],
        score_thresh: f32,
        nms_iou: f32,
    ) -> Vec<Vec<Vec<Detection>>> {
        let n = batch_feats[0].shape()[0];
        let mut per_frame: Vec<Vec<Vec<Detection>>> =
            (0..n).map(|_| Vec::with_capacity(self.branches.len())).collect();
        for b in 0..self.branches.len() {
            let dets = self.run_branch_batch(b, batch_feats, score_thresh, nms_iou);
            for (frame_dets, d) in per_frame.iter_mut().zip(dets) {
                frame_dets.push(d);
            }
        }
        per_frame
    }

    /// Late-fuses branch outputs with weighted boxes fusion (§4.4). A
    /// single branch passes through unfused.
    pub fn fuse(&self, outputs: &[Vec<Detection>]) -> Vec<Detection> {
        if outputs.len() == 1 {
            return outputs[0].clone();
        }
        weighted_boxes_fusion(outputs, &self.wbf, outputs.len())
    }

    /// True fusion loss of every configuration for one frame given the
    /// per-branch detections (the gate-training target and the oracle
    /// input).
    pub fn config_losses_from(&self, branch_dets: &[Vec<Detection>], gts: &[GtBox]) -> Vec<f32> {
        (0..self.space.num_configs())
            .map(|i| {
                let ids = self.space.branch_ids(ConfigId(i));
                let outputs: Vec<Vec<Detection>> =
                    ids.iter().map(|b| branch_dets[b.0].clone()).collect();
                let fused = self.fuse(&outputs);
                fusion_loss(&fused, gts).total()
            })
            .collect()
    }

    /// Convenience: stem features + all branches + per-config losses for a
    /// frame (used by the trainer and the loss-based oracle).
    pub fn config_losses(&mut self, frame: &Frame, opts: &InferenceOptions) -> Vec<f32> {
        let feats = self.stem_features(&frame.obs, false);
        let dets = self.all_branch_detections(&feats, opts.score_thresh, opts.nms_iou);
        self.config_losses_from(&dets, &frame.gt_boxes())
    }

    /// Runs a *fixed* configuration as a static baseline (paper Table 1
    /// rows: None / Early / Late). Only the stems of the used sensors are
    /// charged, and no gate runs.
    pub fn detect_static(
        &mut self,
        frame: &Frame,
        config: ConfigId,
        opts: &InferenceOptions,
    ) -> (Vec<Detection>, EnergyBreakdown) {
        let feats = self.stem_features(&frame.obs, false);
        let ids = self.space.branch_ids(config);
        let outputs: Vec<Vec<Detection>> = ids
            .iter()
            .map(|b| self.run_branch(b.0, &feats, opts.score_thresh, opts.nms_iou))
            .collect();
        let fused = self.fuse(&outputs);
        let specs = self.space.branch_specs(config);
        let (breakdown, _) =
            crate::pipeline::account(&self.px2, &self.sensor_power, &specs, StemPolicy::Static);
        (fused, breakdown)
    }

    /// Algorithm 1: adaptive inference on one frame.
    ///
    /// A thin driver over the staged pipeline
    /// ([`crate::pipeline`]): Sense → Stems → GateScore → Select →
    /// Branch → Fuse → Account, with the Stems stage pruned to the
    /// sensors the plan demands (feature-free gates defer stems until
    /// after Select and run only the winner's).
    ///
    /// # Errors
    /// Returns [`InferError::GridMismatch`] if the frame was rendered at a
    /// different grid size than the model.
    pub fn infer(
        &mut self,
        frame: &Frame,
        opts: &InferenceOptions,
    ) -> Result<InferenceOutput, InferError> {
        // One staged executor serves both entry points: a single frame
        // is a batch of one (stems are batch-invariant in eval mode, so
        // the results are bit-identical — the golden traces pin it).
        let mut outputs = self.run_staged_batch(std::slice::from_ref(frame), opts, None)?;
        Ok(outputs.pop().expect("one output per frame"))
    }

    /// Algorithm 1 over a whole batch of frames, amortizing shared
    /// compute: each demanded stem runs once per sensor over the stacked
    /// batch, learned gates score every frame in one network pass, and
    /// each branch demanded by at least one frame executes once over
    /// exactly the frames that selected it. Per-frame results are
    /// identical to calling [`EcoFusionModel::infer`] sequentially.
    ///
    /// A thin driver over the staged pipeline; see
    /// [`EcoFusionModel::infer_batch_cached`] for the variant that also
    /// reuses stem features across batches for unchanged grids.
    ///
    /// # Errors
    /// Returns [`InferError::GridMismatch`] if any frame was rendered at a
    /// different grid size than the model.
    pub fn infer_batch(
        &mut self,
        frames: &[Frame],
        opts: &InferenceOptions,
    ) -> Result<Vec<InferenceOutput>, InferError> {
        self.run_staged_batch(frames, opts, None)
    }

    /// Applies `f` to every trainable parameter of stems and branches
    /// (used by the trainer's optimizer). Drops any cached int8 image,
    /// like the other mutable weight accessors.
    pub fn visit_perception_params(
        &mut self,
        f: &mut dyn FnMut(&mut ecofusion_tensor::param::Param),
    ) {
        self.quant = None;
        self.plans.clear();
        for s in &mut self.stems {
            s.visit_params(f);
        }
        for b in &mut self.branches {
            b.visit_params(f);
        }
    }

    /// Builds — or returns the cached — post-training int8 image of the
    /// stems and branches (a [`QuantSnapshot`]), calibrating activation
    /// scales over the seeded fixture frames. Deterministic for a given
    /// set of weights, so shard replicas build identical images.
    ///
    /// The image is invalidated by any mutable weight access and rebuilt
    /// on the next call.
    ///
    /// [`QuantSnapshot`]: crate::snapshot::QuantSnapshot
    ///
    /// # Errors
    /// Returns the [`ecofusion_tensor::QuantizeError`] of the first layer
    /// that cannot be quantized (unreachable for the canonical
    /// architecture, which is all Conv/BN/ReLU/MaxPool).
    pub fn ensure_quant(
        &mut self,
    ) -> Result<&crate::snapshot::QuantSnapshot, ecofusion_tensor::QuantizeError> {
        if self.quant.is_none() {
            self.quant = Some(crate::snapshot::QuantSnapshot::capture(self)?);
        }
        Ok(self.quant.as_ref().expect("just built"))
    }

    /// The cached int8 image, if one has been built and not invalidated.
    pub fn quantized(&self) -> Option<&crate::snapshot::QuantSnapshot> {
        self.quant.as_ref()
    }

    /// Installs a previously captured int8 image (e.g. loaded from disk
    /// beside the weight snapshot), skipping recalibration.
    ///
    /// # Errors
    /// Returns [`crate::snapshot::RestoreModelError::QuantMismatch`] if
    /// the image was captured for a different architecture.
    pub fn install_quant(
        &mut self,
        snap: crate::snapshot::QuantSnapshot,
    ) -> Result<(), crate::snapshot::RestoreModelError> {
        use crate::snapshot::RestoreModelError::QuantMismatch;
        if snap.grid() != self.grid {
            return Err(QuantMismatch { what: "grid", expected: self.grid, found: snap.grid() });
        }
        if snap.num_classes() != self.num_classes {
            return Err(QuantMismatch {
                what: "num_classes",
                expected: self.num_classes,
                found: snap.num_classes(),
            });
        }
        if snap.stems.len() != self.stems.len() {
            return Err(QuantMismatch {
                what: "stems",
                expected: self.stems.len(),
                found: snap.stems.len(),
            });
        }
        if snap.branches.len() != self.branches.len() {
            return Err(QuantMismatch {
                what: "branches",
                expected: self.branches.len(),
                found: snap.branches.len(),
            });
        }
        self.quant = Some(snap);
        // Int8 plans captured from the previous image are stale now.
        self.plans.clear();
        Ok(())
    }

    /// Cumulative plan-cache counters (hits / misses / compiles) of the
    /// fused-execution layer. See [`ecofusion_tensor::graph`].
    pub fn plan_cache_stats(&self) -> ecofusion_tensor::graph::PlanCacheStats {
        self.plans.stats()
    }

    /// Compiled plans currently resident (drops to zero after any mutable
    /// weight access, like the int8 image).
    pub fn plan_cache_len(&self) -> usize {
        self.plans.len()
    }

    /// Plan-cache counter deltas since the previous call; the sharded
    /// runtime flushes these into `TraceSink::bump` once per step.
    pub fn take_plan_delta(&mut self) -> ecofusion_tensor::graph::PlanCacheStats {
        self.plans.take_delta()
    }
}

/// The sharded runtime moves model replicas into scoped worker threads;
/// this holds because `Layer: Send` is a supertrait and every other field
/// is plain owned data. A compile error here means a non-`Send` layer or
/// cache snuck into the model.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<EcoFusionModel>();
    assert_send::<crate::snapshot::ModelSnapshot>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Dataset, DatasetSpec};

    fn tiny_model() -> EcoFusionModel {
        let mut rng = Rng::new(1);
        EcoFusionModel::new(32, 8, &mut rng)
    }

    #[test]
    fn model_shape() {
        let m = tiny_model();
        assert_eq!(m.space().num_branches(), 7);
        assert_eq!(m.space().num_configs(), 127);
        assert_eq!(m.grid(), 32);
    }

    #[test]
    fn infer_runs_untrained() {
        let mut m = tiny_model();
        let data = Dataset::generate(&DatasetSpec::small(2));
        let opts = InferenceOptions::new(0.01, 0.5);
        let out = m.infer(&data.test()[0], &opts).unwrap();
        assert_eq!(out.predicted_losses.len(), 127);
        assert!(out.energy_joules() > 0.0);
        assert!(!out.selected_label.is_empty());
    }

    #[test]
    fn infer_grid_mismatch_errors() {
        let mut m = tiny_model();
        let mut spec = DatasetSpec::small(3);
        spec.grid = 48;
        let data = Dataset::generate(&spec);
        let opts = InferenceOptions::new(0.0, 0.5);
        let err = m.infer(&data.test()[0], &opts).unwrap_err();
        assert!(matches!(err, InferError::GridMismatch { expected: 32, found: 48 }));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn knowledge_gate_selects_table3_config() {
        let mut m = tiny_model();
        let mut spec = DatasetSpec::small(4);
        spec.mix = crate::dataset::DatasetMix::Single(ecofusion_scene::Context::City);
        spec.num_scenes = 10;
        let data = Dataset::generate(&spec);
        let opts = InferenceOptions::new(0.01, 0.5).with_gate(GateKind::Knowledge);
        let out = m.infer(&data.test()[0], &opts).unwrap();
        assert_eq!(out.selected_label, "{E(C_L+C_R+L)}");
    }

    #[test]
    fn loss_based_gate_runs() {
        let mut m = tiny_model();
        let data = Dataset::generate(&DatasetSpec::small(5));
        let opts = InferenceOptions::new(0.5, 0.5).with_gate(GateKind::LossBased);
        let out = m.infer(&data.test()[0], &opts).unwrap();
        // Oracle predictions are finite true losses.
        assert!(out.predicted_losses.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn lambda_one_picks_cheapest_candidate() {
        let mut m = tiny_model();
        let data = Dataset::generate(&DatasetSpec::small(6));
        // Huge gamma: all configs candidates; λ=1 must pick the global
        // energy minimum = a single-branch config.
        let opts =
            InferenceOptions { lambda_e: 1.0, gamma: 1e9, ..InferenceOptions::new(1.0, 0.5) };
        let out = m.infer(&data.test()[0], &opts).unwrap();
        assert_eq!(m.space().branch_ids(out.selected_config).len(), 1);
    }

    #[test]
    fn static_baseline_energy_matches_table1() {
        let mut m = tiny_model();
        let data = Dataset::generate(&DatasetSpec::small(7));
        let opts = InferenceOptions::new(0.0, 0.5);
        let late = m.baseline_ids().late;
        let (_, breakdown) = m.detect_static(&data.test()[0], late, &opts);
        assert!((breakdown.platform.joules() - 3.798).abs() < 1e-9);
    }

    #[test]
    fn fuse_single_branch_passthrough() {
        let m = tiny_model();
        let dets =
            vec![vec![Detection::new(ecofusion_detect::BBox::new(0.0, 0.0, 4.0, 4.0), 0, 0.9)]];
        let fused = m.fuse(&dets);
        assert_eq!(fused, dets[0]);
    }

    #[test]
    fn infer_batch_matches_sequential_infer() {
        let data = Dataset::generate(&DatasetSpec::small(9));
        let frames: Vec<Frame> = data.test().iter().take(5).cloned().collect();
        for gate in [GateKind::Deep, GateKind::Attention, GateKind::Knowledge, GateKind::LossBased]
        {
            // Fresh model per gate so layer caches cannot leak between the
            // two code paths.
            let mut m = tiny_model();
            let opts = InferenceOptions::new(0.01, 0.5).with_gate(gate);
            let batched = m.infer_batch(&frames, &opts).unwrap();
            let sequential: Vec<InferenceOutput> =
                frames.iter().map(|f| m.infer(f, &opts).unwrap()).collect();
            assert_eq!(batched.len(), sequential.len());
            for (i, (b, s)) in batched.iter().zip(&sequential).enumerate() {
                assert_eq!(b.selected_config, s.selected_config, "{gate:?} frame {i}");
                assert_eq!(b.selected_label, s.selected_label, "{gate:?} frame {i}");
                assert_eq!(b.detections, s.detections, "{gate:?} frame {i}");
                assert_eq!(
                    b.energy.platform.joules(),
                    s.energy.platform.joules(),
                    "{gate:?} frame {i}"
                );
                assert_eq!(b.predicted_losses.len(), s.predicted_losses.len());
                for (x, y) in b.predicted_losses.iter().zip(&s.predicted_losses) {
                    assert!(
                        (x - y).abs() <= 1e-5 * (1.0 + x.abs()),
                        "{gate:?} frame {i}: {x} vs {y}"
                    );
                }
            }
        }
    }

    #[test]
    fn infer_batch_empty_and_mismatch() {
        let mut m = tiny_model();
        let opts = InferenceOptions::new(0.01, 0.5);
        assert!(m.infer_batch(&[], &opts).unwrap().is_empty());
        let mut spec = DatasetSpec::small(10);
        spec.grid = 48;
        let data = Dataset::generate(&spec);
        let frames: Vec<Frame> = data.test().iter().take(2).cloned().collect();
        let err = m.infer_batch(&frames, &opts).unwrap_err();
        assert!(matches!(err, InferError::GridMismatch { expected: 32, found: 48 }));
    }

    #[test]
    fn config_sensor_bits_match_specs() {
        let m = tiny_model();
        let bits = m.config_sensor_bits();
        assert_eq!(bits.len(), 127);
        // Late fusion of all four sensors needs all four bits.
        assert_eq!(bits[m.baseline_ids().late.0], 0b1111);
        // The lidar-only baseline needs exactly the lidar bit.
        assert_eq!(bits[m.baseline_ids().lidar.0], 1 << SensorKind::Lidar.index());
    }

    #[test]
    fn all_available_mask_is_bit_identical() {
        let data = Dataset::generate(&DatasetSpec::small(12));
        let frame = &data.test()[0];
        for gate in [GateKind::Attention, GateKind::Knowledge] {
            let mut m = tiny_model();
            let plain = m.infer(frame, &InferenceOptions::new(0.01, 0.5).with_gate(gate)).unwrap();
            let masked = m
                .infer(
                    frame,
                    &InferenceOptions::new(0.01, 0.5)
                        .with_gate(gate)
                        .with_health(SensorMask::all_available()),
                )
                .unwrap();
            assert_eq!(plain.selected_config, masked.selected_config, "{gate:?}");
            assert_eq!(plain.detections, masked.detections, "{gate:?}");
            assert_eq!(plain.predicted_losses, masked.predicted_losses, "{gate:?}");
        }
    }

    #[test]
    fn masked_sensors_never_selected() {
        let data = Dataset::generate(&DatasetSpec::small(13));
        let no_cams = SensorMask::all_available()
            .without(SensorKind::CameraLeft)
            .without(SensorKind::CameraRight);
        for gate in [GateKind::Attention, GateKind::Deep, GateKind::Knowledge] {
            let mut m = tiny_model();
            let opts = InferenceOptions::new(0.01, 0.5).with_gate(gate).with_health(no_cams);
            for f in data.test().iter().take(3) {
                let out = m.infer(f, &opts).unwrap();
                let bits = m.config_sensor_bits()[out.selected_config.0];
                assert!(
                    no_cams.allows_bits(bits),
                    "{gate:?} selected camera-dependent {} under a no-camera mask",
                    out.selected_label
                );
            }
        }
    }

    #[test]
    fn infer_batch_matches_sequential_under_mask() {
        let data = Dataset::generate(&DatasetSpec::small(14));
        let frames: Vec<Frame> = data.test().iter().take(4).cloned().collect();
        let mask = SensorMask::all_available().without(SensorKind::Lidar);
        let mut m = tiny_model();
        let opts = InferenceOptions::new(0.01, 0.5).with_health(mask);
        let batched = m.infer_batch(&frames, &opts).unwrap();
        let sequential: Vec<InferenceOutput> =
            frames.iter().map(|f| m.infer(f, &opts).unwrap()).collect();
        for (b, s) in batched.iter().zip(&sequential) {
            assert_eq!(b.selected_config, s.selected_config);
            assert_eq!(b.detections, s.detections);
        }
    }

    #[test]
    fn knowledge_gate_falls_back_under_camera_dropout() {
        let mut m = tiny_model();
        let mut spec = DatasetSpec::small(15);
        spec.mix = crate::dataset::DatasetMix::Single(ecofusion_scene::Context::City);
        spec.num_scenes = 10;
        let data = Dataset::generate(&spec);
        let no_cams = SensorMask::all_available()
            .without(SensorKind::CameraLeft)
            .without(SensorKind::CameraRight);
        let opts =
            InferenceOptions::new(0.01, 0.5).with_gate(GateKind::Knowledge).with_health(no_cams);
        let out = m.infer(&data.test()[0], &opts).unwrap();
        // City's primary {E(C_L+C_R+L)} needs cameras; the degraded rule
        // walks the clear-context fallbacks to the lidar/radar pair.
        assert_eq!(out.selected_label, "{E(L+R)}");
    }

    #[test]
    fn quant_image_invalidated_by_weight_access() {
        let mut m = tiny_model();
        assert!(m.quantized().is_none());
        m.ensure_quant().expect("quantizes");
        assert!(m.quantized().is_some());
        let _ = m.stems_mut();
        assert!(m.quantized().is_none(), "stems_mut must drop the image");
        m.ensure_quant().expect("rebuilds");
        let _ = m.branches_mut();
        assert!(m.quantized().is_none(), "branches_mut must drop the image");
        m.ensure_quant().expect("rebuilds");
        m.visit_perception_params(&mut |_| {});
        assert!(m.quantized().is_none(), "param visitor must drop the image");
    }

    /// Mirror of [`quant_image_invalidated_by_weight_access`] for the
    /// fused-plan cache: every mutable weight access drops the resident
    /// plans, and the next compiled run rebuilds them against the new
    /// weights (a stale plan must never serve).
    #[test]
    fn plan_cache_invalidated_by_weight_access() {
        if !ecofusion_tensor::graph::compiled_enabled() {
            return; // ECOFUSION_COMPILED=0 CI leg: nothing to invalidate.
        }
        let mut m = tiny_model();
        let data = Dataset::generate(&DatasetSpec::small(9));
        let opts = InferenceOptions::new(0.01, 0.5);
        m.infer(&data.test()[0], &opts).expect("infers");
        assert!(m.plan_cache_len() > 0, "compiled run must populate the plan cache");
        let warm = m.plan_cache_stats();
        assert!(warm.compiles > 0 && warm.compiles == warm.misses);

        let _ = m.stems_mut();
        assert_eq!(m.plan_cache_len(), 0, "stems_mut must drop compiled plans");
        m.infer(&data.test()[0], &opts).expect("infers");
        let rebuilt = m.plan_cache_stats();
        assert!(rebuilt.compiles > warm.compiles, "stale plans must be recompiled");
        assert!(m.plan_cache_len() > 0);

        let _ = m.branches_mut();
        assert_eq!(m.plan_cache_len(), 0, "branches_mut must drop compiled plans");
        m.infer(&data.test()[0], &opts).expect("infers");
        assert!(m.plan_cache_stats().compiles > rebuilt.compiles);

        m.visit_perception_params(&mut |_| {});
        assert_eq!(m.plan_cache_len(), 0, "param visitor must drop compiled plans");

        // Steady state: a re-run with untouched weights only hits.
        m.infer(&data.test()[0], &opts).expect("infers");
        let cold = m.plan_cache_stats();
        m.infer(&data.test()[0], &opts).expect("infers");
        let steady = m.plan_cache_stats();
        assert_eq!(steady.compiles, cold.compiles, "warm re-run must not recompile");
        assert!(steady.hits > cold.hits, "warm re-run must hit the cache");
    }

    #[test]
    fn options_without_precision_field_deserialize_to_f32() {
        // An options JSON written before the precision axis existed.
        let opts = InferenceOptions::new(0.01, 0.5);
        let json = serde_json::to_string(&opts).expect("serialize");
        let stripped =
            json.replace(",\"precision\":\"F32\"", "").replace("\"precision\":\"F32\",", "");
        assert_ne!(json, stripped, "precision field expected in serialized options");
        let back: InferenceOptions = serde_json::from_str(&stripped).expect("deserialize");
        assert_eq!(back.precision, Precision::F32);
        assert_eq!(back, opts);
    }

    #[test]
    fn config_losses_len() {
        let mut m = tiny_model();
        let data = Dataset::generate(&DatasetSpec::small(8));
        let opts = InferenceOptions::new(0.0, 0.5);
        let losses = m.config_losses(&data.test()[0], &opts);
        assert_eq!(losses.len(), 127);
        assert!(losses.iter().all(|l| l.is_finite() && *l >= 0.0));
    }
}
