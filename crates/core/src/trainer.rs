//! Training pipeline (§5): supervised branch training, then gate
//! regression on frozen stems/branches.

use crate::dataset::Dataset;
use crate::model::{EcoFusionModel, InferenceOptions};
use ecofusion_detect::stem::STEM_CHANNELS;
use ecofusion_tensor::layer::Layer;
use ecofusion_tensor::optim::{Adam, Optimizer};
use ecofusion_tensor::rng::Rng;
use ecofusion_tensor::tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Observation grid the model is built for (must match the dataset).
    pub grid: usize,
    /// Number of object classes.
    pub num_classes: usize,
    /// Epochs of supervised stem+branch training.
    pub branch_epochs: usize,
    /// Epochs of gate regression training.
    pub gate_epochs: usize,
    /// SGD learning rate for stems and branches.
    pub branch_lr: f32,
    /// Adam learning rate for the learned gates.
    pub gate_lr: f32,
    /// Objectness threshold used when generating gate targets.
    pub score_thresh: f32,
    /// NMS IoU used when generating gate targets.
    pub nms_iou: f32,
    /// Print one progress line per epoch to stderr.
    pub verbose: bool,
}

impl TrainConfig {
    /// Small configuration for tests and the quickstart (pairs with
    /// [`crate::DatasetSpec::small`]).
    pub fn fast_demo() -> Self {
        TrainConfig {
            grid: 32,
            num_classes: 8,
            branch_epochs: 2,
            gate_epochs: 4,
            branch_lr: 1e-3,
            gate_lr: 1e-3,
            score_thresh: 0.2,
            nms_iou: 0.5,
            verbose: false,
        }
    }

    /// The configuration used by the experiment harness (pairs with
    /// [`crate::DatasetSpec::standard`]).
    pub fn standard() -> Self {
        TrainConfig {
            grid: 48,
            num_classes: 8,
            branch_epochs: 30,
            gate_epochs: 16,
            branch_lr: 1e-3,
            gate_lr: 1e-3,
            score_thresh: 0.2,
            nms_iou: 0.5,
            verbose: false,
        }
    }
}

/// Error from [`Trainer::train`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrainError {
    /// The dataset has no training frames.
    EmptyDataset,
    /// Dataset grid differs from the configured model grid.
    GridMismatch {
        /// Grid in the train config.
        expected: usize,
        /// Grid of the dataset.
        found: usize,
    },
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::EmptyDataset => write!(f, "dataset has no training frames"),
            TrainError::GridMismatch { expected, found } => {
                write!(f, "dataset grid {found} does not match configured grid {expected}")
            }
        }
    }
}

impl Error for TrainError {}

/// Trains an [`EcoFusionModel`] end to end: first all stems and branches
/// with supervised detection losses (the paper trains "with all of the
/// stems and branches enabled"), then the learned gates to regress the
/// true per-configuration fusion losses from frozen stem features.
#[derive(Debug)]
pub struct Trainer {
    config: TrainConfig,
    rng: Rng,
}

impl Trainer {
    /// Creates a trainer with a deterministic seed.
    pub fn new(config: TrainConfig, seed: u64) -> Self {
        Trainer { config, rng: Rng::new(seed) }
    }

    /// The training configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Runs the full pipeline and returns the trained model.
    ///
    /// # Errors
    /// Returns [`TrainError`] when the dataset is empty or its grid does
    /// not match the configuration.
    pub fn train(&mut self, dataset: &Dataset) -> Result<EcoFusionModel, TrainError> {
        if dataset.train().is_empty() {
            return Err(TrainError::EmptyDataset);
        }
        if dataset.grid() != self.config.grid {
            return Err(TrainError::GridMismatch {
                expected: self.config.grid,
                found: dataset.grid(),
            });
        }
        let mut model =
            EcoFusionModel::new(self.config.grid, self.config.num_classes, &mut self.rng);
        self.train_branches(&mut model, dataset);
        self.train_gates(&mut model, dataset);
        Ok(model)
    }

    /// Phase 1: supervised stem + branch training. Every branch trains on
    /// every frame; stem gradients accumulate from all branches that
    /// consume the stem (the paper trains all stems and branches jointly).
    fn train_branches(&mut self, model: &mut EcoFusionModel, dataset: &Dataset) {
        // Adam: batch-1 detection gradients are too noisy for plain SGD to
        // make progress in the few epochs the harness budgets.
        let mut opt = Adam::new(self.config.branch_lr, 1e-5);
        let n_branches = model.space().num_branches();
        let sensors_per_branch: Vec<Vec<usize>> = model
            .space()
            .branches()
            .iter()
            .map(|spec| spec.sensors().iter().map(|k| k.index()).collect())
            .collect();
        let mut order: Vec<usize> = (0..dataset.train().len()).collect();
        for epoch in 0..self.config.branch_epochs {
            // Step-decay schedule: sharper localization in late epochs.
            let decay = if epoch * 10 >= self.config.branch_epochs * 8 {
                0.25
            } else if epoch * 10 >= self.config.branch_epochs * 6 {
                0.5
            } else {
                1.0
            };
            opt.set_learning_rate(self.config.branch_lr * decay);
            self.rng.shuffle(&mut order);
            let mut epoch_loss = 0.0f64;
            for &fi in &order {
                let frame = &dataset.train()[fi];
                let gts = frame.gt_boxes();
                let feats = model.stem_features(&frame.obs, true);
                let mut stem_grads: Vec<Tensor> =
                    feats.iter().map(|f| Tensor::zeros(f.shape())).collect();
                #[allow(clippy::needless_range_loop)] // b indexes model internals too
                for b in 0..n_branches {
                    let input = model.branch_input(b, &feats);
                    let (loss, grad_in) = model.branches_mut()[b].train_step(&input, &gts);
                    epoch_loss += loss.total() as f64;
                    let sensors = &sensors_per_branch[b];
                    let split = grad_in.split_channels(&vec![STEM_CHANNELS; sensors.len()]);
                    for (s, g) in sensors.iter().zip(split) {
                        stem_grads[*s].add_assign(&g);
                    }
                }
                for (i, grad) in stem_grads.iter().enumerate() {
                    let _ = model.stems_mut()[i].backward(grad);
                }
                opt.step_visit(&mut |f| model.visit_perception_params(f));
                model.visit_perception_params(&mut |p| p.zero_grad());
            }
            if self.config.verbose {
                eprintln!(
                    "[trainer] branch epoch {}/{}: mean detection loss {:.4}",
                    epoch + 1,
                    self.config.branch_epochs,
                    epoch_loss / (order.len() * n_branches) as f64
                );
            }
        }
    }

    /// Phase 2: gate training. Targets are the true fusion losses of every
    /// configuration, computed with the (now frozen) stems and branches,
    /// exactly as §5 describes: "we take the trained stem and branch
    /// outputs and use them to separately train the gate model".
    fn train_gates(&mut self, model: &mut EcoFusionModel, dataset: &Dataset) {
        let opts = InferenceOptions {
            score_thresh: self.config.score_thresh,
            nms_iou: self.config.nms_iou,
            ..InferenceOptions::new(0.0, 0.5)
        };
        // Precompute (gate features, target losses) for every train frame,
        // in batches: stems and branches are frozen here, so frames share
        // one batched forward per chunk instead of a pass per frame.
        const PRECOMPUTE_BATCH: usize = 16;
        let mut samples: Vec<(Tensor, Vec<f32>)> = Vec::with_capacity(dataset.train().len());
        for chunk in dataset.train().chunks(PRECOMPUTE_BATCH) {
            let observations: Vec<_> = chunk.iter().map(|f| &f.obs).collect();
            let batch_feats = model.stem_features_batch(&observations);
            let gate_feats = EcoFusionModel::gate_features(&batch_feats);
            let dets =
                model.all_branch_detections_batch(&batch_feats, opts.score_thresh, opts.nms_iou);
            for (i, frame) in chunk.iter().enumerate() {
                let losses = model.config_losses_from(&dets[i], &frame.gt_boxes());
                samples.push((gate_feats.select_batch(i), losses));
            }
        }
        let mut opt_deep = Adam::new(self.config.gate_lr, 0.0);
        let mut opt_attn = Adam::new(self.config.gate_lr, 0.0);
        let mut order: Vec<usize> = (0..samples.len()).collect();
        for epoch in 0..self.config.gate_epochs {
            self.rng.shuffle(&mut order);
            let mut deep_loss = 0.0f64;
            let mut attn_loss = 0.0f64;
            for &si in &order {
                let (feats, targets) = &samples[si];
                let gates = model.gates_mut();
                gates.deep.zero_grad();
                deep_loss += gates.deep.train_step(feats, targets) as f64;
                opt_deep.step(&mut gates.deep);
                gates.attention.zero_grad();
                attn_loss += gates.attention.train_step(feats, targets) as f64;
                opt_attn.step(&mut gates.attention);
            }
            if self.config.verbose {
                eprintln!(
                    "[trainer] gate epoch {}/{}: deep {:.4}, attention {:.4}",
                    epoch + 1,
                    self.config.gate_epochs,
                    deep_loss / order.len() as f64,
                    attn_loss / order.len() as f64
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DatasetMix, DatasetSpec};
    use crate::model::InferenceOptions;
    use ecofusion_gating::GateKind;

    fn tiny_dataset(seed: u64) -> Dataset {
        let mut spec = DatasetSpec::small(seed);
        spec.num_scenes = 24;
        Dataset::generate(&spec)
    }

    fn tiny_config() -> TrainConfig {
        TrainConfig { branch_epochs: 1, gate_epochs: 1, ..TrainConfig::fast_demo() }
    }

    #[test]
    fn train_produces_runnable_model() {
        let data = tiny_dataset(1);
        let mut trainer = Trainer::new(tiny_config(), 2);
        let mut model = trainer.train(&data).unwrap();
        let opts = InferenceOptions::new(0.01, 0.5);
        let out = model.infer(&data.test()[0], &opts).unwrap();
        assert_eq!(out.predicted_losses.len(), 127);
    }

    #[test]
    fn empty_dataset_errors() {
        let mut spec = DatasetSpec::small(3);
        spec.num_scenes = 2;
        spec.train_fraction = 0.01; // rounds to zero training frames
        let data = Dataset::generate(&spec);
        assert!(data.train().is_empty());
        let mut trainer = Trainer::new(tiny_config(), 4);
        assert_eq!(trainer.train(&data).unwrap_err(), TrainError::EmptyDataset);
    }

    #[test]
    fn grid_mismatch_errors() {
        let mut spec = DatasetSpec::small(5);
        spec.grid = 48;
        let data = Dataset::generate(&spec);
        let mut trainer = Trainer::new(tiny_config(), 6);
        assert!(matches!(
            trainer.train(&data).unwrap_err(),
            TrainError::GridMismatch { expected: 32, found: 48 }
        ));
    }

    #[test]
    fn training_reduces_detection_loss() {
        // Compare average config loss of the late-fusion config before and
        // after branch training on a single-context dataset.
        let mut spec = DatasetSpec::small(7);
        spec.mix = DatasetMix::Single(ecofusion_scene::Context::City);
        spec.num_scenes = 30;
        let data = Dataset::generate(&spec);
        let opts = InferenceOptions::new(0.0, 0.5);
        let late = ConfigSpaceLate::id();
        let mut rng = Rng::new(8);
        let mut untrained = EcoFusionModel::new(32, 8, &mut rng);
        let mut trainer = Trainer::new(
            TrainConfig { branch_epochs: 2, gate_epochs: 1, ..TrainConfig::fast_demo() },
            9,
        );
        let mut trained = trainer.train(&data).unwrap();
        let avg = |m: &mut EcoFusionModel| {
            let mut s = 0.0;
            for f in data.test() {
                s += m.config_losses(f, &opts)[late.0];
            }
            s / data.test().len() as f32
        };
        let before = avg(&mut untrained);
        let after = avg(&mut trained);
        assert!(after < before, "training should reduce late-fusion loss: {before} -> {after}");
    }

    /// Helper for the late-fusion config id without a model instance.
    struct ConfigSpaceLate;
    impl ConfigSpaceLate {
        fn id() -> crate::config::ConfigId {
            crate::config::ConfigSpace::canonical().baseline_ids().late
        }
    }

    #[test]
    fn deterministic_training() {
        let data = tiny_dataset(10);
        let opts = InferenceOptions::new(0.01, 0.5).with_gate(GateKind::Deep);
        let run = || {
            let mut trainer = Trainer::new(tiny_config(), 11);
            let mut m = trainer.train(&data).unwrap();
            m.infer(&data.test()[0], &opts).unwrap().predicted_losses
        };
        assert_eq!(run(), run());
    }
}
