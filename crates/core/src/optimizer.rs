//! Joint energy–performance optimization (Eq. 7–9).

use ecofusion_energy::Joules;
use serde::{Deserialize, Serialize};

/// How the candidate set Φ* is derived from the predicted losses (Eq. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum CandidateRule {
    /// `L_f(φ) − L_f(φ′) ≤ γ`: the margin rule the paper's prose describes
    /// ("the maximum allowable difference in loss"). Default.
    #[default]
    Margin,
    /// Eq. 7 exactly as printed: `L_f(φ) − L_f(φ′) ≤ L_f(φ′) + γ`, i.e.
    /// `L_f(φ) ≤ 2·L_f(φ′) + γ`. Almost certainly a typo in the paper, but
    /// implemented for the ablation study.
    PaperEq7,
}

/// Selects the candidate set Φ* (Eq. 7): all configurations whose predicted
/// loss is close enough to the best configuration φ′.
///
/// Returns indices into `losses`, always including the argmin.
///
/// # Panics
/// Panics if `losses` is empty or `gamma < 0`.
pub fn select_candidates(losses: &[f32], gamma: f32, rule: CandidateRule) -> Vec<usize> {
    assert!(!losses.is_empty(), "candidate selection needs at least one configuration");
    assert!(gamma >= 0.0, "gamma must be non-negative");
    let best = losses.iter().copied().fold(f32::INFINITY, f32::min);
    let bound = match rule {
        CandidateRule::Margin => best + gamma,
        CandidateRule::PaperEq7 => 2.0 * best + gamma,
    };
    let mut out: Vec<usize> = (0..losses.len()).filter(|&i| losses[i] <= bound + 1e-9).collect();
    if out.is_empty() {
        // Guard against NaN-contaminated predictions: fall back to argmin.
        let arg = losses
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0);
        out.push(arg);
    }
    out
}

/// The joint objective `L_joint(φ, λ_E) = (1 − λ_E)·L_f(φ) + λ_E·E(φ)`
/// (Eq. 8).
///
/// # Panics
/// Panics if `lambda_e` is outside `[0, 1]`.
pub fn joint_loss(fusion_loss: f32, energy: Joules, lambda_e: f64) -> f64 {
    assert!((0.0..=1.0).contains(&lambda_e), "lambda_e must be in [0, 1]");
    (1.0 - lambda_e) * fusion_loss as f64 + lambda_e * energy.joules()
}

/// Full Eq. 7–9 pipeline: selects `φ* = argmin_{φ ∈ Φ*} L_joint(φ, λ_E)`.
///
/// Ties break toward lower energy, then lower index (deterministic).
///
/// # Panics
/// Panics if the slices differ in length, are empty, `gamma < 0`, or
/// `lambda_e ∉ [0, 1]`.
pub fn select_config(
    losses: &[f32],
    energies: &[Joules],
    lambda_e: f64,
    gamma: f32,
    rule: CandidateRule,
) -> usize {
    assert_eq!(losses.len(), energies.len(), "losses/energies length mismatch");
    let candidates = select_candidates(losses, gamma, rule);
    let mut best_idx = candidates[0];
    let mut best_joint = f64::INFINITY;
    for &i in &candidates {
        let j = joint_loss(losses[i], energies[i], lambda_e);
        let better = j < best_joint - 1e-12
            || ((j - best_joint).abs() <= 1e-12
                && energies[i].joules() < energies[best_idx].joules());
        if better {
            best_joint = j;
            best_idx = i;
        }
    }
    best_idx
}

#[cfg(test)]
mod tests {
    use super::*;

    fn joules(vals: &[f64]) -> Vec<Joules> {
        vals.iter().map(|&v| Joules::new(v)).collect()
    }

    #[test]
    fn candidates_contain_argmin() {
        let losses = [1.0, 0.5, 2.0];
        let c = select_candidates(&losses, 0.0, CandidateRule::Margin);
        assert_eq!(c, vec![1]);
    }

    #[test]
    fn margin_rule_widens_with_gamma() {
        let losses = [1.0, 0.5, 2.0, 0.9];
        let c = select_candidates(&losses, 0.5, CandidateRule::Margin);
        assert_eq!(c, vec![0, 1, 3]);
    }

    #[test]
    fn paper_rule_is_looser() {
        let losses = [1.0, 0.5, 1.4];
        let margin = select_candidates(&losses, 0.1, CandidateRule::Margin);
        let paper = select_candidates(&losses, 0.1, CandidateRule::PaperEq7);
        // Paper bound: 2*0.5 + 0.1 = 1.1 -> {0, 1}; margin: 0.6 -> {1}.
        assert_eq!(margin, vec![1]);
        assert_eq!(paper, vec![0, 1]);
        assert!(paper.len() >= margin.len());
    }

    #[test]
    fn lambda_zero_selects_min_loss() {
        let losses = [1.0, 0.5, 0.8];
        let energies = joules(&[0.1, 5.0, 0.2]);
        // γ large: every config is a candidate; λ=0 ignores energy.
        let i = select_config(&losses, &energies, 0.0, 10.0, CandidateRule::Margin);
        assert_eq!(i, 1);
    }

    #[test]
    fn lambda_one_selects_min_energy_among_candidates() {
        let losses = [1.0, 0.5, 0.8];
        let energies = joules(&[0.1, 5.0, 0.2]);
        let i = select_config(&losses, &energies, 1.0, 10.0, CandidateRule::Margin);
        assert_eq!(i, 0);
    }

    #[test]
    fn gamma_zero_forces_best_loss_even_at_high_lambda() {
        let losses = [1.0, 0.5, 0.8];
        let energies = joules(&[0.1, 5.0, 0.2]);
        // Φ* = {argmin} only; λ=1 cannot escape it.
        let i = select_config(&losses, &energies, 1.0, 0.0, CandidateRule::Margin);
        assert_eq!(i, 1);
    }

    #[test]
    fn intermediate_lambda_trades_off() {
        let losses = [0.5, 0.6];
        let energies = joules(&[3.0, 1.0]);
        // λ=0.01: joint(0) = 0.99*0.5+0.01*3 = 0.525; joint(1) = 0.604.
        assert_eq!(select_config(&losses, &energies, 0.01, 1.0, CandidateRule::Margin), 0);
        // λ=0.1: joint(0) = 0.75; joint(1) = 0.64 -> flips.
        assert_eq!(select_config(&losses, &energies, 0.1, 1.0, CandidateRule::Margin), 1);
    }

    #[test]
    fn ties_break_to_lower_energy() {
        let losses = [0.5, 0.5];
        let energies = joules(&[2.0, 1.0]);
        assert_eq!(select_config(&losses, &energies, 0.0, 0.5, CandidateRule::Margin), 1);
    }

    #[test]
    fn nan_losses_fall_back_to_argmin() {
        let losses = [f32::NAN, 0.5, f32::NAN];
        let c = select_candidates(&losses, 0.5, CandidateRule::Margin);
        assert!(c.contains(&1));
    }

    #[test]
    #[should_panic(expected = "lambda_e")]
    fn bad_lambda_panics() {
        let _ = joint_loss(1.0, Joules::new(1.0), 1.5);
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn negative_gamma_panics() {
        let _ = select_candidates(&[1.0], -0.1, CandidateRule::Margin);
    }
}
