//! Default knowledge-gating rules (§4.2.1 / Table 3).
//!
//! The paper's knowledge gate statically maps each driving context to a
//! configuration chosen by domain knowledge. The exact map is not printed,
//! but it is fully recoverable from Table 3's per-scene energy numbers
//! (DESIGN.md §2 shows the arithmetic); the rules below reproduce every
//! cell of that table:
//!
//! | Scene | Configuration | Total energy (J) |
//! |---|---|---|
//! | City | `{E(C_L+C_R+L)}` | 5.45 |
//! | Fog, Snow | `{L, R, E(C_L+C_R+L), E(C_L+C_R)}` | 13.96 |
//! | Junction, Motorway | `{E(C_L+C_R)}` | 2.87 |
//! | Night | `{C_R, L, R}` | 12.10 |
//! | Rain | `{C_L, C_R, L, R}` (full late fusion) | 13.27 |
//! | Rural | `{C_R, E(C_L+C_R)}` | 3.81 |

use crate::config::{ConfigId, ConfigSpace};
use ecofusion_scene::Context;
use std::collections::BTreeMap;

/// Builds the degraded-context fallback rules for the knowledge gate: per
/// context, an ordered preference list of configurations to try when the
/// primary Table 3 rule needs a sensor the health monitor has masked out.
///
/// The ordering encodes the same domain knowledge as the primary rules.
/// In optically clear contexts the gate prefers to stay on cameras
/// (cheap, accurate) and only then crosses to lidar/radar; in adverse
/// weather and at night it prefers the weather-proof pair first. Every
/// list ends with the four single-sensor configurations, so any single
/// healthy sensor always yields a runnable choice.
pub fn default_degraded_fallbacks(space: &ConfigSpace) -> BTreeMap<Context, Vec<usize>> {
    use ConfigSpace as S;
    let cameras_early = space.config_of(&[S::EARLY_CAMERAS]).0;
    let lr_early = space.config_of(&[S::EARLY_LR]).0;
    let lr_late = space.config_of(&[S::LIDAR, S::RADAR]).0;
    let lr_full = space.config_of(&[S::LIDAR, S::RADAR, S::EARLY_LR]).0;
    let cam_left = space.config_of(&[S::CAMERA_LEFT]).0;
    let cam_right = space.config_of(&[S::CAMERA_RIGHT]).0;
    let lidar = space.config_of(&[S::LIDAR]).0;
    let radar = space.config_of(&[S::RADAR]).0;

    let clear = vec![cameras_early, cam_right, cam_left, lr_early, lr_late, lidar, radar];
    let adverse =
        vec![lr_full, lr_early, lr_late, lidar, radar, cameras_early, cam_right, cam_left];
    let night = vec![lr_late, lr_early, lidar, radar, cameras_early, cam_right, cam_left];

    let mut fallbacks: BTreeMap<Context, Vec<usize>> = BTreeMap::new();
    for c in [Context::City, Context::Junction, Context::Motorway, Context::Rural] {
        fallbacks.insert(c, clear.clone());
    }
    for c in [Context::Fog, Context::Snow, Context::Rain] {
        fallbacks.insert(c, adverse.clone());
    }
    fallbacks.insert(Context::Night, night);
    fallbacks
}

/// Builds the Table 3 context → configuration map over a canonical
/// [`ConfigSpace`], as configuration indices suitable for
/// [`ecofusion_gating::KnowledgeGate`].
pub fn default_knowledge_rules(space: &ConfigSpace) -> BTreeMap<Context, usize> {
    use ConfigSpace as S;
    let mut rules: BTreeMap<Context, ConfigId> = BTreeMap::new();
    rules.insert(Context::City, space.config_of(&[S::EARLY_CCL]));
    let adverse = space.config_of(&[S::LIDAR, S::RADAR, S::EARLY_CCL, S::EARLY_CAMERAS]);
    rules.insert(Context::Fog, adverse);
    rules.insert(Context::Snow, adverse);
    let cameras_only = space.config_of(&[S::EARLY_CAMERAS]);
    rules.insert(Context::Junction, cameras_only);
    rules.insert(Context::Motorway, cameras_only);
    rules.insert(Context::Night, space.config_of(&[S::CAMERA_RIGHT, S::LIDAR, S::RADAR]));
    rules.insert(
        Context::Rain,
        space.config_of(&[S::CAMERA_LEFT, S::CAMERA_RIGHT, S::LIDAR, S::RADAR]),
    );
    rules.insert(Context::Rural, space.config_of(&[S::CAMERA_RIGHT, S::EARLY_CAMERAS]));
    rules.into_iter().map(|(c, id)| (c, id.0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecofusion_energy::{EnergyBreakdown, Px2Model, SensorPowerModel, StemPolicy};

    /// The acid test: the default rules must reproduce every Table 3 cell.
    #[test]
    fn rules_reproduce_table3_energies() {
        let space = ConfigSpace::canonical();
        let rules = default_knowledge_rules(&space);
        let px2 = Px2Model::default();
        let sensors = SensorPowerModel::default();
        let expect = [
            (Context::City, 5.45),
            (Context::Fog, 13.96),
            (Context::Junction, 2.87),
            (Context::Motorway, 2.87),
            (Context::Night, 12.10),
            (Context::Rain, 13.27),
            (Context::Rural, 3.81),
            (Context::Snow, 13.96),
        ];
        for (ctx, want) in expect {
            let id = ConfigId(rules[&ctx]);
            let specs = space.branch_specs(id);
            let b = EnergyBreakdown::compute(&px2, &sensors, &specs, StemPolicy::Static);
            let got = b.total_gated().joules();
            assert!(
                (got - want).abs() < 0.011,
                "{ctx:?}: got {got:.3} J, paper says {want} J (config {})",
                space.label(id)
            );
        }
    }

    #[test]
    fn rules_cover_all_contexts() {
        let space = ConfigSpace::canonical();
        let rules = default_knowledge_rules(&space);
        for c in Context::ALL {
            assert!(rules.contains_key(&c));
        }
    }

    #[test]
    fn degraded_fallbacks_cover_all_contexts_and_single_sensors() {
        let space = ConfigSpace::canonical();
        let fallbacks = default_degraded_fallbacks(&space);
        for c in Context::ALL {
            let list = &fallbacks[&c];
            assert!(!list.is_empty(), "{c:?}");
            // Every context's list contains every single-sensor config, so
            // one healthy sensor always leaves a runnable fallback.
            for single in [
                ConfigSpace::CAMERA_LEFT,
                ConfigSpace::CAMERA_RIGHT,
                ConfigSpace::LIDAR,
                ConfigSpace::RADAR,
            ] {
                let id = space.config_of(&[single]).0;
                assert!(list.contains(&id), "{c:?} missing single-sensor fallback {single:?}");
            }
            for idx in list {
                assert!(*idx < space.num_configs());
            }
        }
        // Clear contexts prefer cameras, adverse contexts lidar/radar.
        let city_first = fallbacks[&Context::City][0];
        assert_eq!(space.label(ConfigId(city_first)), "{E(C_L+C_R)}");
        let fog_first = fallbacks[&Context::Fog][0];
        assert_eq!(space.label(ConfigId(fog_first)), "{L, R, E(L+R)}");
    }

    #[test]
    fn adverse_contexts_use_radar() {
        let space = ConfigSpace::canonical();
        let rules = default_knowledge_rules(&space);
        for ctx in [Context::Fog, Context::Snow, Context::Night, Context::Rain] {
            let id = ConfigId(rules[&ctx]);
            let specs = space.branch_specs(id);
            let uses_radar =
                Px2Model::sensors_used(&specs).contains(&ecofusion_sensors::SensorKind::Radar);
            assert!(uses_radar, "{ctx:?} should keep radar on");
        }
    }
}
