//! Default knowledge-gating rules (§4.2.1 / Table 3).
//!
//! The paper's knowledge gate statically maps each driving context to a
//! configuration chosen by domain knowledge. The exact map is not printed,
//! but it is fully recoverable from Table 3's per-scene energy numbers
//! (DESIGN.md §2 shows the arithmetic); the rules below reproduce every
//! cell of that table:
//!
//! | Scene | Configuration | Total energy (J) |
//! |---|---|---|
//! | City | `{E(C_L+C_R+L)}` | 5.45 |
//! | Fog, Snow | `{L, R, E(C_L+C_R+L), E(C_L+C_R)}` | 13.96 |
//! | Junction, Motorway | `{E(C_L+C_R)}` | 2.87 |
//! | Night | `{C_R, L, R}` | 12.10 |
//! | Rain | `{C_L, C_R, L, R}` (full late fusion) | 13.27 |
//! | Rural | `{C_R, E(C_L+C_R)}` | 3.81 |

use crate::config::{ConfigId, ConfigSpace};
use ecofusion_scene::Context;
use std::collections::BTreeMap;

/// Builds the Table 3 context → configuration map over a canonical
/// [`ConfigSpace`], as configuration indices suitable for
/// [`ecofusion_gating::KnowledgeGate`].
pub fn default_knowledge_rules(space: &ConfigSpace) -> BTreeMap<Context, usize> {
    use ConfigSpace as S;
    let mut rules: BTreeMap<Context, ConfigId> = BTreeMap::new();
    rules.insert(Context::City, space.config_of(&[S::EARLY_CCL]));
    let adverse = space.config_of(&[S::LIDAR, S::RADAR, S::EARLY_CCL, S::EARLY_CAMERAS]);
    rules.insert(Context::Fog, adverse);
    rules.insert(Context::Snow, adverse);
    let cameras_only = space.config_of(&[S::EARLY_CAMERAS]);
    rules.insert(Context::Junction, cameras_only);
    rules.insert(Context::Motorway, cameras_only);
    rules.insert(Context::Night, space.config_of(&[S::CAMERA_RIGHT, S::LIDAR, S::RADAR]));
    rules.insert(
        Context::Rain,
        space.config_of(&[S::CAMERA_LEFT, S::CAMERA_RIGHT, S::LIDAR, S::RADAR]),
    );
    rules.insert(Context::Rural, space.config_of(&[S::CAMERA_RIGHT, S::EARLY_CAMERAS]));
    rules.into_iter().map(|(c, id)| (c, id.0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecofusion_energy::{EnergyBreakdown, Px2Model, SensorPowerModel, StemPolicy};

    /// The acid test: the default rules must reproduce every Table 3 cell.
    #[test]
    fn rules_reproduce_table3_energies() {
        let space = ConfigSpace::canonical();
        let rules = default_knowledge_rules(&space);
        let px2 = Px2Model::default();
        let sensors = SensorPowerModel::default();
        let expect = [
            (Context::City, 5.45),
            (Context::Fog, 13.96),
            (Context::Junction, 2.87),
            (Context::Motorway, 2.87),
            (Context::Night, 12.10),
            (Context::Rain, 13.27),
            (Context::Rural, 3.81),
            (Context::Snow, 13.96),
        ];
        for (ctx, want) in expect {
            let id = ConfigId(rules[&ctx]);
            let specs = space.branch_specs(id);
            let b = EnergyBreakdown::compute(&px2, &sensors, &specs, StemPolicy::Static);
            let got = b.total_gated().joules();
            assert!(
                (got - want).abs() < 0.011,
                "{ctx:?}: got {got:.3} J, paper says {want} J (config {})",
                space.label(id)
            );
        }
    }

    #[test]
    fn rules_cover_all_contexts() {
        let space = ConfigSpace::canonical();
        let rules = default_knowledge_rules(&space);
        for c in Context::ALL {
            assert!(rules.contains_key(&c));
        }
    }

    #[test]
    fn adverse_contexts_use_radar() {
        let space = ConfigSpace::canonical();
        let rules = default_knowledge_rules(&space);
        for ctx in [Context::Fog, Context::Snow, Context::Night, Context::Rain] {
            let id = ConfigId(rules[&ctx]);
            let specs = space.branch_specs(id);
            let uses_radar =
                Px2Model::sensors_used(&specs).contains(&ecofusion_sensors::SensorKind::Radar);
            assert!(uses_radar, "{ctx:?} should keep radar on");
        }
    }
}
