//! Whole-model (de)serialization.
//!
//! §5.5.1 of the paper: "the designer would first need to train the model
//! on the appropriate dataset before ... the model can be compiled for
//! hardware". A deployable reproduction therefore needs trained models to
//! round-trip through disk; [`ModelSnapshot`] captures every trainable
//! parameter and batch-norm buffer of the stems, branches, and learned
//! gates, together with the shape metadata needed to validate a restore.

use crate::model::EcoFusionModel;
use ecofusion_tensor::rng::Rng;
use ecofusion_tensor::serialize::{ParamSnapshot, RestoreSnapshotError};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use std::path::Path;

/// A serializable snapshot of a trained [`EcoFusionModel`].
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ModelSnapshot {
    grid: usize,
    num_classes: usize,
    stems: Vec<ParamSnapshot>,
    branches: Vec<ParamSnapshot>,
    deep_gate: ParamSnapshot,
    attention_gate: ParamSnapshot,
}

impl ModelSnapshot {
    /// Captures a model's weights.
    pub fn capture(model: &mut EcoFusionModel) -> Self {
        let grid = model.grid();
        let num_classes = model.num_classes();
        let stems = model.stems_mut().iter_mut().map(|s| ParamSnapshot::capture(s)).collect();
        let branches = model.branches_mut().iter_mut().map(|b| ParamSnapshot::capture(b)).collect();
        let gates = model.gates_mut();
        let deep_gate = ParamSnapshot::capture(&mut gates.deep);
        let attention_gate = ParamSnapshot::capture(&mut gates.attention);
        ModelSnapshot { grid, num_classes, stems, branches, deep_gate, attention_gate }
    }

    /// Observation grid the snapshot was trained for.
    pub fn grid(&self) -> usize {
        self.grid
    }

    /// Number of object classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Rebuilds a runnable model from the snapshot.
    ///
    /// # Errors
    /// Returns [`RestoreModelError`] if any component's parameter count or
    /// shape does not match (e.g. a snapshot from a different version).
    pub fn restore(&self) -> Result<EcoFusionModel, RestoreModelError> {
        // Seed is irrelevant: every weight is overwritten.
        let mut rng = Rng::new(0);
        let mut model = EcoFusionModel::new(self.grid, self.num_classes, &mut rng);
        if self.stems.len() != model.stems_mut().len() {
            return Err(RestoreModelError::ComponentCount {
                component: "stems",
                expected: self.stems.len(),
                found: model.stems_mut().len(),
            });
        }
        if self.branches.len() != model.branches_mut().len() {
            return Err(RestoreModelError::ComponentCount {
                component: "branches",
                expected: self.branches.len(),
                found: model.branches_mut().len(),
            });
        }
        for (i, (snap, stem)) in self.stems.iter().zip(model.stems_mut().iter_mut()).enumerate() {
            snap.restore(stem).map_err(|source| RestoreModelError::Component {
                component: "stem",
                index: i,
                source,
            })?;
        }
        for (i, (snap, branch)) in
            self.branches.iter().zip(model.branches_mut().iter_mut()).enumerate()
        {
            snap.restore(branch).map_err(|source| RestoreModelError::Component {
                component: "branch",
                index: i,
                source,
            })?;
        }
        let gates = model.gates_mut();
        self.deep_gate.restore(&mut gates.deep).map_err(|source| RestoreModelError::Component {
            component: "deep gate",
            index: 0,
            source,
        })?;
        self.attention_gate.restore(&mut gates.attention).map_err(|source| {
            RestoreModelError::Component { component: "attention gate", index: 0, source }
        })?;
        Ok(model)
    }

    /// Serializes the snapshot as JSON to `path`.
    ///
    /// # Errors
    /// Returns any I/O or serialization error.
    pub fn save_json(&self, path: &Path) -> Result<(), Box<dyn Error>> {
        let json = serde_json::to_string(self)?;
        std::fs::write(path, json)?;
        Ok(())
    }

    /// Reads a snapshot back from JSON.
    ///
    /// # Errors
    /// Returns any I/O or deserialization error.
    pub fn load_json(path: &Path) -> Result<ModelSnapshot, Box<dyn Error>> {
        let json = std::fs::read_to_string(path)?;
        Ok(serde_json::from_str(&json)?)
    }
}

/// Error restoring a [`ModelSnapshot`].
#[derive(Debug)]
pub enum RestoreModelError {
    /// A component group has the wrong cardinality.
    ComponentCount {
        /// Which group ("stems", "branches").
        component: &'static str,
        /// Count in the snapshot.
        expected: usize,
        /// Count in the freshly built model.
        found: usize,
    },
    /// One component failed to restore.
    Component {
        /// Which component kind.
        component: &'static str,
        /// Index within the group.
        index: usize,
        /// Underlying snapshot error.
        source: RestoreSnapshotError,
    },
}

impl fmt::Display for RestoreModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreModelError::ComponentCount { component, expected, found } => {
                write!(f, "snapshot has {expected} {component} but the model wants {found}")
            }
            RestoreModelError::Component { component, index, source } => {
                write!(f, "{component} {index}: {source}")
            }
        }
    }
}

impl Error for RestoreModelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RestoreModelError::Component { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl EcoFusionModel {
    /// Captures a weight snapshot (see [`ModelSnapshot`]).
    pub fn snapshot(&mut self) -> ModelSnapshot {
        ModelSnapshot::capture(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Dataset, DatasetSpec};
    use crate::model::InferenceOptions;
    use crate::trainer::{TrainConfig, Trainer};
    use ecofusion_gating::GateKind;

    fn small_trained() -> (EcoFusionModel, Dataset) {
        let mut spec = DatasetSpec::small(51);
        spec.num_scenes = 20;
        let data = Dataset::generate(&spec);
        let config = TrainConfig { branch_epochs: 1, gate_epochs: 1, ..TrainConfig::fast_demo() };
        let model = Trainer::new(config, 52).train(&data).expect("train");
        (model, data)
    }

    #[test]
    fn snapshot_roundtrip_preserves_inference() {
        let (mut model, data) = small_trained();
        let snap = model.snapshot();
        let mut restored = snap.restore().expect("restore");
        let opts = InferenceOptions::new(0.01, 0.5).with_gate(GateKind::Deep);
        for frame in data.test().iter().take(3) {
            let a = model.infer(frame, &opts).expect("infer a");
            let b = restored.infer(frame, &opts).expect("infer b");
            assert_eq!(a.selected_config, b.selected_config);
            assert_eq!(a.predicted_losses, b.predicted_losses);
            assert_eq!(a.detections, b.detections);
        }
    }

    #[test]
    fn snapshot_json_roundtrip() {
        let (mut model, _) = small_trained();
        let snap = model.snapshot();
        let dir = std::env::temp_dir().join("ecofusion_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        snap.save_json(&path).expect("save");
        let back = ModelSnapshot::load_json(&path).expect("load");
        assert_eq!(snap, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn snapshot_metadata() {
        let (mut model, _) = small_trained();
        let snap = model.snapshot();
        assert_eq!(snap.grid(), 32);
        assert_eq!(snap.num_classes(), 8);
    }
}
