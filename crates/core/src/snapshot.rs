//! Whole-model (de)serialization.
//!
//! §5.5.1 of the paper: "the designer would first need to train the model
//! on the appropriate dataset before ... the model can be compiled for
//! hardware". A deployable reproduction therefore needs trained models to
//! round-trip through disk; [`ModelSnapshot`] captures every trainable
//! parameter and batch-norm buffer of the stems, branches, and learned
//! gates, together with the shape metadata needed to validate a restore.

use crate::dataset::{Dataset, DatasetSpec};
use crate::model::EcoFusionModel;
use ecofusion_detect::QuantBranch;
use ecofusion_sensors::SensorKind;
use ecofusion_tensor::quant::QuantPipe;
use ecofusion_tensor::rng::Rng;
use ecofusion_tensor::serialize::{ParamSnapshot, RestoreSnapshotError};
use ecofusion_tensor::tensor::Tensor;
use ecofusion_tensor::QuantizeError;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use std::path::Path;

/// A serializable snapshot of a trained [`EcoFusionModel`].
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ModelSnapshot {
    grid: usize,
    num_classes: usize,
    stems: Vec<ParamSnapshot>,
    branches: Vec<ParamSnapshot>,
    deep_gate: ParamSnapshot,
    attention_gate: ParamSnapshot,
}

impl ModelSnapshot {
    /// Captures a model's weights.
    pub fn capture(model: &mut EcoFusionModel) -> Self {
        let grid = model.grid();
        let num_classes = model.num_classes();
        let stems = model.stems_mut().iter_mut().map(|s| ParamSnapshot::capture(s)).collect();
        let branches = model.branches_mut().iter_mut().map(|b| ParamSnapshot::capture(b)).collect();
        let gates = model.gates_mut();
        let deep_gate = ParamSnapshot::capture(&mut gates.deep);
        let attention_gate = ParamSnapshot::capture(&mut gates.attention);
        ModelSnapshot { grid, num_classes, stems, branches, deep_gate, attention_gate }
    }

    /// Observation grid the snapshot was trained for.
    pub fn grid(&self) -> usize {
        self.grid
    }

    /// Number of object classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Rebuilds a runnable model from the snapshot.
    ///
    /// # Errors
    /// Returns [`RestoreModelError`] if any component's parameter count or
    /// shape does not match (e.g. a snapshot from a different version).
    pub fn restore(&self) -> Result<EcoFusionModel, RestoreModelError> {
        // Seed is irrelevant: every weight is overwritten.
        let mut rng = Rng::new(0);
        let mut model = EcoFusionModel::new(self.grid, self.num_classes, &mut rng);
        if self.stems.len() != model.stems_mut().len() {
            return Err(RestoreModelError::ComponentCount {
                component: "stems",
                expected: self.stems.len(),
                found: model.stems_mut().len(),
            });
        }
        if self.branches.len() != model.branches_mut().len() {
            return Err(RestoreModelError::ComponentCount {
                component: "branches",
                expected: self.branches.len(),
                found: model.branches_mut().len(),
            });
        }
        for (i, (snap, stem)) in self.stems.iter().zip(model.stems_mut().iter_mut()).enumerate() {
            snap.restore(stem).map_err(|source| RestoreModelError::Component {
                component: "stem",
                index: i,
                source,
            })?;
        }
        for (i, (snap, branch)) in
            self.branches.iter().zip(model.branches_mut().iter_mut()).enumerate()
        {
            snap.restore(branch).map_err(|source| RestoreModelError::Component {
                component: "branch",
                index: i,
                source,
            })?;
        }
        let gates = model.gates_mut();
        self.deep_gate.restore(&mut gates.deep).map_err(|source| RestoreModelError::Component {
            component: "deep gate",
            index: 0,
            source,
        })?;
        self.attention_gate.restore(&mut gates.attention).map_err(|source| {
            RestoreModelError::Component { component: "attention gate", index: 0, source }
        })?;
        Ok(model)
    }

    /// Serializes the snapshot as JSON to `path`.
    ///
    /// # Errors
    /// Returns any I/O or serialization error.
    pub fn save_json(&self, path: &Path) -> Result<(), Box<dyn Error>> {
        let json = serde_json::to_string(self)?;
        std::fs::write(path, json)?;
        Ok(())
    }

    /// Reads a snapshot back from JSON.
    ///
    /// # Errors
    /// Returns any I/O or deserialization error.
    pub fn load_json(path: &Path) -> Result<ModelSnapshot, Box<dyn Error>> {
        let json = std::fs::read_to_string(path)?;
        Ok(serde_json::from_str(&json)?)
    }
}

/// Seed of the synthetic fixture dataset used to calibrate int8
/// activation scales. Fixed so that quantizing the same weights always
/// produces the same image (shard replicas must agree bit for bit).
pub const QUANT_CALIB_SEED: u64 = 90221;

/// Number of fixture frames propagated during calibration.
pub const QUANT_CALIB_FRAMES: usize = 4;

/// The post-training int8 image of a model's stems and branches, stored
/// beside [`ModelSnapshot`]: per-output-channel symmetric weight scales,
/// per-tensor activation scales calibrated over the seeded fixtures, and
/// folded batch-norm affines. Gates and the optimizer are untouched —
/// `GateScore`/`Select` always run at full precision.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct QuantSnapshot {
    grid: usize,
    num_classes: usize,
    /// One quantized pipe per canonical sensor's stem.
    pub(crate) stems: Vec<QuantPipe>,
    /// One quantized branch per canonical branch.
    pub(crate) branches: Vec<QuantBranch>,
}

impl QuantSnapshot {
    /// Quantizes a model's stems and branches, calibrating activation
    /// scales by propagating [`QUANT_CALIB_FRAMES`] seeded fixture frames
    /// through the f32 network.
    ///
    /// # Errors
    /// Returns the first layer's [`QuantizeError`] (unreachable for the
    /// canonical Conv/BN/ReLU/MaxPool architecture).
    pub fn capture(model: &EcoFusionModel) -> Result<Self, QuantizeError> {
        let mut spec = DatasetSpec::small(QUANT_CALIB_SEED);
        spec.grid = model.grid;
        let data = Dataset::generate(&spec);
        let frames: Vec<_> = data.test().iter().take(QUANT_CALIB_FRAMES).collect();
        // Stems: calibrate each on its own sensor's grids; keep the f32
        // output activations as the branch calibration set.
        let mut stems = Vec::with_capacity(SensorKind::COUNT);
        let mut stem_acts: Vec<Vec<Tensor>> = Vec::with_capacity(SensorKind::COUNT);
        for k in SensorKind::ALL {
            let calib: Vec<Tensor> = frames.iter().map(|f| f.obs.grid(k).clone()).collect();
            let (pipe, acts) = model.stems[k.index()].quantize(&calib)?;
            stems.push(pipe);
            stem_acts.push(acts);
        }
        // Branches: each calibrates on the channel-concatenated stem
        // activations of the sensors it consumes, per fixture frame.
        let mut branches = Vec::with_capacity(model.branches.len());
        for (b, spec_b) in model.space.branches().iter().enumerate() {
            let sensors = spec_b.sensors();
            let calib: Vec<Tensor> = (0..frames.len())
                .map(|i| {
                    let parts: Vec<&Tensor> =
                        sensors.iter().map(|k| &stem_acts[k.index()][i]).collect();
                    Tensor::concat_channels(&parts)
                })
                .collect();
            branches.push(model.branches[b].quantize(&calib)?);
        }
        Ok(QuantSnapshot { grid: model.grid, num_classes: model.num_classes(), stems, branches })
    }

    /// Observation grid the image was built for.
    pub fn grid(&self) -> usize {
        self.grid
    }

    /// Number of object classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The quantized stem pipe of the canonical sensor at `index`
    /// ([`SensorKind::index`]).
    pub fn stem(&self, index: usize) -> &QuantPipe {
        &self.stems[index]
    }

    /// The quantized image of the canonical branch at `index` (the same
    /// ordering as the model's branch table).
    pub fn branch(&self, index: usize) -> &QuantBranch {
        &self.branches[index]
    }

    /// Serializes the image as JSON to `path`.
    ///
    /// # Errors
    /// Returns any I/O or serialization error.
    pub fn save_json(&self, path: &Path) -> Result<(), Box<dyn Error>> {
        let json = serde_json::to_string(self)?;
        std::fs::write(path, json)?;
        Ok(())
    }

    /// Reads an image back from JSON.
    ///
    /// # Errors
    /// Returns any I/O or deserialization error.
    pub fn load_json(path: &Path) -> Result<QuantSnapshot, Box<dyn Error>> {
        let json = std::fs::read_to_string(path)?;
        Ok(serde_json::from_str(&json)?)
    }
}

/// Error restoring a [`ModelSnapshot`].
#[derive(Debug)]
pub enum RestoreModelError {
    /// A component group has the wrong cardinality.
    ComponentCount {
        /// Which group ("stems", "branches").
        component: &'static str,
        /// Count in the snapshot.
        expected: usize,
        /// Count in the freshly built model.
        found: usize,
    },
    /// One component failed to restore.
    Component {
        /// Which component kind.
        component: &'static str,
        /// Index within the group.
        index: usize,
        /// Underlying snapshot error.
        source: RestoreSnapshotError,
    },
    /// A [`QuantSnapshot`] does not match the model it is installed into.
    QuantMismatch {
        /// Which quantity disagrees ("grid", "num_classes", …).
        what: &'static str,
        /// The model's value.
        expected: usize,
        /// The image's value.
        found: usize,
    },
}

impl fmt::Display for RestoreModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreModelError::ComponentCount { component, expected, found } => {
                write!(f, "snapshot has {expected} {component} but the model wants {found}")
            }
            RestoreModelError::Component { component, index, source } => {
                write!(f, "{component} {index}: {source}")
            }
            RestoreModelError::QuantMismatch { what, expected, found } => {
                write!(f, "int8 image {what} {found} does not match the model's {expected}")
            }
        }
    }
}

impl Error for RestoreModelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RestoreModelError::Component { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl EcoFusionModel {
    /// Captures a weight snapshot (see [`ModelSnapshot`]).
    pub fn snapshot(&mut self) -> ModelSnapshot {
        ModelSnapshot::capture(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Dataset, DatasetSpec};
    use crate::model::InferenceOptions;
    use crate::trainer::{TrainConfig, Trainer};
    use ecofusion_gating::GateKind;

    fn small_trained() -> (EcoFusionModel, Dataset) {
        let mut spec = DatasetSpec::small(51);
        spec.num_scenes = 20;
        let data = Dataset::generate(&spec);
        let config = TrainConfig { branch_epochs: 1, gate_epochs: 1, ..TrainConfig::fast_demo() };
        let model = Trainer::new(config, 52).train(&data).expect("train");
        (model, data)
    }

    #[test]
    fn snapshot_roundtrip_preserves_inference() {
        let (mut model, data) = small_trained();
        let snap = model.snapshot();
        let mut restored = snap.restore().expect("restore");
        let opts = InferenceOptions::new(0.01, 0.5).with_gate(GateKind::Deep);
        for frame in data.test().iter().take(3) {
            let a = model.infer(frame, &opts).expect("infer a");
            let b = restored.infer(frame, &opts).expect("infer b");
            assert_eq!(a.selected_config, b.selected_config);
            assert_eq!(a.predicted_losses, b.predicted_losses);
            assert_eq!(a.detections, b.detections);
        }
    }

    #[test]
    fn snapshot_json_roundtrip() {
        let (mut model, _) = small_trained();
        let snap = model.snapshot();
        let dir = std::env::temp_dir().join("ecofusion_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        snap.save_json(&path).expect("save");
        let back = ModelSnapshot::load_json(&path).expect("load");
        assert_eq!(snap, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn snapshot_metadata() {
        let (mut model, _) = small_trained();
        let snap = model.snapshot();
        assert_eq!(snap.grid(), 32);
        assert_eq!(snap.num_classes(), 8);
    }

    #[test]
    fn quant_snapshot_roundtrips_and_reinstalls() {
        let (mut model, data) = small_trained();
        let qsnap = model.ensure_quant().expect("quantize").clone();
        assert_eq!(qsnap.grid(), 32);
        assert_eq!(qsnap.num_classes(), 8);
        assert_eq!(qsnap.stems.len(), 4);
        assert_eq!(qsnap.branches.len(), 7);
        let dir = std::env::temp_dir().join("ecofusion_quant_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("quant.json");
        qsnap.save_json(&path).expect("save");
        let back = QuantSnapshot::load_json(&path).expect("load");
        assert_eq!(qsnap, back);
        std::fs::remove_file(&path).ok();
        // Installing the loaded image skips recalibration and infers
        // identically to the freshly built one.
        let opts = crate::model::InferenceOptions::new(0.01, 0.5)
            .with_precision(ecofusion_energy::Precision::Int8);
        let fresh = model.infer(&data.test()[0], &opts).expect("infer fresh");
        let mut restored = model.snapshot().restore().expect("restore");
        restored.install_quant(back).expect("install");
        let replayed = restored.infer(&data.test()[0], &opts).expect("infer installed");
        assert_eq!(fresh.selected_config, replayed.selected_config);
        assert_eq!(fresh.detections, replayed.detections);
    }

    #[test]
    fn quant_snapshot_capture_is_deterministic() {
        let (mut model, _) = small_trained();
        let a = model.ensure_quant().expect("quantize").clone();
        let _ = model.stems_mut(); // invalidate without mutating weights
        let b = model.ensure_quant().expect("requantize").clone();
        assert_eq!(a, b, "same weights must produce the same int8 image");
    }

    #[test]
    fn install_quant_rejects_mismatched_image() {
        let (mut model, _) = small_trained();
        let qsnap = model.ensure_quant().expect("quantize").clone();
        let mut rng = Rng::new(7);
        let mut other = EcoFusionModel::new(48, 8, &mut rng);
        let err = other.install_quant(qsnap).unwrap_err();
        assert!(matches!(err, RestoreModelError::QuantMismatch { what: "grid", .. }), "{err}");
        assert!(!err.to_string().is_empty());
    }
}
