//! EcoFusion core: the paper's primary contribution.
//!
//! This crate wires the substrates together into the adaptive pipeline of
//! Fig. 3 / Algorithm 1:
//!
//! 1. sensor observations pass through per-modality [`Stem`]s;
//! 2. a [`Gate`](ecofusion_gating::Gate) estimates the fusion loss of every
//!    configuration `φ ∈ Φ` from the stem features;
//! 3. [`select_candidates`] keeps the configurations within `γ` of the best
//!    (Eq. 7), [`joint_loss`] scores them by
//!    `(1 − λ_E)·L_f(φ) + λ_E·E(φ)` (Eq. 8), and the argmin `φ*` is chosen
//!    (Eq. 9);
//! 4. only the branches of `φ*` execute, and their outputs are fused with
//!    weighted boxes fusion.
//!
//! Main types: [`ConfigSpace`] (Φ: the 7 canonical branches and their 127
//! ensembles), [`EcoFusionModel`] (the runnable pipeline),
//! [`Trainer`]/[`TrainConfig`] (supervised branch training followed by gate
//! regression), and [`Dataset`]/[`DatasetSpec`] (synthetic RADIATE-like
//! frames).
//!
//! [`Stem`]: ecofusion_detect::Stem

pub mod config;
pub mod dataset;
pub mod knowledge;
pub mod model;
pub mod optimizer;
pub mod pipeline;
pub mod snapshot;
pub mod temporal;
pub mod trainer;

pub use config::{BranchId, ConfigId, ConfigSpace};
pub use dataset::{Dataset, DatasetMix, DatasetSpec, Frame};
pub use ecofusion_energy::Precision;
pub use knowledge::{default_degraded_fallbacks, default_knowledge_rules};
pub use model::{
    EcoFusionModel, GateSet, InferenceOptions, InferenceOutput, UNAVAILABLE_SENSOR_PENALTY,
};
pub use optimizer::{joint_loss, select_candidates, select_config, CandidateRule};
pub use pipeline::{trace_frame, PipelinePlan, StemCacheRouter, StemFeatureCache, ALL_SENSOR_BITS};
pub use snapshot::{ModelSnapshot, QuantSnapshot, RestoreModelError};
pub use temporal::{ClockGatingController, EpisodeEnergyReport, SensorSchedule};
pub use trainer::{TrainConfig, TrainError, Trainer};
