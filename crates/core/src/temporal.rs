//! Temporal sensor clock gating (paper §5.5.2, extended).
//!
//! Table 3 assumes a static per-scenario sensor schedule. The paper's
//! discussion goes further: *"Temporal modeling can enable the context to
//! be estimated across time instead of for a single input, allowing clock
//! gating for specific periods."* This module implements that extension as
//! a deployable controller:
//!
//! * a sensor is clock gated only after it has been unused for
//!   `hold_frames` consecutive frames (hysteresis — one odd frame must not
//!   power-cycle a sensor);
//! * a gated rotating sensor needs `spinup_frames` to become usable again
//!   (the paper: rotating lidar/radar "require several seconds to get back
//!   up to speed"), during which it pays full power but delivers no
//!   measurements — so the controller also reports which sensors are
//!   *available* to the configuration selector each frame.

use ecofusion_energy::{Joules, SensorPowerModel, SensorState};
use ecofusion_sensors::SensorKind;
use serde::{Deserialize, Serialize};

/// Per-frame schedule decision for all four sensors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SensorSchedule {
    states: [ScheduleState; SensorKind::COUNT],
}

/// Internal per-sensor scheduling state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum ScheduleState {
    /// Measuring and delivering data.
    Active,
    /// Clock gated (motor power only for rotating sensors).
    Gated,
    /// Spinning back up: paying full power, not yet delivering data.
    SpinningUp {
        /// Frames remaining until usable.
        remaining: usize,
    },
}

impl SensorSchedule {
    /// Whether a sensor currently delivers usable measurements.
    pub fn is_available(&self, kind: SensorKind) -> bool {
        matches!(self.states[kind.index()], ScheduleState::Active)
    }

    /// The billing state of a sensor for energy accounting.
    pub fn energy_state(&self, kind: SensorKind) -> SensorState {
        match self.states[kind.index()] {
            ScheduleState::Gated => SensorState::Gated,
            // Spin-up pays full power (motor accelerating + electronics).
            ScheduleState::Active | ScheduleState::SpinningUp { .. } => SensorState::Active,
        }
    }

    /// Sensors currently available to the configuration selector.
    pub fn available(&self) -> Vec<SensorKind> {
        SensorKind::ALL.iter().copied().filter(|k| self.is_available(*k)).collect()
    }
}

/// Hysteretic clock-gating controller.
///
/// # Example
///
/// ```
/// use ecofusion_core::ClockGatingController;
/// use ecofusion_sensors::SensorKind;
///
/// let mut ctl = ClockGatingController::new(3, 2);
/// // Radar unused for three consecutive frames -> gated on the third.
/// let cameras = [SensorKind::CameraLeft, SensorKind::CameraRight];
/// ctl.step(&cameras);
/// ctl.step(&cameras);
/// let s = ctl.step(&cameras);
/// assert!(!s.is_available(SensorKind::Radar));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClockGatingController {
    hold_frames: usize,
    spinup_frames: usize,
    idle_counts: [usize; SensorKind::COUNT],
    states: [ScheduleState; SensorKind::COUNT],
}

impl ClockGatingController {
    /// Creates a controller: gate after `hold_frames` unused frames;
    /// rotating sensors need `spinup_frames` to come back.
    ///
    /// # Panics
    /// Panics if `hold_frames` is zero.
    pub fn new(hold_frames: usize, spinup_frames: usize) -> Self {
        assert!(hold_frames > 0, "hold_frames must be positive");
        ClockGatingController {
            hold_frames,
            spinup_frames,
            idle_counts: [0; SensorKind::COUNT],
            states: [ScheduleState::Active; SensorKind::COUNT],
        }
    }

    /// Advances one frame. `wanted` lists the sensors the selected
    /// configuration wants to consume this frame; the returned schedule
    /// says which sensors actually deliver data and how each is billed.
    pub fn step(&mut self, wanted: &[SensorKind]) -> SensorSchedule {
        for kind in SensorKind::ALL {
            let i = kind.index();
            let is_wanted = wanted.contains(&kind);
            self.states[i] = match self.states[i] {
                ScheduleState::Active => {
                    if is_wanted {
                        self.idle_counts[i] = 0;
                        ScheduleState::Active
                    } else {
                        self.idle_counts[i] += 1;
                        if self.idle_counts[i] >= self.hold_frames {
                            ScheduleState::Gated
                        } else {
                            ScheduleState::Active
                        }
                    }
                }
                ScheduleState::Gated => {
                    if is_wanted {
                        self.idle_counts[i] = 0;
                        if kind.has_motor() && self.spinup_frames > 0 {
                            ScheduleState::SpinningUp { remaining: self.spinup_frames }
                        } else {
                            // Cameras restart instantly.
                            ScheduleState::Active
                        }
                    } else {
                        ScheduleState::Gated
                    }
                }
                ScheduleState::SpinningUp { remaining } => {
                    // Spin-up continues regardless of demand this frame.
                    if remaining > 1 {
                        ScheduleState::SpinningUp { remaining: remaining - 1 }
                    } else {
                        ScheduleState::Active
                    }
                }
            };
        }
        SensorSchedule { states: self.states }
    }

    /// Resets every sensor to active (e.g. at ignition).
    pub fn reset(&mut self) {
        self.idle_counts = [0; SensorKind::COUNT];
        self.states = [ScheduleState::Active; SensorKind::COUNT];
    }
}

/// Aggregated sensor energy over an episode, with and without the
/// controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpisodeEnergyReport {
    /// Frames simulated.
    pub frames: usize,
    /// Sensor energy with the clock-gating controller.
    pub gated: Joules,
    /// Sensor energy with every sensor always active.
    pub always_on: Joules,
}

impl EpisodeEnergyReport {
    /// Relative saving of the controller, percent.
    pub fn savings_pct(&self) -> f64 {
        if self.always_on.joules() <= 0.0 {
            0.0
        } else {
            (self.always_on.joules() - self.gated.joules()) / self.always_on.joules() * 100.0
        }
    }

    /// Simulates the controller over a per-frame demand sequence and
    /// accounts sensor energy with `power`.
    pub fn simulate(
        controller: &mut ClockGatingController,
        power: &SensorPowerModel,
        demands: &[Vec<SensorKind>],
    ) -> EpisodeEnergyReport {
        let mut gated = Joules::zero();
        for wanted in demands {
            let schedule = controller.step(wanted);
            for kind in SensorKind::ALL {
                gated += power.frame_energy(kind, schedule.energy_state(kind));
            }
        }
        let always_on = power.total_frame_energy_all_active() * demands.len() as f64;
        EpisodeEnergyReport { frames: demands.len(), gated, always_on }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use SensorKind::{CameraLeft as CL, CameraRight as CR, Lidar as L, Radar as R};

    #[test]
    fn gates_after_hold_frames() {
        let mut ctl = ClockGatingController::new(3, 2);
        let wanted = [CL, CR, L];
        assert!(ctl.step(&wanted).is_available(R));
        assert!(ctl.step(&wanted).is_available(R));
        // Third consecutive unused frame: gated.
        assert!(!ctl.step(&wanted).is_available(R));
    }

    #[test]
    fn demand_resets_hold_counter() {
        let mut ctl = ClockGatingController::new(2, 1);
        ctl.step(&[CL]); // radar idle 1
        ctl.step(&[CL, R]); // radar used: counter resets
        let s = ctl.step(&[CL]); // idle 1 again — not yet gated
        assert!(s.is_available(R));
    }

    #[test]
    fn rotating_sensor_needs_spinup() {
        let mut ctl = ClockGatingController::new(1, 2);
        // Gate the radar.
        let s = ctl.step(&[CL]);
        assert!(!s.is_available(R));
        // Demand it again: spins up for 2 frames, unavailable meanwhile.
        let s = ctl.step(&[R]);
        assert!(!s.is_available(R), "spin-up frame 1");
        assert_eq!(s.energy_state(R), SensorState::Active, "spin-up pays full power");
        let s = ctl.step(&[R]);
        assert!(!s.is_available(R), "spin-up frame 2");
        let s = ctl.step(&[R]);
        assert!(s.is_available(R), "available after the two spin-up frames");
    }

    #[test]
    fn cameras_restart_instantly() {
        let mut ctl = ClockGatingController::new(1, 3);
        let s = ctl.step(&[R]); // cameras gated (hold = 1)
        assert!(!s.is_available(CL));
        let s = ctl.step(&[CL, R]);
        assert!(s.is_available(CL), "camera has no motor: instant restart");
    }

    #[test]
    fn stable_demand_saves_energy() {
        let mut ctl = ClockGatingController::new(2, 2);
        let power = SensorPowerModel::default();
        // City-like episode: cameras + lidar wanted, radar never.
        let demands: Vec<Vec<SensorKind>> = (0..50).map(|_| vec![CL, CR, L]).collect();
        let report = EpisodeEnergyReport::simulate(&mut ctl, &power, &demands);
        assert_eq!(report.frames, 50);
        assert!(report.gated.joules() < report.always_on.joules());
        // Radar (24 W at 4 Hz) dominates: savings should be substantial.
        assert!(report.savings_pct() > 30.0, "{:.1}%", report.savings_pct());
    }

    #[test]
    fn oscillating_demand_defeats_gating() {
        // Rapidly alternating demand with long hold: nothing gets gated.
        let mut ctl = ClockGatingController::new(5, 2);
        let power = SensorPowerModel::default();
        let demands: Vec<Vec<SensorKind>> =
            (0..20).map(|i| if i % 2 == 0 { vec![CL, CR, L, R] } else { vec![R, L] }).collect();
        let report = EpisodeEnergyReport::simulate(&mut ctl, &power, &demands);
        assert!(report.savings_pct() < 1e-9, "{:.2}%", report.savings_pct());
    }

    #[test]
    fn reset_restores_all_active() {
        let mut ctl = ClockGatingController::new(1, 2);
        ctl.step(&[]);
        ctl.reset();
        let s = ctl.step(&[CL, CR, L, R]);
        for k in SensorKind::ALL {
            assert!(s.is_available(k));
        }
    }

    #[test]
    #[should_panic(expected = "hold_frames")]
    fn zero_hold_panics() {
        let _ = ClockGatingController::new(0, 1);
    }
}
