//! The configuration space Φ.

use ecofusion_energy::{BranchSpec, Joules, Millis, Px2Model, StemPolicy};
use ecofusion_sensors::SensorKind;
use serde::{Deserialize, Serialize};

/// Index of a branch in [`ConfigSpace::branches`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BranchId(pub usize);

/// Index of a configuration (an ensemble of branches) in Φ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ConfigId(pub usize);

/// The paper's configuration space: four single-sensor branches plus three
/// early-fusion branches (§4.3: "one branch for each input sensor and three
/// early fusion branches that fuse both homogeneous and heterogeneous sets
/// of sensors"), and every non-empty ensemble of those branches as a
/// configuration (late fusion over the ensemble, so the model can mix
/// no / early / late fusion freely).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigSpace {
    branches: Vec<BranchSpec>,
}

impl ConfigSpace {
    /// Branch indices of the canonical layout.
    pub const CAMERA_LEFT: BranchId = BranchId(0);
    /// Right camera branch.
    pub const CAMERA_RIGHT: BranchId = BranchId(1);
    /// Lidar branch.
    pub const LIDAR: BranchId = BranchId(2);
    /// Radar branch.
    pub const RADAR: BranchId = BranchId(3);
    /// Early fusion of both cameras (homogeneous set).
    pub const EARLY_CAMERAS: BranchId = BranchId(4);
    /// Early fusion of both cameras + lidar (the paper's early baseline).
    pub const EARLY_CCL: BranchId = BranchId(5);
    /// Early fusion of lidar + radar (heterogeneous set).
    pub const EARLY_LR: BranchId = BranchId(6);

    /// Builds the canonical 7-branch space.
    pub fn canonical() -> Self {
        use SensorKind::{CameraLeft as CL, CameraRight as CR, Lidar as L, Radar as R};
        ConfigSpace {
            branches: vec![
                BranchSpec::Single(CL),
                BranchSpec::Single(CR),
                BranchSpec::Single(L),
                BranchSpec::Single(R),
                BranchSpec::Early(vec![CL, CR]),
                BranchSpec::Early(vec![CL, CR, L]),
                BranchSpec::Early(vec![L, R]),
            ],
        }
    }

    /// The branch specifications.
    pub fn branches(&self) -> &[BranchSpec] {
        &self.branches
    }

    /// Number of branches.
    pub fn num_branches(&self) -> usize {
        self.branches.len()
    }

    /// Number of configurations: every non-empty branch subset.
    pub fn num_configs(&self) -> usize {
        (1 << self.branches.len()) - 1
    }

    /// The bitmask of a configuration (`ConfigId(i)` ↔ mask `i + 1`).
    fn mask(&self, id: ConfigId) -> usize {
        assert!(id.0 < self.num_configs(), "config id {} out of range", id.0);
        id.0 + 1
    }

    /// Branch indices of a configuration, ascending.
    pub fn branch_ids(&self, id: ConfigId) -> Vec<BranchId> {
        let mask = self.mask(id);
        (0..self.branches.len()).filter(|b| mask & (1 << b) != 0).map(BranchId).collect()
    }

    /// Branch specs of a configuration.
    pub fn branch_specs(&self, id: ConfigId) -> Vec<BranchSpec> {
        self.branch_ids(id).into_iter().map(|b| self.branches[b.0].clone()).collect()
    }

    /// The configuration consisting of exactly the given branches.
    ///
    /// # Panics
    /// Panics if `ids` is empty or contains an out-of-range branch.
    pub fn config_of(&self, ids: &[BranchId]) -> ConfigId {
        assert!(!ids.is_empty(), "a configuration needs at least one branch");
        let mut mask = 0usize;
        for b in ids {
            assert!(b.0 < self.branches.len(), "branch id {} out of range", b.0);
            mask |= 1 << b.0;
        }
        ConfigId(mask - 1)
    }

    /// Human-readable configuration label, e.g. `{C_L, E(C_L+C_R+L)}`.
    pub fn label(&self, id: ConfigId) -> String {
        let parts: Vec<String> =
            self.branch_ids(id).iter().map(|b| self.branches[b.0].label()).collect();
        format!("{{{}}}", parts.join(", "))
    }

    /// PX2 platform energy of every configuration under `policy`, indexed
    /// by `ConfigId`.
    pub fn energies(&self, px2: &Px2Model, policy: StemPolicy) -> Vec<Joules> {
        (0..self.num_configs())
            .map(|i| px2.config_energy(&self.branch_specs(ConfigId(i)), policy))
            .collect()
    }

    /// PX2 latency of every configuration under `policy`.
    pub fn latencies(&self, px2: &Px2Model, policy: StemPolicy) -> Vec<Millis> {
        (0..self.num_configs())
            .map(|i| px2.config_latency(&self.branch_specs(ConfigId(i)), policy))
            .collect()
    }

    /// Convenience ids for the paper's static baselines.
    ///
    /// `(left camera, right camera, lidar, radar, early fusion, late fusion)`
    /// where early = `E(C_L+C_R+L)` alone and late = all four single-sensor
    /// branches (exactly the rows of Table 1).
    pub fn baseline_ids(&self) -> BaselineIds {
        BaselineIds {
            camera_left: self.config_of(&[Self::CAMERA_LEFT]),
            camera_right: self.config_of(&[Self::CAMERA_RIGHT]),
            lidar: self.config_of(&[Self::LIDAR]),
            radar: self.config_of(&[Self::RADAR]),
            early: self.config_of(&[Self::EARLY_CCL]),
            late: self.config_of(&[
                Self::CAMERA_LEFT,
                Self::CAMERA_RIGHT,
                Self::LIDAR,
                Self::RADAR,
            ]),
        }
    }
}

/// The paper's fixed baseline configurations (Table 1 rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BaselineIds {
    /// Left camera only.
    pub camera_left: ConfigId,
    /// Right camera only.
    pub camera_right: ConfigId,
    /// Lidar only.
    pub lidar: ConfigId,
    /// Radar only.
    pub radar: ConfigId,
    /// Early fusion `C_L + C_R + L`.
    pub early: ConfigId,
    /// Late fusion `C_L + C_R + L + R`.
    pub late: ConfigId,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_space_shape() {
        let s = ConfigSpace::canonical();
        assert_eq!(s.num_branches(), 7);
        assert_eq!(s.num_configs(), 127);
    }

    #[test]
    fn config_branch_roundtrip() {
        let s = ConfigSpace::canonical();
        for i in 0..s.num_configs() {
            let id = ConfigId(i);
            let ids = s.branch_ids(id);
            assert!(!ids.is_empty());
            assert_eq!(s.config_of(&ids), id);
        }
    }

    #[test]
    fn baseline_ids_consistent() {
        let s = ConfigSpace::canonical();
        let b = s.baseline_ids();
        assert_eq!(s.branch_ids(b.late).len(), 4);
        assert_eq!(s.branch_ids(b.early), vec![ConfigSpace::EARLY_CCL]);
        assert_eq!(s.label(b.camera_left), "{C_L}");
        assert_eq!(s.label(b.early), "{E(C_L+C_R+L)}");
    }

    #[test]
    fn energies_match_paper_for_baselines() {
        let s = ConfigSpace::canonical();
        let b = s.baseline_ids();
        let e = s.energies(&Px2Model::default(), StemPolicy::Static);
        assert!((e[b.camera_left.0].joules() - 0.945).abs() < 1e-9);
        assert!((e[b.radar.0].joules() - 0.954).abs() < 1e-9);
        assert!((e[b.early.0].joules() - 1.379).abs() < 1e-9);
        assert!((e[b.late.0].joules() - 3.798).abs() < 1e-9);
    }

    #[test]
    fn latencies_match_paper_for_baselines() {
        let s = ConfigSpace::canonical();
        let b = s.baseline_ids();
        let t = s.latencies(&Px2Model::default(), StemPolicy::Static);
        assert!((t[b.camera_left.0].millis() - 21.57).abs() < 1e-9);
        assert!((t[b.early.0].millis() - 31.36).abs() < 1e-9);
        assert!((t[b.late.0].millis() - 84.32).abs() < 0.35);
    }

    #[test]
    fn every_config_has_positive_energy() {
        let s = ConfigSpace::canonical();
        let e = s.energies(&Px2Model::default(), StemPolicy::Adaptive);
        assert_eq!(e.len(), 127);
        assert!(e.iter().all(|j| j.joules() > 0.0));
    }

    #[test]
    #[should_panic(expected = "at least one branch")]
    fn empty_config_panics() {
        let s = ConfigSpace::canonical();
        let _ = s.config_of(&[]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_config_id_panics() {
        let s = ConfigSpace::canonical();
        let _ = s.branch_ids(ConfigId(127));
    }
}
