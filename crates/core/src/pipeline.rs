//! The staged perception pipeline: `infer`/`infer_batch` decomposed into
//! explicit stage units with demand-driven stem execution.
//!
//! # Stage graph
//!
//! ```text
//!            ┌─────────┐   ┌─────────┐   ┌───────────┐   ┌────────┐
//! frame ───▶ │  Sense  │──▶│  Stems  │──▶│ GateScore │──▶│ Select │──┐
//!            └─────────┘   └────▲────┘   └───────────┘   └────┬───┘  │
//!                               │   demand-driven stems       │      │
//!                               └─────────────────────────────┘      │
//!            ┌─────────┐   ┌─────────┐   ┌───────────┐               │
//! output ◀── │ Account │◀──│  Fuse   │◀──│  Branch   │◀──────────────┘
//!            └─────────┘   └─────────┘   └───────────┘
//! ```
//!
//! A [`PipelinePlan`] is derived from the [`InferenceOptions`] *before*
//! anything executes, and prunes the `Stems` stage to the sensors that
//! can still matter:
//!
//! * **Feature-free gates** (knowledge, loss-based oracle) never read the
//!   stem features, so for the knowledge gate `GateScore` and `Select`
//!   run *first* and only the stems feeding the selected configuration's
//!   branches execute — the demand-driven stem rule. A City stream that
//!   the degraded fallback reroutes to `{E(L+R)}` runs 2 stems instead
//!   of 4; the budget ladder's emergency rung (knowledge gate, cheapest
//!   single branch) runs 1.
//! * **Learned gates** need the gate-feature tensor, but sensors the
//!   health mask rules out contribute *zero-filled* feature blocks
//!   (matching the
//!   [`UNAVAILABLE_SENSOR_PENALTY`](crate::model::UNAVAILABLE_SENSOR_PENALTY)
//!   semantics: a masked sensor cannot influence the decision), so their
//!   stems are skipped. Any stem the winning configuration still needs —
//!   possible only when every configuration is masked — is computed on
//!   demand before `Branch`.
//! * The **loss-based oracle** runs every branch a posteriori (§4.2.4),
//!   so all stems stay demanded.
//!
//! On the default all-healthy path with a learned gate the plan demands
//! every stem before `GateScore`, and execution is bit-identical to the
//! original monolithic `infer` (the golden traces pin this).
//!
//! # Accounting
//!
//! The `Account` stage is the single place an [`EnergyBreakdown`] is
//! computed; it also produces a [`StageTrace`] decomposing the same
//! Eq. 11 totals per stage and recording how many stems actually ran,
//! were served from a cache, or were pruned. The *charged* energy always
//! follows the configured [`StemPolicy`] (the paper's compiled engine
//! runs all four stems), so pruning shows up in the counters — real
//! compute saved on this host — without re-calibrating the published
//! numbers.
//!
//! # Precision axis
//!
//! [`InferenceOptions::precision`] selects the kernels of the
//! compute-bound stages. Under [`Precision::F32`] (the default) execution
//! is bit-identical to the pre-quantization pipeline — the golden traces
//! pin it. Under [`Precision::Int8`] the `Stems` and `Branch` stages run
//! the post-training-quantized image of the same weights
//! ([`QuantSnapshot`](crate::snapshot::QuantSnapshot), built lazily and
//! invalidated on weight mutation): i8×i8→i32 convolutions with folded
//! batch-norm, dequantized back to f32 at stage boundaries so
//! `GateScore`, `Select`, decoding, and `Fuse` are untouched. The
//! `Account` stage then charges the int8-scaled Eq. 11 stem/branch costs
//! (the budget ladder's emergency rung exploits this: one stem,
//! quantized). Stem-feature caches are bypassed for int8 batches — they
//! hold f32 features.
//!
//! # Stem-feature caching
//!
//! [`StemFeatureCache`] memoizes one `(grid, stem features)` pair per
//! sensor — exactly what a frozen-frame fault or a static scene
//! produces. The runtime keeps one cache per stream and routes it into
//! [`EcoFusionModel::infer_batch_cached`] via a [`StemCacheRouter`];
//! identical grids inside one micro-batch are deduplicated too. Because
//! stems are batch-invariant in eval mode (asserted by the detect
//! crate's tests), a cached row is bit-identical to recomputing it.

use crate::config::ConfigId;
use crate::dataset::Frame;
use crate::model::{EcoFusionModel, InferError, InferenceOptions, InferenceOutput};
use crate::snapshot::QuantSnapshot;
use ecofusion_detect::stem::STEM_CHANNELS;
use ecofusion_detect::{Detection, HeadOutput, Stem};
use ecofusion_energy::{
    EnergyBreakdown, Precision, Px2Model, SensorPowerModel, StageKind, StageTrace, StemPolicy,
};
use ecofusion_gating::{Gate, GateInput, GateKind};
use ecofusion_sensors::{Observation, SensorKind};
use ecofusion_tensor::graph::{self, PlanCache, PlanKey, PlanPrecision};
use ecofusion_tensor::layer::Layer;
use ecofusion_tensor::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Bitmask covering every canonical sensor.
pub const ALL_SENSOR_BITS: u8 = (1 << SensorKind::COUNT) - 1;

/// Plan-cache fingerprint salts. Stems are salted by their sensor index
/// and branches by an offset range so two units with identical
/// architecture (every stem, arity-equal branches) still get distinct
/// cache keys — a plan owns one unit's weight snapshot.
const STEM_SALT_BASE: u64 = 0;
const BRANCH_SALT_BASE: u64 = 0x100;

/// Runs stem `s` over a stacked input through the fused-execution layer
/// when the `ECOFUSION_COMPILED` gate allows: the matching compiled plan
/// is fetched from (or built into) `plans`, keyed by structural
/// fingerprint + shape + precision. Falls back to the eager forward when
/// compiled execution is disabled or lowering fails — both paths are
/// bit-identical by the graph compiler's contract.
fn stem_forward(
    plans: &mut PlanCache,
    stems: &mut [Stem],
    quant: Option<&QuantSnapshot>,
    s: usize,
    x: &Tensor,
) -> Tensor {
    if graph::compiled_enabled() {
        let salt = STEM_SALT_BASE + s as u64;
        let attempt = match quant {
            Some(q) => {
                let key = PlanKey {
                    fingerprint: graph::fingerprint_quant_pipe(&q.stems[s], salt),
                    shape: x.shape().to_vec(),
                    precision: PlanPrecision::Int8,
                };
                plans.try_get_or_compile(key, || graph::compile_quant_pipe(&q.stems[s], x.shape()))
            }
            None => {
                let key = PlanKey {
                    fingerprint: stems[s].plan_fingerprint(salt),
                    shape: x.shape().to_vec(),
                    precision: PlanPrecision::F32,
                };
                plans.try_get_or_compile(key, || stems[s].compile(x.shape()))
            }
        };
        if let Ok(plan) = attempt {
            return plan.execute(x);
        }
    }
    match quant {
        Some(q) => q.stems[s].forward(x),
        None => stems[s].forward(x, false),
    }
}

/// What the stage graph will execute for one set of inference options,
/// derived *before* execution so pruned stems never run at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelinePlan {
    /// Stems that must run before `GateScore` (bit `i` = canonical
    /// sensor `i`). Zero for gates that never read features.
    pub gate_stem_bits: u8,
    /// Whether the gate reads the stem-feature tensor at all.
    pub gate_reads_features: bool,
    /// Whether every branch must run before gating (loss-based oracle).
    pub needs_oracle: bool,
}

impl PipelinePlan {
    /// Stems demanded before the gate scores (oracle gates demand all).
    pub fn pre_gate_bits(&self) -> u8 {
        if self.needs_oracle {
            ALL_SENSOR_BITS
        } else {
            self.gate_stem_bits
        }
    }

    /// Whether stem execution is deferred until after `Select` (nothing
    /// is demanded before the gate, so only the winner's stems run).
    pub fn demand_driven(&self) -> bool {
        self.pre_gate_bits() == 0
    }
}

/// The single `Account` stage: computes the Eq. 11 breakdown once and
/// its per-stage decomposition with it. Every accounting call site
/// (`infer`, `infer_batch`, `detect_static`) goes through here, so the
/// breakdown and the trace can never disagree.
pub fn account(
    px2: &Px2Model,
    sensors: &SensorPowerModel,
    specs: &[ecofusion_energy::BranchSpec],
    policy: StemPolicy,
) -> (EnergyBreakdown, StageTrace) {
    account_prec(px2, sensors, specs, policy, Precision::F32)
}

/// [`account`] under a given precision: int8 frames charge the
/// int8-scaled stem/branch costs; the trace still sums exactly to the
/// breakdown.
pub fn account_prec(
    px2: &Px2Model,
    sensors: &SensorPowerModel,
    specs: &[ecofusion_energy::BranchSpec],
    policy: StemPolicy,
    precision: Precision,
) -> (EnergyBreakdown, StageTrace) {
    (
        EnergyBreakdown::compute_prec(px2, sensors, specs, policy, precision),
        StageTrace::compute_prec(px2, sensors, specs, policy, precision),
    )
}

/// Per-sensor memo of the last `(grid, stem features)` pair, plus
/// hit/miss counters. One cache serves one stream: consecutive frames
/// with an unchanged grid (frozen-frame faults, static scenes) reuse the
/// stem output instead of re-running the convolution.
#[derive(Debug, Default)]
pub struct StemFeatureCache {
    entries: [Option<CacheEntry>; SensorKind::COUNT],
    hits: u64,
    misses: u64,
}

#[derive(Debug)]
struct CacheEntry {
    grid: Tensor,
    feat: Tensor,
}

impl StemFeatureCache {
    /// An empty cache.
    pub fn new() -> Self {
        StemFeatureCache::default()
    }

    /// Returns the memoized features when `grid` matches the cached one
    /// bit for bit. Counting is explicit ([`StemFeatureCache::note`])
    /// because an intra-batch alias also counts as a reuse.
    fn lookup(&self, sensor: usize, grid: &Tensor) -> Option<Tensor> {
        match &self.entries[sensor] {
            Some(e) if e.grid == *grid => Some(e.feat.clone()),
            _ => None,
        }
    }

    fn note(&mut self, hit: bool) {
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
    }

    fn store(&mut self, sensor: usize, grid: Tensor, feat: Tensor) {
        self.entries[sensor] = Some(CacheEntry { grid, feat });
    }

    /// Lookups that matched the cached grid.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that missed (and forced a stem execution).
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

/// Routes per-frame cache lookups of a micro-batch to per-stream caches:
/// frame `i` uses `caches[lane_of[i]]`.
pub struct StemCacheRouter<'a> {
    caches: &'a mut [StemFeatureCache],
    lane_of: &'a [usize],
}

impl<'a> StemCacheRouter<'a> {
    /// Creates a router.
    ///
    /// # Panics
    /// Panics if any lane index is out of range.
    pub fn new(caches: &'a mut [StemFeatureCache], lane_of: &'a [usize]) -> Self {
        assert!(lane_of.iter().all(|&l| l < caches.len()), "cache lane index out of range");
        StemCacheRouter { caches, lane_of }
    }
}

/// Lazily computed per-sensor stem features for a batch of frames, with
/// optional per-stream cache routing and intra-batch deduplication.
struct BatchStemBank {
    n: usize,
    half: usize,
    /// Per-sensor stacked `(N, C, h, w)` features; `None` until
    /// materialized from rows (or computed whole on the fast path).
    stacked: Vec<Option<Tensor>>,
    /// Per-sensor per-frame rows `(1, C, h, w)`.
    rows: Vec<Vec<Option<Tensor>>>,
    /// Per-frame bits of stems run fresh.
    computed: Vec<u8>,
    /// Per-frame bits of stems served from a cache or an identical
    /// in-batch grid.
    cached: Vec<u8>,
}

impl BatchStemBank {
    fn new(n: usize, half: usize) -> Self {
        BatchStemBank {
            n,
            half,
            stacked: vec![None; SensorKind::COUNT],
            rows: vec![vec![None; n]; SensorKind::COUNT],
            computed: vec![0; n],
            cached: vec![0; n],
        }
    }

    fn has(&self, sensor: usize, frame: usize) -> bool {
        (self.computed[frame] | self.cached[frame]) & (1 << sensor) != 0
    }

    /// Runs every `(frame, sensor)` stem demanded by `need_bits` that is
    /// not yet present, consulting `router` first when given. All missing
    /// rows of one sensor run in a single stacked forward (eval-mode
    /// stems are batch-invariant, so subsets are bit-identical). With
    /// `quant` set, the int8 stem pipes execute instead of the f32 stems
    /// (the caller guarantees the router is disabled then — caches hold
    /// f32 features). Stem compute routes through `plans` (the model's
    /// fused-plan cache) unless compiled execution is gated off.
    fn ensure(
        &mut self,
        stems: &mut [Stem],
        observations: &[&Observation],
        need_bits: &[u8],
        mut router: Option<&mut StemCacheRouter<'_>>,
        quant: Option<&QuantSnapshot>,
        plans: &mut PlanCache,
    ) {
        for k in SensorKind::ALL {
            let s = k.index();
            let bit = 1u8 << s;
            let pending: Vec<usize> =
                (0..self.n).filter(|&i| need_bits[i] & bit != 0 && !self.has(s, i)).collect();
            if pending.is_empty() {
                continue;
            }
            // Cache lookups + intra-batch dedupe (identical grids in the
            // same micro-batch compute once and share the row).
            let mut misses: Vec<usize> = Vec::new();
            let mut aliases: Vec<(usize, usize)> = Vec::new();
            if let Some(r) = router.as_deref_mut() {
                for &i in &pending {
                    let grid = observations[i].grid(k);
                    if let Some(feat) = r.caches[r.lane_of[i]].lookup(s, grid) {
                        r.caches[r.lane_of[i]].note(true);
                        self.rows[s][i] = Some(feat);
                        self.cached[i] |= bit;
                    } else if let Some(pos) =
                        misses.iter().position(|&j| observations[j].grid(k) == grid)
                    {
                        // An identical grid earlier in this batch: reuse
                        // its row — a hit the entry-based cache cannot
                        // serve yet because the row is not computed.
                        r.caches[r.lane_of[i]].note(true);
                        aliases.push((i, pos));
                    } else {
                        r.caches[r.lane_of[i]].note(false);
                        misses.push(i);
                    }
                }
            } else {
                misses = pending;
            }
            let whole_batch = misses.len() == self.n;
            if !misses.is_empty() {
                let grids: Vec<&Tensor> = misses.iter().map(|&i| observations[i].grid(k)).collect();
                let stacked_in = Tensor::stack_batch(&grids);
                let out = stem_forward(plans, stems, quant, s, &stacked_in);
                if whole_batch && router.is_none() {
                    // Fast path (the default all-healthy learned-gate
                    // batch): keep the stacked output whole — the exact
                    // tensor the monolithic path produced.
                    for i in 0..self.n {
                        self.computed[i] |= bit;
                    }
                    self.stacked[s] = Some(out);
                } else {
                    for (j, &i) in misses.iter().enumerate() {
                        let row = out.select_batch(j);
                        if let Some(r) = router.as_deref_mut() {
                            r.caches[r.lane_of[i]].store(
                                s,
                                observations[i].grid(k).clone(),
                                row.clone(),
                            );
                        }
                        self.rows[s][i] = Some(row);
                        self.computed[i] |= bit;
                    }
                }
            }
            for (i, pos) in aliases {
                let src = misses[pos];
                let row = self.rows[s][src].clone().expect("aliased miss was computed");
                if let Some(r) = router.as_deref_mut() {
                    r.caches[r.lane_of[i]].store(s, observations[i].grid(k).clone(), row.clone());
                }
                self.rows[s][i] = Some(row);
                self.cached[i] |= bit;
            }
        }
    }

    /// Builds the stacked `(N, C, h, w)` tensor of every sensor in
    /// `bits` from its rows (zero rows for frames that never demanded
    /// the stem — those rows are never read downstream).
    fn materialize(&mut self, bits: u8) {
        for s in 0..SensorKind::COUNT {
            if bits & (1 << s) == 0 || self.stacked[s].is_some() {
                continue;
            }
            let zero = Tensor::zeros(&[1, STEM_CHANNELS, self.half, self.half]);
            let refs: Vec<&Tensor> =
                self.rows[s].iter().map(|r| r.as_ref().unwrap_or(&zero)).collect();
            self.stacked[s] = Some(Tensor::stack_batch(&refs));
        }
    }

    fn stacked_ref(&self, sensor: usize) -> &Tensor {
        self.stacked[sensor].as_ref().expect("sensor materialized before use")
    }

    /// One frame's row of a sensor.
    fn row(&self, sensor: usize, frame: usize) -> Tensor {
        match &self.stacked[sensor] {
            Some(t) => t.select_batch(frame),
            None => self.rows[sensor][frame].clone().expect("stem demanded by the plan"),
        }
    }

    /// Stacks the rows of `frames` for one sensor (the sub-batch input
    /// of a partially demanded branch).
    fn stack_rows(&self, sensor: usize, frames: &[usize]) -> Tensor {
        let rows: Vec<Tensor> = frames.iter().map(|&i| self.row(sensor, i)).collect();
        let refs: Vec<&Tensor> = rows.iter().collect();
        Tensor::stack_batch(&refs)
    }

    /// The gate-feature batch: per-sensor stacked features in canonical
    /// order, zero-filled for sensors outside `bits`.
    fn gate_features(&mut self, bits: u8) -> Tensor {
        self.materialize(bits);
        let zero = Tensor::zeros(&[self.n, STEM_CHANNELS, self.half, self.half]);
        let parts: Vec<&Tensor> = (0..SensorKind::COUNT)
            .map(|s| if bits & (1 << s) != 0 { self.stacked_ref(s) } else { &zero })
            .collect();
        Tensor::concat_channels(&parts)
    }

    fn counts(&self, frame: usize) -> (u8, u8, u8) {
        let executed = self.computed[frame].count_ones() as u8;
        let cached = self.cached[frame].count_ones() as u8;
        (executed, cached, SensorKind::COUNT as u8 - executed - cached)
    }
}

impl EcoFusionModel {
    /// Derives the stage-graph plan for one set of inference options:
    /// which stems the gate demands, whether the oracle runs, and
    /// whether stem execution is deferred until after `Select`.
    pub fn plan(&self, opts: &InferenceOptions) -> PipelinePlan {
        match opts.gate {
            GateKind::Knowledge => {
                PipelinePlan { gate_stem_bits: 0, gate_reads_features: false, needs_oracle: false }
            }
            GateKind::LossBased => PipelinePlan {
                gate_stem_bits: ALL_SENSOR_BITS,
                gate_reads_features: false,
                needs_oracle: true,
            },
            GateKind::Deep | GateKind::Attention => PipelinePlan {
                gate_stem_bits: opts.health.bits(),
                gate_reads_features: true,
                needs_oracle: false,
            },
        }
    }

    fn predict_gate_batch(
        &mut self,
        features: &Tensor,
        inputs: &[GateInput<'_>],
        gate: GateKind,
    ) -> Vec<Vec<f32>> {
        match gate {
            GateKind::Knowledge => self.gates.knowledge.predict_batch(features, inputs),
            GateKind::Deep => self.gates.deep.predict_batch(features, inputs),
            GateKind::Attention => self.gates.attention.predict_batch(features, inputs),
            GateKind::LossBased => self.gates.loss_based.predict_batch(features, inputs),
        }
    }

    /// The `Sense` stage: the observation already exists (sensing
    /// happened upstream), so the stage validates it against the model
    /// and accounts the sensor energy later.
    fn sense(&self, frame: &Frame) -> Result<(), InferError> {
        if frame.obs.grid_size() != self.grid {
            return Err(InferError::GridMismatch {
                expected: self.grid,
                found: frame.obs.grid_size(),
            });
        }
        Ok(())
    }

    /// Staged Algorithm 1 over a batch (the body behind
    /// [`EcoFusionModel::infer_batch`] and
    /// [`EcoFusionModel::infer_batch_cached`]).
    pub(crate) fn run_staged_batch(
        &mut self,
        frames: &[Frame],
        opts: &InferenceOptions,
        router: Option<StemCacheRouter<'_>>,
    ) -> Result<Vec<InferenceOutput>, InferError> {
        if frames.is_empty() {
            return Ok(Vec::new());
        }
        // Sense.
        for frame in frames {
            self.sense(frame)?;
        }
        let quant_active = opts.precision == Precision::Int8;
        if quant_active {
            self.ensure_quant().map_err(InferError::Quantize)?;
        }
        // Stem-feature caches hold f32 features; an int8 batch must
        // neither consult nor fill them (cross-precision poisoning).
        let mut router = if quant_active { None } else { router };
        let n = frames.len();
        let plan = self.plan(opts);
        let observations: Vec<&Observation> = frames.iter().map(|f| &f.obs).collect();
        let mut bank = BatchStemBank::new(n, self.grid / 2);
        // Stems demanded before gating, across the whole batch.
        let pre_gate = vec![plan.pre_gate_bits(); n];
        let quant = if quant_active { self.quant.as_ref() } else { None };
        bank.ensure(
            &mut self.stems,
            &observations,
            &pre_gate,
            router.as_mut(),
            quant,
            &mut self.plans,
        );
        // Oracle detections + losses if the loss-based gate is active
        // (kept: Branch reuses them instead of re-running branches).
        let oracle_dets: Option<Vec<Vec<Vec<Detection>>>> = if plan.needs_oracle {
            bank.materialize(ALL_SENSOR_BITS);
            let mut per_frame: Vec<Vec<Vec<Detection>>> =
                (0..n).map(|_| Vec::with_capacity(self.branches.len())).collect();
            for b in 0..self.branches.len() {
                let dets = self.branch_batch_from_bank(b, &bank, None, opts);
                for (frame_dets, d) in per_frame.iter_mut().zip(dets) {
                    frame_dets.push(d);
                }
            }
            Some(per_frame)
        } else {
            None
        };
        let oracle: Option<Vec<Vec<f32>>> = oracle_dets.as_ref().map(|per_frame| {
            frames
                .iter()
                .zip(per_frame)
                .map(|(f, dets)| self.config_losses_from(dets, &f.gt_boxes()))
                .collect()
        });
        // GateScore. None of the four built-in gates reads
        // `GateInput::features` per frame on this path — learned gates
        // run one batched network pass over the gate batch, the
        // knowledge gate reads only `context`, the oracle only
        // `oracle_losses` — so the batch tensor serves as every frame's
        // features view and no per-frame copies are made.
        let gate_batch = if plan.gate_reads_features {
            bank.gate_features(plan.gate_stem_bits)
        } else {
            Tensor::zeros(&[n, 1, 1, 1])
        };
        let inputs: Vec<GateInput<'_>> = frames
            .iter()
            .enumerate()
            .map(|(i, f)| GateInput {
                features: &gate_batch,
                context: Some(f.scene.context),
                oracle_losses: oracle.as_ref().map(|o| o[i].as_slice()),
                sensor_health: Some(opts.health),
            })
            .collect();
        let predicted = self.predict_gate_batch(&gate_batch, &inputs, opts.gate);
        drop(inputs);
        // Select per frame, then group frames by branch so every branch
        // the batch needs executes exactly once.
        let selected: Vec<ConfigId> =
            predicted.iter().map(|p| self.select_with_health(p, opts)).collect();
        // Branch: demand-driven stems for the winners, then each
        // demanded branch over exactly the frames that selected it.
        let need_bits: Vec<u8> = selected.iter().map(|s| self.config_sensors[s.0]).collect();
        let quant = if quant_active { self.quant.as_ref() } else { None };
        bank.ensure(
            &mut self.stems,
            &observations,
            &need_bits,
            router.as_mut(),
            quant,
            &mut self.plans,
        );
        let n_branches = self.branches.len();
        let mut demand: Vec<Vec<usize>> = vec![Vec::new(); n_branches];
        for (i, sel) in selected.iter().enumerate() {
            for b in self.space.branch_ids(*sel) {
                demand[b.0].push(i);
            }
        }
        let mut branch_dets: Vec<Vec<Option<Vec<Detection>>>> = vec![vec![None; n]; n_branches];
        if let Some(per_frame) = oracle_dets {
            for (i, frame_dets) in per_frame.into_iter().enumerate() {
                for (b, dets) in frame_dets.into_iter().enumerate() {
                    branch_dets[b][i] = Some(dets);
                }
            }
        }
        // Sensors demanded by a whole-batch branch must be materialized.
        let full_bits = demand
            .iter()
            .enumerate()
            .filter(|(_, idxs)| idxs.len() == n)
            .fold(0u8, |bits, (b, _)| bits | self.branch_sensor_bits(b));
        bank.materialize(full_bits);
        for (b, idxs) in demand.iter().enumerate() {
            if idxs.is_empty() || branch_dets[b].iter().all(|d| d.is_some()) {
                continue;
            }
            let sub = (idxs.len() < n).then_some(idxs.as_slice());
            let dets = self.branch_batch_from_bank(b, &bank, sub, opts);
            for (slot, d) in idxs.iter().zip(dets) {
                branch_dets[b][*slot] = Some(d);
            }
        }
        // Knowledge-gate fallback attribution: a frame whose context has
        // no rule was served by the gate's cheapest-config fallback.
        let fallbacks: Vec<u32> = if opts.gate == GateKind::Knowledge {
            frames
                .iter()
                .map(|f| u32::from(!self.gates.knowledge.has_rule(f.scene.context)))
                .collect()
        } else {
            vec![0; n]
        };
        // Fuse + Account per frame.
        let outputs = frames
            .iter()
            .enumerate()
            .map(|(i, _)| {
                let ids = self.space.branch_ids(selected[i]);
                let outs: Vec<Vec<Detection>> = ids
                    .iter()
                    .map(|b| branch_dets[b.0][i].clone().expect("demanded branch executed"))
                    .collect();
                let detections = self.fuse(&outs);
                let specs = self.space.branch_specs(selected[i]);
                let (energy, trace) = account_prec(
                    &self.px2,
                    &self.sensor_power,
                    &specs,
                    StemPolicy::Adaptive,
                    opts.precision,
                );
                let (executed, cached, skipped) = bank.counts(i);
                InferenceOutput {
                    detections,
                    selected_config: selected[i],
                    selected_label: self.space.label(selected[i]),
                    predicted_losses: predicted[i].clone(),
                    energy,
                    stage_trace: trace.with_stem_counts(executed, cached, skipped),
                    precision: opts.precision,
                    gate_fallbacks: fallbacks[i],
                }
            })
            .collect();
        Ok(outputs)
    }

    /// Required-sensor bits of one branch.
    fn branch_sensor_bits(&self, branch: usize) -> u8 {
        self.space.branches()[branch].sensors().iter().fold(0u8, |bits, k| bits | (1 << k.index()))
    }

    /// Runs one branch over banked batch features — over the whole batch
    /// (`sub = None`, stacked tensors) or a sub-batch of frames.
    fn branch_batch_from_bank(
        &mut self,
        branch: usize,
        bank: &BatchStemBank,
        sub: Option<&[usize]>,
        opts: &InferenceOptions,
    ) -> Vec<Vec<Detection>> {
        let sensors = self.space.branches()[branch].sensors();
        let input = match sub {
            None => {
                let parts: Vec<&Tensor> =
                    sensors.iter().map(|k| bank.stacked_ref(k.index())).collect();
                Tensor::concat_channels(&parts)
            }
            Some(idxs) => {
                let per_sensor: Vec<Tensor> =
                    sensors.iter().map(|k| bank.stack_rows(k.index(), idxs)).collect();
                let refs: Vec<&Tensor> = per_sensor.iter().collect();
                Tensor::concat_channels(&refs)
            }
        };
        let n = input.shape()[0];
        let salt = BRANCH_SALT_BASE + branch as u64;
        if opts.precision == Precision::Int8 {
            // Int8 backbone + head produce the same raw map layout; the
            // f32 head decodes it (sigmoid/softmax/NMS stay full
            // precision). The fused plan applies dequant + folded-BN +
            // ReLU straight to the i32 accumulators — bit-identical to
            // the eager pipe.
            let q = self.quant.as_ref().expect("int8 image built before the Branch stage");
            let qb = &q.branches[branch];
            let map = if graph::compiled_enabled() {
                let key = PlanKey {
                    fingerprint: qb.plan_fingerprint(salt),
                    shape: input.shape().to_vec(),
                    precision: PlanPrecision::Int8,
                };
                match self.plans.try_get_or_compile(key, || qb.compile(input.shape())) {
                    Ok(plan) => plan.execute(&input),
                    Err(_) => qb.forward(&input).map,
                }
            } else {
                qb.forward(&input).map
            };
            let out = HeadOutput { map };
            return (0..n)
                .map(|i| {
                    self.branches[branch].decode_sample(&out, i, opts.score_thresh, opts.nms_iou)
                })
                .collect();
        }
        if graph::compiled_enabled() {
            let det = &self.branches[branch];
            let key = PlanKey {
                fingerprint: det.plan_fingerprint(salt),
                shape: input.shape().to_vec(),
                precision: PlanPrecision::F32,
            };
            if let Ok(plan) = self.plans.try_get_or_compile(key, || det.compile(input.shape())) {
                let out = HeadOutput { map: plan.execute(&input) };
                return (0..n)
                    .map(|i| {
                        self.branches[branch].decode_sample(
                            &out,
                            i,
                            opts.score_thresh,
                            opts.nms_iou,
                        )
                    })
                    .collect();
            }
        }
        self.branches[branch].detect_batch(&input, opts.score_thresh, opts.nms_iou)
    }

    /// [`EcoFusionModel::infer_batch`] with per-stream stem-feature
    /// caches: frame `i` consults and updates `caches[lane_of[i]]`.
    /// Results are identical to the uncached path — a cache hit replays
    /// the features an identical grid would produce (stems are
    /// batch-invariant in eval mode) — only the stem compute changes.
    ///
    /// # Errors
    /// Returns [`InferError::GridMismatch`] if any frame was rendered at
    /// a different grid size than the model.
    ///
    /// # Panics
    /// Panics if `lane_of.len() != frames.len()` or a lane index is out
    /// of range.
    pub fn infer_batch_cached(
        &mut self,
        frames: &[Frame],
        opts: &InferenceOptions,
        caches: &mut [StemFeatureCache],
        lane_of: &[usize],
    ) -> Result<Vec<InferenceOutput>, InferError> {
        assert_eq!(lane_of.len(), frames.len(), "one cache lane per frame");
        let router = StemCacheRouter::new(caches, lane_of);
        self.run_staged_batch(frames, opts, Some(router))
    }
}

/// Emits the trace spans of one processed frame onto its stream's track:
/// a `frame` span carrying the selected configuration, precision, stem
/// counts, and Eq. 11 totals, wrapping one child span per pipeline stage
/// (`sense → stems → gate → select → branch → fuse → account`) whose
/// exact modeled energy/latency ride in the span arguments.
///
/// `start_ns` is the virtual begin time (the caller's per-stream clock,
/// floored to the current tick); each stage advances the clock by its
/// modeled latency and the frame's end time — returned so the caller can
/// persist the clock — is the sum. Everything is derived from the
/// [`InferenceOutput`] alone, so the emission is deterministic and
/// trivially replayable; the property tests assert the stage spans nest
/// and that their argument payloads sum to the
/// [`StageTrace`] totals exactly.
///
/// No-op (returning `start_ns`) when the sink is disabled.
pub fn trace_frame(
    sink: &mut ecofusion_trace::TraceSink,
    stream: u32,
    tick: u64,
    start_ns: u64,
    out: &InferenceOutput,
) -> u64 {
    use ecofusion_trace::{ns_from_ms, ArgValue, Track};
    if !sink.is_enabled() {
        return start_ns;
    }
    let track = Track::Stream(stream);
    sink.begin(
        track,
        start_ns,
        "frame",
        vec![
            ("tick", ArgValue::U64(tick)),
            ("config", ArgValue::U64(out.selected_config.0 as u64)),
            ("label", ArgValue::Text(out.selected_label.clone())),
            ("precision", ArgValue::Str(out.precision.label())),
            ("stems_executed", ArgValue::U64(out.stage_trace.stems_executed as u64)),
            ("stems_cached", ArgValue::U64(out.stage_trace.stems_cached as u64)),
            ("stems_skipped", ArgValue::U64(out.stage_trace.stems_skipped as u64)),
            ("energy_j", ArgValue::F64(out.energy.total_gated().joules())),
            ("latency_ms", ArgValue::F64(out.energy.latency.millis())),
            ("gate_fallbacks", ArgValue::U64(out.gate_fallbacks as u64)),
        ],
    );
    let mut cursor = start_ns;
    for stage in StageKind::ALL {
        let cost = out.stage_trace.cost(stage);
        sink.begin(
            track,
            cursor,
            stage.label(),
            vec![
                ("energy_j", ArgValue::F64(cost.energy.joules())),
                ("latency_ms", ArgValue::F64(cost.latency.millis())),
            ],
        );
        cursor += ns_from_ms(cost.latency.millis());
        sink.end(track, cursor, stage.label());
        sink.bump(
            &format!("ecofusion_stage_energy_joules_total{{stage=\"{}\"}}", stage.label()),
            cost.energy.joules(),
        );
    }
    sink.end(track, cursor, "frame");
    sink.bump(&format!("ecofusion_frames_total{{stream=\"{stream}\"}}"), 1.0);
    sink.bump("ecofusion_stems_executed_total", out.stage_trace.stems_executed as f64);
    sink.bump("ecofusion_stems_cached_total", out.stage_trace.stems_cached as f64);
    sink.bump("ecofusion_stems_skipped_total", out.stage_trace.stems_skipped as f64);
    if out.precision == Precision::Int8 {
        sink.bump("ecofusion_int8_frames_total", 1.0);
    }
    if out.gate_fallbacks > 0 {
        sink.bump("ecofusion_gate_fallbacks_total", out.gate_fallbacks as f64);
    }
    cursor
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Dataset, DatasetMix, DatasetSpec};
    use crate::model::EcoFusionModel;
    use ecofusion_scene::Context;
    use ecofusion_sensors::SensorMask;
    use ecofusion_tensor::rng::Rng;

    fn tiny_model() -> EcoFusionModel {
        let mut rng = Rng::new(1);
        EcoFusionModel::new(32, 8, &mut rng)
    }

    fn city_data(seed: u64) -> Dataset {
        let mut spec = DatasetSpec::small(seed);
        spec.mix = DatasetMix::Single(Context::City);
        spec.num_scenes = 10;
        Dataset::generate(&spec)
    }

    #[test]
    fn plan_reflects_gate_and_mask() {
        let m = tiny_model();
        let attention = m.plan(&InferenceOptions::new(0.01, 0.5));
        assert!(attention.gate_reads_features);
        assert_eq!(attention.gate_stem_bits, ALL_SENSOR_BITS);
        assert!(!attention.demand_driven());

        let masked = InferenceOptions::new(0.01, 0.5)
            .with_health(SensorMask::all_available().without(SensorKind::Lidar));
        let plan = m.plan(&masked);
        assert_eq!(plan.gate_stem_bits & (1 << SensorKind::Lidar.index()), 0);
        assert_eq!(plan.pre_gate_bits().count_ones(), 3);

        let knowledge = m.plan(&InferenceOptions::new(0.01, 0.5).with_gate(GateKind::Knowledge));
        assert!(knowledge.demand_driven());
        assert_eq!(knowledge.pre_gate_bits(), 0);

        let oracle = m.plan(&InferenceOptions::new(0.01, 0.5).with_gate(GateKind::LossBased));
        assert!(oracle.needs_oracle);
        assert_eq!(oracle.pre_gate_bits(), ALL_SENSOR_BITS);
    }

    #[test]
    fn learned_gate_runs_all_stems_on_healthy_path() {
        let mut m = tiny_model();
        let data = city_data(41);
        let out = m.infer(&data.test()[0], &InferenceOptions::new(0.01, 0.5)).unwrap();
        assert_eq!(out.stage_trace.stems_executed, 4);
        assert_eq!(out.stage_trace.stems_skipped, 0);
        assert!(out.stage_trace.matches(&out.energy));
    }

    #[test]
    fn knowledge_gate_runs_only_the_winners_stems() {
        let mut m = tiny_model();
        let data = city_data(42);
        let opts = InferenceOptions::new(0.01, 0.5).with_gate(GateKind::Knowledge);
        let out = m.infer(&data.test()[0], &opts).unwrap();
        // City's rule is early-3 {E(C_L+C_R+L)}: three stems, radar pruned.
        assert_eq!(out.selected_label, "{E(C_L+C_R+L)}");
        assert_eq!(out.stage_trace.stems_executed, 3);
        assert_eq!(out.stage_trace.stems_skipped, 1);
        assert!(out.stage_trace.matches(&out.energy));
    }

    #[test]
    fn degraded_fallback_prunes_further() {
        let mut m = tiny_model();
        let data = city_data(43);
        let no_cams = SensorMask::all_available()
            .without(SensorKind::CameraLeft)
            .without(SensorKind::CameraRight);
        let opts =
            InferenceOptions::new(0.01, 0.5).with_gate(GateKind::Knowledge).with_health(no_cams);
        let out = m.infer(&data.test()[0], &opts).unwrap();
        assert_eq!(out.selected_label, "{E(L+R)}");
        assert_eq!(out.stage_trace.stems_executed, 2);
        assert_eq!(out.stage_trace.stems_skipped, 2);
    }

    #[test]
    fn emergency_rung_runs_one_stem() {
        let mut m = tiny_model();
        let data = city_data(44);
        // The budget ladder's last rung: knowledge gate, every config a
        // candidate, λ_E = 1 → the globally cheapest single branch.
        let opts = InferenceOptions {
            lambda_e: 1.0,
            gamma: 1.0e9,
            ..InferenceOptions::new(1.0, 0.5).with_gate(GateKind::Knowledge)
        };
        let out = m.infer(&data.test()[0], &opts).unwrap();
        assert_eq!(m.space().branch_ids(out.selected_config).len(), 1);
        assert_eq!(out.stage_trace.stems_executed, 1);
        assert_eq!(out.stage_trace.stems_skipped, 3);
    }

    #[test]
    fn oracle_gate_runs_every_stem() {
        let mut m = tiny_model();
        let data = city_data(45);
        let opts = InferenceOptions::new(0.5, 0.5).with_gate(GateKind::LossBased);
        let out = m.infer(&data.test()[0], &opts).unwrap();
        assert_eq!(out.stage_trace.stems_executed, 4);
    }

    #[test]
    fn batch_counters_match_single_frame() {
        let data = city_data(46);
        let frames: Vec<Frame> = data.test().iter().take(4).cloned().collect();
        for gate in [GateKind::Knowledge, GateKind::Attention] {
            let mut m = tiny_model();
            let opts = InferenceOptions::new(0.01, 0.5).with_gate(gate);
            let batched = m.infer_batch(&frames, &opts).unwrap();
            let sequential: Vec<InferenceOutput> =
                frames.iter().map(|f| m.infer(f, &opts).unwrap()).collect();
            for (b, s) in batched.iter().zip(&sequential) {
                assert_eq!(b.stage_trace.stems_executed, s.stage_trace.stems_executed, "{gate:?}");
                assert_eq!(b.stage_trace.stems_skipped, s.stage_trace.stems_skipped, "{gate:?}");
                assert_eq!(b.detections, s.detections, "{gate:?}");
            }
        }
    }

    #[test]
    fn stem_cache_hits_on_frozen_grids_and_keeps_results_identical() {
        let data = city_data(47);
        let frame = data.test()[0].clone();
        // The same frame served twice in a row (a frozen-frame fault):
        // the second batch must be served entirely from the cache.
        let frames = vec![frame.clone(), frame.clone()];
        let opts = InferenceOptions::new(0.01, 0.5);
        let mut cached_model = tiny_model();
        let mut caches = [StemFeatureCache::new()];
        let lanes = [0usize, 0];
        let outs = cached_model.infer_batch_cached(&frames, &opts, &mut caches, &lanes).unwrap();
        // Frame 0 misses, frame 1 aliases to it inside the batch.
        assert_eq!(outs[0].stage_trace.stems_executed, 4);
        assert_eq!(outs[1].stage_trace.stems_cached, 4);
        assert_eq!(outs[1].stage_trace.stems_executed, 0);
        // A later batch with the identical grid hits the stored entries.
        let outs2 =
            cached_model.infer_batch_cached(&frames[..1], &opts, &mut caches, &[0]).unwrap();
        assert_eq!(outs2[0].stage_trace.stems_cached, 4);
        // Frame 1 of the first batch aliased (4 reuses), the second batch
        // hit the stored entries (4 more); frame 0's four lookups missed.
        assert_eq!(caches[0].hits(), 8);
        assert_eq!(caches[0].misses(), 4);
        // Results are identical to the uncached model.
        let mut plain = tiny_model();
        let plain_out = plain.infer(&frame, &opts).unwrap();
        assert_eq!(outs[0].detections, plain_out.detections);
        assert_eq!(outs[1].detections, plain_out.detections);
        assert_eq!(outs2[0].detections, plain_out.detections);
        assert_eq!(outs[0].selected_config, plain_out.selected_config);
    }

    #[test]
    fn stem_cache_misses_on_changing_grids_without_changing_results() {
        let data = city_data(48);
        let frames: Vec<Frame> = data.test().iter().take(3).cloned().collect();
        let opts = InferenceOptions::new(0.01, 0.5);
        let mut cached_model = tiny_model();
        let mut plain_model = tiny_model();
        let mut caches = [StemFeatureCache::new()];
        let lanes = [0usize, 0, 0];
        let cached_out =
            cached_model.infer_batch_cached(&frames, &opts, &mut caches, &lanes).unwrap();
        let plain_out = plain_model.infer_batch(&frames, &opts).unwrap();
        for (c, p) in cached_out.iter().zip(&plain_out) {
            assert_eq!(c.detections, p.detections);
            assert_eq!(c.selected_config, p.selected_config);
            assert_eq!(c.predicted_losses, p.predicted_losses);
        }
        assert_eq!(caches[0].hits(), 0, "distinct frames must not hit");
        assert!(caches[0].misses() > 0);
    }

    #[test]
    fn int8_inference_runs_and_charges_less() {
        let data = city_data(50);
        let frame = &data.test()[0];
        for gate in [GateKind::Attention, GateKind::Knowledge] {
            let mut m = tiny_model();
            let f32_out =
                m.infer(frame, &InferenceOptions::new(0.01, 0.5).with_gate(gate)).unwrap();
            let i8_opts =
                InferenceOptions::new(0.01, 0.5).with_gate(gate).with_precision(Precision::Int8);
            let i8_out = m.infer(frame, &i8_opts).unwrap();
            assert_eq!(f32_out.precision, Precision::F32, "{gate:?}");
            assert_eq!(i8_out.precision, Precision::Int8, "{gate:?}");
            assert!(i8_out.stage_trace.matches(&i8_out.energy), "{gate:?}");
            // Same configuration selected (the gate is precision-invariant
            // for knowledge; learned gates see quantized features but the
            // charge comparison needs matching configs, so only assert
            // energy when they agree).
            if i8_out.selected_config == f32_out.selected_config {
                assert!(
                    i8_out.energy.platform.joules() < f32_out.energy.platform.joules(),
                    "{gate:?}: int8 {} !< f32 {}",
                    i8_out.energy.platform,
                    f32_out.energy.platform
                );
            }
            assert!(i8_out.detections.iter().all(|d| d.score.is_finite()), "{gate:?}");
        }
    }

    #[test]
    fn int8_batch_matches_sequential_int8() {
        let data = city_data(51);
        let frames: Vec<Frame> = data.test().iter().take(4).cloned().collect();
        let mut m = tiny_model();
        let opts = InferenceOptions::new(0.01, 0.5).with_precision(Precision::Int8);
        let batched = m.infer_batch(&frames, &opts).unwrap();
        let sequential: Vec<_> = frames.iter().map(|f| m.infer(f, &opts).unwrap()).collect();
        for (b, s) in batched.iter().zip(&sequential) {
            assert_eq!(b.selected_config, s.selected_config);
            assert_eq!(b.detections, s.detections);
            assert_eq!(b.precision, Precision::Int8);
        }
    }

    #[test]
    fn int8_emergency_rung_runs_one_quantized_stem() {
        let mut m = tiny_model();
        let data = city_data(52);
        let opts = InferenceOptions {
            lambda_e: 1.0,
            gamma: 1.0e9,
            ..InferenceOptions::new(1.0, 0.5)
                .with_gate(GateKind::Knowledge)
                .with_precision(Precision::Int8)
        };
        let out = m.infer(&data.test()[0], &opts).unwrap();
        assert_eq!(m.space().branch_ids(out.selected_config).len(), 1);
        assert_eq!(out.stage_trace.stems_executed, 1);
        assert_eq!(out.precision, Precision::Int8);
        // The quantized emergency rung undercuts the f32 one.
        let f32_opts = InferenceOptions { precision: Precision::F32, ..opts };
        let f32_out = m.infer(&data.test()[0], &f32_opts).unwrap();
        assert_eq!(f32_out.selected_config, out.selected_config);
        assert!(out.energy.platform.joules() < f32_out.energy.platform.joules());
        assert!(out.energy.latency.millis() < f32_out.energy.latency.millis());
    }

    #[test]
    fn int8_batches_bypass_stem_caches() {
        let data = city_data(53);
        let frame = data.test()[0].clone();
        let frames = vec![frame.clone(), frame];
        let mut m = tiny_model();
        let mut caches = [StemFeatureCache::new()];
        let opts = InferenceOptions::new(0.01, 0.5).with_precision(Precision::Int8);
        let outs = m.infer_batch_cached(&frames, &opts, &mut caches, &[0, 0]).unwrap();
        // The cache must stay untouched: int8 features would poison it.
        assert_eq!(caches[0].hits() + caches[0].misses(), 0);
        assert_eq!(outs[0].detections, outs[1].detections);
        // An f32 batch afterwards fills the cache with f32 features.
        let f32_opts = InferenceOptions::new(0.01, 0.5);
        let _ = m.infer_batch_cached(&frames, &f32_opts, &mut caches, &[0, 0]).unwrap();
        assert!(caches[0].misses() > 0);
    }

    #[test]
    #[should_panic(expected = "one cache lane per frame")]
    fn cache_lane_mismatch_panics() {
        let data = city_data(49);
        let frames: Vec<Frame> = data.test().iter().take(2).cloned().collect();
        let mut m = tiny_model();
        let mut caches = [StemFeatureCache::new()];
        let _ = m.infer_batch_cached(&frames, &InferenceOptions::new(0.01, 0.5), &mut caches, &[0]);
    }
}
