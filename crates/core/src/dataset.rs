//! Synthetic dataset assembly: scenes + rendered observations.

use ecofusion_scene::{split_scenes, Context, GtBox, ScenarioGenerator, Scene};
use ecofusion_sensors::{Observation, SensorSuite};
use ecofusion_tensor::rng::Rng;
use serde::{Deserialize, Serialize};

/// One dataset sample: the latent scene plus the rendered observation of
/// all four sensors.
#[derive(Debug, Clone)]
pub struct Frame {
    /// The latent world state (carries ground truth and context).
    pub scene: Scene,
    /// The rendered per-sensor observation grids.
    pub obs: Observation,
}

impl Frame {
    /// Ground-truth boxes in the observation's grid frame.
    pub fn gt_boxes(&self) -> Vec<GtBox> {
        self.scene.ground_truth_boxes(self.obs.grid_size())
    }
}

/// How scene contexts are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DatasetMix {
    /// RADIATE-like context mix (city/motorway-dominated; see
    /// [`Context::mix_weight`]).
    Radiate,
    /// All scenes from one context.
    Single(Context),
    /// Equal number of scenes from every context.
    Balanced,
}

/// Parameters for [`Dataset::generate`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Master seed: scenes, renders, and the split all derive from it.
    pub seed: u64,
    /// Observation grid side length (multiple of 16 recommended).
    pub grid: usize,
    /// Total number of scenes before splitting.
    pub num_scenes: usize,
    /// Train fraction (the paper uses 0.7).
    pub train_fraction: f64,
    /// Context sampling scheme.
    pub mix: DatasetMix,
}

impl DatasetSpec {
    /// Small, fast configuration for tests and the quickstart example
    /// (32-pixel grids, 72 scenes).
    pub fn small(seed: u64) -> Self {
        DatasetSpec {
            seed,
            grid: 32,
            num_scenes: 72,
            train_fraction: 0.7,
            mix: DatasetMix::Radiate,
        }
    }

    /// The configuration used by the experiment harness (48-pixel grids,
    /// RADIATE-like context mix as in the paper's aggregate tables; 48 px
    /// keeps a car at ~10 px long, the smallest scale the detectors
    /// localize well, while fitting the harness in CPU minutes).
    pub fn standard(seed: u64) -> Self {
        DatasetSpec {
            seed,
            grid: 48,
            num_scenes: 800,
            train_fraction: 0.7,
            mix: DatasetMix::Radiate,
        }
    }
}

/// A train/test split of rendered frames.
#[derive(Debug)]
pub struct Dataset {
    train: Vec<Frame>,
    test: Vec<Frame>,
    grid: usize,
}

impl Dataset {
    /// Generates a dataset from a spec. Scene sampling, rendering noise,
    /// and the 70:30 split are all deterministic in `spec.seed`; rendering
    /// is parallelized across scenes with per-scene RNG streams so thread
    /// scheduling cannot change the output.
    pub fn generate(spec: &DatasetSpec) -> Dataset {
        let mut gen = ScenarioGenerator::new(spec.seed);
        let scenes: Vec<Scene> = match spec.mix {
            DatasetMix::Radiate => gen.scenes_mixed(spec.num_scenes),
            DatasetMix::Single(c) => gen.scenes(c, spec.num_scenes),
            DatasetMix::Balanced => {
                let per = (spec.num_scenes / Context::ALL.len()).max(1);
                let mut all = Vec::new();
                for c in Context::ALL {
                    all.extend(gen.scenes(c, per));
                }
                all
            }
        };
        let suite = SensorSuite::new(spec.grid);
        let frames = render_scenes(&suite, scenes, spec.seed);
        // Split on scenes (frames) with a dedicated stream.
        let mut split_rng = Rng::new(spec.seed ^ 0x5117);
        let scenes_only: Vec<Scene> = frames.iter().map(|f| f.scene.clone()).collect();
        let (train_scenes, _) = split_scenes(scenes_only, spec.train_fraction, &mut split_rng);
        let train_ids: std::collections::HashSet<u64> = train_scenes.iter().map(|s| s.id).collect();
        let (mut train, mut test) = (Vec::new(), Vec::new());
        for f in frames {
            if train_ids.contains(&f.scene.id) {
                train.push(f);
            } else {
                test.push(f);
            }
        }
        Dataset { train, test, grid: spec.grid }
    }

    /// Training frames.
    pub fn train(&self) -> &[Frame] {
        &self.train
    }

    /// Held-out test frames.
    pub fn test(&self) -> &[Frame] {
        &self.test
    }

    /// Observation grid side length.
    pub fn grid(&self) -> usize {
        self.grid
    }

    /// Test frames belonging to one context.
    pub fn test_in_context(&self, context: Context) -> Vec<&Frame> {
        self.test.iter().filter(|f| f.scene.context == context).collect()
    }
}

/// Renders scenes to frames in parallel, deterministically: each scene's
/// render stream is derived from the master seed and the scene id only.
fn render_scenes(suite: &SensorSuite, scenes: Vec<Scene>, seed: u64) -> Vec<Frame> {
    let n_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2).min(8);
    if scenes.len() < 16 || n_threads < 2 {
        return scenes
            .into_iter()
            .map(|scene| {
                let mut rng = render_rng(seed, scene.id);
                let obs = suite.observe(&scene, &mut rng);
                Frame { scene, obs }
            })
            .collect();
    }
    let chunk = scenes.len().div_ceil(n_threads);
    let chunks: Vec<Vec<Scene>> = scenes.chunks(chunk).map(|c| c.to_vec()).collect();
    let mut out: Vec<Frame> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                s.spawn(move || {
                    chunk
                        .into_iter()
                        .map(|scene| {
                            let mut rng = render_rng(seed, scene.id);
                            let obs = suite.observe(&scene, &mut rng);
                            Frame { scene, obs }
                        })
                        .collect::<Vec<Frame>>()
                })
            })
            .collect();
        for h in handles {
            out.extend(h.join().expect("render worker panicked"));
        }
    });
    out
}

fn render_rng(seed: u64, scene_id: u64) -> Rng {
    Rng::new(seed ^ scene_id.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0xB5))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_fractions() {
        let d = Dataset::generate(&DatasetSpec::small(1));
        let total = d.train().len() + d.test().len();
        assert_eq!(total, 72);
        let frac = d.train().len() as f64 / total as f64;
        assert!((frac - 0.7).abs() < 0.02, "{frac}");
        assert_eq!(d.grid(), 32);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Dataset::generate(&DatasetSpec::small(7));
        let b = Dataset::generate(&DatasetSpec::small(7));
        assert_eq!(a.train().len(), b.train().len());
        for (fa, fb) in a.train().iter().zip(b.train()) {
            assert_eq!(fa.scene, fb.scene);
            for k in ecofusion_sensors::SensorKind::ALL {
                assert_eq!(fa.obs.grid(k), fb.obs.grid(k));
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Dataset::generate(&DatasetSpec::small(1));
        let b = Dataset::generate(&DatasetSpec::small(2));
        assert_ne!(a.train()[0].scene, b.train()[0].scene);
    }

    #[test]
    fn single_context_mix() {
        let mut spec = DatasetSpec::small(3);
        spec.mix = DatasetMix::Single(Context::Fog);
        spec.num_scenes = 20;
        let d = Dataset::generate(&spec);
        assert!(d.train().iter().all(|f| f.scene.context == Context::Fog));
        assert!(d.test().iter().all(|f| f.scene.context == Context::Fog));
    }

    #[test]
    fn balanced_mix_covers_all_contexts() {
        let mut spec = DatasetSpec::small(4);
        spec.mix = DatasetMix::Balanced;
        spec.num_scenes = 80;
        let d = Dataset::generate(&spec);
        for c in Context::ALL {
            let n = d.train().iter().filter(|f| f.scene.context == c).count()
                + d.test().iter().filter(|f| f.scene.context == c).count();
            assert_eq!(n, 10, "{c:?}");
        }
    }

    #[test]
    fn gt_boxes_accessible() {
        let d = Dataset::generate(&DatasetSpec::small(5));
        let f = &d.train()[0];
        assert_eq!(f.gt_boxes().len(), f.scene.objects.len());
    }

    #[test]
    fn test_in_context_filters() {
        let d = Dataset::generate(&DatasetSpec::small(6));
        for f in d.test_in_context(Context::City) {
            assert_eq!(f.scene.context, Context::City);
        }
    }
}
