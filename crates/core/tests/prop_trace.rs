//! Property tests of the per-frame trace instrumentation
//! ([`ecofusion_core::trace_frame`]).
//!
//! Two properties across seeds × contexts × gates × health masks:
//!
//! 1. **Nesting** — every `Begin` on the stream track is closed by the
//!    `End` with the same name in LIFO order, timestamps never run
//!    backwards, and the seven stage spans sit exactly one level inside
//!    the `frame` span.
//! 2. **Exact accounting** — the `energy_j`/`latency_ms` args on the
//!    stage spans sum *bit-for-bit* to the frame's [`StageTrace`]
//!    totals (`trace_frame` copies the per-stage `f64`s unrounded, and
//!    both sides fold in stage order), and the virtual-time cursor
//!    advances by exactly the modeled latency of each stage.
//!
//! Plus the zero-overhead contract: a disabled sink records nothing and
//! leaves the time cursor untouched.

use ecofusion_core::{trace_frame, EcoFusionModel, Frame, InferenceOptions};
use ecofusion_energy::{StageKind, StageTrace};
use ecofusion_gating::GateKind;
use ecofusion_scene::{Context, ScenarioGenerator};
use ecofusion_sensors::{SensorMask, SensorSuite};
use ecofusion_tensor::rng::Rng;
use ecofusion_trace::{ns_from_ms, EventKind, TraceSink, Track};
use proptest::prelude::*;

const GRID: usize = 32;

fn render_frame(seed: u64, context: Context) -> Frame {
    let mut generator = ScenarioGenerator::new(seed);
    let scene = generator.scene(context);
    let suite = SensorSuite::new(GRID);
    let obs = suite.observe(&scene, &mut Rng::new(seed ^ 0xF00D));
    Frame { scene, obs }
}

fn arb_context() -> impl Strategy<Value = Context> {
    (0usize..Context::ALL.len()).prop_map(|i| Context::ALL[i])
}

fn arb_gate() -> impl Strategy<Value = GateKind> {
    (0usize..GateKind::ALL.len()).prop_map(|i| GateKind::ALL[i])
}

proptest! {
    // Each case builds and runs a fresh model; sixteen cases still sweep
    // every gate and a spread of masks/contexts/start offsets.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn frame_spans_nest_and_stage_args_sum_exactly(
        seed in 0u64..1000,
        context in arb_context(),
        gate in arb_gate(),
        mask_bits in 0u8..16,
        start_ms in 0u64..500,
    ) {
        let frame = render_frame(seed, context);
        let opts = InferenceOptions::new(0.01, 0.5)
            .with_gate(gate)
            .with_health(SensorMask::from_bits(mask_bits));
        let mut model = EcoFusionModel::new(GRID, 8, &mut Rng::new(seed ^ 0x7ACE));
        let out = model.infer(&frame, &opts).expect("matching grid");

        let mut sink = TraceSink::with_capacity(256);
        let start_ns = start_ms * 1_000_000;
        let end_ns = trace_frame(&mut sink, 3, 5, start_ns, &out);

        // Property 1: LIFO nesting with matching names, monotone time,
        // stages exactly one level inside the frame span.
        let mut stack: Vec<(&str, u64)> = Vec::new();
        let mut last_t = start_ns;
        for e in sink.events() {
            prop_assert_eq!(e.track, Track::Stream(3));
            prop_assert!(e.t_ns >= last_t, "time ran backwards at {}", e.name);
            last_t = e.t_ns;
            match e.kind {
                EventKind::Begin => {
                    if e.name != "frame" {
                        prop_assert_eq!(stack.len(), 1, "stage `{}` outside frame span", e.name);
                    }
                    stack.push((e.name, e.t_ns));
                }
                EventKind::End => {
                    let (name, t_begin) = stack.pop().expect("End without matching Begin");
                    prop_assert_eq!(name, e.name, "crossed spans");
                    prop_assert!(e.t_ns >= t_begin);
                }
                _ => {}
            }
        }
        prop_assert!(stack.is_empty(), "unclosed spans: {:?}", stack);

        // Property 2: stage args replay the StageTrace exactly, in stage
        // order, and the cursor advances by the modeled latencies.
        let trace: &StageTrace = &out.stage_trace;
        let mut energy = 0.0_f64;
        let mut latency = 0.0_f64;
        let mut cursor = start_ns;
        let mut seen = 0usize;
        for e in sink.events().filter(|e| e.kind == EventKind::Begin && e.name != "frame") {
            prop_assert_eq!(e.name, StageKind::ALL[seen].label(), "stage order");
            prop_assert_eq!(e.t_ns, cursor, "stage `{}` start", e.name);
            energy += e.arg_f64("energy_j").expect("stage span carries energy_j");
            let ms = e.arg_f64("latency_ms").expect("stage span carries latency_ms");
            latency += ms;
            cursor += ns_from_ms(ms);
            seen += 1;
        }
        prop_assert_eq!(seen, StageKind::ALL.len(), "one span per pipeline stage");
        prop_assert_eq!(energy, trace.total_energy().joules(), "exact energy sum");
        prop_assert_eq!(latency, trace.total_latency().millis(), "exact latency sum");
        prop_assert_eq!(end_ns, cursor, "returned cursor is the frame end");

        // Zero-overhead contract: disabled sink records nothing and the
        // cursor does not move.
        let mut off = TraceSink::disabled();
        prop_assert_eq!(trace_frame(&mut off, 3, 5, start_ns, &out), start_ns);
        prop_assert_eq!(off.total_emitted(), 0);
        prop_assert!(off.metrics().is_empty());
    }
}
