//! Property tests of the staged pipeline.
//!
//! The central property: the staged, demand-driven executor behind
//! `infer` is *bit-identical* to a monolithic reference that always runs
//! every stem eagerly and then executes gate → select → branch → fuse in
//! one straight line — across seeds × contexts × health masks × gates.
//! The reference reproduces the pipeline's semantic spec (masked sensors
//! contribute zero-filled gate features) without any pruning, so the
//! comparison isolates exactly what the refactor changed: *when* stems
//! run, never *what* the frame produces.
//!
//! A second property pins the accounting: `StageTrace` energies and
//! latencies sum to the `EnergyBreakdown` totals for every configuration
//! under both stem policies.

use ecofusion_core::model::InferenceOutput;
use ecofusion_core::{ConfigId, EcoFusionModel, Frame, InferenceOptions};
use ecofusion_detect::stem::STEM_CHANNELS;
use ecofusion_detect::Detection;
use ecofusion_energy::{StageTrace, StemPolicy};
use ecofusion_gating::{Gate, GateInput, GateKind};
use ecofusion_scene::{Context, ScenarioGenerator};
use ecofusion_sensors::{SensorKind, SensorMask, SensorSuite};
use ecofusion_tensor::rng::Rng;
use ecofusion_tensor::tensor::Tensor;
use proptest::prelude::*;

const GRID: usize = 32;

fn render_frame(seed: u64, context: Context) -> Frame {
    let mut generator = ScenarioGenerator::new(seed);
    let scene = generator.scene(context);
    let suite = SensorSuite::new(GRID);
    let obs = suite.observe(&scene, &mut Rng::new(seed ^ 0xF00D));
    Frame { scene, obs }
}

/// The legacy monolithic path, reconstructed from public APIs: every
/// stem runs unconditionally, masked sensors are zeroed in the gate
/// features, then gate → Eq. 7-9 select → selected branches → fuse.
fn monolithic_infer(
    model: &mut EcoFusionModel,
    frame: &Frame,
    opts: &InferenceOptions,
) -> (ConfigId, Vec<Detection>, Vec<f32>) {
    // Stems: always all four.
    let feats = model.stem_features(&frame.obs, false);
    // Gate features with the masked sensors zero-filled (the staged
    // pipeline's spec for unavailable modalities).
    let zero = Tensor::zeros(&[1, STEM_CHANNELS, GRID / 2, GRID / 2]);
    let gate_parts: Vec<&Tensor> = SensorKind::ALL
        .iter()
        .map(|k| if opts.health.is_available(*k) { &feats[k.index()] } else { &zero })
        .collect();
    let gate_feats = Tensor::concat_channels(&gate_parts);
    // Oracle losses for the loss-based gate (all branches, a posteriori).
    let oracle: Option<Vec<f32>> = (opts.gate == GateKind::LossBased).then(|| {
        let dets = model.all_branch_detections(&feats, opts.score_thresh, opts.nms_iou);
        model.config_losses_from(&dets, &frame.gt_boxes())
    });
    let input = GateInput {
        features: &gate_feats,
        context: Some(frame.scene.context),
        oracle_losses: oracle.as_deref(),
        sensor_health: Some(opts.health),
    };
    let predicted = match opts.gate {
        GateKind::Knowledge => model.gates_mut().knowledge.predict(&input),
        GateKind::Deep => model.gates_mut().deep.predict(&input),
        GateKind::Attention => model.gates_mut().attention.predict(&input),
        GateKind::LossBased => model.gates_mut().loss_based.predict(&input),
    };
    // Eq. 7-9 with the fault-aware penalty, via the same public pieces
    // the model composes internally.
    let mut adjusted = predicted.clone();
    model.penalize_unavailable(&mut adjusted, opts.health);
    let energies = model.space().energies(model.px2(), StemPolicy::Adaptive);
    let idx =
        ecofusion_core::select_config(&adjusted, &energies, opts.lambda_e, opts.gamma, opts.rule);
    let selected = ConfigId(idx);
    // Selected branches on the eagerly computed stems, then fuse.
    let outputs: Vec<Vec<Detection>> = model
        .space()
        .branch_ids(selected)
        .iter()
        .map(|b| model.run_branch(b.0, &feats, opts.score_thresh, opts.nms_iou))
        .collect();
    let detections = model.fuse(&outputs);
    (selected, detections, predicted)
}

fn arb_context() -> impl Strategy<Value = Context> {
    (0usize..Context::ALL.len()).prop_map(|i| Context::ALL[i])
}

fn arb_gate() -> impl Strategy<Value = GateKind> {
    (0usize..GateKind::ALL.len()).prop_map(|i| GateKind::ALL[i])
}

proptest! {
    // Each case builds a fresh model and runs up to eight inferences;
    // two dozen cases still sweep every gate × many mask/context combos.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn staged_execution_matches_monolithic_reference(
        seed in 0u64..1000,
        context in arb_context(),
        gate in arb_gate(),
        mask_bits in 0u8..16,
    ) {
        let frame = render_frame(seed, context);
        let mask = SensorMask::from_bits(mask_bits);
        let opts = InferenceOptions::new(0.01, 0.5).with_gate(gate).with_health(mask);
        let mut model = EcoFusionModel::new(GRID, 8, &mut Rng::new(seed ^ 0x5EED));
        let staged = model.infer(&frame, &opts).expect("matching grid");
        let (ref_selected, ref_dets, ref_predicted) =
            monolithic_infer(&mut model, &frame, &opts);
        prop_assert_eq!(staged.selected_config, ref_selected, "{:?} mask {:#06b}", gate, mask_bits);
        prop_assert_eq!(&staged.detections, &ref_dets, "{:?} mask {:#06b}", gate, mask_bits);
        prop_assert_eq!(&staged.predicted_losses, &ref_predicted, "{:?}", gate);
        // The demand-driven pipeline never runs more stems than the
        // monolith, and the counters always cover all four sensors.
        let t = &staged.stage_trace;
        prop_assert!(t.stems_executed <= 4);
        prop_assert_eq!(
            t.stems_executed + t.stems_cached + t.stems_skipped,
            SensorKind::COUNT as u8
        );
        prop_assert!(t.matches(&staged.energy), "trace must decompose the breakdown");
    }

    #[test]
    fn staged_batch_matches_staged_sequential(
        seed in 0u64..1000,
        context in arb_context(),
        gate in arb_gate(),
        mask_bits in 0u8..16,
    ) {
        let frames: Vec<Frame> =
            (0..3).map(|i| render_frame(seed.wrapping_add(i * 131), context)).collect();
        let mask = SensorMask::from_bits(mask_bits);
        let opts = InferenceOptions::new(0.01, 0.5).with_gate(gate).with_health(mask);
        let mut model = EcoFusionModel::new(GRID, 8, &mut Rng::new(seed ^ 0xBA7C4));
        let batched = model.infer_batch(&frames, &opts).expect("matching grid");
        let sequential: Vec<InferenceOutput> =
            frames.iter().map(|f| model.infer(f, &opts).expect("matching grid")).collect();
        for (b, s) in batched.iter().zip(&sequential) {
            prop_assert_eq!(b.selected_config, s.selected_config, "{:?}", gate);
            prop_assert_eq!(&b.detections, &s.detections, "{:?}", gate);
            prop_assert_eq!(b.stage_trace.stems_executed, s.stage_trace.stems_executed);
            prop_assert_eq!(b.stage_trace.stems_skipped, s.stage_trace.stems_skipped);
        }
    }

    #[test]
    fn stage_trace_sums_to_energy_breakdown(config in 0usize..127) {
        let model = EcoFusionModel::new(GRID, 8, &mut Rng::new(3));
        let specs = model.space().branch_specs(ConfigId(config));
        for policy in [StemPolicy::Static, StemPolicy::Adaptive] {
            let (breakdown, trace) = ecofusion_core::pipeline::account(
                model.px2(),
                model.sensor_power(),
                &specs,
                policy,
            );
            prop_assert!(
                (trace.total_energy().joules() - breakdown.total_gated().joules()).abs() < 1e-9,
                "config {} {:?}: {} vs {}",
                config,
                policy,
                trace.total_energy(),
                breakdown.total_gated()
            );
            prop_assert!(
                (trace.total_latency().millis() - breakdown.latency.millis()).abs() < 1e-9,
                "config {} {:?}",
                config,
                policy
            );
            prop_assert!(trace.matches(&breakdown));
        }
    }

    #[test]
    fn demand_driven_knowledge_gate_never_runs_unused_stems(
        seed in 0u64..1000,
        context in arb_context(),
        mask_bits in 0u8..16,
    ) {
        let frame = render_frame(seed, context);
        let mask = SensorMask::from_bits(mask_bits);
        let opts =
            InferenceOptions::new(0.01, 0.5).with_gate(GateKind::Knowledge).with_health(mask);
        let mut model = EcoFusionModel::new(GRID, 8, &mut Rng::new(seed ^ 0xCAFE));
        let out = model.infer(&frame, &opts).expect("matching grid");
        let config_bits = model.config_sensor_bits()[out.selected_config.0];
        prop_assert_eq!(
            out.stage_trace.stems_executed as u32,
            config_bits.count_ones(),
            "knowledge gate must run exactly the winner's stems ({})",
            out.selected_label
        );
    }
}

/// Not a property, but pinned here with the trace tests: the adaptive
/// trace of a live inference decomposes its own breakdown exactly.
#[test]
fn live_inference_trace_decomposes_breakdown() {
    let frame = render_frame(7, Context::Fog);
    let mut model = EcoFusionModel::new(GRID, 8, &mut Rng::new(11));
    for gate in GateKind::ALL {
        let out = model.infer(&frame, &InferenceOptions::new(0.05, 0.5).with_gate(gate)).unwrap();
        let trace: &StageTrace = &out.stage_trace;
        assert!(trace.matches(&out.energy), "{gate:?}");
        assert_eq!(trace.stems_executed + trace.stems_cached + trace.stems_skipped, 4, "{gate:?}");
    }
}
