//! Property tests of the fused-operator compiled execution layer
//! ([`ecofusion_tensor::graph`]) as seen through the full pipeline.
//!
//! Two contracts:
//!
//! 1. **Bit-identity** — with compiled execution forced on, `infer_batch`
//!    produces byte-for-byte the same detections, selected
//!    configurations, and gate losses as the eager path, across seeds ×
//!    contexts × health masks × batch sizes × `Precision::{F32, Int8}`.
//!    The compiled gate is process-global, so every case runs under one
//!    mutex and restores the environment default afterwards.
//! 2. **Zero steady-state allocations** — once a plan is warm,
//!    `CompiledPlan::execute_into` performs no heap allocation at all
//!    (f32 and int8), measured with a counting global allocator. Shapes
//!    stay under the backend's parallel-GEMM threshold so no scoped
//!    threads (which allocate stacks) are spawned.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Mutex;

use ecofusion_core::{EcoFusionModel, Frame, InferenceOptions};
use ecofusion_detect::stem::{Stem, STEM_CHANNELS};
use ecofusion_energy::Precision;
use ecofusion_scene::{Context, ScenarioGenerator};
use ecofusion_sensors::{SensorMask, SensorSuite};
use ecofusion_tensor::graph::{compile_quant_pipe, set_compiled};
use ecofusion_tensor::rng::Rng;
use ecofusion_tensor::Tensor;
use proptest::prelude::*;

const GRID: usize = 32;

/// Serializes tests that flip the process-global compiled gate.
static GATE: Mutex<()> = Mutex::new(());

// ---------------------------------------------------------------------------
// Counting allocator (per-thread, so concurrent tests don't bleed in)
// ---------------------------------------------------------------------------

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

// SAFETY: defers to `System` for every operation; the thread-local is a
// `Cell<u64>` with const init (no lazy allocation, no destructor), so
// counting from inside the allocator cannot recurse.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs_on_this_thread() -> u64 {
    ALLOCS.with(|c| c.get())
}

// ---------------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------------

fn render_frames(seed: u64, context: Context, n: usize) -> Vec<Frame> {
    let mut generator = ScenarioGenerator::new(seed);
    let suite = SensorSuite::new(GRID);
    (0..n)
        .map(|i| {
            let scene = generator.scene(context);
            let obs = suite.observe(&scene, &mut Rng::new(seed ^ (0xF00D + i as u64)));
            Frame { scene, obs }
        })
        .collect()
}

fn arb_context() -> impl Strategy<Value = Context> {
    (0usize..Context::ALL.len()).prop_map(|i| Context::ALL[i])
}

proptest! {
    // Each case builds one model and runs the batch twice (eager +
    // compiled); twelve cases sweep both precisions, a spread of health
    // masks, and batch sizes 1..4.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn compiled_inference_is_bit_identical_to_eager(
        seed in 0u64..1000,
        context in arb_context(),
        mask_bits in 0u8..16,
        batch in 1usize..5,
        int8 in (0u8..2).prop_map(|b| b == 1),
    ) {
        let frames = render_frames(seed, context, batch);
        let mut opts = InferenceOptions::new(0.01, 0.5)
            .with_health(SensorMask::from_bits(mask_bits));
        if int8 {
            opts = opts.with_precision(Precision::Int8);
        }
        let mut model = EcoFusionModel::new(GRID, 8, &mut Rng::new(seed ^ 0x7ACE));

        let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
        set_compiled(Some(false));
        let eager = model.infer_batch(&frames, &opts).expect("eager batch");
        prop_assert_eq!(model.plan_cache_len(), 0, "eager run must not compile plans");
        set_compiled(Some(true));
        let compiled = model.infer_batch(&frames, &opts).expect("compiled batch");
        set_compiled(None);
        prop_assert!(model.plan_cache_len() > 0, "compiled run must populate the cache");

        prop_assert_eq!(eager.len(), compiled.len());
        for (e, c) in eager.iter().zip(&compiled) {
            prop_assert_eq!(&e.detections, &c.detections, "detections differ");
            prop_assert_eq!(e.selected_config, c.selected_config);
            prop_assert_eq!(&e.selected_label, &c.selected_label);
            prop_assert_eq!(e.precision, c.precision);
            prop_assert_eq!(
                e.predicted_losses.len(), c.predicted_losses.len());
            for (a, b) in e.predicted_losses.iter().zip(&c.predicted_losses) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "gate losses differ: {} vs {}", a, b);
            }
            prop_assert_eq!(e.energy_joules().to_bits(), c.energy_joules().to_bits());
        }
    }
}

// ---------------------------------------------------------------------------
// Zero steady-state allocations
// ---------------------------------------------------------------------------

/// Warm f32 stem plan: `execute_into` on a live arena must not allocate.
/// Batch 4 at grid 32 stays under the backend's parallel-GEMM flop
/// threshold, so the whole frame runs on this thread.
#[test]
fn warm_f32_plan_executes_without_allocating() {
    let mut rng = Rng::new(77);
    let mut stem = Stem::new(1, &mut rng);
    let warm = Tensor::randn(&[4, 1, GRID, GRID], 1.0, &mut rng);
    for _ in 0..3 {
        let _ = ecofusion_tensor::layer::Layer::forward(&mut stem, &warm, true);
    }
    let x = Tensor::randn(&[4, 1, GRID, GRID], 1.0, &mut rng);
    let mut plan = stem.compile(x.shape()).expect("stem compiles");
    let mut out = Tensor::zeros(&[4, STEM_CHANNELS, GRID / 2, GRID / 2]);
    // Warm-up: grows the arena scratch and any thread-local pack buffers.
    plan.execute_into(&x, &mut out);
    let before = allocs_on_this_thread();
    for _ in 0..8 {
        plan.execute_into(&x, &mut out);
    }
    let after = allocs_on_this_thread();
    assert_eq!(after - before, 0, "steady-state f32 frame allocated {} times", after - before);
}

/// Warm int8 stem plan: the fused dequant+BN+ReLU epilogue runs out of
/// the plan arena's own buffers, so the steady state is allocation-free
/// too.
#[test]
fn warm_int8_plan_executes_without_allocating() {
    let mut rng = Rng::new(78);
    let mut stem = Stem::new(1, &mut rng);
    let warm = Tensor::randn(&[4, 1, GRID, GRID], 1.0, &mut rng);
    for _ in 0..3 {
        let _ = ecofusion_tensor::layer::Layer::forward(&mut stem, &warm, true);
    }
    let calib: Vec<Tensor> =
        (0..3).map(|_| Tensor::randn(&[1, 1, GRID, GRID], 1.0, &mut rng)).collect();
    let (pipe, _) = stem.quantize(&calib).expect("stem quantizes");
    let x = Tensor::randn(&[4, 1, GRID, GRID], 1.0, &mut rng);
    let mut plan = compile_quant_pipe(&pipe, x.shape()).expect("pipe compiles");
    let mut out = Tensor::zeros(&[4, STEM_CHANNELS, GRID / 2, GRID / 2]);
    plan.execute_into(&x, &mut out);
    let before = allocs_on_this_thread();
    for _ in 0..8 {
        plan.execute_into(&x, &mut out);
    }
    let after = allocs_on_this_thread();
    assert_eq!(after - before, 0, "steady-state int8 frame allocated {} times", after - before);
}
