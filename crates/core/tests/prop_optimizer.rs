//! Property-based tests of the Eq. 7–9 joint optimization.

use ecofusion_core::{joint_loss, select_candidates, select_config, CandidateRule, ConfigSpace};
use ecofusion_energy::{Joules, Px2Model, StemPolicy};
use proptest::prelude::*;

fn arb_losses() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(0.0f32..10.0, 1..40)
}

proptest! {
    #[test]
    fn candidates_always_include_argmin(losses in arb_losses(), gamma in 0.0f32..3.0) {
        for rule in [CandidateRule::Margin, CandidateRule::PaperEq7] {
            let cands = select_candidates(&losses, gamma, rule);
            let argmin = losses
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i)
                .unwrap();
            prop_assert!(cands.contains(&argmin), "{rule:?}");
        }
    }

    #[test]
    fn paper_rule_is_superset_of_margin(losses in arb_losses(), gamma in 0.0f32..3.0) {
        // 2·L' + γ ≥ L' + γ whenever L' ≥ 0, so Eq. 7 as printed admits
        // every margin candidate.
        let margin = select_candidates(&losses, gamma, CandidateRule::Margin);
        let paper = select_candidates(&losses, gamma, CandidateRule::PaperEq7);
        for c in &margin {
            prop_assert!(paper.contains(c));
        }
    }

    #[test]
    fn selected_config_is_a_candidate(
        losses in arb_losses(),
        gamma in 0.0f32..3.0,
        lambda in 0.0f64..1.0,
        seed in 0u64..500,
    ) {
        let mut rng = ecofusion_tensor::rng::Rng::new(seed);
        let energies: Vec<Joules> =
            (0..losses.len()).map(|_| Joules::new(rng.uniform(0.5, 8.0))).collect();
        let idx = select_config(&losses, &energies, lambda, gamma, CandidateRule::Margin);
        let cands = select_candidates(&losses, gamma, CandidateRule::Margin);
        prop_assert!(cands.contains(&idx));
    }

    #[test]
    fn lambda_zero_minimizes_loss_lambda_one_minimizes_energy(
        losses in arb_losses(),
        seed in 0u64..500,
    ) {
        let mut rng = ecofusion_tensor::rng::Rng::new(seed);
        let energies: Vec<Joules> =
            (0..losses.len()).map(|_| Joules::new(rng.uniform(0.5, 8.0))).collect();
        // Huge gamma: all configs are candidates.
        let i0 = select_config(&losses, &energies, 0.0, 1e9, CandidateRule::Margin);
        let min_loss = losses.iter().copied().fold(f32::INFINITY, f32::min);
        prop_assert!((losses[i0] - min_loss).abs() < 1e-6);
        let i1 = select_config(&losses, &energies, 1.0, 1e9, CandidateRule::Margin);
        let min_e = energies.iter().map(|e| e.joules()).fold(f64::INFINITY, f64::min);
        prop_assert!((energies[i1].joules() - min_e).abs() < 1e-9);
    }

    #[test]
    fn joint_loss_interpolates_linearly(
        l in 0.0f32..10.0,
        e in 0.0f64..10.0,
        lambda in 0.0f64..1.0,
    ) {
        let j = joint_loss(l, Joules::new(e), lambda);
        let expect = (1.0 - lambda) * l as f64 + lambda * e;
        prop_assert!((j - expect).abs() < 1e-9);
    }

    #[test]
    fn selected_energy_monotone_in_lambda(
        losses in prop::collection::vec(0.0f32..4.0, 2..30),
        seed in 0u64..500,
    ) {
        // With a fixed loss vector, raising lambda never increases the
        // energy of the selected configuration.
        let mut rng = ecofusion_tensor::rng::Rng::new(seed);
        let energies: Vec<Joules> =
            (0..losses.len()).map(|_| Joules::new(rng.uniform(0.5, 8.0))).collect();
        let mut prev = f64::INFINITY;
        for lambda in [0.0, 0.1, 0.3, 0.6, 1.0] {
            let i = select_config(&losses, &energies, lambda, 1.0, CandidateRule::Margin);
            let e = energies[i].joules();
            prop_assert!(e <= prev + 1e-9, "lambda {lambda}: {e} > {prev}");
            prev = e;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn config_space_roundtrip(mask in 1usize..128) {
        let space = ConfigSpace::canonical();
        let id = ecofusion_core::ConfigId(mask - 1);
        let ids = space.branch_ids(id);
        prop_assert!(!ids.is_empty());
        prop_assert_eq!(space.config_of(&ids), id);
        // Energy of every config is at least the cheapest single branch.
        let e = space.energies(&Px2Model::default(), StemPolicy::Static);
        prop_assert!(e[id.0].joules() >= 0.945 - 1e-9);
    }
}
