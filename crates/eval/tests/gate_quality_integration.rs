//! Integration test: gate-quality analytics on a trained model.

use ecofusion_core::{Dataset, DatasetSpec, Frame, TrainConfig, Trainer};
use ecofusion_eval::assess_gate;
use ecofusion_gating::GateKind;

#[test]
fn learned_gates_rank_better_than_chance() {
    let mut spec = DatasetSpec::small(61);
    spec.num_scenes = 48;
    let data = Dataset::generate(&spec);
    let config = TrainConfig { branch_epochs: 2, gate_epochs: 4, ..TrainConfig::fast_demo() };
    let mut model = Trainer::new(config, 62).train(&data).expect("train");
    let frames: Vec<&Frame> = data.test().iter().collect();
    for gate in [GateKind::Deep, GateKind::Attention] {
        let q = assess_gate(&mut model, &frames, gate, 0.05, 0.5);
        assert_eq!(q.frames, frames.len());
        // A trained gate must correlate positively with the true losses
        // (chance would hover around zero).
        assert!(q.mean_spearman > 0.1, "{gate}: spearman {}", q.mean_spearman);
        // Regret is non-negative by construction.
        assert!(q.mean_regret >= -1e-6, "{gate}: regret {}", q.mean_regret);
    }
}

#[test]
#[should_panic(expected = "learned gate")]
fn assessing_oracle_gate_panics() {
    let mut spec = DatasetSpec::small(63);
    spec.num_scenes = 12;
    let data = Dataset::generate(&spec);
    let config = TrainConfig { branch_epochs: 1, gate_epochs: 1, ..TrainConfig::fast_demo() };
    let mut model = Trainer::new(config, 64).train(&data).expect("train");
    let frames: Vec<&Frame> = data.test().iter().collect();
    let _ = assess_gate(&mut model, &frames, GateKind::LossBased, 0.0, 0.5);
}
