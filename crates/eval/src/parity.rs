//! Int8-vs-f32 parity accounting: per-suite mAP drift bounds.
//!
//! Post-training quantization trades numeric fidelity for energy; the
//! repo's contract (ISSUE acceptance criteria) is that the trade stays
//! small — per-suite mAP under `Precision::Int8` may drift at most
//! [`DEFAULT_MAX_DRIFT_PP`] percentage points below the f32 run of the
//! same seeded suite. This module is the pure accounting core: the
//! `int8_parity` binary in `ecofusion-bench` produces the paired runs and
//! feeds the numbers here, CI gates on [`ParityReport::violations`].
//!
//! Drift is one-sided: a quantized run scoring *above* f32 (possible on
//! small seeded suites, where rounding can nudge a borderline detection
//! the right way) is never a violation.

use serde::{Deserialize, Serialize};

/// Default per-suite bound on the int8 mAP drift, percentage points.
pub const DEFAULT_MAX_DRIFT_PP: f64 = 1.0;

/// One suite's paired f32/int8 accuracy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParityRow {
    /// Suite name.
    pub suite: String,
    /// mAP of the f32 run, percent.
    pub map_f32_pct: f64,
    /// mAP of the int8 run of the same seeded suite, percent.
    pub map_int8_pct: f64,
}

impl ParityRow {
    /// How far int8 fell below f32, percentage points (negative when the
    /// quantized run scored higher).
    pub fn drift_pp(&self) -> f64 {
        self.map_f32_pct - self.map_int8_pct
    }
}

/// A full parity sweep: every suite's pair plus the bound it was checked
/// against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParityReport {
    /// Per-suite pairs.
    pub rows: Vec<ParityRow>,
    /// The drift bound applied, percentage points.
    pub max_drift_pp: f64,
}

impl ParityReport {
    /// Wraps `rows` under the default bound.
    pub fn new(rows: Vec<ParityRow>) -> Self {
        ParityReport { rows, max_drift_pp: DEFAULT_MAX_DRIFT_PP }
    }

    /// Same report with a custom bound.
    pub fn with_bound(mut self, max_drift_pp: f64) -> Self {
        self.max_drift_pp = max_drift_pp;
        self
    }

    /// The suites whose drift exceeds the bound (NaN mAP on either side
    /// counts as a violation — a poisoned metric must not pass
    /// vacuously).
    pub fn violations(&self) -> Vec<&ParityRow> {
        // Negated `<=` rather than `>` so a NaN drift is a violation.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        self.rows.iter().filter(|r| !(r.drift_pp() <= self.max_drift_pp)).collect()
    }

    /// Whether every suite is inside the bound.
    pub fn passes(&self) -> bool {
        self.violations().is_empty()
    }

    /// The worst (largest) drift observed, percentage points; 0 when
    /// empty.
    pub fn worst_drift_pp(&self) -> f64 {
        self.rows.iter().map(ParityRow::drift_pp).fold(0.0, f64::max)
    }

    /// Plain-text table for logs and CI output.
    pub fn render(&self) -> String {
        let mut out = String::from("suite                    f32 mAP%   int8 mAP%   drift pp\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{:<24} {:>8.3} {:>11.3} {:>10.3}{}\n",
                r.suite,
                r.map_f32_pct,
                r.map_int8_pct,
                r.drift_pp(),
                if r.drift_pp() <= self.max_drift_pp { "" } else { "  VIOLATION" },
            ));
        }
        out.push_str(&format!(
            "bound: {} pp, worst: {:.3} pp → {}\n",
            self.max_drift_pp,
            self.worst_drift_pp(),
            if self.passes() { "PASS" } else { "FAIL" }
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(suite: &str, f32_pct: f64, int8_pct: f64) -> ParityRow {
        ParityRow { suite: suite.to_string(), map_f32_pct: f32_pct, map_int8_pct: int8_pct }
    }

    #[test]
    fn drift_is_one_sided() {
        let report = ParityReport::new(vec![
            row("steady_city", 12.0, 11.5),
            // Int8 above f32: fine, drift negative.
            row("context_churn", 10.0, 10.4),
        ]);
        assert!(report.passes());
        assert!((report.worst_drift_pp() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn drift_past_bound_fails() {
        let report = ParityReport::new(vec![
            row("steady_city", 12.0, 11.5),
            row("budget_squeeze", 12.0, 10.5),
        ]);
        assert!(!report.passes());
        let v = report.violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].suite, "budget_squeeze");
        assert!(report.render().contains("VIOLATION"));
    }

    #[test]
    fn custom_bound_and_nan_handling() {
        let wide = ParityReport::new(vec![row("s", 12.0, 10.5)]).with_bound(2.0);
        assert!(wide.passes());
        // NaN on either side must fail, not pass vacuously.
        let nan = ParityReport::new(vec![row("s", f64::NAN, 10.0)]);
        assert!(!nan.passes());
    }
}
