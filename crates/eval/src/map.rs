//! PASCAL-VOC mean average precision (the paper's §5 metric: mAP for
//! IoU ≥ 0.5 following Everingham et al.).

use ecofusion_detect::{BBox, Detection};
use ecofusion_scene::GtBox;

/// Ground truth of one frame (frame identity is positional).
#[derive(Debug, Clone)]
pub struct GtFrame {
    /// Ground-truth boxes of the frame.
    pub boxes: Vec<GtBox>,
}

/// Computes the average precision of one class using all-point
/// interpolation (the area under the precision envelope).
///
/// `dets` are `(frame_index, detection)` pairs of this class only;
/// `gt_frames` supplies every frame's ground truth. Returns `None` if the
/// class has no ground-truth instances.
pub fn average_precision(
    dets: &[(usize, Detection)],
    gt_frames: &[GtFrame],
    class_id: usize,
    iou_thresh: f32,
) -> Option<f32> {
    let n_gt: usize =
        gt_frames.iter().map(|f| f.boxes.iter().filter(|b| b.class_id == class_id).count()).sum();
    if n_gt == 0 {
        return None;
    }
    // Sort detections by descending confidence.
    let mut order: Vec<usize> = (0..dets.len()).collect();
    order.sort_by(|&a, &b| {
        dets[b].1.score.partial_cmp(&dets[a].1.score).unwrap_or(std::cmp::Ordering::Equal)
    });
    // Track which GT boxes are already matched.
    let mut matched: Vec<Vec<bool>> =
        gt_frames.iter().map(|f| vec![false; f.boxes.len()]).collect();
    let mut tp = Vec::with_capacity(order.len());
    for &di in &order {
        let (fi, det) = &dets[di];
        let frame = &gt_frames[*fi];
        let mut best: Option<(usize, f32)> = None;
        for (gi, gt) in frame.boxes.iter().enumerate() {
            if gt.class_id != class_id || matched[*fi][gi] {
                continue;
            }
            let gb: BBox = (*gt).into();
            let iou = det.bbox.iou(&gb);
            if iou >= iou_thresh && best.is_none_or(|(_, b)| iou > b) {
                best = Some((gi, iou));
            }
        }
        match best {
            Some((gi, _)) => {
                matched[*fi][gi] = true;
                tp.push(true);
            }
            None => tp.push(false),
        }
    }
    // Precision/recall curve.
    let mut cum_tp = 0usize;
    let mut precisions = Vec::with_capacity(tp.len());
    let mut recalls = Vec::with_capacity(tp.len());
    for (i, &is_tp) in tp.iter().enumerate() {
        if is_tp {
            cum_tp += 1;
        }
        precisions.push(cum_tp as f32 / (i + 1) as f32);
        recalls.push(cum_tp as f32 / n_gt as f32);
    }
    // All-point interpolation: precision envelope from the right.
    for i in (0..precisions.len().saturating_sub(1)).rev() {
        precisions[i] = precisions[i].max(precisions[i + 1]);
    }
    let mut ap = 0.0;
    let mut prev_recall = 0.0;
    for (p, r) in precisions.iter().zip(&recalls) {
        ap += (r - prev_recall).max(0.0) * p;
        prev_recall = *r;
    }
    Some(ap)
}

/// Per-class average precision (`None` for classes without ground truth —
/// VOC convention skips them from the mean).
///
/// # Panics
/// Panics if the two slices have different lengths.
pub fn per_class_ap(
    frame_dets: &[Vec<Detection>],
    gt_frames: &[GtFrame],
    num_classes: usize,
    iou_thresh: f32,
) -> Vec<Option<f32>> {
    assert_eq!(frame_dets.len(), gt_frames.len(), "frame count mismatch");
    (0..num_classes)
        .map(|class_id| {
            let dets: Vec<(usize, Detection)> = frame_dets
                .iter()
                .enumerate()
                .flat_map(|(fi, dets)| {
                    dets.iter().filter(|d| d.class_id == class_id).map(move |d| (fi, *d))
                })
                .collect();
            average_precision(&dets, gt_frames, class_id, iou_thresh)
        })
        .collect()
}

/// Mean average precision over all classes with ground-truth support.
///
/// `frame_dets[i]` are the detections of frame `i`; `gt_frames[i]` its
/// ground truth. Classes absent from the ground truth are skipped (VOC
/// convention). Returns a fraction in `[0, 1]`.
///
/// # Panics
/// Panics if the two slices have different lengths.
pub fn map_voc(
    frame_dets: &[Vec<Detection>],
    gt_frames: &[GtFrame],
    num_classes: usize,
    iou_thresh: f32,
) -> f32 {
    let aps: Vec<f32> = per_class_ap(frame_dets, gt_frames, num_classes, iou_thresh)
        .into_iter()
        .flatten()
        .collect();
    if aps.is_empty() {
        0.0
    } else {
        aps.iter().sum::<f32>() / aps.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gt(class: usize, x: f32) -> GtBox {
        GtBox { class_id: class, x1: x, y1: 0.0, x2: x + 10.0, y2: 10.0 }
    }

    fn det(class: usize, x: f32, score: f32) -> Detection {
        Detection::new(BBox::new(x, 0.0, x + 10.0, 10.0), class, score)
    }

    #[test]
    fn perfect_detector_map_one() {
        let gts = vec![GtFrame { boxes: vec![gt(0, 0.0), gt(1, 20.0)] }];
        let dets = vec![vec![det(0, 0.0, 0.9), det(1, 20.0, 0.8)]];
        let m = map_voc(&dets, &gts, 8, 0.5);
        assert!((m - 1.0).abs() < 1e-6);
    }

    #[test]
    fn no_detections_map_zero() {
        let gts = vec![GtFrame { boxes: vec![gt(0, 0.0)] }];
        let dets = vec![vec![]];
        assert_eq!(map_voc(&dets, &gts, 8, 0.5), 0.0);
    }

    #[test]
    fn false_positives_reduce_ap() {
        let gts = vec![GtFrame { boxes: vec![gt(0, 0.0)] }];
        let clean = vec![vec![det(0, 0.0, 0.9)]];
        // High-confidence false positive ranks first.
        let noisy = vec![vec![det(0, 0.0, 0.5), det(0, 50.0, 0.9)]];
        let m_clean = map_voc(&clean, &gts, 8, 0.5);
        let m_noisy = map_voc(&noisy, &gts, 8, 0.5);
        assert!(m_noisy < m_clean, "{m_noisy} vs {m_clean}");
    }

    #[test]
    fn low_confidence_fp_after_tp_harmless_in_all_point_ap() {
        let gts = vec![GtFrame { boxes: vec![gt(0, 0.0)] }];
        // FP at lower score than the TP: recall is already 1.0 there.
        let dets = vec![vec![det(0, 0.0, 0.9), det(0, 50.0, 0.1)]];
        let m = map_voc(&dets, &gts, 8, 0.5);
        assert!((m - 1.0).abs() < 1e-6);
    }

    #[test]
    fn duplicate_detections_count_once() {
        let gts = vec![GtFrame { boxes: vec![gt(0, 0.0)] }];
        let dets = vec![vec![det(0, 0.0, 0.9), det(0, 1.0, 0.8)]];
        // Second detection can't match the same GT: it's a FP at rank 2.
        let m = map_voc(&dets, &gts, 8, 0.5);
        assert!((m - 1.0).abs() < 1e-6, "envelope keeps AP 1.0, got {m}");
        // But with the FP ranked first, AP drops.
        let dets2 = vec![vec![det(0, 1.0, 0.95), det(0, 0.0, 0.9)]];
        let b: BBox = gt(0, 0.0).into();
        assert!(dets2[0][0].bbox.iou(&b) > 0.5); // both could match
        let m2 = map_voc(&dets2, &gts, 8, 0.5);
        assert!((m2 - 1.0).abs() < 1e-6); // first one matches, second FP after full recall
    }

    #[test]
    fn wrong_class_never_matches() {
        let gts = vec![GtFrame { boxes: vec![gt(0, 0.0)] }];
        let dets = vec![vec![det(1, 0.0, 0.9)]];
        assert_eq!(map_voc(&dets, &gts, 8, 0.5), 0.0);
    }

    #[test]
    fn absent_classes_skipped() {
        // Only class 0 in GT: mAP averages over class 0 alone.
        let gts = vec![GtFrame { boxes: vec![gt(0, 0.0)] }];
        let dets = vec![vec![det(0, 0.0, 0.9), det(3, 70.0, 0.9)]];
        let m = map_voc(&dets, &gts, 8, 0.5);
        assert!((m - 1.0).abs() < 1e-6);
    }

    #[test]
    fn half_recall_half_ap() {
        let gts = vec![GtFrame { boxes: vec![gt(0, 0.0), gt(0, 30.0)] }];
        let dets = vec![vec![det(0, 0.0, 0.9)]];
        let m = map_voc(&dets, &gts, 8, 0.5);
        assert!((m - 0.5).abs() < 1e-6);
    }

    #[test]
    fn ap_none_without_gt() {
        let gts = vec![GtFrame { boxes: vec![] }];
        assert!(average_precision(&[], &gts, 0, 0.5).is_none());
    }

    #[test]
    fn multi_frame_aggregation() {
        let gts = vec![GtFrame { boxes: vec![gt(0, 0.0)] }, GtFrame { boxes: vec![gt(0, 0.0)] }];
        // Found in frame 0, missed in frame 1.
        let dets = vec![vec![det(0, 0.0, 0.9)], vec![]];
        let m = map_voc(&dets, &gts, 8, 0.5);
        assert!((m - 0.5).abs() < 1e-6);
    }
}
