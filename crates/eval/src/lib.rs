//! Evaluation metrics and paper-experiment runners.
//!
//! * [`map_voc`] — PASCAL-VOC mean average precision at IoU ≥ 0.5, the
//!   paper's detection metric (§5).
//! * [`EvalSummary`] — aggregate mAP / average fusion loss / average
//!   energy / latency for one method over a frame set.
//! * [`experiments`] — one runner per table and figure of the paper's
//!   evaluation section (Fig. 1, Fig. 4, Fig. 5, Tables 1–3) plus the
//!   ablation studies promised in DESIGN.md. Each runner returns typed
//!   rows and renders the same layout the paper prints; the
//!   `ecofusion-bench` binaries are thin wrappers around them.

pub mod experiments;
pub mod gate_quality;
pub mod map;
pub mod parity;
pub mod summary;
pub mod tables;

pub use gate_quality::{assess_gate, spearman, GateQualityReport};
pub use map::{average_precision, map_voc, per_class_ap, GtFrame};
pub use parity::{ParityReport, ParityRow, DEFAULT_MAX_DRIFT_PP};
pub use summary::{evaluate_frames, EvalSummary, FrameOutcome};
pub use tables::Table;
