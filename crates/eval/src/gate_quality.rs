//! Gate prediction quality analytics.
//!
//! The paper attributes the Attention/Deep vs Loss-Based gap to "modeling
//! limitations" of the gates (§5.1). This module quantifies that gap: how
//! well a gate's predicted per-configuration losses *rank* the true
//! losses, and how much joint-objective regret its selections incur
//! against the oracle.

use ecofusion_core::{
    joint_loss, select_config, CandidateRule, EcoFusionModel, Frame, InferenceOptions,
};
use ecofusion_energy::Joules;
use ecofusion_gating::{Gate, GateInput, GateKind};
use serde::Serialize;

/// Spearman rank correlation between two equal-length slices.
///
/// Returns 0 for degenerate inputs (fewer than two elements or constant
/// vectors). Ties receive their average rank.
pub fn spearman(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "spearman length mismatch");
    let n = a.len();
    if n < 2 {
        return 0.0;
    }
    let ra = ranks(a);
    let rb = ranks(b);
    // Pearson correlation of the ranks.
    let mean = (n as f64 - 1.0) / 2.0 + 1.0;
    let mut num = 0.0;
    let mut da = 0.0;
    let mut db = 0.0;
    for i in 0..n {
        let xa = ra[i] - mean;
        let xb = rb[i] - mean;
        num += xa * xb;
        da += xa * xa;
        db += xb * xb;
    }
    if da <= 0.0 || db <= 0.0 {
        0.0
    } else {
        num / (da.sqrt() * db.sqrt())
    }
}

fn ranks(v: &[f32]) -> Vec<f64> {
    let n = v.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&i, &j| v[i].partial_cmp(&v[j]).unwrap_or(std::cmp::Ordering::Equal));
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        // Find the tie group [i, j).
        let mut j = i + 1;
        while j < n && v[idx[j]] == v[idx[i]] {
            j += 1;
        }
        let avg_rank = ((i + 1 + j) as f64) / 2.0; // mean of ranks i+1..=j
        for k in i..j {
            out[idx[k]] = avg_rank;
        }
        i = j;
    }
    out
}

/// Quality of one gate over a frame set.
#[derive(Debug, Clone, Serialize)]
pub struct GateQualityReport {
    /// Which gate was assessed.
    pub gate: String,
    /// Mean Spearman rank correlation between predicted and true
    /// per-configuration losses.
    pub mean_spearman: f64,
    /// Fraction of frames where the gate's argmin equals the true argmin.
    pub top1_agreement: f64,
    /// Mean joint-objective regret of the gate's selection vs the oracle
    /// selection, both scored with the *true* losses.
    pub mean_regret: f64,
    /// Frames assessed.
    pub frames: usize,
}

/// Assesses a learned gate against the oracle on `frames`.
///
/// # Panics
/// Panics if `gate` is [`GateKind::LossBased`] (the oracle has no gap to
/// itself) or [`GateKind::Knowledge`] (its outputs are selection masks,
/// not loss estimates).
pub fn assess_gate(
    model: &mut EcoFusionModel,
    frames: &[&Frame],
    gate: GateKind,
    lambda_e: f64,
    gamma: f32,
) -> GateQualityReport {
    assert!(
        matches!(gate, GateKind::Deep | GateKind::Attention),
        "assess_gate expects a learned gate"
    );
    let opts = InferenceOptions::new(lambda_e, gamma);
    let energies: Vec<Joules> =
        model.space().energies(model.px2(), ecofusion_energy::StemPolicy::Adaptive);
    let mut sum_rho = 0.0;
    let mut top1 = 0usize;
    let mut sum_regret = 0.0;
    for frame in frames {
        let true_losses = model.config_losses(frame, &opts);
        let feats = model.stem_features(&frame.obs, false);
        let gate_feats = EcoFusionModel::gate_features(&feats);
        let input = GateInput::features_only(&gate_feats);
        let predicted = match gate {
            GateKind::Deep => model.gates_mut().deep.predict(&input),
            GateKind::Attention => model.gates_mut().attention.predict(&input),
            _ => unreachable!(),
        };
        sum_rho += spearman(&predicted, &true_losses);
        let pred_argmin = argmin(&predicted);
        let true_argmin = argmin(&true_losses);
        if pred_argmin == true_argmin {
            top1 += 1;
        }
        let chosen = select_config(&predicted, &energies, lambda_e, gamma, CandidateRule::Margin);
        let oracle = select_config(&true_losses, &energies, lambda_e, gamma, CandidateRule::Margin);
        let regret = joint_loss(true_losses[chosen], energies[chosen], lambda_e)
            - joint_loss(true_losses[oracle], energies[oracle], lambda_e);
        sum_regret += regret;
    }
    let n = frames.len().max(1) as f64;
    GateQualityReport {
        gate: gate.to_string(),
        mean_spearman: sum_rho / n,
        top1_agreement: top1 as f64 / n,
        mean_regret: sum_regret / n,
        frames: frames.len(),
    }
}

fn argmin(v: &[f32]) -> usize {
    v.iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spearman_perfect_and_inverse() {
        let a = [1.0f32, 2.0, 3.0, 4.0];
        let b = [10.0f32, 20.0, 30.0, 40.0];
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
        let c = [40.0f32, 30.0, 20.0, 10.0];
        assert!((spearman(&a, &c) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties_and_degenerates() {
        let a = [1.0f32, 1.0, 2.0];
        let b = [5.0f32, 5.0, 9.0];
        assert!(spearman(&a, &b) > 0.9);
        assert_eq!(spearman(&[1.0], &[2.0]), 0.0);
        assert_eq!(spearman(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
    }

    #[test]
    fn spearman_invariant_to_monotone_transform() {
        let a = [0.2f32, 1.5, 0.9, 3.0];
        let b: Vec<f32> = a.iter().map(|v| v.ln_1p()).collect();
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn regret_of_oracle_is_zero() {
        // When predictions equal truth, regret must be zero and top-1 match.
        let losses = [0.5f32, 0.9, 2.0];
        let energies: Vec<Joules> = [1.0, 2.0, 3.0].iter().map(|&e| Joules::new(e)).collect();
        let chosen = select_config(&losses, &energies, 0.05, 0.5, CandidateRule::Margin);
        let r = joint_loss(losses[chosen], energies[chosen], 0.05)
            - joint_loss(losses[chosen], energies[chosen], 0.05);
        assert_eq!(r, 0.0);
    }
}
