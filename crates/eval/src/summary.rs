//! Per-method evaluation aggregation.

use crate::map::{map_voc, GtFrame};
use ecofusion_core::Frame;
use ecofusion_detect::{fusion_loss, Detection};
use ecofusion_energy::{EnergyBreakdown, StageKind, StageTrace};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One frame's outcome under some method.
#[derive(Debug, Clone)]
pub struct FrameOutcome {
    /// Fused detections.
    pub detections: Vec<Detection>,
    /// Energy/latency breakdown of the executed configuration.
    pub energy: EnergyBreakdown,
    /// Label of the executed configuration (for selection histograms).
    pub config_label: String,
    /// Per-stage accounting, when the method ran the staged pipeline
    /// (static baselines report `None`).
    pub stage: Option<StageTrace>,
}

/// Aggregate metrics of one method over a frame set — the columns of the
/// paper's tables.
///
/// `Deserialize` as well as `Serialize`: the bench-report harness embeds
/// summaries in its machine-readable `BenchReport` JSON and reads them
/// back in compare mode.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvalSummary {
    /// VOC mAP at IoU ≥ 0.5, percent.
    pub map_pct: f64,
    /// Mean fusion loss (paper "Avg. Loss").
    pub avg_loss: f64,
    /// Mean PX2 platform energy, Joules (paper "Energy (J)").
    pub avg_energy_j: f64,
    /// Mean pipeline latency, ms (paper "Latency (ms)").
    pub avg_latency_ms: f64,
    /// Mean platform + clock-gated sensor energy, Joules (Table 3).
    pub avg_total_gated_j: f64,
    /// Mean stems executed per frame by the demand-driven pipeline
    /// (0 when no frame reported a stage trace).
    pub avg_stems_executed: f64,
    /// Mean per-stage total (platform + gated sensor) energy, Joules, in
    /// [`StageKind::ALL`] order; empty when no frame reported a trace.
    pub stage_energy_j: Vec<f64>,
    /// Number of frames evaluated.
    pub frames: usize,
    /// How often each configuration was executed.
    pub config_histogram: BTreeMap<String, usize>,
}

/// Evaluates a method (any closure producing a [`FrameOutcome`] per frame)
/// over `frames` and aggregates the paper's metrics.
///
/// Returns a zeroed summary when `frames` is empty.
pub fn evaluate_frames(
    frames: &[&Frame],
    num_classes: usize,
    mut run: impl FnMut(&Frame) -> FrameOutcome,
) -> EvalSummary {
    let mut dets_per_frame: Vec<Vec<Detection>> = Vec::with_capacity(frames.len());
    let mut gt_frames: Vec<GtFrame> = Vec::with_capacity(frames.len());
    let mut loss_sum = 0.0f64;
    let mut energy_sum = 0.0f64;
    let mut latency_sum = 0.0f64;
    let mut total_gated_sum = 0.0f64;
    let mut stems_sum = 0.0f64;
    let mut stage_sums = [0.0f64; StageKind::COUNT];
    let mut traced_frames = 0usize;
    let mut histogram: BTreeMap<String, usize> = BTreeMap::new();
    for frame in frames {
        let outcome = run(frame);
        let gts = frame.gt_boxes();
        loss_sum += fusion_loss(&outcome.detections, &gts).total() as f64;
        energy_sum += outcome.energy.platform.joules();
        latency_sum += outcome.energy.latency.millis();
        total_gated_sum += outcome.energy.total_gated().joules();
        if let Some(trace) = &outcome.stage {
            stems_sum += trace.stems_executed as f64;
            for (sum, stage) in stage_sums.iter_mut().zip(StageKind::ALL) {
                *sum += trace.cost(stage).energy.joules();
            }
            traced_frames += 1;
        }
        *histogram.entry(outcome.config_label.clone()).or_default() += 1;
        dets_per_frame.push(outcome.detections);
        gt_frames.push(GtFrame { boxes: gts });
    }
    let n = frames.len().max(1) as f64;
    let map = if frames.is_empty() {
        0.0
    } else {
        map_voc(&dets_per_frame, &gt_frames, num_classes, 0.5) as f64
    };
    let traced = traced_frames.max(1) as f64;
    EvalSummary {
        map_pct: map * 100.0,
        avg_loss: loss_sum / n,
        avg_energy_j: energy_sum / n,
        avg_latency_ms: latency_sum / n,
        avg_total_gated_j: total_gated_sum / n,
        avg_stems_executed: stems_sum / traced,
        stage_energy_j: if traced_frames == 0 {
            Vec::new()
        } else {
            stage_sums.iter().map(|s| s / traced).collect()
        },
        frames: frames.len(),
        config_histogram: histogram,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecofusion_core::{Dataset, DatasetSpec, EcoFusionModel, InferenceOptions};
    use ecofusion_tensor::rng::Rng;

    #[test]
    fn empty_frames_zero_summary() {
        let s = evaluate_frames(&[], 8, |_| unreachable!());
        assert_eq!(s.frames, 0);
        assert_eq!(s.map_pct, 0.0);
    }

    #[test]
    fn summary_serde_roundtrip_is_lossless() {
        let mut histogram = BTreeMap::new();
        histogram.insert("E(C_L+C_R+L)".to_string(), 3usize);
        histogram.insert("L(R)".to_string(), 1usize);
        let s = EvalSummary {
            map_pct: 41.25,
            avg_loss: 1.5,
            avg_energy_j: 3.798,
            avg_latency_ms: 61.37,
            avg_total_gated_j: 4.1,
            avg_stems_executed: 2.75,
            stage_energy_j: vec![0.25, 0.352, 0.01, 0.0, 3.0, 0.05, 0.0],
            frames: 4,
            config_histogram: histogram,
        };
        let json = serde_json::to_string(&s).unwrap();
        let back: EvalSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back.map_pct.to_bits(), s.map_pct.to_bits());
        assert_eq!(back.avg_latency_ms.to_bits(), s.avg_latency_ms.to_bits());
        assert_eq!(back.stage_energy_j, s.stage_energy_j);
        assert_eq!(back.frames, s.frames);
        assert_eq!(back.config_histogram, s.config_histogram);
    }

    #[test]
    fn aggregates_static_baseline() {
        let data = Dataset::generate(&DatasetSpec::small(1));
        let mut rng = Rng::new(2);
        let mut model = EcoFusionModel::new(32, 8, &mut rng);
        let opts = InferenceOptions::new(0.0, 0.5);
        let late = model.baseline_ids().late;
        let frames: Vec<&ecofusion_core::Frame> = data.test().iter().collect();
        let label = model.space().label(late);
        let summary = evaluate_frames(&frames, 8, |f| {
            let (dets, energy) = model.detect_static(f, late, &opts);
            FrameOutcome { detections: dets, energy, config_label: label.clone(), stage: None }
        });
        assert_eq!(summary.frames, data.test().len());
        assert!((summary.avg_energy_j - 3.798).abs() < 1e-6);
        assert!(summary.avg_loss > 0.0, "untrained model should have loss");
        assert_eq!(summary.config_histogram.len(), 1);
    }
}
