//! Table 3: combined sensor and platform energy per driving scenario with
//! sensor clock gating (§5.5.2).
//!
//! This experiment is pure energy-model arithmetic (Eq. 10–11 + the
//! knowledge-gate configuration map) and needs no trained model, exactly
//! as in the paper.

use crate::tables::Table;
use ecofusion_core::{default_knowledge_rules, ConfigId, ConfigSpace};
use ecofusion_energy::{EnergyBreakdown, Px2Model, SensorPowerModel, StemPolicy};
use ecofusion_scene::Context;
use serde::Serialize;

/// One scene column of Table 3.
#[derive(Debug, Clone, Serialize)]
pub struct Table3Column {
    /// Scene label.
    pub scene: String,
    /// Late-fusion total energy (baseline), Joules.
    pub late_fusion_j: f64,
    /// EcoFusion (knowledge gate, clock gating) total energy, Joules.
    pub ecofusion_j: f64,
    /// Energy savings vs late fusion, percent (negative = EcoFusion uses
    /// more).
    pub savings_pct: f64,
}

/// Table 3 result.
#[derive(Debug, Clone, Serialize)]
pub struct Table3Result {
    /// Per-scene columns in paper order.
    pub columns: Vec<Table3Column>,
    /// Mix-weighted overall column.
    pub overall: Table3Column,
    /// Overall EcoFusion energy *without* clock gating, Joules (the paper
    /// reports 43.90 % savings of gating vs not gating).
    pub ecofusion_ungated_overall_j: f64,
}

/// Runs the Table 3 computation with the default models.
pub fn run() -> Table3Result {
    run_with(&Px2Model::default(), &SensorPowerModel::default())
}

/// Runs the Table 3 computation with explicit cost models.
pub fn run_with(px2: &Px2Model, sensors: &SensorPowerModel) -> Table3Result {
    let space = ConfigSpace::canonical();
    let rules = default_knowledge_rules(&space);
    let late = space.baseline_ids().late;
    let late_specs = space.branch_specs(late);
    let late_breakdown = EnergyBreakdown::compute(px2, sensors, &late_specs, StemPolicy::Static);
    let late_total = late_breakdown.total_ungated().joules();
    let mut columns = Vec::new();
    let weights = Context::mix_weights();
    let mut overall_eco = 0.0;
    let mut overall_eco_ungated = 0.0;
    for (i, context) in Context::ALL.iter().enumerate() {
        let config = ConfigId(rules[context]);
        let specs = space.branch_specs(config);
        let b = EnergyBreakdown::compute(px2, sensors, &specs, StemPolicy::Static);
        let eco = b.total_gated().joules();
        overall_eco += weights[i] * eco;
        overall_eco_ungated += weights[i] * b.total_ungated().joules();
        columns.push(Table3Column {
            scene: context.label().to_string(),
            late_fusion_j: late_total,
            ecofusion_j: eco,
            savings_pct: (late_total - eco) / late_total * 100.0,
        });
    }
    let overall = Table3Column {
        scene: "Overall".to_string(),
        late_fusion_j: late_total,
        ecofusion_j: overall_eco,
        savings_pct: (late_total - overall_eco) / late_total * 100.0,
    };
    Table3Result { columns, overall, ecofusion_ungated_overall_j: overall_eco_ungated }
}

impl Table3Result {
    /// Clock-gating benefit: how much less energy EcoFusion uses with
    /// clock gating vs running all sensors (paper: 43.90 %).
    pub fn gating_benefit_pct(&self) -> f64 {
        (self.ecofusion_ungated_overall_j - self.overall.ecofusion_j)
            / self.ecofusion_ungated_overall_j
            * 100.0
    }

    /// Renders the table in the paper's layout.
    pub fn print(&self) {
        println!("Table 3 — Combined sensor and AV platform energy per scenario (J)");
        let mut header: Vec<String> = vec!["Fusion Method".to_string()];
        header.extend(self.columns.iter().map(|c| c.scene.clone()));
        header.push("Overall".to_string());
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let mut t = Table::new(&header_refs);
        let mut late = vec!["Late Fusion".to_string()];
        late.extend(self.columns.iter().map(|c| format!("{:.2}", c.late_fusion_j)));
        late.push(format!("{:.2}", self.overall.late_fusion_j));
        t.row(&late);
        let mut eco = vec!["EcoFusion (Ours)".to_string()];
        eco.extend(self.columns.iter().map(|c| format!("{:.2}", c.ecofusion_j)));
        eco.push(format!("{:.2}", self.overall.ecofusion_j));
        t.row(&eco);
        let mut sav = vec!["EcoFusion Energy Savings".to_string()];
        sav.extend(self.columns.iter().map(|c| format!("{:.2}%", c.savings_pct)));
        sav.push(format!("{:.2}%", self.overall.savings_pct));
        t.row(&sav);
        println!("{t}");
        println!(
            "Clock gating saves {:.2}% vs EcoFusion without sensor gating ({:.2} J ungated).\n",
            self.gating_benefit_pct(),
            self.ecofusion_ungated_overall_j
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper Table 3, reproduced cell by cell.
    #[test]
    fn matches_paper_cells() {
        let r = run();
        let expect = [
            ("City", 5.45, 58.91),
            ("Fog", 13.96, -5.15),
            ("Jct.", 2.87, 78.40),
            ("Mwy.", 2.87, 78.40),
            ("Night", 12.10, 8.81),
            ("Rain", 13.27, -0.09),
            ("Rural", 3.81, 71.28),
            ("Snow", 13.96, -5.15),
        ];
        for ((scene, eco, savings), col) in expect.iter().zip(&r.columns) {
            assert_eq!(&col.scene, scene);
            assert!((col.late_fusion_j - 13.27).abs() < 0.01, "late {}", col.late_fusion_j);
            assert!(
                (col.ecofusion_j - eco).abs() < 0.02,
                "{scene}: eco {} vs paper {eco}",
                col.ecofusion_j
            );
            assert!(
                (col.savings_pct - savings).abs() < 0.6,
                "{scene}: savings {} vs paper {savings}",
                col.savings_pct
            );
        }
    }

    #[test]
    fn overall_savings_near_paper() {
        let r = run();
        // Paper: 51.41% overall with its dataset mix; our RADIATE-like mix
        // approximation lands in the same band.
        assert!(
            r.overall.savings_pct > 40.0 && r.overall.savings_pct < 60.0,
            "overall savings {:.2}%",
            r.overall.savings_pct
        );
    }

    #[test]
    fn gating_benefit_near_paper() {
        let r = run();
        // Paper: clock gating saves 43.90% vs no gating.
        let b = r.gating_benefit_pct();
        assert!(b > 30.0 && b < 55.0, "gating benefit {b:.2}%");
    }
}
