//! One runner per paper table/figure, plus ablations.
//!
//! Every runner consumes a [`Setup`] (trained model + dataset) so several
//! experiments can share one training run, and returns typed rows with a
//! `print` method that renders the same layout as the paper.

pub mod ablations;
pub mod common;
pub mod fig1;
pub mod fig4;
pub mod fig5;
pub mod robustness;
pub mod table1;
pub mod table2;
pub mod table3;

pub use common::{Scale, Setup};
pub use robustness::{run_robustness, RobustnessCell, RobustnessReport, RobustnessSpec};
