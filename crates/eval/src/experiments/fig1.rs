//! Figure 1: loss and energy of each fusion method in City vs Rain.

use crate::experiments::common::{adaptive_summary, static_summary, Setup};
use crate::tables::Table;
use ecofusion_gating::GateKind;
use ecofusion_scene::Context;
use serde::Serialize;

/// One bar of Figure 1.
#[derive(Debug, Clone, Serialize)]
pub struct Fig1Row {
    /// Fusion method name.
    pub method: String,
    /// City or Rain.
    pub context: String,
    /// Average fusion loss.
    pub avg_loss: f64,
    /// Average platform energy, Joules.
    pub avg_energy_j: f64,
}

/// Figure 1 result.
#[derive(Debug, Clone, Serialize)]
pub struct Fig1Result {
    /// All bars (method × context).
    pub rows: Vec<Fig1Row>,
}

/// Runs the Figure 1 comparison: None (radar only), Early, Late, and
/// EcoFusion (attention gate, λ_E = 0.01) in City and Rain.
pub fn run(setup: &mut Setup) -> Fig1Result {
    let baselines = setup.model.baseline_ids();
    let mut rows = Vec::new();
    for context in [Context::City, Context::Rain] {
        let frames = setup.dataset.test_in_context(context);
        let mut push = |method: &str, loss: f64, energy: f64| {
            rows.push(Fig1Row {
                method: method.to_string(),
                context: context.label().to_string(),
                avg_loss: loss,
                avg_energy_j: energy,
            });
        };
        let n = setup.num_classes;
        let s = static_summary(&mut setup.model, n, &frames, baselines.radar);
        push("None", s.avg_loss, s.avg_energy_j);
        let s = static_summary(&mut setup.model, n, &frames, baselines.early);
        push("Early Fusion", s.avg_loss, s.avg_energy_j);
        let s = static_summary(&mut setup.model, n, &frames, baselines.late);
        push("Late Fusion", s.avg_loss, s.avg_energy_j);
        let s = adaptive_summary(&mut setup.model, n, &frames, GateKind::Attention, 0.01, 0.5);
        push("EcoFusion", s.avg_loss, s.avg_energy_j);
    }
    Fig1Result { rows }
}

impl Fig1Result {
    /// Renders the figure data as two tables (loss and energy), matching
    /// the two bar charts of Figure 1.
    pub fn print(&self) {
        #[allow(clippy::type_complexity)]
        let metrics: [(&str, fn(&Fig1Row) -> f64); 2] =
            [("Avg. Loss", |r| r.avg_loss), ("Avg. Energy Consumption (J)", |r| r.avg_energy_j)];
        for (title, pick) in metrics {
            println!("Figure 1 — {title}");
            let mut t = Table::new(&["Method", "City", "Rain"]);
            for method in ["None", "Early Fusion", "Late Fusion", "EcoFusion"] {
                let city = self
                    .rows
                    .iter()
                    .find(|r| r.method == method && r.context == "City")
                    .map(pick)
                    .unwrap_or(f64::NAN);
                let rain = self
                    .rows
                    .iter()
                    .find(|r| r.method == method && r.context == "Rain")
                    .map(pick)
                    .unwrap_or(f64::NAN);
                t.row(&[method.to_string(), format!("{city:.3}"), format!("{rain:.3}")]);
            }
            println!("{t}");
        }
    }
}
