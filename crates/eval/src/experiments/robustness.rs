//! Robustness under sensor faults: the fault-matrix sweep.
//!
//! For every `(fault kind, severity, context)` cell the runner renders one
//! deterministic scene sequence, evaluates the model three ways —
//!
//! * **clean** — no faults (the reference row),
//! * **blind** — faults injected, gating unaware (the paper's pipeline as
//!   is),
//! * **aware** — faults injected, a [`SensorHealthMonitor`] feeding the
//!   gate's availability mask online,
//!
//! — and reports the mAP/energy/latency deltas. The gap between *blind*
//! and *aware* is the payoff of fault-aware gating: how much accuracy the
//! health mask recovers once a sensor dies, and what it costs in energy.
//! Every cell is reproducible from `RobustnessSpec::seed` alone.

use crate::summary::{evaluate_frames, EvalSummary, FrameOutcome};
use crate::tables::Table;
use ecofusion_core::{EcoFusionModel, Frame, InferenceOptions};
use ecofusion_faults::{FaultEvent, FaultInjector, FaultKind, FaultSchedule, SensorHealthMonitor};
use ecofusion_gating::GateKind;
use ecofusion_scene::{Context, ScenarioGenerator, SceneSequence};
use ecofusion_sensors::{SensorKind, SensorSuite};
use ecofusion_tensor::rng::Rng;
use serde::Serialize;

/// Frame interval of the simulated sequences, seconds (matches the
/// runtime's 10 Hz cadence).
const CELL_DT: f64 = 0.1;

/// Parameters of a robustness sweep.
#[derive(Debug, Clone)]
pub struct RobustnessSpec {
    /// Master seed: scenes, rendering, and injection all derive from it.
    pub seed: u64,
    /// Observation grid side length (must match the model).
    pub grid: usize,
    /// Frames per cell sequence.
    pub frames: usize,
    /// Frame index at which every fault switches on (frames before it
    /// double as the health monitor's baseline window).
    pub onset: u64,
    /// Fault kinds swept.
    pub faults: Vec<FaultKind>,
    /// Severities swept.
    pub severities: Vec<f64>,
    /// Contexts swept.
    pub contexts: Vec<Context>,
    /// Gating strategy under test.
    pub gate: GateKind,
    /// `λ_E` for all three evaluation arms.
    pub lambda_e: f64,
}

impl RobustnessSpec {
    /// A small but representative matrix: three fault kinds at two
    /// severities across a clear and an adverse context.
    pub fn quick(seed: u64, grid: usize) -> Self {
        RobustnessSpec {
            seed,
            grid,
            frames: 16,
            onset: 6,
            faults: vec![FaultKind::Dropout, FaultKind::NoiseBurst, FaultKind::FrozenFrame],
            severities: vec![0.5, 1.0],
            contexts: vec![Context::City, Context::Rain],
            gate: GateKind::Knowledge,
            lambda_e: 0.01,
        }
    }

    /// The single acceptance cell: full-severity camera dropout in City.
    pub fn camera_dropout(seed: u64, grid: usize) -> Self {
        RobustnessSpec {
            faults: vec![FaultKind::Dropout],
            severities: vec![1.0],
            contexts: vec![Context::City],
            ..RobustnessSpec::quick(seed, grid)
        }
    }
}

/// The sensors a fault kind strikes in the sweep: dropout models a dead
/// optical subsystem (both cameras), frozen/noise strike the lidar,
/// calibration drift the radar, and weather attenuation hits the whole
/// rig at once.
pub fn default_targets(kind: FaultKind) -> &'static [SensorKind] {
    match kind {
        FaultKind::Dropout => &[SensorKind::CameraLeft, SensorKind::CameraRight],
        FaultKind::FrozenFrame | FaultKind::NoiseBurst => &[SensorKind::Lidar],
        FaultKind::CalibrationDrift => &[SensorKind::Radar],
        FaultKind::WeatherAttenuation => &SensorKind::ALL,
    }
}

/// One cell of the fault matrix.
#[derive(Debug, Clone, Serialize)]
pub struct RobustnessCell {
    /// Fault kind injected.
    pub fault: FaultKind,
    /// Severity injected.
    pub severity: f64,
    /// Scene context of the cell sequence.
    pub context: Context,
    /// Reference: no faults.
    pub clean: EvalSummary,
    /// Faults injected, fault-blind gating.
    pub blind: EvalSummary,
    /// Faults injected, fault-aware gating.
    pub aware: EvalSummary,
}

impl RobustnessCell {
    /// mAP lost to the fault under fault-blind gating (percentage
    /// points).
    pub fn map_drop_blind(&self) -> f64 {
        self.clean.map_pct - self.blind.map_pct
    }

    /// mAP lost to the fault under fault-aware gating.
    pub fn map_drop_aware(&self) -> f64 {
        self.clean.map_pct - self.aware.map_pct
    }

    /// mAP recovered by fault awareness (aware − blind, percentage
    /// points).
    pub fn recovery(&self) -> f64 {
        self.aware.map_pct - self.blind.map_pct
    }
}

/// Result of a robustness sweep.
#[derive(Debug, Clone, Serialize)]
pub struct RobustnessReport {
    /// One cell per `(fault, severity, context)` triple, in sweep order.
    pub cells: Vec<RobustnessCell>,
}

impl RobustnessReport {
    /// Renders the sweep as a table: accuracy and energy per arm plus the
    /// recovery column.
    pub fn print(&self) {
        let mut table = Table::new(&[
            "Fault",
            "Sev.",
            "Scene",
            "Clean mAP",
            "Blind mAP",
            "Aware mAP",
            "Recovery",
            "Blind J",
            "Aware J",
        ]);
        for c in &self.cells {
            table.row(&[
                c.fault.label().to_string(),
                format!("{:.2}", c.severity),
                c.context.label().to_string(),
                format!("{:.1}", c.clean.map_pct),
                format!("{:.1}", c.blind.map_pct),
                format!("{:.1}", c.aware.map_pct),
                format!("{:+.1}", c.recovery()),
                format!("{:.2}", c.blind.avg_energy_j),
                format!("{:.2}", c.aware.avg_energy_j),
            ]);
        }
        println!("Robustness under injected sensor faults (fault-blind vs fault-aware gating)");
        println!("{}", table.render());
    }
}

/// Runs the sweep against an already-trained (or untrained) model.
///
/// # Panics
/// Panics if the spec sweeps nothing, or its grid does not match the
/// model's.
pub fn run_robustness(
    model: &mut EcoFusionModel,
    num_classes: usize,
    spec: &RobustnessSpec,
) -> RobustnessReport {
    assert!(
        !spec.faults.is_empty() && !spec.severities.is_empty() && !spec.contexts.is_empty(),
        "robustness sweep must cover at least one cell"
    );
    assert_eq!(spec.grid, model.grid(), "spec grid does not match model grid");
    let mut cells = Vec::new();
    let mut cell_idx = 0u64;
    // Severity-insensitive kinds (frozen frame) would produce identical
    // cells at every swept severity; run each effective cell once.
    let mut seen: std::collections::BTreeSet<(usize, u64, Context)> =
        std::collections::BTreeSet::new();
    for &fault in &spec.faults {
        for &severity in &spec.severities {
            let effective = if fault == FaultKind::FrozenFrame { 1.0 } else { severity };
            for &context in &spec.contexts {
                let key = (fault as usize, effective.to_bits(), context);
                if !seen.insert(key) {
                    continue;
                }
                cells.push(run_cell(model, num_classes, spec, fault, effective, context, cell_idx));
                cell_idx += 1;
            }
        }
    }
    RobustnessReport { cells }
}

fn cell_seed(spec: &RobustnessSpec, cell_idx: u64) -> u64 {
    spec.seed ^ cell_idx.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0x51)
}

/// Renders the cell's deterministic clean sequence.
fn render_sequence(spec: &RobustnessSpec, context: Context, seed: u64) -> Vec<Frame> {
    let mut gen = ScenarioGenerator::new(seed);
    let seq = SceneSequence::simulate(gen.scene(context), spec.frames.saturating_sub(1), CELL_DT);
    let suite = SensorSuite::new(spec.grid);
    seq.frames()
        .iter()
        .enumerate()
        .map(|(i, scene)| {
            let mut rng = Rng::new(seed ^ ((i as u64 + 1) << 17));
            let obs = suite.observe(scene, &mut rng);
            Frame { scene: scene.clone(), obs }
        })
        .collect()
}

fn run_cell(
    model: &mut EcoFusionModel,
    num_classes: usize,
    spec: &RobustnessSpec,
    fault: FaultKind,
    severity: f64,
    context: Context,
    cell_idx: u64,
) -> RobustnessCell {
    let seed = cell_seed(spec, cell_idx);
    let clean_frames = render_sequence(spec, context, seed);

    let mut schedule = FaultSchedule::empty();
    for &sensor in default_targets(fault) {
        schedule.push(FaultEvent::new(sensor, fault, spec.onset, u64::MAX, severity));
    }
    let mut injector = FaultInjector::new(schedule, seed ^ 0xF417);
    let degraded_frames: Vec<Frame> = clean_frames
        .iter()
        .map(|f| Frame { scene: f.scene.clone(), obs: injector.apply(f.obs.clone(), context) })
        .collect();

    let opts = InferenceOptions::new(spec.lambda_e, 0.5).with_gate(spec.gate);
    let clean_refs: Vec<&Frame> = clean_frames.iter().collect();
    let degraded_refs: Vec<&Frame> = degraded_frames.iter().collect();

    let clean = evaluate_frames(&clean_refs, num_classes, |f| {
        let out = model.infer(f, &opts).expect("matching grid");
        FrameOutcome {
            detections: out.detections,
            energy: out.energy,
            config_label: out.selected_label,
            stage: Some(out.stage_trace),
        }
    });
    let blind = evaluate_frames(&degraded_refs, num_classes, |f| {
        let out = model.infer(f, &opts).expect("matching grid");
        FrameOutcome {
            detections: out.detections,
            energy: out.energy,
            config_label: out.selected_label,
            stage: Some(out.stage_trace),
        }
    });
    let mut monitor = SensorHealthMonitor::default();
    let aware = evaluate_frames(&degraded_refs, num_classes, |f| {
        monitor.update(&f.obs);
        let masked = opts.with_health(monitor.mask());
        let out = model.infer(f, &masked).expect("matching grid");
        FrameOutcome {
            detections: out.detections,
            energy: out.energy,
            config_label: out.selected_label,
            stage: Some(out.stage_trace),
        }
    });

    RobustnessCell { fault, severity, context, clean, blind, aware }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecofusion_core::{Dataset, DatasetSpec, TrainConfig, Trainer};

    /// A minimally-trained model: one epoch over a small city-heavy set is
    /// enough for branches to localize coarse objects, which is all the
    /// blind-vs-aware comparison needs.
    fn trained_model() -> EcoFusionModel {
        let mut spec = DatasetSpec::small(31);
        spec.num_scenes = 28;
        let dataset = Dataset::generate(&spec);
        let config = TrainConfig { branch_epochs: 1, gate_epochs: 1, ..TrainConfig::fast_demo() };
        Trainer::new(config, 32).train(&dataset).expect("training")
    }

    #[test]
    fn sweep_shape_and_determinism() {
        let mut model = trained_model();
        let spec = RobustnessSpec {
            frames: 8,
            onset: 3,
            faults: vec![FaultKind::Dropout, FaultKind::NoiseBurst],
            severities: vec![1.0],
            contexts: vec![Context::City],
            ..RobustnessSpec::quick(5, 32)
        };
        let a = run_robustness(&mut model, 8, &spec);
        let b = run_robustness(&mut model, 8, &spec);
        assert_eq!(a.cells.len(), 2);
        for (x, y) in a.cells.iter().zip(&b.cells) {
            assert_eq!(x.clean.map_pct, y.clean.map_pct, "cells must be seed-reproducible");
            assert_eq!(x.blind.map_pct, y.blind.map_pct);
            assert_eq!(x.aware.map_pct, y.aware.map_pct);
            assert_eq!(x.blind.config_histogram, y.blind.config_histogram);
            assert_eq!(x.aware.config_histogram, y.aware.config_histogram);
            assert_eq!(x.clean.frames, 8);
        }
    }

    /// The acceptance criterion: under a camera-dropout schedule the
    /// fault-aware gate measurably recovers accuracy vs. the fault-blind
    /// gate.
    #[test]
    fn fault_aware_gate_recovers_camera_dropout() {
        let mut model = trained_model();
        let spec = RobustnessSpec::camera_dropout(7, 32);
        let report = run_robustness(&mut model, 8, &spec);
        assert_eq!(report.cells.len(), 1);
        let cell = &report.cells[0];
        // The fault hurts the blind pipeline...
        assert!(
            cell.blind.avg_loss > cell.clean.avg_loss,
            "camera dropout should raise the blind loss: {} vs {}",
            cell.blind.avg_loss,
            cell.clean.avg_loss
        );
        // ...and awareness claws accuracy back: strictly lower loss, at
        // least as much mAP, and a decision histogram that actually moved
        // off the camera-based configuration.
        assert!(
            cell.aware.avg_loss < cell.blind.avg_loss,
            "aware loss {} should beat blind loss {}",
            cell.aware.avg_loss,
            cell.blind.avg_loss
        );
        assert!(
            cell.aware.map_pct >= cell.blind.map_pct,
            "aware mAP {} should not trail blind mAP {}",
            cell.aware.map_pct,
            cell.blind.map_pct
        );
        assert!(
            cell.aware.config_histogram.keys().any(|k| k.contains("E(L+R)")),
            "aware arm never rerouted to lidar+radar: {:?}",
            cell.aware.config_histogram
        );
        assert!(
            !cell.blind.config_histogram.keys().any(|k| k.contains("E(L+R)")),
            "blind arm unexpectedly rerouted: {:?}",
            cell.blind.config_histogram
        );
    }

    #[test]
    fn default_targets_cover_every_kind() {
        for kind in FaultKind::ALL {
            assert!(!default_targets(kind).is_empty(), "{kind:?}");
        }
        assert_eq!(default_targets(FaultKind::WeatherAttenuation).len(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn empty_sweep_panics() {
        let mut model = trained_model();
        let spec = RobustnessSpec { faults: vec![], ..RobustnessSpec::quick(1, 32) };
        let _ = run_robustness(&mut model, 8, &spec);
    }
}
