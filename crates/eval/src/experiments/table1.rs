//! Table 1: energy consumption and performance evaluation.

use crate::experiments::common::{adaptive_summary, static_summary, Setup};
use crate::tables::Table;
use ecofusion_gating::GateKind;
use serde::Serialize;

/// One row of Table 1.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    /// Fusion type (None / Early / Late / EcoFusion).
    pub fusion_type: String,
    /// Configuration label.
    pub configuration: String,
    /// VOC mAP, percent.
    pub map_pct: f64,
    /// Average platform energy, Joules.
    pub energy_j: f64,
    /// Average latency, ms.
    pub latency_ms: f64,
}

/// Table 1 result.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Result {
    /// Rows in paper order.
    pub rows: Vec<Table1Row>,
}

/// Runs Table 1: the four single-sensor baselines, early fusion, late
/// fusion, and EcoFusion (attention gate) at λ_E ∈ {0, 0.01, 0.05}.
pub fn run(setup: &mut Setup) -> Table1Result {
    let frames: Vec<&ecofusion_core::Frame> = setup.dataset.test().iter().collect();
    let b = setup.model.baseline_ids();
    let mut rows = Vec::new();
    let mut push = |fusion: &str, config: &str, s: &crate::summary::EvalSummary| {
        rows.push(Table1Row {
            fusion_type: fusion.to_string(),
            configuration: config.to_string(),
            map_pct: s.map_pct,
            energy_j: s.avg_energy_j,
            latency_ms: s.avg_latency_ms,
        });
    };
    let s = static_summary(&mut setup.model, setup.num_classes, &frames, b.camera_left);
    push("None", "L. Camera (C_L)", &s);
    let s = static_summary(&mut setup.model, setup.num_classes, &frames, b.camera_right);
    push("None", "R. Camera (C_R)", &s);
    let s = static_summary(&mut setup.model, setup.num_classes, &frames, b.radar);
    push("None", "Radar (R)", &s);
    let s = static_summary(&mut setup.model, setup.num_classes, &frames, b.lidar);
    push("None", "Lidar (L)", &s);
    let s = static_summary(&mut setup.model, setup.num_classes, &frames, b.early);
    push("Early", "C_L + C_R + L", &s);
    let s = static_summary(&mut setup.model, setup.num_classes, &frames, b.late);
    push("Late", "C_L + C_R + L + R", &s);
    for lambda in [0.0, 0.01, 0.05] {
        let s = adaptive_summary(
            &mut setup.model,
            setup.num_classes,
            &frames,
            GateKind::Attention,
            lambda,
            0.5,
        );
        push("EcoFusion", &format!("lambda_E = {lambda}"), &s);
    }
    Table1Result { rows }
}

impl Table1Result {
    /// Renders the table in the paper's layout.
    pub fn print(&self) {
        println!("Table 1 — Energy Consumption and Performance Evaluation");
        let mut t =
            Table::new(&["Fusion Type", "Configuration", "mAP (%)", "Energy (J)", "Latency (ms)"]);
        for r in &self.rows {
            t.row(&[
                r.fusion_type.clone(),
                r.configuration.clone(),
                format!("{:.2}%", r.map_pct),
                format!("{:.3}", r.energy_j),
                format!("{:.2}", r.latency_ms),
            ]);
        }
        println!("{t}");
    }

    /// The row for a configuration, by label substring.
    pub fn row(&self, needle: &str) -> Option<&Table1Row> {
        self.rows.iter().find(|r| r.configuration.contains(needle))
    }
}
