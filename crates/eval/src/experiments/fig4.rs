//! Figure 4: energy–loss trade-off of the joint optimization across
//! gating models and λ_E values.

use crate::experiments::common::{adaptive_summary, Setup};
use crate::tables::Table;
use ecofusion_gating::GateKind;
use serde::Serialize;

/// The λ_E sweep used for the scatter (0 → 1 as in the paper's colour bar).
pub const LAMBDA_SWEEP: [f64; 11] = [0.0, 0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.85, 1.0];

/// One scatter point of Figure 4.
#[derive(Debug, Clone, Serialize)]
pub struct Fig4Point {
    /// Gating method.
    pub gate: String,
    /// Energy weight λ_E.
    pub lambda_e: f64,
    /// Average platform energy, Joules (x axis).
    pub energy_j: f64,
    /// Average fusion loss (y axis).
    pub avg_loss: f64,
}

/// Figure 4 result.
#[derive(Debug, Clone, Serialize)]
pub struct Fig4Result {
    /// All points (gate × λ_E).
    pub points: Vec<Fig4Point>,
}

/// Runs the λ_E sweep for every gating model.
pub fn run(setup: &mut Setup) -> Fig4Result {
    let frames: Vec<&ecofusion_core::Frame> = setup.dataset.test().iter().collect();
    let mut points = Vec::new();
    for gate in GateKind::ALL {
        for &lambda in &LAMBDA_SWEEP {
            let s =
                adaptive_summary(&mut setup.model, setup.num_classes, &frames, gate, lambda, 0.5);
            points.push(Fig4Point {
                gate: gate.to_string(),
                lambda_e: lambda,
                energy_j: s.avg_energy_j,
                avg_loss: s.avg_loss,
            });
        }
    }
    Fig4Result { points }
}

impl Fig4Result {
    /// Renders the scatter as one table per gate (energy, loss per λ_E) —
    /// the numeric content of Figure 4.
    pub fn print(&self) {
        println!("Figure 4 — Energy–loss trade-off per gating model");
        let mut t = Table::new(&["Gate", "lambda_E", "Energy (J)", "Avg. Loss"]);
        for p in &self.points {
            t.row(&[
                p.gate.clone(),
                format!("{}", p.lambda_e),
                format!("{:.3}", p.energy_j),
                format!("{:.3}", p.avg_loss),
            ]);
        }
        println!("{t}");
    }

    /// Points of one gate, in sweep order.
    pub fn series(&self, gate: &str) -> Vec<&Fig4Point> {
        self.points.iter().filter(|p| p.gate == gate).collect()
    }
}
