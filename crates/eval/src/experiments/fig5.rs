//! Figure 5: average loss and energy per driving scenario for each fusion
//! method.

use crate::experiments::common::{adaptive_summary, static_summary, Setup};
use crate::tables::Table;
use ecofusion_gating::GateKind;
use ecofusion_scene::Context;
use serde::Serialize;

/// One (method, scene) cell of Figure 5.
#[derive(Debug, Clone, Serialize)]
pub struct Fig5Cell {
    /// Fusion method.
    pub method: String,
    /// Scene label ("City", …, "All").
    pub scene: String,
    /// Average fusion loss.
    pub avg_loss: f64,
    /// Average platform energy, Joules.
    pub avg_energy_j: f64,
}

/// Figure 5 result.
#[derive(Debug, Clone, Serialize)]
pub struct Fig5Result {
    /// All cells (method × scene).
    pub cells: Vec<Fig5Cell>,
}

const METHODS: [&str; 4] = ["None", "Early Fusion", "Late Fusion", "EcoFusion (Attn. Gating)"];

/// Runs Figure 5: None (radar only), Early, Late, EcoFusion with
/// attention gating (λ_E = 0.01), across all eight scene types plus "All".
pub fn run(setup: &mut Setup) -> Fig5Result {
    let b = setup.model.baseline_ids();
    let n = setup.num_classes;
    let mut cells = Vec::new();
    // Per-context evaluation needs solid support in every context, while
    // the (RADIATE-mixed) test split holds only a handful of adverse-
    // weather frames. Generate a held-out, context-balanced evaluation set
    // with a disjoint seed; "All" still uses the real test split so the
    // aggregate matches the dataset distribution.
    let per_ctx = if setup.dataset.grid() >= 64 { 24 } else { 16 };
    let eval_sets: Vec<(String, ecofusion_core::Dataset)> = Context::ALL
        .iter()
        .enumerate()
        .map(|(ci, c)| {
            let spec = ecofusion_core::DatasetSpec {
                seed: 0xF165 ^ ((ci as u64 + 1) << 8),
                grid: setup.dataset.grid(),
                num_scenes: per_ctx,
                train_fraction: 0.5,
                mix: ecofusion_core::DatasetMix::Single(*c),
            };
            (c.label().to_string(), ecofusion_core::Dataset::generate(&spec))
        })
        .collect();
    let Setup { model, dataset, .. } = setup;
    let mut scenes: Vec<(String, Vec<&ecofusion_core::Frame>)> = eval_sets
        .iter()
        .map(|(label, d)| {
            let frames: Vec<&ecofusion_core::Frame> =
                d.train().iter().chain(d.test().iter()).collect();
            (label.clone(), frames)
        })
        .collect();
    scenes.push(("All".to_string(), dataset.test().iter().collect()));
    for (scene, frames) in &scenes {
        let none = static_summary(model, n, frames, b.radar);
        let early = static_summary(model, n, frames, b.early);
        let late = static_summary(model, n, frames, b.late);
        let eco = adaptive_summary(model, n, frames, GateKind::Attention, 0.01, 0.5);
        for (method, s) in METHODS.iter().zip([none, early, late, eco]) {
            cells.push(Fig5Cell {
                method: method.to_string(),
                scene: scene.clone(),
                avg_loss: s.avg_loss,
                avg_energy_j: s.avg_energy_j,
            });
        }
    }
    Fig5Result { cells }
}

impl Fig5Result {
    /// Renders the two bar charts (loss and energy) as tables with one
    /// column per scene.
    pub fn print(&self) {
        let scenes: Vec<String> = {
            let mut seen = Vec::new();
            for c in &self.cells {
                if !seen.contains(&c.scene) {
                    seen.push(c.scene.clone());
                }
            }
            seen
        };
        #[allow(clippy::type_complexity)]
        let metrics: [(&str, fn(&Fig5Cell) -> f64); 2] =
            [("Avg. Loss", |c| c.avg_loss), ("Avg. Energy Usage (J)", |c| c.avg_energy_j)];
        for (title, pick) in metrics {
            println!("Figure 5 — {title} per scene type");
            let mut header: Vec<&str> = vec!["Method"];
            let scene_refs: Vec<&str> = scenes.iter().map(|s| s.as_str()).collect();
            header.extend(scene_refs);
            let mut t = Table::new(&header);
            for method in METHODS {
                let mut row = vec![method.to_string()];
                for scene in &scenes {
                    let v = self
                        .cells
                        .iter()
                        .find(|c| c.method == method && &c.scene == scene)
                        .map(pick)
                        .unwrap_or(f64::NAN);
                    row.push(format!("{v:.2}"));
                }
                t.row(&row);
            }
            println!("{t}");
        }
    }

    /// The cell for a method/scene pair.
    pub fn cell(&self, method: &str, scene: &str) -> Option<&Fig5Cell> {
        self.cells.iter().find(|c| c.method.starts_with(method) && c.scene == scene)
    }
}
