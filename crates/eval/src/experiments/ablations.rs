//! Ablation studies promised in DESIGN.md: the γ margin, the Eq. 7
//! candidate-rule variant, and the fusion-block algorithm.

use crate::experiments::common::{adaptive_summary, Setup};
use crate::summary::{evaluate_frames, FrameOutcome};
use crate::tables::Table;
use ecofusion_core::{CandidateRule, InferenceOptions};
use ecofusion_detect::{nms, soft_nms, weighted_boxes_fusion, Detection, WbfParams};
use ecofusion_gating::GateKind;
use serde::Serialize;

/// One ablation row: a named variant with the three headline metrics.
#[derive(Debug, Clone, Serialize)]
pub struct AblationRow {
    /// Variant label.
    pub variant: String,
    /// VOC mAP, percent.
    pub map_pct: f64,
    /// Average fusion loss.
    pub avg_loss: f64,
    /// Average platform energy, Joules.
    pub energy_j: f64,
}

/// Result of one ablation study.
#[derive(Debug, Clone, Serialize)]
pub struct AblationResult {
    /// Study name.
    pub name: String,
    /// Variant rows.
    pub rows: Vec<AblationRow>,
}

impl AblationResult {
    /// Renders the study.
    pub fn print(&self) {
        println!("Ablation — {}", self.name);
        let mut t = Table::new(&["Variant", "mAP (%)", "Avg. Loss", "Energy (J)"]);
        for r in &self.rows {
            t.row(&[
                r.variant.clone(),
                format!("{:.2}%", r.map_pct),
                format!("{:.3}", r.avg_loss),
                format!("{:.3}", r.energy_j),
            ]);
        }
        println!("{t}");
    }
}

/// γ sweep (the paper fixes γ = 0.5 after a sensitivity study): attention
/// gate, λ_E = 0.05.
pub fn gamma_sweep(setup: &mut Setup) -> AblationResult {
    let frames: Vec<&ecofusion_core::Frame> = setup.dataset.test().iter().collect();
    let mut rows = Vec::new();
    for gamma in [0.0f32, 0.25, 0.5, 1.0, 2.0] {
        let s = adaptive_summary(
            &mut setup.model,
            setup.num_classes,
            &frames,
            GateKind::Attention,
            0.05,
            gamma,
        );
        rows.push(AblationRow {
            variant: format!("gamma = {gamma}"),
            map_pct: s.map_pct,
            avg_loss: s.avg_loss,
            energy_j: s.avg_energy_j,
        });
    }
    AblationResult { name: "gamma margin sweep (Attention, lambda_E = 0.05)".into(), rows }
}

/// Candidate rule: the margin rule vs Eq. 7 as literally printed.
pub fn candidate_rule(setup: &mut Setup) -> AblationResult {
    let frames: Vec<&ecofusion_core::Frame> = setup.dataset.test().iter().collect();
    let mut rows = Vec::new();
    for (rule, label) in [
        (CandidateRule::Margin, "Margin (L_f - L_f' <= gamma)"),
        (CandidateRule::PaperEq7, "Paper Eq. 7 (L_f <= 2 L_f' + gamma)"),
    ] {
        for lambda in [0.01, 0.1] {
            let opts = InferenceOptions { rule, ..InferenceOptions::new(lambda, 0.5) };
            let model = &mut setup.model;
            let s = evaluate_frames(&frames, setup.num_classes, |f| {
                let out = model.infer(f, &opts).expect("matching grid");
                FrameOutcome {
                    detections: out.detections,
                    energy: out.energy,
                    config_label: out.selected_label,
                    stage: Some(out.stage_trace),
                }
            });
            rows.push(AblationRow {
                variant: format!("{label}, lambda_E = {lambda}"),
                map_pct: s.map_pct,
                avg_loss: s.avg_loss,
                energy_j: s.avg_energy_j,
            });
        }
    }
    AblationResult { name: "Eq. 7 candidate rule variant (Attention)".into(), rows }
}

/// Fusion block algorithm on the late-fusion ensemble: WBF (the paper's
/// choice, §4.4) vs greedy NMS vs soft-NMS.
pub fn fusion_block(setup: &mut Setup) -> AblationResult {
    let frames: Vec<&ecofusion_core::Frame> = setup.dataset.test().iter().collect();
    let opts = InferenceOptions::new(0.0, 0.5);
    let late = setup.model.baseline_ids().late;
    let late_ids = setup.model.space().branch_ids(late);
    let mut rows = Vec::new();
    type Fuser = Box<dyn Fn(&[Vec<Detection>]) -> Vec<Detection>>;
    let fusers: Vec<(&str, Fuser)> = vec![
        (
            "Weighted Boxes Fusion (paper)",
            Box::new(|outs: &[Vec<Detection>]| {
                weighted_boxes_fusion(outs, &WbfParams::default(), outs.len())
            }),
        ),
        (
            "Greedy NMS",
            Box::new(|outs: &[Vec<Detection>]| nms(outs.iter().flatten().copied().collect(), 0.5)),
        ),
        (
            "Soft-NMS",
            Box::new(|outs: &[Vec<Detection>]| {
                soft_nms(outs.iter().flatten().copied().collect(), 0.5, 0.05)
            }),
        ),
    ];
    for (label, fuser) in fusers {
        let model = &mut setup.model;
        let s = evaluate_frames(&frames, setup.num_classes, |f| {
            let feats = model.stem_features(&f.obs, false);
            let outs: Vec<Vec<Detection>> = late_ids
                .iter()
                .map(|b| model.run_branch(b.0, &feats, opts.score_thresh, opts.nms_iou))
                .collect();
            let detections = fuser(&outs);
            let specs = model.space().branch_specs(late);
            let energy = ecofusion_energy::EnergyBreakdown::compute(
                model.px2(),
                model.sensor_power(),
                &specs,
                ecofusion_energy::StemPolicy::Static,
            );
            FrameOutcome { detections, energy, config_label: label.to_string(), stage: None }
        });
        rows.push(AblationRow {
            variant: label.to_string(),
            map_pct: s.map_pct,
            avg_loss: s.avg_loss,
            energy_j: s.avg_energy_j,
        });
    }
    AblationResult { name: "fusion block algorithm (late fusion ensemble)".into(), rows }
}
