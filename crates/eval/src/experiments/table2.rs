//! Table 2: gating method evaluation.

use crate::experiments::common::{adaptive_summary, Setup};
use crate::tables::Table;
use ecofusion_gating::GateKind;
use serde::Serialize;

/// One row of Table 2.
#[derive(Debug, Clone, Serialize)]
pub struct Table2Row {
    /// Energy weight λ_E.
    pub lambda_e: f64,
    /// Gating method name.
    pub gating_method: String,
    /// VOC mAP, percent.
    pub map_pct: f64,
    /// Average fusion loss.
    pub avg_loss: f64,
    /// Average platform energy, Joules.
    pub energy_j: f64,
    /// Mean stems actually executed per frame by the demand-driven
    /// staged pipeline (4 for learned gates, fewer for feature-free
    /// ones).
    pub stems_per_frame: f64,
}

/// Table 2 result.
#[derive(Debug, Clone, Serialize)]
pub struct Table2Result {
    /// Rows in paper order (λ_E major, gate minor).
    pub rows: Vec<Table2Row>,
}

/// Runs Table 2: all four gating strategies at λ_E ∈ {0, 0.01, 0.1}.
pub fn run(setup: &mut Setup) -> Table2Result {
    let frames: Vec<&ecofusion_core::Frame> = setup.dataset.test().iter().collect();
    let mut rows = Vec::new();
    for lambda in [0.0, 0.01, 0.1] {
        for gate in GateKind::ALL {
            let s =
                adaptive_summary(&mut setup.model, setup.num_classes, &frames, gate, lambda, 0.5);
            rows.push(Table2Row {
                lambda_e: lambda,
                gating_method: gate.to_string(),
                map_pct: s.map_pct,
                avg_loss: s.avg_loss,
                energy_j: s.avg_energy_j,
                stems_per_frame: s.avg_stems_executed,
            });
        }
    }
    Table2Result { rows }
}

impl Table2Result {
    /// Renders the table in the paper's layout.
    pub fn print(&self) {
        println!("Table 2 — Gating Method Evaluation (gamma = 0.5)");
        let mut t = Table::new(&[
            "lambda_E",
            "Gating Method",
            "mAP (%)",
            "Avg. Loss",
            "Energy (J)",
            "Stems/frame",
        ]);
        for r in &self.rows {
            t.row(&[
                format!("{}", r.lambda_e),
                r.gating_method.clone(),
                format!("{:.2}%", r.map_pct),
                format!("{:.3}", r.avg_loss),
                format!("{:.3}", r.energy_j),
                format!("{:.2}", r.stems_per_frame),
            ]);
        }
        println!("{t}");
    }

    /// Finds a row by gate name and λ_E.
    pub fn row(&self, gate: &str, lambda_e: f64) -> Option<&Table2Row> {
        self.rows.iter().find(|r| r.gating_method == gate && (r.lambda_e - lambda_e).abs() < 1e-12)
    }
}
