//! Shared experiment infrastructure.

use crate::summary::{evaluate_frames, EvalSummary, FrameOutcome};
use ecofusion_core::{
    ConfigId, Dataset, DatasetMix, DatasetSpec, EcoFusionModel, Frame, InferenceOptions,
    TrainConfig, Trainer,
};
use ecofusion_gating::GateKind;
use ecofusion_scene::Context;

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small grids and short training: minutes on a laptop, used by CI and
    /// the default bench binaries.
    Quick,
    /// The full harness configuration (64-pixel grids, longer training).
    Full,
}

impl Scale {
    /// Parses `--full` from CLI arguments (anything else is quick).
    pub fn from_args(args: &[String]) -> Scale {
        if args.iter().any(|a| a == "--full") {
            Scale::Full
        } else {
            Scale::Quick
        }
    }
}

/// A trained model plus the dataset it was trained on: the shared input of
/// every experiment runner.
#[derive(Debug)]
pub struct Setup {
    /// The trained model.
    pub model: EcoFusionModel,
    /// The dataset (70:30 split).
    pub dataset: Dataset,
    /// Number of object classes.
    pub num_classes: usize,
}

impl Setup {
    /// Generates data and trains the model at the given scale. Fully
    /// deterministic in `seed`.
    pub fn prepare(scale: Scale, seed: u64) -> Setup {
        let (spec, config) = match scale {
            Scale::Quick => {
                let mut spec = DatasetSpec::small(seed);
                spec.grid = 48;
                spec.num_scenes = 400;
                spec.mix = DatasetMix::Radiate;
                let mut config = TrainConfig::fast_demo();
                config.grid = 48;
                config.branch_epochs = 15;
                config.gate_epochs = 8;
                config.verbose = true;
                (spec, config)
            }
            Scale::Full => {
                let spec = DatasetSpec::standard(seed);
                let mut config = TrainConfig::standard();
                config.verbose = true;
                (spec, config)
            }
        };
        let dataset = Dataset::generate(&spec);
        let mut trainer = Trainer::new(config, seed.wrapping_add(1));
        let model = trainer.train(&dataset).expect("training on generated dataset");
        Setup { model, dataset, num_classes: config.num_classes }
    }

    /// All test frames.
    pub fn test_frames(&self) -> Vec<&Frame> {
        self.dataset.test().iter().collect()
    }

    /// Test frames of one context.
    pub fn test_frames_in(&self, context: Context) -> Vec<&Frame> {
        self.dataset.test_in_context(context)
    }
}

/// Evaluates a fixed (static) configuration over `frames`.
///
/// A free function (not a `Setup` method) so callers can hold frame
/// references into the dataset while the model is borrowed mutably.
pub fn static_summary(
    model: &mut EcoFusionModel,
    num_classes: usize,
    frames: &[&Frame],
    config: ConfigId,
) -> EvalSummary {
    let opts = InferenceOptions::new(0.0, 0.5);
    let label = model.space().label(config);
    evaluate_frames(frames, num_classes, |f| {
        let (detections, energy) = model.detect_static(f, config, &opts);
        FrameOutcome { detections, energy, config_label: label.clone(), stage: None }
    })
}

/// Evaluates the adaptive pipeline over `frames`.
pub fn adaptive_summary(
    model: &mut EcoFusionModel,
    num_classes: usize,
    frames: &[&Frame],
    gate: GateKind,
    lambda_e: f64,
    gamma: f32,
) -> EvalSummary {
    let opts = InferenceOptions::new(lambda_e, gamma).with_gate(gate);
    evaluate_frames(frames, num_classes, |f| {
        let out = model.infer(f, &opts).expect("matching grid");
        FrameOutcome {
            detections: out.detections,
            energy: out.energy,
            config_label: out.selected_label,
            stage: Some(out.stage_trace),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parse() {
        assert_eq!(Scale::from_args(&["--full".to_string()]), Scale::Full);
        assert_eq!(Scale::from_args(&[]), Scale::Quick);
    }
}
