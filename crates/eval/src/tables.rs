//! Plain-text table rendering for experiment output.

/// A simple left-padded ASCII table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the cell count differs from the header.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let parts: Vec<String> =
                cells.iter().zip(widths).map(|(c, w)| format!("{c:<width$}", width = w)).collect();
            format!("| {} |", parts.join(" | "))
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("|-{}-|", sep.join("-|-")));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "v"]);
        t.row(&["a".into(), "1.00".into()]);
        t.row(&["long-name".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("| name      | v    |"), "{s}");
        assert!(s.lines().count() == 4);
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn wrong_width_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }
}
