//! Scripted fault timelines.

use crate::model::FaultKind;
use ecofusion_sensors::SensorKind;
use serde::{Deserialize, Serialize};

/// One scripted fault: a kind hitting one sensor over a frame interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// The sensor the fault degrades.
    pub sensor: SensorKind,
    /// What happens to it.
    pub kind: FaultKind,
    /// First faulty frame index (frames are counted per stream, starting
    /// at 0).
    pub onset: u64,
    /// Number of consecutive faulty frames; `u64::MAX` means permanent.
    pub duration: u64,
    /// Fault intensity in `[0, 1]` (ignored by
    /// [`FaultKind::FrozenFrame`]).
    pub severity: f64,
}

impl FaultEvent {
    /// Creates an event.
    ///
    /// # Panics
    /// Panics if `severity` is outside `[0, 1]`.
    pub fn new(
        sensor: SensorKind,
        kind: FaultKind,
        onset: u64,
        duration: u64,
        severity: f64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&severity), "fault severity must be in [0, 1]");
        FaultEvent { sensor, kind, onset, duration, severity }
    }

    /// Whether the event is active at `frame`.
    pub fn active_at(&self, frame: u64) -> bool {
        frame >= self.onset && frame - self.onset < self.duration
    }

    /// Frame index one past the last faulty frame (`u64::MAX` when
    /// permanent).
    pub fn end(&self) -> u64 {
        self.onset.saturating_add(self.duration)
    }
}

/// A scripted timeline of [`FaultEvent`]s for one stream.
///
/// The empty schedule is the clean-path identity: an injector driven by it
/// returns every observation bit-for-bit untouched.
///
/// # Example
///
/// ```
/// use ecofusion_faults::{FaultKind, FaultSchedule};
/// use ecofusion_sensors::SensorKind;
///
/// let s = FaultSchedule::empty()
///     .with_dropout(SensorKind::CameraLeft, 10, 20)
///     .with_event(SensorKind::Lidar, FaultKind::NoiseBurst, 15, 5, 0.8);
/// assert_eq!(s.events().len(), 2);
/// assert!(s.active_at(12).count() == 1);
/// assert!(s.active_at(16).count() == 2);
/// assert!(s.active_at(40).count() == 0);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// The clean schedule: no faults, ever.
    pub fn empty() -> Self {
        FaultSchedule::default()
    }

    /// Whether the schedule has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Adds an event in place.
    pub fn push(&mut self, event: FaultEvent) {
        self.events.push(event);
    }

    /// Builder form of [`FaultSchedule::push`].
    ///
    /// # Panics
    /// Panics if `severity` is outside `[0, 1]`.
    pub fn with_event(
        mut self,
        sensor: SensorKind,
        kind: FaultKind,
        onset: u64,
        duration: u64,
        severity: f64,
    ) -> Self {
        self.push(FaultEvent::new(sensor, kind, onset, duration, severity));
        self
    }

    /// Adds a full-severity dropout of `sensor`.
    pub fn with_dropout(self, sensor: SensorKind, onset: u64, duration: u64) -> Self {
        self.with_event(sensor, FaultKind::Dropout, onset, duration, 1.0)
    }

    /// Adds a frozen-frame fault on `sensor`.
    pub fn with_frozen(self, sensor: SensorKind, onset: u64, duration: u64) -> Self {
        self.with_event(sensor, FaultKind::FrozenFrame, onset, duration, 1.0)
    }

    /// Adds a full-severity dropout of *both* cameras — the canonical
    /// "optical subsystem died" scenario the robustness experiment sweeps.
    pub fn with_camera_dropout(self, onset: u64, duration: u64) -> Self {
        self.with_dropout(SensorKind::CameraLeft, onset, duration).with_dropout(
            SensorKind::CameraRight,
            onset,
            duration,
        )
    }

    /// Events active at `frame`, with their schedule indices (the index
    /// keys per-event RNG streams and frozen-frame caches).
    pub fn active_at(&self, frame: u64) -> impl Iterator<Item = (usize, &FaultEvent)> {
        self.events.iter().enumerate().filter(move |(_, e)| e.active_at(frame))
    }

    /// Whether any event is active at `frame`.
    pub fn any_active_at(&self, frame: u64) -> bool {
        self.active_at(frame).next().is_some()
    }

    /// Whether the schedule contains a frozen-frame event (the injector
    /// only caches previous observations when it does).
    pub fn has_frozen(&self) -> bool {
        self.events.iter().any(|e| e.kind == FaultKind::FrozenFrame)
    }

    /// A scripted "fault storm" covering `frames` frames of a stream: the
    /// canonical stress timeline the workload-suite harness (and any
    /// soak test) replays. Overlapping waves hit every sensor class —
    ///
    /// * a full camera dropout in the first third,
    /// * a lidar frozen-frame run straddling the middle,
    /// * a radar calibration drift across the middle half,
    /// * a right-camera noise burst late in the run, and
    /// * a short second camera-left dropout near the end (a relapse, so
    ///   health recovery is exercised twice).
    ///
    /// Purely a function of `frames` — no RNG — so two storms over the
    /// same horizon are identical, and the per-event noise that the
    /// [`FaultInjector`](crate::FaultInjector) draws stays keyed on the
    /// stream seed as usual. Horizons shorter than
    /// [`FaultSchedule::MIN_STORM_FRAMES`] get a clipped but still
    /// multi-kind storm.
    ///
    /// # Example
    ///
    /// ```
    /// use ecofusion_faults::FaultSchedule;
    /// let s = FaultSchedule::storm(60);
    /// assert!(s.events().len() >= 5);
    /// assert!(s.has_frozen());
    /// assert_eq!(s, FaultSchedule::storm(60));
    /// ```
    pub fn storm(frames: u64) -> Self {
        use crate::model::FaultKind;
        let f = frames.max(Self::MIN_STORM_FRAMES);
        let third = f / 3;
        let sixth = f / 6;
        FaultSchedule::empty()
            .with_camera_dropout(sixth, third.max(2))
            .with_frozen(SensorKind::Lidar, f / 2 - sixth / 2, sixth.max(2))
            .with_event(SensorKind::Radar, FaultKind::CalibrationDrift, f / 4, f / 2, 0.5)
            .with_event(
                SensorKind::CameraRight,
                FaultKind::NoiseBurst,
                2 * third,
                sixth.max(2),
                0.8,
            )
            .with_dropout(SensorKind::CameraLeft, f - sixth, sixth.max(2))
    }

    /// Shortest horizon [`FaultSchedule::storm`] lays its waves over;
    /// shorter requests are treated as this long (events past the end of
    /// the actual run simply never fire).
    pub const MIN_STORM_FRAMES: u64 = 12;

    /// Removes event `idx`. Returns `false` (schedule untouched) when the
    /// index is out of range.
    pub fn remove_event(&mut self, idx: usize) -> bool {
        if idx >= self.events.len() {
            return false;
        }
        self.events.remove(idx);
        true
    }

    /// Shifts event `idx` by `delta` frames (saturating at frame 0 and at
    /// `u64::MAX`), keeping its duration. Returns `false` when the index
    /// is out of range.
    pub fn shift_event(&mut self, idx: usize, delta: i64) -> bool {
        let Some(e) = self.events.get_mut(idx) else {
            return false;
        };
        e.onset = if delta >= 0 {
            e.onset.saturating_add(delta as u64)
        } else {
            e.onset.saturating_sub(delta.unsigned_abs())
        };
        true
    }

    /// Splits event `idx` into two back-to-back events at absolute frame
    /// `at`. The pair covers exactly the original half-open interval with
    /// the original severity, so the split alone is behavior-preserving —
    /// it exists to give later mutations (shift, severity perturb) two
    /// independent handles. Fails (`false`) when `at` is not strictly
    /// inside the interval or the event is permanent.
    pub fn split_event(&mut self, idx: usize, at: u64) -> bool {
        let Some(e) = self.events.get(idx).copied() else {
            return false;
        };
        if e.duration == u64::MAX || at <= e.onset || at >= e.end() {
            return false;
        }
        self.events[idx].duration = at - e.onset;
        self.events.insert(idx + 1, FaultEvent { onset: at, duration: e.end() - at, ..e });
        true
    }

    /// Merges events `i` and `j` (same sensor and kind) into one event at
    /// `i` spanning the union of both intervals, at the larger severity.
    /// Fails (`false`) when the indices coincide, are out of range, or
    /// the events differ in sensor or kind.
    pub fn merge_events(&mut self, i: usize, j: usize) -> bool {
        if i == j || i >= self.events.len() || j >= self.events.len() {
            return false;
        }
        let (a, b) = (self.events[i], self.events[j]);
        if a.sensor != b.sensor || a.kind != b.kind {
            return false;
        }
        let onset = a.onset.min(b.onset);
        let duration = if a.duration == u64::MAX || b.duration == u64::MAX {
            u64::MAX
        } else {
            a.end().max(b.end()) - onset
        };
        self.events[i] = FaultEvent { onset, duration, severity: a.severity.max(b.severity), ..a };
        self.events.remove(j);
        true
    }

    /// Adds `delta` to event `idx`'s severity, clamped to `[0, 1]`.
    /// Returns `false` when the index is out of range.
    pub fn perturb_severity(&mut self, idx: usize, delta: f64) -> bool {
        let Some(e) = self.events.get_mut(idx) else {
            return false;
        };
        e.severity = (e.severity + delta).clamp(0.0, 1.0);
        true
    }

    /// Whether every event holds the schedule invariants the injector
    /// relies on: severity in `[0, 1]` and a non-empty (≥ 1 frame)
    /// half-open interval. The mutation hooks above preserve this by
    /// construction; the scenario-search property tests assert it.
    pub fn is_structurally_valid(&self) -> bool {
        self.events.iter().all(|e| (0.0..=1.0).contains(&e.severity) && e.duration >= 1)
    }

    /// Whether any frozen-frame event could still need the observation of
    /// `frame` as its capture source. Only the frame just before an
    /// event's onset (or frames inside its interval, for bookkeeping) can
    /// ever be captured, so the injector skips the per-frame observation
    /// clone both long before a frozen event starts and after every
    /// frozen event has ended.
    pub fn needs_frozen_capture(&self, frame: u64) -> bool {
        self.events.iter().any(|e| {
            e.kind == FaultKind::FrozenFrame
                && frame < e.end()
                && frame >= e.onset.saturating_sub(1)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_schedule_never_active() {
        let s = FaultSchedule::empty();
        assert!(s.is_empty());
        for f in [0, 1, 100, u64::MAX] {
            assert!(!s.any_active_at(f));
        }
    }

    #[test]
    fn event_interval_is_half_open() {
        let e = FaultEvent::new(SensorKind::Lidar, FaultKind::Dropout, 5, 3, 1.0);
        assert!(!e.active_at(4));
        assert!(e.active_at(5));
        assert!(e.active_at(7));
        assert!(!e.active_at(8));
        assert_eq!(e.end(), 8);
    }

    #[test]
    fn permanent_event_never_ends() {
        let e = FaultEvent::new(SensorKind::Radar, FaultKind::NoiseBurst, 2, u64::MAX, 0.5);
        assert!(e.active_at(u64::MAX - 1));
        assert_eq!(e.end(), u64::MAX);
        assert!(!e.active_at(1));
    }

    #[test]
    fn camera_dropout_covers_both_cameras() {
        let s = FaultSchedule::empty().with_camera_dropout(0, 10);
        let sensors: Vec<SensorKind> = s.active_at(3).map(|(_, e)| e.sensor).collect();
        assert_eq!(sensors, vec![SensorKind::CameraLeft, SensorKind::CameraRight]);
        assert!(!s.has_frozen());
        assert!(s.clone().with_frozen(SensorKind::Lidar, 0, 1).has_frozen());
    }

    #[test]
    fn frozen_capture_window_is_tight() {
        let s = FaultSchedule::empty().with_frozen(SensorKind::Lidar, 10, 5);
        // Long before onset: no capture needed.
        assert!(!s.needs_frozen_capture(0));
        assert!(!s.needs_frozen_capture(8));
        // The capture source frame (onset - 1) and the interval itself.
        assert!(s.needs_frozen_capture(9));
        assert!(s.needs_frozen_capture(10));
        assert!(s.needs_frozen_capture(14));
        // After the event ends: never again.
        assert!(!s.needs_frozen_capture(15));
        // Onset 0 freezes its own first frame.
        let at_start = FaultSchedule::empty().with_frozen(SensorKind::Radar, 0, 2);
        assert!(at_start.needs_frozen_capture(0));
        assert!(!at_start.needs_frozen_capture(2));
    }

    #[test]
    fn storm_is_deterministic_and_multi_kind() {
        for frames in [1, 12, 60, 200] {
            let a = FaultSchedule::storm(frames);
            assert_eq!(a, FaultSchedule::storm(frames));
            let kinds: std::collections::BTreeSet<_> =
                a.events().iter().map(|e| format!("{:?}", e.kind)).collect();
            assert!(kinds.len() >= 4, "storm({frames}) only has kinds {kinds:?}");
            let sensors: std::collections::BTreeSet<_> =
                a.events().iter().map(|e| e.sensor).collect();
            assert_eq!(sensors.len(), SensorKind::ALL.len(), "storm misses a sensor");
            assert!(a.has_frozen());
            // Every event fits a sane horizon and has positive duration.
            for e in a.events() {
                assert!(e.duration >= 2);
            }
        }
        // Over a realistic horizon the storm actually fires: some frame
        // has ≥ 2 concurrent events and some frame is clean.
        let s = FaultSchedule::storm(60);
        assert!((0..60).any(|fr| s.active_at(fr).count() >= 2));
        assert!((0..60).any(|fr| !s.any_active_at(fr)));
    }

    #[test]
    fn serde_roundtrip() {
        let s = FaultSchedule::empty().with_camera_dropout(4, 8).with_event(
            SensorKind::Radar,
            FaultKind::CalibrationDrift,
            0,
            100,
            0.25,
        );
        let json = serde_json::to_string(&s).unwrap();
        let back: FaultSchedule = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    #[should_panic(expected = "severity")]
    fn bad_severity_panics() {
        let _ = FaultEvent::new(SensorKind::Lidar, FaultKind::Dropout, 0, 1, -0.1);
    }

    #[test]
    fn shift_moves_onset_and_saturates() {
        let mut s = FaultSchedule::empty().with_dropout(SensorKind::Lidar, 10, 5);
        assert!(s.shift_event(0, 7));
        assert_eq!(s.events()[0].onset, 17);
        assert_eq!(s.events()[0].duration, 5);
        assert!(s.shift_event(0, -100));
        assert_eq!(s.events()[0].onset, 0);
        assert!(!s.shift_event(3, 1), "out of range leaves the schedule alone");
        assert!(s.is_structurally_valid());
    }

    #[test]
    fn split_preserves_the_covered_interval() {
        let mut s =
            FaultSchedule::empty().with_event(SensorKind::Radar, FaultKind::NoiseBurst, 10, 8, 0.6);
        assert!(s.split_event(0, 13));
        assert_eq!(s.events().len(), 2);
        let (a, b) = (s.events()[0], s.events()[1]);
        assert_eq!((a.onset, a.end()), (10, 13));
        assert_eq!((b.onset, b.end()), (13, 18));
        assert_eq!(b.severity, 0.6);
        // Coverage is unchanged frame by frame.
        for f in 8..20 {
            assert_eq!(s.any_active_at(f), (10..18).contains(&f));
        }
        // Degenerate splits are refused.
        assert!(!s.split_event(0, 10));
        assert!(!s.split_event(0, 13));
        let mut perm = FaultSchedule::empty().with_event(
            SensorKind::Lidar,
            FaultKind::Dropout,
            0,
            u64::MAX,
            1.0,
        );
        assert!(!perm.split_event(0, 5), "permanent events cannot split");
        assert!(s.is_structurally_valid());
    }

    #[test]
    fn merge_unions_intervals_and_takes_max_severity() {
        let mut s = FaultSchedule::empty()
            .with_event(SensorKind::Lidar, FaultKind::Dropout, 4, 4, 0.3)
            .with_event(SensorKind::Lidar, FaultKind::Dropout, 10, 6, 0.9)
            .with_event(SensorKind::Radar, FaultKind::Dropout, 0, 2, 1.0);
        assert!(!s.merge_events(0, 2), "different sensors refuse to merge");
        assert!(!s.merge_events(1, 1));
        assert!(s.merge_events(0, 1));
        assert_eq!(s.events().len(), 2);
        let m = s.events()[0];
        assert_eq!((m.onset, m.end()), (4, 16));
        assert_eq!(m.severity, 0.9);
        assert!(s.is_structurally_valid());
    }

    #[test]
    fn merge_with_permanent_event_stays_permanent() {
        let mut s = FaultSchedule::empty()
            .with_event(SensorKind::Lidar, FaultKind::NoiseBurst, 8, u64::MAX, 0.5)
            .with_event(SensorKind::Lidar, FaultKind::NoiseBurst, 2, 3, 0.7);
        assert!(s.merge_events(0, 1));
        assert_eq!(s.events()[0].onset, 2);
        assert_eq!(s.events()[0].duration, u64::MAX);
        assert!(s.is_structurally_valid());
    }

    #[test]
    fn perturb_severity_clamps() {
        let mut s = FaultSchedule::empty().with_event(
            SensorKind::CameraLeft,
            FaultKind::CalibrationDrift,
            0,
            4,
            0.5,
        );
        assert!(s.perturb_severity(0, 0.9));
        assert_eq!(s.events()[0].severity, 1.0);
        assert!(s.perturb_severity(0, -3.0));
        assert_eq!(s.events()[0].severity, 0.0);
        assert!(!s.perturb_severity(1, 0.1));
        assert!(s.is_structurally_valid());
    }

    #[test]
    fn remove_event_drops_exactly_one() {
        let mut s = FaultSchedule::storm(60);
        let n = s.events().len();
        assert!(s.remove_event(1));
        assert_eq!(s.events().len(), n - 1);
        assert!(!s.remove_event(n));
        assert!(s.is_structurally_valid());
    }
}
