//! The fault injector: applies a schedule to an observation stream.

use crate::model::{apply_stateless, FaultKind};
use crate::schedule::FaultSchedule;
use ecofusion_scene::{Context, Scene};
use ecofusion_sensors::{Observation, SensorSuite};
use ecofusion_tensor::rng::Rng;
use ecofusion_tensor::tensor::Tensor;
use std::collections::BTreeMap;

/// Applies a [`FaultSchedule`] to a stream of observations, one frame at a
/// time.
///
/// The injector wraps the *output* of [`SensorSuite::observe`] and never
/// touches the clean rendering path: with an empty schedule (or outside
/// every event's interval) the observation passes through bit-identical
/// and no random numbers are drawn, so seeded fixtures are unchanged.
/// Faulty frames draw from per-`(frame, event)` RNG streams derived from
/// the injector seed only — injection is reproducible regardless of how
/// events overlap, and independent of the caller's RNG state.
///
/// # Example
///
/// ```
/// use ecofusion_faults::{FaultInjector, FaultSchedule};
/// use ecofusion_scene::{Context, ScenarioGenerator};
/// use ecofusion_sensors::{SensorKind, SensorSuite};
/// use ecofusion_tensor::rng::Rng;
///
/// let suite = SensorSuite::new(32);
/// let mut gen = ScenarioGenerator::new(1);
/// let scene = gen.scene(Context::City);
/// let schedule = FaultSchedule::empty().with_dropout(SensorKind::Lidar, 0, u64::MAX);
/// let mut injector = FaultInjector::new(schedule, 7);
/// let obs = injector.observe(&suite, &scene, &mut Rng::new(2));
/// assert_eq!(obs.grid(SensorKind::Lidar).sum(), 0.0);
/// assert!(obs.grid(SensorKind::Radar).sum() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct FaultInjector {
    schedule: FaultSchedule,
    seed: u64,
    frame: u64,
    /// Per-event captured grid for frozen-frame faults, keyed by the
    /// event's schedule index.
    frozen: BTreeMap<usize, Tensor>,
    /// The previous frame as delivered downstream (kept only when the
    /// schedule contains a frozen-frame event).
    last_output: Option<Observation>,
    events_applied: u64,
    frames_faulted: u64,
}

impl FaultInjector {
    /// Creates an injector for `schedule`, seeded independently of the
    /// sensor noise streams.
    pub fn new(schedule: FaultSchedule, seed: u64) -> Self {
        FaultInjector {
            schedule,
            seed,
            frame: 0,
            frozen: BTreeMap::new(),
            last_output: None,
            events_applied: 0,
            frames_faulted: 0,
        }
    }

    /// The schedule being applied.
    pub fn schedule(&self) -> &FaultSchedule {
        &self.schedule
    }

    /// Index of the next frame [`FaultInjector::apply`] will process.
    pub fn frame(&self) -> u64 {
        self.frame
    }

    /// Total `(frame, event)` applications so far.
    pub fn events_applied(&self) -> u64 {
        self.events_applied
    }

    /// Frames that had at least one active fault.
    pub fn frames_faulted(&self) -> u64 {
        self.frames_faulted
    }

    /// Rewinds to frame 0 and clears all fault state.
    pub fn reset(&mut self) {
        self.frame = 0;
        self.frozen.clear();
        self.last_output = None;
        self.events_applied = 0;
        self.frames_faulted = 0;
    }

    /// Renders a scene through `suite` and applies the current frame's
    /// faults: the drop-in replacement for [`SensorSuite::observe`] on a
    /// degraded stream.
    pub fn observe(&mut self, suite: &SensorSuite, scene: &Scene, rng: &mut Rng) -> Observation {
        let obs = suite.observe(scene, rng);
        self.apply(obs, scene.context)
    }

    /// Applies the faults scheduled for the current frame to `obs` and
    /// advances the frame counter. `context` drives weather-tied faults.
    pub fn apply(&mut self, obs: Observation, context: Context) -> Observation {
        let frame = self.frame;
        self.frame += 1;
        if !self.schedule.any_active_at(frame) {
            if self.schedule.needs_frozen_capture(frame) {
                // Frozen events capture the last *delivered* frame, so the
                // clean passthrough must still be remembered.
                self.last_output = Some(obs.clone());
            }
            self.gc_frozen(frame);
            return obs;
        }
        let mut out = obs;
        let active: Vec<(usize, crate::FaultEvent)> =
            self.schedule.active_at(frame).map(|(i, e)| (i, *e)).collect();
        for (idx, event) in active {
            match event.kind {
                FaultKind::FrozenFrame => {
                    if !self.frozen.contains_key(&idx) {
                        // First frozen frame: stick to the observation the
                        // consumer saw last (or this one, at stream start).
                        let captured = match &self.last_output {
                            Some(prev) => prev.grid(event.sensor).clone(),
                            None => out.grid(event.sensor).clone(),
                        };
                        self.frozen.insert(idx, captured);
                    }
                    out.set_grid(event.sensor, self.frozen[&idx].clone());
                }
                kind => {
                    let mut rng = self.event_rng(frame, idx, event.sensor.index());
                    apply_stateless(
                        out.grid_mut(event.sensor),
                        kind,
                        event.severity,
                        context,
                        event.sensor.index(),
                        frame - event.onset,
                        &mut rng,
                    );
                }
            }
            self.events_applied += 1;
        }
        self.frames_faulted += 1;
        if self.schedule.needs_frozen_capture(frame) {
            self.last_output = Some(out.clone());
        }
        self.gc_frozen(frame);
        out
    }

    /// Drops frozen caches of events whose interval has ended.
    fn gc_frozen(&mut self, frame: u64) {
        if self.frozen.is_empty() {
            return;
        }
        let events = self.schedule.events();
        self.frozen.retain(|idx, _| events.get(*idx).map(|e| frame < e.end()).unwrap_or(false));
    }

    /// Independent RNG stream for one `(frame, event, sensor)` triple.
    fn event_rng(&self, frame: u64, event_idx: usize, sensor_idx: usize) -> Rng {
        let mix = self
            .seed
            .wrapping_add(frame.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add((event_idx as u64 + 1).wrapping_mul(0xD1B5_4A32_D192_ED03))
            .wrapping_add((sensor_idx as u64 + 1).wrapping_mul(0xEB44_ACCA_B455_D165));
        Rng::new(mix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecofusion_scene::ScenarioGenerator;
    use ecofusion_sensors::SensorKind;

    fn render(seed: u64, n: usize) -> (Vec<Scene>, Vec<Observation>) {
        let mut gen = ScenarioGenerator::new(seed);
        let suite = SensorSuite::new(32);
        let scenes: Vec<Scene> = (0..n).map(|_| gen.scene(Context::City)).collect();
        let obs = scenes
            .iter()
            .enumerate()
            .map(|(i, s)| suite.observe(s, &mut Rng::new(seed ^ (i as u64) << 8)))
            .collect();
        (scenes, obs)
    }

    #[test]
    fn empty_schedule_is_bit_identical_passthrough() {
        let (scenes, clean) = render(3, 4);
        let mut inj = FaultInjector::new(FaultSchedule::empty(), 99);
        for (scene, obs) in scenes.iter().zip(&clean) {
            let out = inj.apply(obs.clone(), scene.context);
            for k in SensorKind::ALL {
                assert_eq!(out.grid(k), obs.grid(k));
            }
        }
        assert_eq!(inj.events_applied(), 0);
        assert_eq!(inj.frames_faulted(), 0);
    }

    #[test]
    fn outside_interval_is_passthrough_and_faults_are_deterministic() {
        let schedule =
            FaultSchedule::empty().with_event(SensorKind::Lidar, FaultKind::NoiseBurst, 1, 2, 1.0);
        let (scenes, clean) = render(5, 4);
        let run = || {
            let mut inj = FaultInjector::new(schedule.clone(), 42);
            scenes
                .iter()
                .zip(&clean)
                .map(|(s, o)| inj.apply(o.clone(), s.context))
                .collect::<Vec<Observation>>()
        };
        let a = run();
        let b = run();
        for (fa, fb) in a.iter().zip(&b) {
            for k in SensorKind::ALL {
                assert_eq!(fa.grid(k), fb.grid(k), "fault injection must be reproducible");
            }
        }
        // Frames 0 and 3 are outside the interval: untouched.
        assert_eq!(a[0].grid(SensorKind::Lidar), clean[0].grid(SensorKind::Lidar));
        assert_eq!(a[3].grid(SensorKind::Lidar), clean[3].grid(SensorKind::Lidar));
        // Frames 1 and 2 are noisy, and differently so (per-frame streams).
        assert_ne!(a[1].grid(SensorKind::Lidar), clean[1].grid(SensorKind::Lidar));
        assert_ne!(a[1].grid(SensorKind::Lidar), a[2].grid(SensorKind::Lidar));
        // Other sensors never touched.
        assert_eq!(a[1].grid(SensorKind::Radar), clean[1].grid(SensorKind::Radar));
    }

    #[test]
    fn frozen_frame_sticks_to_last_delivered() {
        let schedule = FaultSchedule::empty().with_frozen(SensorKind::CameraRight, 2, 2);
        let (scenes, clean) = render(7, 5);
        let mut inj = FaultInjector::new(schedule, 1);
        let out: Vec<Observation> =
            scenes.iter().zip(&clean).map(|(s, o)| inj.apply(o.clone(), s.context)).collect();
        // Frames 2 and 3 repeat frame 1's camera; frame 4 is live again.
        assert_eq!(out[2].grid(SensorKind::CameraRight), clean[1].grid(SensorKind::CameraRight));
        assert_eq!(out[3].grid(SensorKind::CameraRight), clean[1].grid(SensorKind::CameraRight));
        assert_eq!(out[4].grid(SensorKind::CameraRight), clean[4].grid(SensorKind::CameraRight));
        // Lidar unaffected throughout.
        for (o, c) in out.iter().zip(&clean) {
            assert_eq!(o.grid(SensorKind::Lidar), c.grid(SensorKind::Lidar));
        }
    }

    #[test]
    fn frozen_at_stream_start_freezes_first_frame() {
        let schedule = FaultSchedule::empty().with_frozen(SensorKind::Lidar, 0, 3);
        let (scenes, clean) = render(9, 3);
        let mut inj = FaultInjector::new(schedule, 1);
        let out: Vec<Observation> =
            scenes.iter().zip(&clean).map(|(s, o)| inj.apply(o.clone(), s.context)).collect();
        for o in &out {
            assert_eq!(o.grid(SensorKind::Lidar), clean[0].grid(SensorKind::Lidar));
        }
    }

    #[test]
    fn counters_and_reset() {
        let schedule = FaultSchedule::empty().with_camera_dropout(1, 2);
        let (scenes, clean) = render(11, 4);
        let mut inj = FaultInjector::new(schedule, 1);
        for (s, o) in scenes.iter().zip(&clean) {
            let _ = inj.apply(o.clone(), s.context);
        }
        assert_eq!(inj.frame(), 4);
        assert_eq!(inj.frames_faulted(), 2);
        assert_eq!(inj.events_applied(), 4, "two cameras over two frames");
        inj.reset();
        assert_eq!(inj.frame(), 0);
        assert_eq!(inj.events_applied(), 0);
    }

    #[test]
    fn storm_schedule_runs_through_both_paths() {
        // A storm: every fault kind active at once, frozen frames
        // included. The stateful path (injector) freezes; the stateless
        // path (apply_stateless, used by schedule sweeps that replay
        // events without injector state) passes frozen events through
        // instead of panicking mid-sweep.
        let schedule = FaultSchedule::empty()
            .with_frozen(SensorKind::CameraLeft, 1, 3)
            .with_dropout(SensorKind::Lidar, 1, 3)
            .with_event(SensorKind::Radar, FaultKind::NoiseBurst, 1, 3, 0.8)
            .with_event(SensorKind::CameraRight, FaultKind::CalibrationDrift, 1, 3, 1.0)
            .with_event(SensorKind::Lidar, FaultKind::WeatherAttenuation, 1, 3, 0.5);
        let (scenes, clean) = render(17, 4);

        // Stateful path: the injector applies the whole storm; the frozen
        // camera repeats frame 0's grid.
        let mut inj = FaultInjector::new(schedule.clone(), 5);
        let out: Vec<Observation> =
            scenes.iter().zip(&clean).map(|(s, o)| inj.apply(o.clone(), s.context)).collect();
        assert_eq!(out[2].grid(SensorKind::CameraLeft), clean[0].grid(SensorKind::CameraLeft));
        assert_eq!(out[1].grid(SensorKind::Lidar).sum(), 0.0, "dropout at severity 1 blanks");
        assert_eq!(inj.frames_faulted(), 3);

        // Stateless path: replay frame 2's events directly. Frozen passes
        // through unchanged; every other kind still bites.
        for (idx, event) in schedule.active_at(2) {
            let mut grid = clean[2].grid(event.sensor).clone();
            let before = grid.clone();
            crate::model::apply_stateless(
                &mut grid,
                event.kind,
                event.severity,
                scenes[2].context,
                event.sensor.index(),
                2 - event.onset,
                &mut Rng::new(idx as u64),
            );
            if event.kind == FaultKind::FrozenFrame {
                assert_eq!(grid, before, "frozen is a stateless pass-through");
            } else {
                assert_ne!(grid, before, "{:?} must still modify the grid", event.kind);
            }
        }
    }

    #[test]
    fn composed_faults_apply_in_schedule_order() {
        // Dropout then noise burst on the same sensor: the burst writes
        // over a blank grid, so output energy is pure noise.
        let schedule = FaultSchedule::empty().with_dropout(SensorKind::Radar, 0, 1).with_event(
            SensorKind::Radar,
            FaultKind::NoiseBurst,
            0,
            1,
            0.5,
        );
        let (scenes, clean) = render(13, 1);
        let mut inj = FaultInjector::new(schedule, 21);
        let out = inj.apply(clean[0].clone(), scenes[0].context);
        assert_ne!(out.grid(SensorKind::Radar), clean[0].grid(SensorKind::Radar));
        assert!(out.grid(SensorKind::Radar).norm_sq() > 0.0);
        assert_eq!(inj.events_applied(), 2);
    }
}
