//! The fault model library: what each fault kind does to a grid.

use ecofusion_scene::Context;
use ecofusion_sensors::grid;
use ecofusion_tensor::rng::Rng;
use ecofusion_tensor::tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Upper clamp applied after noise-injecting faults, slightly above the
/// hottest clean sensor output so a noise burst can saturate cells but not
/// push unbounded values into the stems.
pub const FAULT_CLAMP_HI: f32 = 2.0;

/// Calibration drift speed: grid cells of spatial offset accumulated per
/// faulty frame at severity 1.
pub const DRIFT_CELLS_PER_FRAME: f64 = 0.25;

/// The supported sensor degradation modes.
///
/// Every kind is scaled by a severity in `[0, 1]` and applied to one
/// sensor's observation grid; kinds compose freely (several events may hit
/// the same sensor in the same frame).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FaultKind {
    /// Total or partial signal loss: the grid is scaled by
    /// `1 − severity` (a blank grid at severity 1 — a dead sensor or a
    /// fully occluded aperture).
    Dropout,
    /// The sensor repeats its last delivered observation (a wedged driver
    /// or a stuck capture buffer). Severity is ignored: a frame is either
    /// frozen or live.
    FrozenFrame,
    /// SNR collapse: strong Gaussian noise plus salt speckle swamp the
    /// signal (interference, a failing ADC, heavy spray on the optics).
    NoiseBurst,
    /// Spatial miscalibration that grows over the fault's lifetime: the
    /// grid shifts sideways by [`DRIFT_CELLS_PER_FRAME`]` × severity`
    /// cells per faulty frame (a knocked mount slowly working loose).
    CalibrationDrift,
    /// Context-tied weather attenuation: the grid is scaled toward the
    /// sensor's worst-case signal retention for the scene's context
    /// ([`Context::weather_attenuation`]) — fog blinds optics, radar
    /// barely notices.
    WeatherAttenuation,
}

impl FaultKind {
    /// Every fault kind, in a stable order (fault-matrix sweeps iterate
    /// this).
    pub const ALL: [FaultKind; 5] = [
        FaultKind::Dropout,
        FaultKind::FrozenFrame,
        FaultKind::NoiseBurst,
        FaultKind::CalibrationDrift,
        FaultKind::WeatherAttenuation,
    ];

    /// Short label for tables and telemetry.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Dropout => "dropout",
            FaultKind::FrozenFrame => "frozen",
            FaultKind::NoiseBurst => "noise-burst",
            FaultKind::CalibrationDrift => "calib-drift",
            FaultKind::WeatherAttenuation => "weather",
        }
    }

    /// Whether the fault draws random numbers when applied (seeded per
    /// frame/event by the injector).
    pub fn is_stochastic(&self) -> bool {
        matches!(self, FaultKind::NoiseBurst)
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Applies a stateless fault kind to one sensor grid in place.
///
/// [`FaultKind::FrozenFrame`] is *not* stateless (it needs the previous
/// observation) and is handled by the
/// [`FaultInjector`](crate::FaultInjector); here it is a documented
/// pass-through — the grid is left untouched. Freezing to the *current*
/// frame is indistinguishable from no fault on a single grid, so the
/// identity is the only behavior this signature can implement, and
/// panicking instead used to take down whole schedule sweeps whose storm
/// composition happened to route a frozen event through the stateless
/// path.
///
/// `frames_since_onset` drives time-growing faults (calibration drift);
/// `rng` must be a per-`(frame, event)` seeded stream so injection stays
/// reproducible regardless of schedule composition.
///
/// # Panics
/// Panics on a severity outside `[0, 1]`.
pub fn apply_stateless(
    grid: &mut Tensor,
    kind: FaultKind,
    severity: f64,
    context: Context,
    sensor_index: usize,
    frames_since_onset: u64,
    rng: &mut Rng,
) {
    assert!((0.0..=1.0).contains(&severity), "fault severity must be in [0, 1]");
    let sev = severity as f32;
    match kind {
        FaultKind::Dropout => {
            let keep = 1.0 - sev;
            for v in grid.data_mut() {
                *v *= keep;
            }
        }
        FaultKind::FrozenFrame => {
            // Stateful kind, stateless path: pass through unchanged (see
            // the function docs). The FaultInjector owns real freezing.
        }
        FaultKind::NoiseBurst => {
            grid::add_gaussian_noise(grid, 0.6 * sev, rng);
            grid::add_salt_noise(grid, 0.25 * severity, 1.2 * sev, rng);
            grid::clamp(grid, FAULT_CLAMP_HI);
        }
        FaultKind::CalibrationDrift => {
            let g = grid.shape()[3];
            let cells = (DRIFT_CELLS_PER_FRAME * severity * (frames_since_onset + 1) as f64).round()
                as usize;
            let offset = cells.min(g);
            if offset > 0 {
                shift_right(grid, offset);
            }
        }
        FaultKind::WeatherAttenuation => {
            let retention = context.weather_attenuation()[sensor_index] as f32;
            let factor = 1.0 - sev * (1.0 - retention);
            for v in grid.data_mut() {
                *v *= factor;
            }
        }
    }
}

/// Shifts every row of a `(1, 1, g, g)` grid right by `offset` cells,
/// zero-filling the vacated left edge (returns exit the field of view).
fn shift_right(grid: &mut Tensor, offset: usize) {
    let g = grid.shape()[3];
    for y in 0..g {
        for x in (0..g).rev() {
            let v = if x >= offset { grid.get4(0, 0, y, x - offset) } else { 0.0 };
            grid.set4(0, 0, y, x, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_grid(g: usize) -> Tensor {
        let mut t = Tensor::zeros(&[1, 1, g, g]);
        for (i, v) in t.data_mut().iter_mut().enumerate() {
            *v = i as f32 * 0.01;
        }
        t
    }

    #[test]
    fn dropout_full_severity_blanks() {
        let mut t = ramp_grid(8);
        apply_stateless(&mut t, FaultKind::Dropout, 1.0, Context::City, 0, 0, &mut Rng::new(1));
        assert_eq!(t.sum(), 0.0);
    }

    #[test]
    fn dropout_half_severity_halves() {
        let mut t = ramp_grid(8);
        let before = t.sum();
        apply_stateless(&mut t, FaultKind::Dropout, 0.5, Context::City, 0, 0, &mut Rng::new(1));
        assert!((t.sum() - 0.5 * before).abs() < 1e-4);
    }

    #[test]
    fn noise_burst_raises_variance_and_stays_clamped() {
        let mut t = Tensor::zeros(&[1, 1, 16, 16]);
        apply_stateless(&mut t, FaultKind::NoiseBurst, 1.0, Context::City, 2, 0, &mut Rng::new(2));
        assert!(t.norm_sq() > 1.0, "burst should inject substantial energy");
        assert!(t.max() <= FAULT_CLAMP_HI && t.min() >= 0.0);
    }

    #[test]
    fn drift_grows_with_time() {
        let offset_of = |since: u64| {
            let mut t = Tensor::zeros(&[1, 1, 16, 16]);
            t.set4(0, 0, 8, 4, 1.0);
            apply_stateless(
                &mut t,
                FaultKind::CalibrationDrift,
                1.0,
                Context::City,
                3,
                since,
                &mut Rng::new(3),
            );
            (0..16).find(|&x| t.get4(0, 0, 8, x) > 0.0)
        };
        assert_eq!(offset_of(3), Some(5), "1 cell after 4 faulty frames at 0.25 cells/frame");
        assert_eq!(offset_of(15), Some(8), "4 cells after 16 faulty frames");
        assert_eq!(offset_of(1000), None, "content fully drifted out of view");
    }

    #[test]
    fn weather_attenuation_tracks_context_profile() {
        let mut fog_cam = ramp_grid(8);
        let before = fog_cam.sum();
        apply_stateless(
            &mut fog_cam,
            FaultKind::WeatherAttenuation,
            1.0,
            Context::Fog,
            0,
            0,
            &mut Rng::new(4),
        );
        let expect = Context::Fog.weather_attenuation()[0] as f32;
        assert!((fog_cam.sum() - expect * before).abs() < 1e-3);

        // Radar in fog barely moves.
        let mut fog_radar = ramp_grid(8);
        let before_r = fog_radar.sum();
        apply_stateless(
            &mut fog_radar,
            FaultKind::WeatherAttenuation,
            1.0,
            Context::Fog,
            3,
            0,
            &mut Rng::new(5),
        );
        assert!(fog_radar.sum() > 0.9 * before_r);
    }

    #[test]
    fn zero_severity_is_identity_for_scaling_faults() {
        for kind in [FaultKind::Dropout, FaultKind::WeatherAttenuation, FaultKind::CalibrationDrift]
        {
            let mut t = ramp_grid(8);
            let before = t.clone();
            apply_stateless(&mut t, kind, 0.0, Context::Snow, 1, 7, &mut Rng::new(6));
            assert_eq!(t, before, "{kind:?}");
        }
    }

    #[test]
    fn frozen_frame_is_stateless_passthrough() {
        // The stateful kind must not panic the stateless path: it passes
        // the grid through untouched and draws no random numbers.
        let mut t = ramp_grid(8);
        let before = t.clone();
        let mut rng = Rng::new(7);
        apply_stateless(&mut t, FaultKind::FrozenFrame, 1.0, Context::City, 0, 0, &mut rng);
        assert_eq!(t, before);
        let mut fresh = Rng::new(7);
        assert_eq!(rng.uniform(0.0, 1.0), fresh.uniform(0.0, 1.0), "no RNG draws");
    }

    #[test]
    #[should_panic(expected = "severity")]
    fn out_of_range_severity_panics() {
        let mut t = ramp_grid(8);
        apply_stateless(&mut t, FaultKind::Dropout, 1.5, Context::City, 0, 0, &mut Rng::new(8));
    }

    #[test]
    fn labels_stable() {
        assert_eq!(FaultKind::Dropout.to_string(), "dropout");
        assert_eq!(FaultKind::ALL.len(), 5);
        assert!(FaultKind::NoiseBurst.is_stochastic());
        assert!(!FaultKind::Dropout.is_stochastic());
    }
}
