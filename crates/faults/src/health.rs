//! Online per-sensor health estimation from grid statistics.

use ecofusion_sensors::{Observation, SensorKind, SensorMask};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Tuning knobs of the [`SensorHealthMonitor`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HealthConfig {
    /// EWMA coefficient of the fast (reactive) statistics.
    pub alpha_fast: f64,
    /// EWMA coefficient of the slow baseline statistics.
    pub alpha_slow: f64,
    /// Frames before the monitor starts judging (baselines settle first);
    /// every sensor reports healthy during warmup.
    pub warmup_frames: u64,
    /// Score below which a sensor is [`HealthState::Degraded`].
    pub degraded_below: f64,
    /// Score below which a sensor is [`HealthState::Failed`].
    pub failed_below: f64,
    /// Recovery margin: a sensor already flagged (degraded or failed)
    /// only improves its state once the score clears the corresponding
    /// threshold by this much. Prevents a score hovering at a threshold
    /// from flapping the state — and, downstream, the availability mask —
    /// frame to frame.
    pub hysteresis: f64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            alpha_fast: 0.5,
            alpha_slow: 0.05,
            warmup_frames: 4,
            degraded_below: 0.7,
            failed_below: 0.35,
            hysteresis: 0.1,
        }
    }
}

/// Discretized health of one sensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum HealthState {
    /// Statistics within the sensor's own baseline.
    Healthy,
    /// Statistics drifting away from baseline; still usable with caution.
    Degraded,
    /// Statistics incompatible with a live sensor; mask it out.
    Failed,
}

impl fmt::Display for HealthState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Failed => "failed",
        })
    }
}

/// Rolling statistics and verdict for one sensor.
#[derive(Debug, Clone)]
struct SensorTracker {
    frames: u64,
    fast_energy: f64,
    slow_energy: f64,
    fast_var: f64,
    slow_var: f64,
    fast_delta: f64,
    slow_delta: f64,
    prev: Option<Vec<f32>>,
    score: f64,
    state: HealthState,
}

impl SensorTracker {
    fn new() -> Self {
        SensorTracker {
            frames: 0,
            fast_energy: 0.0,
            slow_energy: 0.0,
            fast_var: 0.0,
            slow_var: 0.0,
            fast_delta: 0.0,
            slow_delta: 0.0,
            prev: None,
            score: 1.0,
            state: HealthState::Healthy,
        }
    }
}

/// Estimates per-sensor health online, with no ground truth, from three
/// grid statistics:
///
/// * **energy** (mean absolute cell value) — collapses under dropout and
///   heavy attenuation;
/// * **variance** — explodes under a noise burst;
/// * **frame delta** (mean absolute change vs. the previous frame) —
///   collapses when a sensor freezes.
///
/// Each statistic keeps a fast and a slow EWMA; the health score is the
/// worst of the fast/slow ratios, mapped into `[0, 1]`. The slow baseline
/// is frozen while a sensor is not healthy, so a long-lived fault cannot
/// become the new normal. Scores discretize into [`HealthState`]s, and
/// [`SensorHealthMonitor::mask`] summarizes failed sensors as a
/// [`SensorMask`] for the fault-aware gating layer.
///
/// The monitor is pure observation-side accounting — one O(grid²) pass per
/// sensor per frame, negligible next to branch inference — and is fully
/// deterministic in its input sequence.
///
/// # Limitation: faults present from stream start
///
/// The baseline is learned from the stream itself, so a *partial* fault
/// already active during warmup (say a half-severity dropout from frame
/// 0) is absorbed into the slow statistics and never flagged — the
/// monitor detects *change* relative to the sensor's own history, not
/// absolute quality. A sensor that is fully dead at start is still
/// caught (zero energy scores ~0 against any baseline), but
/// pre-degraded-yet-alive sensors need an external reference (e.g. a
/// fleet-wide expected-statistics table) that this reproduction does not
/// model.
#[derive(Debug, Clone)]
pub struct SensorHealthMonitor {
    cfg: HealthConfig,
    trackers: [SensorTracker; 4],
    transitions: u64,
}

impl Default for SensorHealthMonitor {
    fn default() -> Self {
        SensorHealthMonitor::new(HealthConfig::default())
    }
}

impl SensorHealthMonitor {
    /// Creates a monitor.
    ///
    /// # Panics
    /// Panics if the config's alphas are outside `(0, 1]` or the
    /// thresholds are not `0 < failed_below <= degraded_below <= 1`.
    pub fn new(cfg: HealthConfig) -> Self {
        assert!(cfg.alpha_fast > 0.0 && cfg.alpha_fast <= 1.0, "alpha_fast must be in (0, 1]");
        assert!(cfg.alpha_slow > 0.0 && cfg.alpha_slow <= 1.0, "alpha_slow must be in (0, 1]");
        assert!(
            cfg.failed_below > 0.0 && cfg.failed_below <= cfg.degraded_below,
            "thresholds must satisfy 0 < failed_below <= degraded_below"
        );
        assert!(cfg.degraded_below <= 1.0, "degraded_below must be at most 1");
        assert!(cfg.hysteresis >= 0.0, "hysteresis must be non-negative");
        SensorHealthMonitor {
            cfg,
            trackers: [
                SensorTracker::new(),
                SensorTracker::new(),
                SensorTracker::new(),
                SensorTracker::new(),
            ],
            transitions: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &HealthConfig {
        &self.cfg
    }

    /// Ingests one observation and refreshes every sensor's score/state.
    pub fn update(&mut self, obs: &Observation) {
        for kind in SensorKind::ALL {
            self.update_sensor(kind, obs);
        }
    }

    fn update_sensor(&mut self, kind: SensorKind, obs: &Observation) {
        let cfg = self.cfg;
        let data = obs.grid(kind).data();
        let n = data.len().max(1) as f64;
        let mut sum = 0.0f64;
        let mut sum_abs = 0.0f64;
        for &v in data {
            sum += v as f64;
            sum_abs += v.abs() as f64;
        }
        let mean = sum / n;
        let energy = sum_abs / n;
        let mut var = 0.0f64;
        for &v in data {
            let d = v as f64 - mean;
            var += d * d;
        }
        var /= n;
        let t = &mut self.trackers[kind.index()];
        let delta = match &t.prev {
            Some(prev) => {
                let mut d = 0.0f64;
                for (&a, &b) in data.iter().zip(prev.iter()) {
                    d += (a - b).abs() as f64;
                }
                Some(d / n)
            }
            None => None,
        };
        t.prev = Some(data.to_vec());

        if t.frames == 0 {
            t.fast_energy = energy;
            t.slow_energy = energy;
            t.fast_var = var;
            t.slow_var = var;
        } else {
            t.fast_energy = ewma(cfg.alpha_fast, energy, t.fast_energy);
            t.fast_var = ewma(cfg.alpha_fast, var, t.fast_var);
        }
        if let Some(delta) = delta {
            if t.frames == 1 {
                t.fast_delta = delta;
                t.slow_delta = delta;
            } else {
                t.fast_delta = ewma(cfg.alpha_fast, delta, t.fast_delta);
            }
        }
        // The slow baseline only learns from frames the monitor believes
        // are healthy — a fault must not become the reference.
        if t.state == HealthState::Healthy && t.frames > 0 {
            t.slow_energy = ewma(cfg.alpha_slow, energy, t.slow_energy);
            t.slow_var = ewma(cfg.alpha_slow, var, t.slow_var);
            if let Some(delta) = delta {
                if t.frames > 1 {
                    t.slow_delta = ewma(cfg.alpha_slow, delta, t.slow_delta);
                }
            }
        }
        t.frames += 1;

        if t.frames <= cfg.warmup_frames {
            t.score = 1.0;
            // Warmup never transitions; state stays Healthy.
            return;
        }
        const EPS: f64 = 1e-6;
        let energy_score = (t.fast_energy / (t.slow_energy + EPS)).clamp(0.0, 1.0);
        let delta_score = (t.fast_delta / (t.slow_delta + EPS)).clamp(0.0, 1.0);
        let noise_score = ((t.slow_var + EPS) / (t.fast_var + EPS)).clamp(0.0, 1.0);
        t.score = energy_score.min(delta_score).min(noise_score);
        // Hysteresis: worsening applies at the base thresholds
        // immediately (masking a dying sensor must be fast), but
        // improving requires clearing the threshold by the margin — a
        // score hovering at a boundary cannot flap the state (and the
        // availability mask) every frame.
        let classify = |score: f64, margin: f64| {
            if score < cfg.failed_below + margin {
                HealthState::Failed
            } else if score < cfg.degraded_below + margin {
                HealthState::Degraded
            } else {
                HealthState::Healthy
            }
        };
        let raw = classify(t.score, 0.0);
        let new_state = if raw >= t.state {
            raw
        } else {
            // Improving: only as far as the margin-raised thresholds
            // allow, and never below the current state.
            classify(t.score, cfg.hysteresis).min(t.state)
        };
        if new_state != t.state {
            t.state = new_state;
            self.transitions += 1;
        }
    }

    /// Current health score of one sensor (1 = fully healthy).
    pub fn score(&self, kind: SensorKind) -> f64 {
        self.trackers[kind.index()].score
    }

    /// Current state of one sensor.
    pub fn state(&self, kind: SensorKind) -> HealthState {
        self.trackers[kind.index()].state
    }

    /// All scores in canonical sensor order.
    pub fn scores(&self) -> [f64; 4] {
        SensorKind::ALL.map(|k| self.score(k))
    }

    /// All states in canonical sensor order.
    pub fn states(&self) -> [HealthState; 4] {
        SensorKind::ALL.map(|k| self.state(k))
    }

    /// Sensors currently *not* healthy.
    pub fn degraded_count(&self) -> usize {
        self.trackers.iter().filter(|t| t.state != HealthState::Healthy).count()
    }

    /// Availability mask for the gating layer: failed sensors are masked
    /// out, degraded sensors stay available (their branches still carry
    /// signal).
    pub fn mask(&self) -> SensorMask {
        let mut m = SensorMask::all_available();
        for kind in SensorKind::ALL {
            if self.state(kind) == HealthState::Failed {
                m = m.without(kind);
            }
        }
        m
    }

    /// Conservative mask: degraded *and* failed sensors are masked out.
    pub fn strict_mask(&self) -> SensorMask {
        let mut m = SensorMask::all_available();
        for kind in SensorKind::ALL {
            if self.state(kind) != HealthState::Healthy {
                m = m.without(kind);
            }
        }
        m
    }

    /// State changes observed since construction/reset.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Forgets all statistics and verdicts.
    pub fn reset(&mut self) {
        *self = SensorHealthMonitor::new(self.cfg);
    }
}

fn ewma(alpha: f64, sample: f64, prev: f64) -> f64 {
    alpha * sample + (1.0 - alpha) * prev
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultInjector, FaultKind, FaultSchedule};
    use ecofusion_scene::{Context, ScenarioGenerator, Scene, SceneSequence};
    use ecofusion_sensors::SensorSuite;
    use ecofusion_tensor::rng::Rng;

    /// A short deterministic city sequence rendered clean.
    fn sequence(seed: u64, frames: usize) -> (Vec<Scene>, Vec<Observation>) {
        let mut gen = ScenarioGenerator::new(seed);
        let seq = SceneSequence::simulate(gen.scene(Context::City), frames - 1, 0.1);
        let suite = SensorSuite::new(32);
        let scenes: Vec<Scene> = seq.frames().to_vec();
        let obs = scenes
            .iter()
            .enumerate()
            .map(|(i, s)| suite.observe(s, &mut Rng::new(seed ^ ((i as u64) << 9))))
            .collect();
        (scenes, obs)
    }

    fn run_monitor(
        schedule: FaultSchedule,
        frames: usize,
    ) -> (SensorHealthMonitor, Vec<SensorMask>) {
        let (scenes, clean) = sequence(17, frames);
        let mut inj = FaultInjector::new(schedule, 5);
        let mut monitor = SensorHealthMonitor::default();
        let mut masks = Vec::new();
        for (s, o) in scenes.iter().zip(&clean) {
            let obs = inj.apply(o.clone(), s.context);
            monitor.update(&obs);
            masks.push(monitor.mask());
        }
        (monitor, masks)
    }

    #[test]
    fn clean_stream_stays_healthy() {
        let (monitor, masks) = run_monitor(FaultSchedule::empty(), 16);
        for kind in SensorKind::ALL {
            assert_eq!(monitor.state(kind), HealthState::Healthy, "{kind:?}");
            assert!(monitor.score(kind) > 0.5, "{kind:?}: {}", monitor.score(kind));
        }
        assert!(masks.iter().all(|m| m.is_all_available()));
        assert_eq!(monitor.degraded_count(), 0);
    }

    #[test]
    fn dropout_drives_sensor_to_failed() {
        let schedule = FaultSchedule::empty().with_dropout(SensorKind::CameraRight, 8, u64::MAX);
        let (monitor, masks) = run_monitor(schedule, 16);
        assert_eq!(monitor.state(SensorKind::CameraRight), HealthState::Failed);
        assert!(!monitor.mask().is_available(SensorKind::CameraRight));
        assert!(monitor.mask().is_available(SensorKind::Lidar));
        // The mask flips within a few frames of onset.
        assert!(masks[7].is_all_available(), "pre-onset mask must be clean");
        assert!(!masks[11].is_available(SensorKind::CameraRight), "mask too slow");
        assert!(monitor.transitions() > 0);
    }

    #[test]
    fn frozen_frame_detected_via_delta_collapse() {
        let schedule = FaultSchedule::empty().with_frozen(SensorKind::Lidar, 8, u64::MAX);
        let (monitor, _) = run_monitor(schedule, 18);
        assert_ne!(monitor.state(SensorKind::Lidar), HealthState::Healthy);
        assert!(monitor.score(SensorKind::Lidar) < 0.5);
        assert_eq!(monitor.state(SensorKind::Radar), HealthState::Healthy);
    }

    #[test]
    fn noise_burst_detected_via_variance() {
        let schedule = FaultSchedule::empty().with_event(
            SensorKind::Radar,
            FaultKind::NoiseBurst,
            8,
            u64::MAX,
            1.0,
        );
        let (monitor, _) = run_monitor(schedule, 16);
        assert_ne!(monitor.state(SensorKind::Radar), HealthState::Healthy);
        assert_eq!(monitor.state(SensorKind::CameraLeft), HealthState::Healthy);
    }

    #[test]
    fn recovery_after_fault_clears() {
        let schedule = FaultSchedule::empty().with_dropout(SensorKind::CameraLeft, 6, 6);
        let (monitor, masks) = run_monitor(schedule, 28);
        // Failed mid-fault, healthy again well after it clears.
        assert!(masks.iter().any(|m| !m.is_available(SensorKind::CameraLeft)));
        assert_eq!(monitor.state(SensorKind::CameraLeft), HealthState::Healthy);
        assert!(monitor.mask().is_all_available());
        assert!(monitor.transitions() >= 2, "fail + recover");
    }

    #[test]
    fn warmup_never_judges() {
        let schedule = FaultSchedule::empty().with_dropout(SensorKind::Lidar, 0, u64::MAX);
        let (scenes, clean) = sequence(23, 4);
        let mut inj = FaultInjector::new(schedule, 5);
        let mut monitor = SensorHealthMonitor::default();
        for (s, o) in scenes.iter().zip(&clean) {
            monitor.update(&inj.apply(o.clone(), s.context));
            assert_eq!(monitor.state(SensorKind::Lidar), HealthState::Healthy);
        }
        assert_eq!(monitor.transitions(), 0);
    }

    #[test]
    fn strict_mask_masks_degraded() {
        let mut monitor = SensorHealthMonitor::default();
        monitor.trackers[2].state = HealthState::Degraded;
        monitor.trackers[3].state = HealthState::Failed;
        assert_eq!(monitor.mask().unavailable(), vec![SensorKind::Radar]);
        assert_eq!(monitor.strict_mask().unavailable(), vec![SensorKind::Lidar, SensorKind::Radar]);
    }

    #[test]
    fn deterministic_and_resettable() {
        let schedule = FaultSchedule::empty().with_camera_dropout(5, 10);
        let (a, _) = run_monitor(schedule.clone(), 20);
        let (b, _) = run_monitor(schedule, 20);
        assert_eq!(a.scores(), b.scores());
        assert_eq!(a.states(), b.states());
        let mut m = a.clone();
        m.reset();
        assert_eq!(m.scores(), [1.0; 4]);
        assert_eq!(m.transitions(), 0);
    }

    #[test]
    #[should_panic(expected = "alpha_fast")]
    fn bad_config_panics() {
        let _ = SensorHealthMonitor::new(HealthConfig { alpha_fast: 0.0, ..Default::default() });
    }

    /// A score hovering right at the failed threshold must not flap the
    /// state: demotion is immediate, but recovery requires clearing the
    /// threshold by the hysteresis margin.
    #[test]
    fn hysteresis_prevents_state_flapping() {
        use ecofusion_tensor::tensor::Tensor;

        // Synthetic observations: seeded random grids scaled so the
        // energy ratio vs. the baseline oscillates around failed_below
        // (0.35): alternately just below and just above.
        let obs_with_scale = |seed: u64, scale: f32| {
            let grids = [0, 1, 2, 3].map(|s| {
                let mut t = Tensor::zeros(&[1, 1, 16, 16]);
                let mut rng = Rng::new(seed ^ (s << 8));
                for v in t.data_mut() {
                    *v = scale * rng.uniform(0.0, 1.0) as f32;
                }
                t
            });
            Observation::from_grids(grids)
        };
        let mut monitor = SensorHealthMonitor::default();
        // Baseline at full scale.
        for i in 0..8u64 {
            monitor.update(&obs_with_scale(i, 1.0));
        }
        assert_eq!(monitor.states(), [HealthState::Healthy; 4]);
        let baseline_transitions = monitor.transitions();
        // Oscillate around the failed threshold for a while.
        for i in 0..24u64 {
            let scale = if i % 2 == 0 { 0.30 } else { 0.40 };
            monitor.update(&obs_with_scale(100 + i, scale));
        }
        for kind in SensorKind::ALL {
            assert_eq!(monitor.state(kind), HealthState::Failed, "{kind:?}");
        }
        // At most one downward walk per sensor (healthy → degraded →
        // failed): no recovery transitions while hovering below
        // failed_below + hysteresis.
        let downward = monitor.transitions() - baseline_transitions;
        assert!(downward <= 8, "state flapped: {downward} transitions during hover");
    }
}
