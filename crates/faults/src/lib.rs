//! Sensor fault injection and online health monitoring.
//!
//! EcoFusion's gate picks the cheapest sensor/fusion branch that is
//! accurate *right now* — a claim that only means something when sensors
//! can stop being accurate. This crate supplies the degradation axis:
//!
//! ```text
//!  FaultSchedule (scripted onset/duration/severity per sensor)
//!        │
//!        ▼
//!  FaultInjector ── wraps SensorSuite::observe ──▶ degraded Observation
//!        │                                              │
//!        │ (empty schedule = bit-identical passthrough) ▼
//!        │                                    SensorHealthMonitor
//!        │                                    (energy/variance/delta
//!        │                                     EWMAs → score → state)
//!        ▼                                              │
//!  robustness experiments                               ▼
//!  (ecofusion-eval)                        SensorMask → fault-aware gating
//!                                          (ecofusion-core penalizes
//!                                           configs needing dead sensors)
//! ```
//!
//! * [`FaultKind`] — the model library: dropout, frozen frame, noise
//!   burst, growing calibration drift, and context-tied weather
//!   attenuation ([`Context::weather_attenuation`](ecofusion_scene::Context::weather_attenuation)).
//! * [`FaultSchedule`] / [`FaultEvent`] — scripted, composable timelines;
//!   severity in `[0, 1]`, half-open frame intervals, `u64::MAX` duration
//!   for permanent faults.
//! * [`FaultInjector`] — applies a schedule to an observation stream.
//!   Strictly additive: with no active event the observation passes
//!   through bit-identical and no RNG is drawn, so every seeded fixture
//!   in the workspace is unchanged. Faulty frames draw from
//!   per-`(frame, event)` seeded streams, making degraded runs exactly as
//!   reproducible as clean ones.
//! * [`SensorHealthMonitor`] — estimates per-sensor health online from
//!   grid statistics alone (no ground truth): mean energy, variance, and
//!   frame-to-frame delta, each as fast/slow EWMA pairs. Scores map to
//!   [`HealthState`]s and a [`SensorMask`](ecofusion_sensors::SensorMask)
//!   that the gating layer uses to avoid branches fed by dead sensors.

pub mod health;
pub mod injector;
pub mod model;
pub mod schedule;

pub use health::{HealthConfig, HealthState, SensorHealthMonitor};
pub use injector::FaultInjector;
pub use model::{apply_stateless, FaultKind, DRIFT_CELLS_PER_FRAME, FAULT_CLAMP_HI};
pub use schedule::{FaultEvent, FaultSchedule};
