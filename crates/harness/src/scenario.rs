//! Adversarial scenarios: a serializable input model, hermetic
//! execution, coverage signatures, and distilled record–replay suites.
//!
//! A [`Scenario`] pins *every* input axis of one serving run — per-stream
//! seeds, scripted [`ContextWalk`]s, [`FaultSchedule`]s, budgets and
//! scripted [`BudgetTimeline`]s, queue/backpressure shape — so running it
//! through the real [`PerceptionServer`] is a pure function of the JSON
//! it serializes to. [`run_scenario`] executes one and summarizes what
//! the runtime *did* as a [`ScenarioOutcome`]; a [`CoverageSignature`]
//! discretizes that behavior (vs. the scenario's clean twin) into the
//! novelty key the `ecofusion-search` crate hill-climbs on; and a
//! [`DistilledSuite`] freezes a minimized scenario together with its
//! expected digest and counters so CI can replay it bit-for-bit forever
//! ([`replay_distilled`]).
//!
//! Execution is hermetic on purpose: the model is always the untrained
//! [`MODEL_SEED`] quick-scale model and the base inference options are
//! the paper defaults, with *no* environment overrides — a distilled
//! suite must mean the same thing on every machine that replays it. The
//! `ECOFUSION_COMPILED` / `ECOFUSION_SHARDS` hooks remain legitimate
//! because both are proven output-invariant.

use crate::digest::{absorb_stream, format_digest, Fnv1a};
use crate::suites::{MODEL_SEED, SUITE_CLASSES, SUITE_GRID};
use ecofusion_core::model::InferError;
use ecofusion_core::{EcoFusionModel, Frame, InferenceOptions};
use ecofusion_faults::FaultSchedule;
use ecofusion_runtime::{
    run_simulation_observed, BackpressurePolicy, BudgetTimeline, EnergyBudget, PerceptionServer,
    RuntimeConfig, StreamSpec, VehicleStream,
};
use ecofusion_scene::ContextWalk;
use ecofusion_tensor::rng::Rng;
use ecofusion_trace::TraceSink;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// Where the committed distilled suites live, relative to the repo root.
pub const DEFAULT_DISTILLED_DIR: &str = "suites/distilled";

/// Schema version of the [`DistilledSuite`] JSON layout.
pub const DISTILLED_SCHEMA_VERSION: u32 = 1;

/// The finite "no budget pressure" target scenarios use instead of
/// [`EnergyBudget::unlimited`]'s `f64::INFINITY`: infinity serializes to
/// JSON `null`, and a distilled suite must round-trip through JSON
/// losslessly. No modeled frame costs a millionth of this, so the ladder
/// never escalates — behaviorally identical to unlimited.
pub const UNLIMITED_TARGET_J: f64 = 1e9;

/// Ring capacity of the tracer a scenario runs with. Events may be
/// evicted (only the monotonic metrics feed the outcome), so the ring
/// stays small.
const SCENARIO_TRACE_EVENTS: usize = 256;

/// One stream of a scenario: every input knob, pinned and serializable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioStream {
    /// Stream seed (scene generation and per-frame sensor noise).
    pub seed: u64,
    /// Scripted context schedule (replaces the drift walk entirely).
    pub walk: ContextWalk,
    /// Scripted faults (empty = clean sensors).
    pub faults: FaultSchedule,
    /// Energy budget the stream's ladder controller runs against.
    pub budget: EnergyBudget,
    /// Scripted budget retargets, if any.
    #[serde(default)]
    pub timeline: Option<BudgetTimeline>,
    /// Whether health monitoring drives the gating mask.
    pub health_gating: bool,
    /// Ingest queue depth.
    pub queue_capacity: usize,
    /// What a full queue does to the producer.
    pub backpressure: BackpressurePolicy,
    /// Frames offered per due tick (>1 models an over-producing source).
    pub frames_per_tick: usize,
}

impl ScenarioStream {
    /// A clean baseline stream: the given seed and walk, no faults, no
    /// budget pressure, default queue shape.
    pub fn baseline(seed: u64, walk: ContextWalk) -> Self {
        ScenarioStream {
            seed,
            walk,
            faults: FaultSchedule::empty(),
            budget: EnergyBudget::per_frame(UNLIMITED_TARGET_J),
            timeline: None,
            health_gating: true,
            queue_capacity: 8,
            backpressure: BackpressurePolicy::DropOldest,
            frames_per_tick: 1,
        }
    }

    /// The runtime spec this stream resolves to. Base inference options
    /// are always the paper defaults — scenarios are hermetic and carry
    /// no environment-dependent state.
    fn to_spec(&self) -> StreamSpec {
        let mut spec = StreamSpec::new(self.seed, SUITE_GRID);
        spec.queue_capacity = self.queue_capacity;
        spec.backpressure = self.backpressure;
        spec.budget = self.budget;
        spec.health_gating = self.health_gating;
        spec.frames_per_tick = self.frames_per_tick.max(1);
        spec.base_opts = InferenceOptions::new(0.01, 0.5);
        spec
    }

    /// Structural invariants the mutators must preserve.
    pub fn is_structurally_valid(&self) -> bool {
        self.walk.is_structurally_valid()
            && self.faults.is_structurally_valid()
            && self.timeline.as_ref().is_none_or(|t| t.is_structurally_valid())
            && self.queue_capacity >= 1
            && self.frames_per_tick >= 1
            && self.budget.target_j > 0.0
            && self.budget.target_j.is_finite()
    }
}

/// A fully pinned adversarial serving scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Human-readable handle (becomes the distilled suite's name).
    pub name: String,
    /// Scheduler ticks the drive runs for (queues drain afterwards).
    pub ticks: u64,
    /// Scheduler micro-batch cap.
    pub max_batch: usize,
    /// The streams, in server lane order.
    pub streams: Vec<ScenarioStream>,
}

impl Scenario {
    /// Structural invariants of the whole scenario.
    pub fn is_structurally_valid(&self) -> bool {
        self.ticks >= 1
            && self.max_batch >= 1
            && !self.streams.is_empty()
            && self.streams.iter().all(ScenarioStream::is_structurally_valid)
    }

    /// The scenario's *clean twin*: identical seeds, walks, horizon, and
    /// queue shape, but no faults, no budget pressure, and no scripted
    /// retargets. Coverage scoring diffs a candidate against its twin so
    /// the signature measures what the *adversarial* inputs caused, not
    /// what the workload does anyway.
    pub fn clean_twin(&self) -> Scenario {
        Scenario {
            name: format!("{}__clean", self.name),
            ticks: self.ticks,
            max_batch: self.max_batch,
            streams: self
                .streams
                .iter()
                .map(|s| ScenarioStream {
                    faults: FaultSchedule::empty(),
                    budget: EnergyBudget::per_frame(UNLIMITED_TARGET_J),
                    timeline: None,
                    walk: s.walk.clone(),
                    ..*s
                })
                .collect(),
        }
    }

    /// Mutable-input sizes, for minimization progress and provenance.
    pub fn size(&self) -> ScenarioSize {
        ScenarioSize {
            fault_events: self.streams.iter().map(|s| s.faults.events().len()).sum(),
            walk_segments: self.streams.iter().map(|s| s.walk.len()).sum(),
            timeline_phases: self
                .streams
                .iter()
                .map(|s| s.timeline.as_ref().map_or(0, |t| t.phases().len()))
                .sum(),
        }
    }
}

/// How many mutable inputs a scenario carries (the quantity minimization
/// shrinks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScenarioSize {
    /// Fault events across all streams.
    pub fault_events: usize,
    /// Context-walk segments across all streams.
    pub walk_segments: usize,
    /// Budget-timeline phases across all streams.
    pub timeline_phases: usize,
}

impl ScenarioSize {
    /// Total mutable inputs.
    pub fn total(&self) -> usize {
        self.fault_events + self.walk_segments + self.timeline_phases
    }
}

/// The exactly-reproducible counters a scenario run produces. Every
/// field is deterministic and shard-count-invariant, so a replay must
/// match bit-for-bit; host-dependent quantities (wall clock, steals)
/// are deliberately absent.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScenarioCounters {
    /// Frames processed across all streams.
    pub frames: u64,
    /// Gate-decision churn: selected-configuration changes between
    /// consecutive frames, summed over streams.
    pub churn: u64,
    /// Budget-ladder escalations across all streams.
    pub escalations: u64,
    /// Budget-ladder relaxations across all streams.
    pub relaxations: u64,
    /// Deepest final ladder level of any stream.
    pub max_final_level: u64,
    /// Bitmask of ladder rungs visited (bit 0 = base policy, always set).
    pub rungs: u8,
    /// Sensor health-state transitions across all streams.
    pub health_transitions: u64,
    /// Knowledge-gate missing-rule fallbacks across all streams.
    pub gate_fallbacks: u64,
    /// Frames processed while a sensor was degraded or failed.
    pub degraded_frames: u64,
    /// Frames processed with at least one sensor masked out of gating.
    pub masked_frames: u64,
    /// Frames that ran int8-quantized.
    pub int8_frames: u64,
    /// Frames evicted by drop-oldest backpressure.
    pub dropped: u64,
    /// Producer stalls under stall backpressure.
    pub stalls: u64,
    /// Distinct contexts the produced frames actually visited.
    pub contexts: u64,
}

/// Everything [`run_scenario`] observes about one run: the exact-match
/// counters plus the behavioral digest, and the float-valued quality /
/// energy aggregates the coverage signature buckets (floats never enter
/// the exact-match record).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioOutcome {
    /// Exactly-reproducible behavior counters.
    pub counters: ScenarioCounters,
    /// FNV-1a selection-sequence digest (same scheme as the bench
    /// report's `determinism_digest`).
    pub digest: String,
    /// Frame-weighted mAP, percent.
    pub map_pct: f64,
    /// Frame-weighted average detection loss.
    pub avg_loss: f64,
    /// Frame-weighted mean per-stage energy, J/frame, `StageKind::ALL`
    /// order.
    pub stage_energy_j: Vec<f64>,
    /// Total platform + gated sensor energy, Joules.
    pub total_gated_j: f64,
}

/// Runs `scenario` through the real server and summarizes its behavior.
///
/// # Errors
/// Propagates [`InferError`] from the serving model.
///
/// # Panics
/// Panics if the scenario is structurally invalid.
pub fn run_scenario(scenario: &Scenario) -> Result<ScenarioOutcome, InferError> {
    assert!(scenario.is_structurally_valid(), "scenario must be structurally valid");
    let model = EcoFusionModel::new(SUITE_GRID, SUITE_CLASSES, &mut Rng::new(MODEL_SEED));
    let specs: Vec<StreamSpec> = scenario.streams.iter().map(ScenarioStream::to_spec).collect();
    let cfg = RuntimeConfig {
        max_batch: scenario.max_batch,
        num_classes: SUITE_CLASSES,
        ..RuntimeConfig::default()
    };
    let mut server = PerceptionServer::new(model, &specs, cfg);
    server.set_tracer(TraceSink::with_capacity(SCENARIO_TRACE_EVENTS));
    for (i, s) in scenario.streams.iter().enumerate() {
        if let Some(timeline) = &s.timeline {
            server.set_budget_timeline(i, timeline.clone());
        }
    }
    let mut streams: Vec<VehicleStream> = scenario
        .streams
        .iter()
        .zip(&specs)
        .map(|(s, spec)| {
            let stream = VehicleStream::new(*spec).with_walk(s.walk.clone());
            if s.faults.is_empty() {
                stream
            } else {
                stream.with_faults(s.faults.clone())
            }
        })
        .collect();
    let mut contexts: BTreeSet<&'static str> = BTreeSet::new();
    run_simulation_observed(&mut server, &mut streams, scenario.ticks, |frame: &Frame| {
        contexts.insert(frame.scene.context.label());
    })?;
    let report = server.report();
    let mut digest = Fnv1a::default();
    let mut churn = 0u64;
    let mut frames = 0u64;
    let mut map_weighted = 0.0;
    let mut loss_weighted = 0.0;
    let mut stage_weighted: Vec<f64> = Vec::new();
    for i in 0..server.num_streams() {
        absorb_stream(&mut digest, &server, i);
        let configs = server.telemetry(i).selected_configs();
        churn += configs.windows(2).filter(|w| w[0] != w[1]).count() as u64;
        let s = &report.per_stream[i];
        let n = s.summary.frames as f64;
        frames += s.summary.frames as u64;
        map_weighted += s.summary.map_pct * n;
        loss_weighted += s.summary.avg_loss * n;
        if stage_weighted.len() < s.stage_energy_j.len() {
            stage_weighted.resize(s.stage_energy_j.len(), 0.0);
        }
        for (acc, j) in stage_weighted.iter_mut().zip(&s.stage_energy_j) {
            *acc += j * n;
        }
    }
    let n = frames.max(1) as f64;
    let rungs = server.tracer().map(|t| rung_mask(t.metrics())).unwrap_or(1);
    let counters = ScenarioCounters {
        frames,
        churn,
        escalations: report.per_stream.iter().map(|s| s.escalations).sum(),
        relaxations: report.per_stream.iter().map(|s| s.relaxations).sum(),
        max_final_level: report.per_stream.iter().map(|s| s.final_level as u64).max().unwrap_or(0),
        rungs,
        health_transitions: report.per_stream.iter().map(|s| s.health_transitions).sum(),
        gate_fallbacks: report.total_gate_fallbacks,
        degraded_frames: report.per_stream.iter().map(|s| s.degraded_frames).sum(),
        masked_frames: report.per_stream.iter().map(|s| s.masked_frames).sum(),
        int8_frames: report.total_int8_frames,
        dropped: report.per_stream.iter().map(|s| s.dropped).sum(),
        stalls: report.per_stream.iter().map(|s| s.stalls).sum(),
        contexts: contexts.len() as u64,
    };
    Ok(ScenarioOutcome {
        counters,
        digest: format_digest(&digest),
        map_pct: map_weighted / n,
        avg_loss: loss_weighted / n,
        stage_energy_j: stage_weighted.iter().map(|j| j / n).collect(),
        total_gated_j: report.total_gated_j,
    })
}

/// Recovers the set of ladder rungs a traced run visited from the
/// monotonic `ecofusion_ladder_rung_total{level="N"}` metrics (bump
/// metrics are never evicted, unlike ring events). Bit 0 (the base
/// policy every stream starts on) is always set.
fn rung_mask(metrics: &BTreeMap<String, f64>) -> u8 {
    let mut mask = 1u8;
    for key in metrics.keys() {
        let Some(rest) = key.strip_prefix("ecofusion_ladder_rung_total{level=\"") else {
            continue;
        };
        let Some(level) = rest.strip_suffix("\"}").and_then(|s| s.parse::<u32>().ok()) else {
            continue;
        };
        mask |= 1u8 << level.min(7);
    }
    mask
}

/// The discretized behavior key coverage-guided search scores candidates
/// by. Two scenarios with equal signatures stress the runtime the same
/// way; a candidate enters the corpus only when its signature is new.
///
/// Everything is bucketed (log2 counts, mAP-loss bands, per-stage
/// overshoot bits) so the signature is a *coverage class*, not a
/// fingerprint — small perturbations of an already-covered behavior are
/// correctly rejected as redundant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CoverageSignature {
    /// Ladder rungs visited (bitmask, bit 0 = base).
    pub rungs: u8,
    /// log2 bucket of gate-decision churn.
    pub churn_bucket: u8,
    /// log2 bucket of health-state transitions.
    pub health_bucket: u8,
    /// Whether any knowledge-gate fallback fired.
    pub fallbacks: bool,
    /// Whether any frame ran with a degraded sensor.
    pub degraded: bool,
    /// Whether any frame ran with a masked sensor.
    pub masked: bool,
    /// Whether any frame ran int8-quantized.
    pub int8: bool,
    /// log2 bucket of backpressure drops.
    pub drops_bucket: u8,
    /// log2 bucket of producer stalls.
    pub stalls_bucket: u8,
    /// mAP loss vs. the clean twin, banded: 0 (<0.25 pp), 1 (<1), 2
    /// (<3), 3 (<10), 4 (≥10).
    pub map_loss_bucket: u8,
    /// Per-stage energy overshoot vs. the clean twin (bit per stage,
    /// set when the stage spends >10% + 0.01 J/frame more).
    pub overshoot: u8,
    /// Distinct contexts visited.
    pub contexts: u8,
}

impl CoverageSignature {
    /// Builds the signature of a candidate run, measured against its
    /// clean twin's run.
    pub fn from_outcomes(candidate: &ScenarioOutcome, clean: &ScenarioOutcome) -> Self {
        let c = &candidate.counters;
        let map_loss_pp = (clean.map_pct - candidate.map_pct).max(0.0);
        let map_loss_bucket = match map_loss_pp {
            l if l < 0.25 => 0,
            l if l < 1.0 => 1,
            l if l < 3.0 => 2,
            l if l < 10.0 => 3,
            _ => 4,
        };
        let mut overshoot = 0u8;
        for (i, (cand, base)) in
            candidate.stage_energy_j.iter().zip(&clean.stage_energy_j).enumerate().take(8)
        {
            if *cand > base * 1.10 + 0.01 {
                overshoot |= 1 << i;
            }
        }
        CoverageSignature {
            rungs: c.rungs,
            churn_bucket: log2_bucket(c.churn),
            health_bucket: log2_bucket(c.health_transitions),
            fallbacks: c.gate_fallbacks > 0,
            degraded: c.degraded_frames > 0,
            masked: c.masked_frames > 0,
            int8: c.int8_frames > 0,
            drops_bucket: log2_bucket(c.dropped),
            stalls_bucket: log2_bucket(c.stalls),
            map_loss_bucket,
            overshoot,
            contexts: c.contexts.min(u8::MAX as u64) as u8,
        }
    }
}

/// 0 for 0, else `floor(log2(n)) + 1` — the coarse count classes the
/// signature buckets churn/transition/drop counts into.
fn log2_bucket(n: u64) -> u8 {
    (64 - n.leading_zeros()) as u8
}

/// Provenance of a distilled suite: where it came from and how much the
/// distillation pass shrank it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DistilledProvenance {
    /// Seed of the search run that discovered the scenario.
    pub search_seed: u64,
    /// Mutable-input sizes as discovered.
    pub discovered: ScenarioSize,
    /// Mutable-input sizes after minimization.
    pub minimized: ScenarioSize,
}

/// A self-contained record–replay regression suite: a minimized
/// scenario, the coverage signature that made it novel, and the exact
/// behavior a replay must reproduce.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistilledSuite {
    /// JSON layout version ([`DISTILLED_SCHEMA_VERSION`]).
    pub schema: u32,
    /// Suite name (also the file stem under [`DEFAULT_DISTILLED_DIR`]).
    pub name: String,
    /// The full scenario — everything a replay needs.
    pub scenario: Scenario,
    /// The coverage class the scenario was kept for.
    pub signature: CoverageSignature,
    /// Expected selection-sequence digest (exact match).
    pub expected_digest: String,
    /// Expected behavior counters (exact match).
    pub expected_counters: ScenarioCounters,
    /// Search provenance.
    pub provenance: DistilledProvenance,
}

impl DistilledSuite {
    /// Records `scenario`'s current behavior as a distilled suite.
    ///
    /// # Errors
    /// Propagates [`InferError`] from the serving model.
    pub fn record(
        name: &str,
        scenario: Scenario,
        signature: CoverageSignature,
        provenance: DistilledProvenance,
    ) -> Result<DistilledSuite, InferError> {
        let outcome = run_scenario(&scenario)?;
        Ok(DistilledSuite {
            schema: DISTILLED_SCHEMA_VERSION,
            name: name.to_string(),
            scenario,
            signature,
            expected_digest: outcome.digest,
            expected_counters: outcome.counters,
            provenance,
        })
    }
}

/// One field that replayed differently than the distilled suite
/// recorded.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplayDrift {
    /// Which recorded quantity drifted.
    pub field: String,
    /// The committed expectation.
    pub expected: String,
    /// What the replay produced.
    pub actual: String,
}

/// Replays a distilled suite and diffs its behavior against the
/// recorded expectations. An empty vector means the replay was
/// bit-identical; anything else is a regression (or an intentional
/// behavior change that requires re-recording the suite).
///
/// # Errors
/// Propagates [`InferError`] from the serving model.
pub fn replay_distilled(suite: &DistilledSuite) -> Result<Vec<ReplayDrift>, InferError> {
    let outcome = run_scenario(&suite.scenario)?;
    let mut drifts = Vec::new();
    let mut check = |field: &str, expected: String, actual: String| {
        if expected != actual {
            drifts.push(ReplayDrift { field: field.to_string(), expected, actual });
        }
    };
    check("digest", suite.expected_digest.clone(), outcome.digest.clone());
    let e = &suite.expected_counters;
    let a = &outcome.counters;
    check("frames", e.frames.to_string(), a.frames.to_string());
    check("churn", e.churn.to_string(), a.churn.to_string());
    check("escalations", e.escalations.to_string(), a.escalations.to_string());
    check("relaxations", e.relaxations.to_string(), a.relaxations.to_string());
    check("max_final_level", e.max_final_level.to_string(), a.max_final_level.to_string());
    check("rungs", format!("{:#010b}", e.rungs), format!("{:#010b}", a.rungs));
    check("health_transitions", e.health_transitions.to_string(), a.health_transitions.to_string());
    check("gate_fallbacks", e.gate_fallbacks.to_string(), a.gate_fallbacks.to_string());
    check("degraded_frames", e.degraded_frames.to_string(), a.degraded_frames.to_string());
    check("masked_frames", e.masked_frames.to_string(), a.masked_frames.to_string());
    check("int8_frames", e.int8_frames.to_string(), a.int8_frames.to_string());
    check("dropped", e.dropped.to_string(), a.dropped.to_string());
    check("stalls", e.stalls.to_string(), a.stalls.to_string());
    check("contexts", e.contexts.to_string(), a.contexts.to_string());
    Ok(drifts)
}

/// Loads every `*.json` distilled suite under `dir`, sorted by file
/// name (deterministic replay order).
///
/// # Errors
/// I/O errors reading the directory or a file; parse errors are
/// reported with the offending path.
pub fn load_distilled_dir(dir: &Path) -> std::io::Result<Vec<(PathBuf, DistilledSuite)>> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    paths.sort();
    let mut suites = Vec::with_capacity(paths.len());
    for path in paths {
        let text = std::fs::read_to_string(&path)?;
        let suite: DistilledSuite = serde_json::from_str(&text).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("{}: {e:?}", path.display()),
            )
        })?;
        suites.push((path, suite));
    }
    Ok(suites)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecofusion_faults::FaultKind;
    use ecofusion_scene::Context;
    use ecofusion_sensors::SensorKind;

    fn tiny_scenario() -> Scenario {
        let walk = ContextWalk::from_pairs(&[(Context::City, 4), (Context::Fog, 4)]);
        let mut stream = ScenarioStream::baseline(11, walk);
        stream.faults = FaultSchedule::empty().with_event(
            SensorKind::CameraLeft,
            FaultKind::Dropout,
            2,
            4,
            1.0,
        );
        Scenario { name: "tiny".to_string(), ticks: 8, max_batch: 4, streams: vec![stream] }
    }

    #[test]
    fn clean_twin_strips_adversarial_inputs_only() {
        let s = tiny_scenario();
        let twin = s.clean_twin();
        assert!(twin.streams[0].faults.is_empty());
        assert!(twin.streams[0].timeline.is_none());
        assert_eq!(twin.streams[0].walk, s.streams[0].walk);
        assert_eq!(twin.streams[0].seed, s.streams[0].seed);
        assert_eq!(twin.ticks, s.ticks);
        assert!(twin.is_structurally_valid());
    }

    #[test]
    fn scenario_runs_are_bit_reproducible() {
        let s = tiny_scenario();
        let a = run_scenario(&s).unwrap();
        let b = run_scenario(&s).unwrap();
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.counters, b.counters);
        assert!(a.counters.frames > 0);
        assert_eq!(a.counters.contexts, 2, "walk visited City and Fog");
    }

    #[test]
    fn recorded_suite_replays_without_drift() {
        let s = tiny_scenario();
        let clean = run_scenario(&s.clean_twin()).unwrap();
        let outcome = run_scenario(&s).unwrap();
        let sig = CoverageSignature::from_outcomes(&outcome, &clean);
        let size = s.size();
        let suite = DistilledSuite::record(
            "tiny",
            s,
            sig,
            DistilledProvenance { search_seed: 0, discovered: size, minimized: size },
        )
        .unwrap();
        assert!(replay_distilled(&suite).unwrap().is_empty());
        // Round-trip through JSON, like the CI job does.
        let json = serde_json::to_string_pretty(&suite).unwrap();
        let back: DistilledSuite = serde_json::from_str(&json).unwrap();
        assert_eq!(back, suite);
        assert!(replay_distilled(&back).unwrap().is_empty());
    }

    #[test]
    fn tampered_expectations_surface_as_drift() {
        let s = tiny_scenario();
        let clean = run_scenario(&s.clean_twin()).unwrap();
        let outcome = run_scenario(&s).unwrap();
        let sig = CoverageSignature::from_outcomes(&outcome, &clean);
        let size = s.size();
        let mut suite = DistilledSuite::record(
            "tiny",
            s,
            sig,
            DistilledProvenance { search_seed: 0, discovered: size, minimized: size },
        )
        .unwrap();
        suite.expected_counters.frames += 1;
        suite.expected_digest = "0000000000000000".to_string();
        let drifts = replay_distilled(&suite).unwrap();
        let fields: Vec<&str> = drifts.iter().map(|d| d.field.as_str()).collect();
        assert!(fields.contains(&"digest"));
        assert!(fields.contains(&"frames"));
    }

    #[test]
    fn signature_buckets_are_coarse() {
        assert_eq!(log2_bucket(0), 0);
        assert_eq!(log2_bucket(1), 1);
        assert_eq!(log2_bucket(2), 2);
        assert_eq!(log2_bucket(3), 2);
        assert_eq!(log2_bucket(4), 3);
        assert_eq!(log2_bucket(1024), 11);
        let s = tiny_scenario();
        let clean = run_scenario(&s.clean_twin()).unwrap();
        let self_sig = CoverageSignature::from_outcomes(&clean, &clean);
        assert_eq!(self_sig.map_loss_bucket, 0, "a run never regresses vs itself");
        assert_eq!(self_sig.overshoot, 0);
    }
}
