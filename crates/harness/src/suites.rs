//! The named workload-suite registry.
//!
//! A suite is a fully seeded, end-to-end serving workload: a set of
//! [`StreamSpec`]s (plus optional fault schedules) driven through the real
//! [`PerceptionServer`](ecofusion_runtime::PerceptionServer) for a fixed
//! number of scheduler ticks. Every knob is pinned by the suite
//! definition, so two runs of the same suite at the same scale produce the
//! same frames, the same selections, and the same modeled energy — the
//! property the regression gate's determinism fields check bit-for-bit.

use ecofusion_core::InferenceOptions;
use ecofusion_eval::experiments::common::Scale;
use ecofusion_faults::FaultSchedule;
use ecofusion_gating::GateKind;
use ecofusion_runtime::{BackpressurePolicy, EnergyBudget, StreamSpec};
use ecofusion_scene::Context;

/// Observation grid side length every suite runs at (matches the
/// quick-scale experiment harness and the demo model).
pub const SUITE_GRID: usize = 32;

/// Object classes of the suite model.
pub const SUITE_CLASSES: usize = 8;

/// Seed of the serving model's weight initialization.
pub const MODEL_SEED: u64 = 0xEC0F;

/// The seven named workload suites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuiteId {
    /// One stream pinned to the City context: the steady-state serving
    /// baseline (no drift, no faults, no budget pressure).
    SteadyCity,
    /// One stream whose context drift walk visits the whole RADIATE mix:
    /// exercises per-context gating churn.
    ContextChurn,
    /// Two fault-aware streams under the scripted
    /// [`FaultSchedule::storm`] (dropout, frozen frames, calibration
    /// drift, noise bursts): exercises health monitoring and degraded
    /// gating.
    FaultStorm,
    /// One stream under a budget far below what the base policy spends:
    /// the controller must climb the whole ladder to the emergency rung.
    BudgetSqueeze,
    /// 1- to 256-stream fleets over the same per-stream workload:
    /// exercises cross-stream batching, sharded multi-core execution, and
    /// scheduler scaling.
    FleetScale,
    /// Stall-policy producers emitting 2 frames per tick into short
    /// queues behind a narrow batch cap: sustained saturation, so the
    /// gate covers producer stalls, queue high-water, and queueing delay
    /// under backpressure that *defers* instead of dropping.
    QueueSaturation,
    /// Four streams with heterogeneous per-stream gates (attention,
    /// knowledge, deep, loss-based) coalesced into the same batch groups:
    /// exercises options-keyed unit grouping with policies that can never
    /// merge, including the knowledge gate's missing-rule fallback.
    MixedPolicy,
}

impl SuiteId {
    /// All suites, in report order.
    pub const ALL: [SuiteId; 7] = [
        SuiteId::SteadyCity,
        SuiteId::ContextChurn,
        SuiteId::FaultStorm,
        SuiteId::BudgetSqueeze,
        SuiteId::FleetScale,
        SuiteId::QueueSaturation,
        SuiteId::MixedPolicy,
    ];

    /// Stable machine-readable name (the report's `suite` field).
    pub fn label(self) -> &'static str {
        match self {
            SuiteId::SteadyCity => "steady_city",
            SuiteId::ContextChurn => "context_churn",
            SuiteId::FaultStorm => "fault_storm",
            SuiteId::BudgetSqueeze => "budget_squeeze",
            SuiteId::FleetScale => "fleet_scale",
            SuiteId::QueueSaturation => "queue_saturation",
            SuiteId::MixedPolicy => "mixed_policy",
        }
    }

    /// Parses a [`SuiteId::label`] back.
    pub fn from_label(s: &str) -> Option<SuiteId> {
        SuiteId::ALL.into_iter().find(|id| id.label() == s)
    }

    /// Base seed of the suite's streams (stream `i` uses `seed + i`).
    pub fn base_seed(self) -> u64 {
        match self {
            SuiteId::SteadyCity => 101,
            SuiteId::ContextChurn => 202,
            SuiteId::FaultStorm => 301,
            SuiteId::BudgetSqueeze => 401,
            SuiteId::FleetScale => 500,
            SuiteId::QueueSaturation => 601,
            SuiteId::MixedPolicy => 701,
        }
    }
}

/// The resolved shape of one suite at one scale.
#[derive(Debug, Clone)]
pub struct SuitePlan {
    /// Which suite this is.
    pub id: SuiteId,
    /// Scheduler ticks each sub-run is driven for (queues are drained
    /// afterwards, so every accepted frame is processed and reported).
    pub ticks: u64,
    /// Stream counts of the suite's sub-runs: `[1]` for the single-fleet
    /// suites, `[1, 4, 16, 64, 256]` for [`SuiteId::FleetScale`].
    pub fleets: Vec<usize>,
    /// Scheduler micro-batch cap.
    pub max_batch: usize,
}

/// Resolves a suite's plan at the given scale. Quick is sized for the CI
/// perf gate (seconds); full is the overnight soak shape (~4× the
/// horizon).
pub fn plan(id: SuiteId, scale: Scale) -> SuitePlan {
    let mul = match scale {
        Scale::Quick => 1,
        Scale::Full => 4,
    };
    let (ticks, fleets, max_batch) = match id {
        SuiteId::SteadyCity => (64, vec![1], 8),
        SuiteId::ContextChurn => (128, vec![1], 8),
        SuiteId::FaultStorm => (64, vec![2], 8),
        SuiteId::BudgetSqueeze => (64, vec![1], 8),
        // Fleet ticks stay short (the 256-stream sub-run already processes
        // ~256 frames/tick); the wider batch cap keeps big fleets from
        // serializing on the per-step frame budget.
        SuiteId::FleetScale => (16, vec![1, 4, 16, 64, 256], 32),
        // Three 2x producers against a 4-frame batch cap: 6 frames/tick
        // offered, 4 processed, so the stall-policy queues saturate and
        // stay saturated.
        SuiteId::QueueSaturation => (48, vec![3], 4),
        SuiteId::MixedPolicy => (64, vec![4], 8),
    };
    SuitePlan { id, ticks: ticks * mul, fleets, max_batch }
}

/// Builds the stream specs (and fault schedules) of one sub-run of a
/// suite with `fleet` streams over `ticks` scheduler ticks.
pub fn stream_specs(
    id: SuiteId,
    fleet: usize,
    ticks: u64,
) -> Vec<(StreamSpec, Option<FaultSchedule>)> {
    let base = SuiteId::base_seed(id);
    match id {
        SuiteId::SteadyCity => {
            let mut spec = StreamSpec::new(base, SUITE_GRID).with_context(Context::City);
            spec.drift_stay_prob = 1.0;
            vec![(spec, None)]
        }
        SuiteId::ContextChurn => {
            let mut spec = StreamSpec::new(base, SUITE_GRID);
            // Short segments that always redraw: the walk sweeps the whole
            // RADIATE mix inside the quick horizon.
            spec.dwell_frames = 4;
            spec.drift_stay_prob = 0.0;
            vec![(spec, None)]
        }
        SuiteId::FaultStorm => (0..fleet.max(2))
            .map(|i| {
                let spec = StreamSpec::new(base + i as u64, SUITE_GRID)
                    .with_context(if i % 2 == 0 { Context::City } else { Context::Rain })
                    .with_health_gating(true);
                (spec, Some(FaultSchedule::storm(ticks)))
            })
            .collect(),
        SuiteId::BudgetSqueeze => {
            // Target far below even the emergency rung's spend, with a
            // short window: the ladder is climbed to its last rung within
            // the first half of the run and never relaxes.
            let budget = EnergyBudget { target_j: 0.5, window: 8, relax_margin: 0.8 };
            let spec = StreamSpec::new(base, SUITE_GRID).with_budget(budget);
            vec![(spec, None)]
        }
        SuiteId::FleetScale => (0..fleet)
            .map(|i| {
                let spec = StreamSpec::new(base + i as u64, SUITE_GRID)
                    .with_context(Context::ALL[i % Context::ALL.len()]);
                (spec, None)
            })
            .collect(),
        SuiteId::QueueSaturation => {
            let contexts = [Context::City, Context::Rain, Context::Night];
            (0..fleet.max(3))
                .map(|i| {
                    let spec = StreamSpec::new(base + i as u64, SUITE_GRID)
                        .with_context(contexts[i % contexts.len()])
                        .with_queue(4, BackpressurePolicy::Stall)
                        .with_frames_per_tick(2);
                    (spec, None)
                })
                .collect()
        }
        SuiteId::MixedPolicy => {
            let gates =
                [GateKind::Attention, GateKind::Knowledge, GateKind::Deep, GateKind::LossBased];
            (0..fleet.max(4))
                .map(|i| {
                    let opts = InferenceOptions::new(0.01, 0.5).with_gate(gates[i % gates.len()]);
                    let spec = StreamSpec::new(base + i as u64, SUITE_GRID)
                        .with_context(Context::ALL[(2 * i) % Context::ALL.len()])
                        .with_opts(opts);
                    (spec, None)
                })
                .collect()
        }
    }
}

/// The inference options every suite starts from (the paper defaults; the
/// budget ladder may move a stream off them mid-run).
///
/// The `ECOFUSION_PRECISION` environment variable (`int8` / `f32`,
/// case-insensitive) overrides the perception precision — the CI
/// int8-parity step uses it to drive the whole gate quantized without
/// touching every suite definition. Unset or unrecognized values keep the
/// f32 default, so ordinary runs are unchanged.
pub fn base_options() -> InferenceOptions {
    apply_env_precision(InferenceOptions::new(0.01, 0.5))
}

/// Applies the `ECOFUSION_PRECISION` override to `opts` (see
/// [`base_options`]). Suites with per-stream policies (e.g.
/// `mixed_policy`'s heterogeneous gates) run their own options through
/// this instead of replacing them wholesale with [`base_options`].
pub fn apply_env_precision(mut opts: InferenceOptions) -> InferenceOptions {
    if let Ok(v) = std::env::var("ECOFUSION_PRECISION") {
        if v.eq_ignore_ascii_case("int8") {
            opts.precision = ecofusion_core::Precision::Int8;
        }
    }
    opts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_roundtrip() {
        for id in SuiteId::ALL {
            assert_eq!(SuiteId::from_label(id.label()), Some(id));
        }
        assert_eq!(SuiteId::from_label("nope"), None);
    }

    #[test]
    fn plans_are_sized() {
        for id in SuiteId::ALL {
            let quick = plan(id, Scale::Quick);
            let full = plan(id, Scale::Full);
            assert!(quick.ticks > 0);
            assert!(full.ticks > quick.ticks, "{id:?} full must be larger");
            assert!(!quick.fleets.is_empty());
            for &fleet in &quick.fleets {
                let specs = stream_specs(id, fleet, quick.ticks);
                assert!(!specs.is_empty());
                for (spec, _) in &specs {
                    assert_eq!(spec.grid, SUITE_GRID);
                }
            }
        }
        assert_eq!(plan(SuiteId::FleetScale, Scale::Quick).fleets, vec![1, 4, 16, 64, 256]);
    }

    #[test]
    fn fault_storm_streams_are_fault_aware() {
        let specs = stream_specs(SuiteId::FaultStorm, 2, 64);
        assert_eq!(specs.len(), 2);
        for (spec, schedule) in &specs {
            assert!(spec.health_gating);
            let schedule = schedule.as_ref().expect("storm schedule");
            assert!(!schedule.is_empty());
        }
    }

    #[test]
    fn queue_saturation_overproduces_into_stall_queues() {
        let specs = stream_specs(SuiteId::QueueSaturation, 3, 48);
        assert_eq!(specs.len(), 3);
        for (spec, schedule) in &specs {
            assert!(schedule.is_none());
            assert_eq!(spec.backpressure, BackpressurePolicy::Stall);
            assert_eq!(spec.burst(), 2, "each producer offers 2 frames/tick");
            assert!(spec.queue_capacity < 8, "short queues saturate quickly");
        }
        assert!(plan(SuiteId::QueueSaturation, Scale::Quick).max_batch < 6);
    }

    #[test]
    fn mixed_policy_gates_are_heterogeneous() {
        let specs = stream_specs(SuiteId::MixedPolicy, 4, 64);
        assert_eq!(specs.len(), 4);
        let mut gates: Vec<GateKind> = specs.iter().map(|(s, _)| s.base_opts.gate).collect();
        gates.sort_by_key(|g| format!("{g:?}"));
        gates.dedup();
        assert_eq!(gates.len(), 4, "all four gate kinds in one batch group");
    }

    #[test]
    fn suite_streams_use_distinct_seeds() {
        let specs = stream_specs(SuiteId::FleetScale, 16, 16);
        let mut seeds: Vec<u64> = specs.iter().map(|(s, _)| s.seed).collect();
        seeds.dedup();
        assert_eq!(seeds.len(), 16);
    }
}
