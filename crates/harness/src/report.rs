//! The machine-readable bench report.
//!
//! One [`BenchReport`] is the artifact of one harness run: build
//! metadata plus one [`SuiteReport`] per workload suite. The schema is
//! versioned ([`SCHEMA_VERSION`]) and every field is either
//!
//! * **deterministic** — a pure function of the suite definition and the
//!   code (mAP, modeled energy/latency, stem counters, selection digest);
//!   the regression gate compares these strictly or with an explicit
//!   tolerance band, or
//! * **host-dependent** — wall-clock throughput; recorded for trend
//!   plots and artifacts but never gated against a committed baseline,
//!   because shared CI runners are not a stable measurement device.

use ecofusion_energy::StageRollup;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::Path;

/// Version of the report schema. Bump when a field changes meaning;
/// compare mode refuses to diff mismatched versions.
pub const SCHEMA_VERSION: u32 = 1;

/// Latency distribution of a suite, milliseconds of *modeled* (PX2 cost
/// model) per-frame latency. Percentiles come from the fixed-bucket
/// [`LatencyHistogram`](ecofusion_runtime::LatencyHistogram), so they are
/// bit-reproducible across runs; the mean and max are exact.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Exact mean, ms.
    pub mean_ms: f64,
    /// Median (bucket upper edge), ms.
    pub p50_ms: f64,
    /// 95th percentile (bucket upper edge), ms.
    pub p95_ms: f64,
    /// 99th percentile (bucket upper edge), ms.
    pub p99_ms: f64,
    /// Exact maximum, ms.
    pub max_ms: f64,
}

/// One fleet size's throughput point inside the `fleet_scale` suite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetPoint {
    /// Streams in the fleet.
    pub streams: usize,
    /// Frames processed by this sub-run.
    pub frames: u64,
    /// Mean frames per micro-batch the scheduler achieved.
    pub avg_batch_size: f64,
    /// Host wall-clock throughput, frames/s (not gated).
    pub throughput_fps: f64,
    /// Host wall-clock duration of the sub-run, ms (not gated).
    pub wall_ms: f64,
    /// Worker shards the sub-run executed on (0 in reports that predate
    /// sharding).
    #[serde(default)]
    pub shards: usize,
    /// What each shard's worker did (empty in pre-sharding reports).
    #[serde(default)]
    pub per_shard: Vec<ShardPoint>,
}

/// One worker shard's share of a fleet sub-run. Steal counters and
/// throughput are host-/schedule-dependent and never gated; they exist so
/// artifacts show how the work actually spread across cores.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardPoint {
    /// Shard index.
    pub shard: usize,
    /// Streams homed on this shard.
    pub streams: usize,
    /// Frames this shard's worker executed (own + stolen).
    pub frames: u64,
    /// Micro-batches this shard's worker executed.
    pub batches: u64,
    /// Units claimed from other shards (not gated).
    pub steals: u64,
    /// Frames inside those stolen units (not gated).
    pub stolen_frames: u64,
    /// Wall-clock time the worker spent executing, ms (not gated).
    pub busy_ms: f64,
}

/// Everything the report says about one workload suite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuiteReport {
    /// Suite name ([`SuiteId::label`](crate::SuiteId::label)).
    pub suite: String,
    /// Base stream seed the suite ran with.
    pub seed: u64,
    /// Total streams across the suite's sub-runs.
    pub streams: usize,
    /// Scheduler ticks per sub-run.
    pub ticks: u64,
    /// Frames processed (and reported) across all sub-runs.
    pub frames: u64,
    /// Frames-weighted VOC mAP at IoU ≥ 0.5, percent.
    pub map_pct: f64,
    /// Frames-weighted mean fusion loss.
    pub avg_loss: f64,
    /// Total PX2 platform energy, Joules.
    pub total_platform_j: f64,
    /// Total platform + clock-gated sensor energy (Eq. 11), Joules.
    pub total_gated_j: f64,
    /// Per-stage energy rollup (sums to `total_gated_j`).
    pub stage_energy: StageRollup,
    /// Modeled per-frame latency distribution.
    pub latency: LatencyStats,
    /// Stems the demand-driven pipeline actually ran.
    pub stems_executed: u64,
    /// Stems served from per-stream feature caches.
    pub stems_cached: u64,
    /// Stems pruned outright by the demand-driven plan.
    pub stems_skipped: u64,
    /// Stem-cache lookups that hit.
    pub stem_cache_hits: u64,
    /// Stem-cache lookups that missed.
    pub stem_cache_misses: u64,
    /// `hits / (hits + misses)`, 0 when the cache was never consulted.
    pub cache_hit_rate: f64,
    /// Wall-clock throughput over all sub-runs, frames/s (not gated).
    pub throughput_fps: f64,
    /// Wall-clock duration over all sub-runs, ms (not gated).
    pub wall_ms: f64,
    /// Frames evicted by drop-oldest backpressure.
    pub dropped: u64,
    /// Producer stalls under stall backpressure.
    pub stalls: u64,
    /// Budget escalations across all streams.
    pub escalations: u64,
    /// Deepest escalation level any stream ended the run at.
    pub max_final_level: usize,
    /// Frames processed while a sensor was degraded or failed.
    pub degraded_frames: u64,
    /// Frames processed with at least one sensor masked out of gating.
    pub masked_frames: u64,
    /// Frames whose perception stages ran int8-quantized (0 in reports
    /// that predate the precision axis).
    #[serde(default)]
    pub int8_frames: u64,
    /// Knowledge-gate missing-rule fallbacks (0 in older reports).
    #[serde(default)]
    pub gate_fallbacks: u64,
    /// Driving contexts the suite's scenes actually visited (labels,
    /// sorted).
    pub contexts_visited: Vec<String>,
    /// How often each configuration was selected, across all streams.
    pub config_histogram: BTreeMap<String, usize>,
    /// FNV-1a-64 digest (hex) over the per-stream sequence of selected
    /// configurations and detection counts: the strict bit-equality
    /// witness the regression gate checks. Covers *behavior* (what was
    /// selected and detected), not modeled costs, so a deliberate
    /// cost-model recalibration trips the banded energy checks without
    /// also invalidating the digest.
    pub determinism_digest: String,
    /// Per-fleet throughput points (only the `fleet_scale` suite fills
    /// this).
    #[serde(default)]
    pub fleet: Vec<FleetPoint>,
}

/// Build/provenance metadata of a report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BuildMeta {
    /// Active compute backend (`blocked` or `reference`).
    pub backend: String,
    /// `git rev-parse --short HEAD` of the working tree, `GITHUB_SHA`
    /// when git is unavailable, else `unknown`.
    pub git_rev: String,
    /// Harness scale: `quick` or `full`.
    pub scale: String,
    /// Model provenance: `untrained(seed)` or `fast_demo(seed)`.
    pub model: String,
    /// Observation grid side length.
    pub grid: usize,
    /// Object classes.
    pub num_classes: usize,
    /// Worker shards the runtime ran with (0 in reports that predate
    /// sharding). Provenance only: the gate never compares it, so a
    /// 1-shard baseline diffs cleanly against an N-shard report — which
    /// is exactly what the CI shard matrix does.
    #[serde(default)]
    pub shards: usize,
}

/// Measured int8-vs-f32 kernel speedups, recorded by the parity harness.
/// Wall-clock ratios on the build host — informational, never gated.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct Int8Speedup {
    /// f32 stem forward time / int8 stem forward time.
    pub stem: f64,
    /// f32 branch (backbone + head) time / int8 branch time.
    pub branch: f64,
}

/// Measured eager-vs-compiled stage speedups of the fused-operator
/// execution layer, recorded by `bench_report`'s default mode.
/// Wall-clock ratios on the build host — informational, never gated.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct CompiledSpeedup {
    /// Eager f32 stem time / compiled f32 stem time (batch 8).
    pub stem_f32: f64,
    /// Eager f32 branch time / compiled f32 branch time (batch 8).
    pub branch_f32: f64,
    /// Eager int8 stem time / compiled int8 stem time (batch 8).
    pub stem_int8: f64,
    /// Eager int8 branch time / compiled int8 branch time (batch 8).
    pub branch_int8: f64,
}

/// A full harness run: metadata plus one report per suite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Report schema version ([`SCHEMA_VERSION`]).
    pub schema: u32,
    /// Build/provenance metadata.
    pub build: BuildMeta,
    /// Per-suite reports, in [`SuiteId::ALL`](crate::SuiteId::ALL) order.
    pub suites: Vec<SuiteReport>,
    /// Int8 kernel speedups when the parity harness measured them
    /// (`None` in ordinary gate runs and older reports; not gated).
    #[serde(default)]
    pub int8_speedup: Option<Int8Speedup>,
    /// Eager-vs-compiled stage speedups when `bench_report` measured
    /// them (`None` in older reports and gate-only runs; not gated).
    #[serde(default)]
    pub compiled_speedup: Option<CompiledSpeedup>,
}

impl BenchReport {
    /// The report of one suite, by name.
    pub fn suite(&self, name: &str) -> Option<&SuiteReport> {
        self.suites.iter().find(|s| s.suite == name)
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// Parses a report from JSON text.
    ///
    /// # Errors
    /// Returns the underlying parse error on malformed JSON or a shape
    /// mismatch.
    pub fn from_json(s: &str) -> Result<BenchReport, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Writes the report to `path` (creating parent directories).
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn write_json(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut json = self.to_json();
        json.push('\n');
        std::fs::write(path, json)
    }

    /// Loads a report from a JSON file.
    ///
    /// # Errors
    /// Propagates filesystem and parse errors (boxed, for CLI reporting).
    pub fn load_json(path: &Path) -> Result<BenchReport, Box<dyn std::error::Error>> {
        let text = std::fs::read_to_string(path)?;
        Ok(BenchReport::from_json(&text)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_suite(name: &str) -> SuiteReport {
        let mut config_histogram = BTreeMap::new();
        config_histogram.insert("E(C_L+C_R+L)".to_string(), 40usize);
        config_histogram.insert("L(R)".to_string(), 24usize);
        SuiteReport {
            suite: name.to_string(),
            seed: 101,
            streams: 1,
            ticks: 64,
            frames: 64,
            map_pct: 12.5,
            avg_loss: 1.75,
            total_platform_j: 240.0,
            total_gated_j: 260.5,
            stage_energy: StageRollup::from_sums(&[16.0, 22.5, 0.64, 0.0, 200.0, 3.2, 0.0]),
            latency: LatencyStats {
                mean_ms: 58.2,
                p50_ms: 61.25,
                p95_ms: 66.5,
                p99_ms: 66.5,
                max_ms: 66.37,
            },
            stems_executed: 180,
            stems_cached: 12,
            stems_skipped: 64,
            stem_cache_hits: 12,
            stem_cache_misses: 180,
            cache_hit_rate: 12.0 / 192.0,
            throughput_fps: 210.0,
            wall_ms: 304.8,
            dropped: 0,
            stalls: 0,
            escalations: 0,
            max_final_level: 0,
            degraded_frames: 0,
            masked_frames: 0,
            int8_frames: 0,
            gate_fallbacks: 0,
            contexts_visited: vec!["City".to_string()],
            config_histogram,
            determinism_digest: "cbf29ce484222325".to_string(),
            fleet: Vec::new(),
        }
    }

    pub(crate) fn sample_report() -> BenchReport {
        BenchReport {
            schema: SCHEMA_VERSION,
            build: BuildMeta {
                backend: "blocked".to_string(),
                git_rev: "abc1234".to_string(),
                scale: "quick".to_string(),
                model: format!("untrained({})", crate::MODEL_SEED),
                grid: 32,
                num_classes: 8,
                shards: 2,
            },
            suites: vec![sample_suite("steady_city"), {
                let mut fleet = sample_suite("fleet_scale");
                fleet.fleet = vec![FleetPoint {
                    streams: 4,
                    frames: 64,
                    avg_batch_size: 3.5,
                    throughput_fps: 400.0,
                    wall_ms: 160.0,
                    shards: 2,
                    per_shard: vec![
                        ShardPoint {
                            shard: 0,
                            streams: 2,
                            frames: 40,
                            batches: 12,
                            steals: 0,
                            stolen_frames: 0,
                            busy_ms: 80.0,
                        },
                        ShardPoint {
                            shard: 1,
                            streams: 2,
                            frames: 24,
                            batches: 8,
                            steals: 1,
                            stolen_frames: 4,
                            busy_ms: 60.0,
                        },
                    ],
                }];
                fleet
            }],
            int8_speedup: None,
            compiled_speedup: None,
        }
    }

    #[test]
    fn report_serde_roundtrip_is_lossless() {
        let report = sample_report();
        let json = report.to_json();
        let back = BenchReport::from_json(&json).expect("parses back");
        assert_eq!(back, report);
        // Float fields survive bit-exactly (the determinism contract).
        let (a, b) = (&report.suites[0], &back.suites[0]);
        assert_eq!(a.map_pct.to_bits(), b.map_pct.to_bits());
        assert_eq!(a.total_gated_j.to_bits(), b.total_gated_j.to_bits());
        assert_eq!(a.latency.p99_ms.to_bits(), b.latency.p99_ms.to_bits());
    }

    #[test]
    fn report_file_roundtrip() {
        let report = sample_report();
        let dir = std::env::temp_dir().join("ecofusion_harness_report_test");
        let path = dir.join("nested").join("report.json");
        report.write_json(&path).expect("writes");
        let back = BenchReport::load_json(&path).expect("loads");
        assert_eq!(back, report);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pre_sharding_reports_still_parse() {
        // Baselines written before the sharded runtime have no `shards`
        // or `per_shard` fields; they must load with defaults so compare
        // mode can still diff against them.
        let point: FleetPoint = serde_json::from_str(
            r#"{"streams":4,"frames":64,"avg_batch_size":3.5,"throughput_fps":400.0,"wall_ms":160.0}"#,
        )
        .expect("old fleet point parses");
        assert_eq!(point.shards, 0);
        assert!(point.per_shard.is_empty());
        let build: BuildMeta = serde_json::from_str(
            r#"{"backend":"blocked","git_rev":"abc1234","scale":"quick","model":"untrained(1)","grid":32,"num_classes":8}"#,
        )
        .expect("old build meta parses");
        assert_eq!(build.shards, 0);
    }

    #[test]
    fn suite_lookup_by_name() {
        let report = sample_report();
        assert!(report.suite("steady_city").is_some());
        assert!(report.suite("fleet_scale").is_some());
        assert!(report.suite("missing").is_none());
    }
}
