//! Suite execution: drives the named workloads through the real
//! [`PerceptionServer`] and rolls the results into a [`BenchReport`].

use crate::digest::{absorb_stream, format_digest, Fnv1a};
use crate::report::{
    BenchReport, BuildMeta, FleetPoint, LatencyStats, ShardPoint, SuiteReport, SCHEMA_VERSION,
};
use crate::suites::{
    apply_env_precision, plan, stream_specs, SuiteId, MODEL_SEED, SUITE_CLASSES, SUITE_GRID,
};
use ecofusion_core::model::InferError;
use ecofusion_core::{
    Dataset, DatasetSpec, EcoFusionModel, Frame, ModelSnapshot, TrainConfig, Trainer,
};
use ecofusion_energy::StageRollup;
use ecofusion_eval::experiments::common::Scale;
use ecofusion_runtime::{
    run_simulation_observed, LatencyHistogram, PerceptionServer, RuntimeConfig, StreamSpec,
    VehicleStream,
};
use ecofusion_tensor::backend::{self, BackendKind};
use ecofusion_tensor::rng::Rng;
use ecofusion_trace::TraceSink;
use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;

/// Default ring capacity of the flight recorder: the last few thousand
/// events per suite — enough to cover the decision trail of a quick-scale
/// run end to end, bounded enough to attach to a CI artifact.
pub const FLIGHT_RECORDER_EVENTS: usize = 4096;

/// Builds the serving model for every suite of a run.
///
/// Quick scale serves an *untrained* seeded model: weight initialization
/// is deterministic in [`MODEL_SEED`], construction is milliseconds, and
/// every regression-gate property (selection behavior, modeled costs,
/// detection determinism) is exercised just as it would be with trained
/// weights. Full scale pays for a `fast_demo` training run once and then
/// restores the snapshot per suite, so all suites serve identical
/// weights.
pub struct ModelProvider {
    snapshot: Option<ModelSnapshot>,
    label: String,
}

impl ModelProvider {
    /// Prepares the provider for `scale` (trains once at full scale).
    pub fn prepare(scale: Scale) -> ModelProvider {
        match scale {
            Scale::Quick => {
                ModelProvider { snapshot: None, label: format!("untrained({MODEL_SEED})") }
            }
            Scale::Full => {
                let dataset = Dataset::generate(&DatasetSpec::small(MODEL_SEED));
                let mut trainer = Trainer::new(TrainConfig::fast_demo(), MODEL_SEED);
                let mut model = trainer.train(&dataset).expect("training the suite model");
                ModelProvider {
                    snapshot: Some(model.snapshot()),
                    label: format!("fast_demo({MODEL_SEED})"),
                }
            }
        }
    }

    /// Model provenance string for the report metadata.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// A fresh model instance (servers consume their model by value).
    pub fn model(&self) -> EcoFusionModel {
        match &self.snapshot {
            Some(snap) => snap.restore().expect("snapshot restores"),
            None => EcoFusionModel::new(SUITE_GRID, SUITE_CLASSES, &mut Rng::new(MODEL_SEED)),
        }
    }
}

/// Runs every suite (or the `only` subset, by label) at `scale` on
/// `shards` runtime worker shards and assembles the full report.
///
/// Every deterministic report field is shard-invariant (the runtime's
/// core invariant), so reports taken at different shard counts diff
/// cleanly; only wall-clock fields and the per-shard breakdown change.
///
/// # Errors
/// Propagates [`InferError`] from the serving model.
pub fn run_report(scale: Scale, only: &[String], shards: usize) -> Result<BenchReport, InferError> {
    run_report_traced(scale, only, shards, None).map(|(report, _)| report)
}

/// [`run_report`] with an optional flight recorder: with
/// `trace_capacity` set, every suite runs with an enabled
/// [`TraceSink`] of that ring capacity and the per-suite sinks (suite
/// label, sink) are returned alongside the report for export. With
/// `None` the servers run without any tracer — the zero-overhead path
/// the perf gate's bit-identical baseline comparison relies on.
///
/// # Errors
/// Propagates [`InferError`] from the serving model.
pub fn run_report_traced(
    scale: Scale,
    only: &[String],
    shards: usize,
    trace_capacity: Option<usize>,
) -> Result<(BenchReport, Vec<(String, TraceSink)>), InferError> {
    let provider = ModelProvider::prepare(scale);
    let mut suites = Vec::new();
    let mut sinks = Vec::new();
    for id in SuiteId::ALL {
        if !only.is_empty() && !only.iter().any(|s| s == id.label()) {
            continue;
        }
        let (suite, sink) = run_suite_traced(&provider, id, scale, shards, trace_capacity)?;
        suites.push(suite);
        if let Some(sink) = sink {
            sinks.push((id.label().to_string(), sink));
        }
    }
    let report = BenchReport {
        schema: SCHEMA_VERSION,
        int8_speedup: None,
        compiled_speedup: None,
        build: BuildMeta {
            backend: match backend::backend_kind() {
                BackendKind::Reference => "reference".to_string(),
                BackendKind::Blocked => "blocked".to_string(),
            },
            git_rev: git_rev(),
            scale: match scale {
                Scale::Quick => "quick".to_string(),
                Scale::Full => "full".to_string(),
            },
            model: provider.label().to_string(),
            grid: SUITE_GRID,
            num_classes: SUITE_CLASSES,
            shards,
        },
        suites,
    };
    Ok((report, sinks))
}

/// Runs one suite end to end and aggregates its report.
///
/// # Errors
/// Propagates [`InferError`] from the serving model.
pub fn run_suite(
    provider: &ModelProvider,
    id: SuiteId,
    scale: Scale,
    shards: usize,
) -> Result<SuiteReport, InferError> {
    run_suite_traced(provider, id, scale, shards, None).map(|(report, _)| report)
}

/// [`run_suite`] with an optional tracer: with `trace_capacity` set, one
/// enabled [`TraceSink`] rides through every fleet sub-run of the suite
/// (installed on each server, taken back after its drive) and is
/// returned for export. Trace timestamps restart per sub-run — only
/// `fleet_scale` has more than one — and the ring keeps the most recent
/// events, the flight-recorder property.
///
/// # Errors
/// Propagates [`InferError`] from the serving model.
pub fn run_suite_traced(
    provider: &ModelProvider,
    id: SuiteId,
    scale: Scale,
    shards: usize,
    trace_capacity: Option<usize>,
) -> Result<(SuiteReport, Option<TraceSink>), InferError> {
    let plan = plan(id, scale);
    let mut agg = SuiteAccum::default();
    let mut sink = trace_capacity.map(TraceSink::with_capacity);
    for &fleet in &plan.fleets {
        let specs_faults = stream_specs(id, fleet, plan.ticks);
        // Patch the base options exactly once; server and streams must be
        // configured from the very same specs. The env-precision override
        // is applied to each spec's *own* options, so suites with
        // heterogeneous per-stream policies (mixed_policy) keep them.
        let specs: Vec<StreamSpec> = specs_faults
            .iter()
            .map(|(s, _)| StreamSpec { base_opts: apply_env_precision(s.base_opts), ..*s })
            .collect();
        let mut streams: Vec<VehicleStream> = specs
            .iter()
            .zip(&specs_faults)
            .map(|(spec, (_, schedule))| match schedule {
                Some(s) => VehicleStream::new(*spec).with_faults(s.clone()),
                None => VehicleStream::new(*spec),
            })
            .collect();
        let cfg = RuntimeConfig {
            max_batch: plan.max_batch,
            num_classes: SUITE_CLASSES,
            ..RuntimeConfig::default()
        }
        .with_shards(shards);
        let mut server = PerceptionServer::new(provider.model(), &specs, cfg);
        if let Some(s) = sink.take() {
            server.set_tracer(s);
        }
        let started = Instant::now();
        // The real runtime loop, observed only to record which contexts
        // the workload's scenes actually visited.
        let contexts = &mut agg.contexts;
        run_simulation_observed(&mut server, &mut streams, plan.ticks, |frame: &Frame| {
            contexts.insert(frame.scene.context.label());
        })?;
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;
        sink = server.take_tracer();
        agg.absorb(&server, specs.len(), wall_ms);
    }
    Ok((agg.into_report(id, &plan), sink))
}

/// Accumulates per-sub-run server state into suite-level aggregates.
#[derive(Default)]
struct SuiteAccum {
    contexts: BTreeSet<&'static str>,
    frames: u64,
    streams: usize,
    map_weighted: f64,
    loss_weighted: f64,
    platform_j: f64,
    gated_j: f64,
    stage_sums: Vec<f64>,
    hist: Option<LatencyHistogram>,
    stems_executed: u64,
    stems_cached: u64,
    stems_skipped: u64,
    cache_hits: u64,
    cache_misses: u64,
    dropped: u64,
    stalls: u64,
    escalations: u64,
    max_final_level: usize,
    degraded: u64,
    masked: u64,
    int8_frames: u64,
    gate_fallbacks: u64,
    histogram: BTreeMap<String, usize>,
    digest: Fnv1a,
    wall_ms: f64,
    fleet: Vec<FleetPoint>,
}

impl SuiteAccum {
    fn absorb(&mut self, server: &PerceptionServer, fleet_streams: usize, wall_ms: f64) {
        let report = server.report();
        let hist = self.hist.get_or_insert_with(LatencyHistogram::new);
        for s in &report.per_stream {
            self.map_weighted += s.summary.map_pct * s.summary.frames as f64;
            self.loss_weighted += s.summary.avg_loss * s.summary.frames as f64;
            self.dropped += s.dropped;
            self.stalls += s.stalls;
            self.escalations += s.escalations;
            self.max_final_level = self.max_final_level.max(s.final_level);
            self.degraded += s.degraded_frames;
            self.masked += s.masked_frames;
            self.int8_frames += s.int8_frames;
            self.gate_fallbacks += s.gate_fallbacks;
            for (label, count) in &s.summary.config_histogram {
                *self.histogram.entry(label.clone()).or_default() += count;
            }
        }
        for i in 0..server.num_streams() {
            let t = server.telemetry(i);
            hist.merge(t.latency_histogram());
            self.platform_j += t.platform_j();
            self.gated_j += t.total_gated_j();
            self.stems_executed += t.stems_executed();
            self.stems_cached += t.stems_cached();
            self.stems_skipped += t.stems_skipped();
            if self.stage_sums.is_empty() {
                self.stage_sums = vec![0.0; t.stage_energy_j().len()];
            }
            for (sum, j) in self.stage_sums.iter_mut().zip(t.stage_energy_j()) {
                *sum += j;
            }
            let cache = server.stem_cache(i);
            self.cache_hits += cache.hits();
            self.cache_misses += cache.misses();
            // Behavioral digest: stream separator, then per retained
            // frame the selected configuration and detection count.
            absorb_stream(&mut self.digest, server, i);
        }
        self.frames += report.frames;
        self.streams += fleet_streams;
        self.wall_ms += wall_ms;
        self.fleet.push(FleetPoint {
            streams: fleet_streams,
            frames: report.frames,
            avg_batch_size: report.avg_batch_size,
            throughput_fps: if wall_ms > 0.0 {
                report.frames as f64 / (wall_ms / 1e3)
            } else {
                0.0
            },
            wall_ms,
            shards: server.num_shards(),
            per_shard: report
                .shards
                .iter()
                .map(|s| ShardPoint {
                    shard: s.shard,
                    streams: s.streams,
                    frames: s.frames,
                    batches: s.batches,
                    steals: s.steals,
                    stolen_frames: s.stolen_frames,
                    busy_ms: s.busy_ms,
                })
                .collect(),
        });
    }

    fn into_report(self, id: SuiteId, plan: &crate::suites::SuitePlan) -> SuiteReport {
        let n = self.frames.max(1) as f64;
        let hist = self.hist.unwrap_or_default();
        let lookups = self.cache_hits + self.cache_misses;
        SuiteReport {
            suite: id.label().to_string(),
            seed: id.base_seed(),
            streams: self.streams,
            ticks: plan.ticks,
            frames: self.frames,
            map_pct: self.map_weighted / n,
            avg_loss: self.loss_weighted / n,
            total_platform_j: self.platform_j,
            total_gated_j: self.gated_j,
            stage_energy: StageRollup::from_sums(&self.stage_sums),
            latency: LatencyStats {
                mean_ms: hist.mean(),
                p50_ms: hist.percentile(50.0),
                p95_ms: hist.percentile(95.0),
                p99_ms: hist.percentile(99.0),
                max_ms: hist.max(),
            },
            stems_executed: self.stems_executed,
            stems_cached: self.stems_cached,
            stems_skipped: self.stems_skipped,
            stem_cache_hits: self.cache_hits,
            stem_cache_misses: self.cache_misses,
            cache_hit_rate: if lookups > 0 { self.cache_hits as f64 / lookups as f64 } else { 0.0 },
            throughput_fps: if self.wall_ms > 0.0 {
                self.frames as f64 / (self.wall_ms / 1e3)
            } else {
                0.0
            },
            wall_ms: self.wall_ms,
            dropped: self.dropped,
            stalls: self.stalls,
            escalations: self.escalations,
            max_final_level: self.max_final_level,
            degraded_frames: self.degraded,
            masked_frames: self.masked,
            int8_frames: self.int8_frames,
            gate_fallbacks: self.gate_fallbacks,
            contexts_visited: self.contexts.iter().map(|s| s.to_string()).collect(),
            config_histogram: self.histogram,
            determinism_digest: format_digest(&self.digest),
            // Single-fleet suites report the fleet table only when it
            // adds information (fleet_scale's scaling curve).
            fleet: if plan.fleets.len() > 1 { self.fleet } else { Vec::new() },
        }
    }
}

/// The current git revision (short), for report provenance. Falls back to
/// `GITHUB_SHA` (truncated) outside a git checkout, then to `unknown` —
/// provenance is metadata, never load-bearing for the gate.
fn git_rev() -> String {
    if let Ok(out) =
        std::process::Command::new("git").args(["rev-parse", "--short", "HEAD"]).output()
    {
        if out.status.success() {
            let rev = String::from_utf8_lossy(&out.stdout).trim().to_string();
            if !rev.is_empty() {
                return rev;
            }
        }
    }
    if let Ok(sha) = std::env::var("GITHUB_SHA") {
        if sha.len() >= 7 {
            return sha[..7].to_string();
        }
    }
    "unknown".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn git_rev_is_nonempty() {
        assert!(!git_rev().is_empty());
    }

    #[test]
    fn quick_provider_is_untrained_and_deterministic() {
        let p = ModelProvider::prepare(Scale::Quick);
        assert!(p.label().starts_with("untrained"));
        let a = p.model();
        let b = p.model();
        assert_eq!(a.grid(), SUITE_GRID);
        assert_eq!(a.grid(), b.grid());
    }
}
