//! The regression gate: diffs a fresh [`BenchReport`] against a committed
//! baseline under per-metric tolerances.
//!
//! Three classes of check, matching what each metric can promise:
//!
//! * **Determinism fields** (frames, stem counters, config histogram,
//!   selection digest, backpressure/budget counters, contexts) must be
//!   **bit-equal**: the suites are fully seeded, so *any* drift here is a
//!   behavior change that must be explained — either a bug or a
//!   deliberate change that warrants refreshing the baseline.
//! * **Accuracy** (mAP) may improve but not regress beyond
//!   [`Tolerances::map_drop_pct`].
//! * **Modeled energy / latency** may not grow beyond a fractional noise
//!   band ([`Tolerances::energy_growth_frac`] /
//!   [`Tolerances::latency_growth_frac`]). These are deterministic model
//!   outputs, but banding (instead of bit-equality) lets a deliberate
//!   cost-model recalibration land with a baseline refresh in the same PR
//!   while still catching silent cost growth.
//!
//! Wall-clock throughput is **never** gated against a committed baseline:
//! shared CI runners are not a stable measurement device. It is recorded
//! in the report artifact for trend analysis.

use crate::report::{BenchReport, SuiteReport};
use std::fmt;

/// Per-metric tolerances of the gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerances {
    /// Maximum allowed mAP regression, percentage points.
    pub map_drop_pct: f64,
    /// Maximum allowed fractional growth of total/per-stage energy.
    pub energy_growth_frac: f64,
    /// Maximum allowed fractional growth of latency mean/percentiles.
    pub latency_growth_frac: f64,
    /// Absolute floor added to every relative energy band, Joules. A
    /// purely relative band collapses to nothing on a zero baseline (any
    /// positive charge — even modeling dust — fails), so each band is
    /// `base * (1 + frac) + floor`.
    pub energy_floor_j: f64,
    /// Absolute floor added to every relative latency band, ms (one
    /// histogram bucket by default, the percentile resolution).
    pub latency_floor_ms: f64,
}

impl Default for Tolerances {
    /// The CI gate defaults: accuracy must not regress measurably
    /// (1e-6 percentage points absorbs only float-formatting dust), and
    /// energy/latency may not grow more than 2% plus a small absolute
    /// floor (so zero baselines stay gated but don't trip on dust).
    fn default() -> Self {
        Tolerances {
            map_drop_pct: 1e-6,
            energy_growth_frac: 0.02,
            latency_growth_frac: 0.02,
            energy_floor_j: 0.05,
            latency_floor_ms: 0.25,
        }
    }
}

/// One gate violation.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Suite the violation is in (empty for report-level mismatches).
    pub suite: String,
    /// Metric name.
    pub metric: String,
    /// What the gate observed, human-readable.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.suite.is_empty() {
            write!(f, "[report] {}: {}", self.metric, self.detail)
        } else {
            write!(f, "[{}] {}: {}", self.suite, self.metric, self.detail)
        }
    }
}

/// Diffs `fresh` against `baseline`; an empty result means the gate
/// passes.
pub fn compare(baseline: &BenchReport, fresh: &BenchReport, tol: &Tolerances) -> Vec<Violation> {
    let mut v = Vec::new();
    if baseline.schema != fresh.schema {
        v.push(Violation {
            suite: String::new(),
            metric: "schema".to_string(),
            detail: format!("baseline schema {} vs fresh {}", baseline.schema, fresh.schema),
        });
        return v;
    }
    if baseline.build.scale != fresh.build.scale {
        v.push(Violation {
            suite: String::new(),
            metric: "scale".to_string(),
            detail: format!(
                "baseline ran at `{}` scale, fresh at `{}` — refusing to compare",
                baseline.build.scale, fresh.build.scale
            ),
        });
        return v;
    }
    if baseline.build.backend != fresh.build.backend {
        v.push(Violation {
            suite: String::new(),
            metric: "backend".to_string(),
            detail: format!(
                "baseline backend `{}` vs fresh `{}`",
                baseline.build.backend, fresh.build.backend
            ),
        });
    }
    for base_suite in &baseline.suites {
        match fresh.suite(&base_suite.suite) {
            None => v.push(Violation {
                suite: base_suite.suite.clone(),
                metric: "presence".to_string(),
                detail: "suite present in baseline but missing from fresh report".to_string(),
            }),
            Some(fresh_suite) => compare_suite(base_suite, fresh_suite, tol, &mut v),
        }
    }
    // Symmetric direction: a suite the fresh report has but the baseline
    // lacks would otherwise run ungated forever (e.g. a newly added
    // suite whose author forgot to refresh the baseline).
    for fresh_suite in &fresh.suites {
        if baseline.suite(&fresh_suite.suite).is_none() {
            v.push(Violation {
                suite: fresh_suite.suite.clone(),
                metric: "presence".to_string(),
                detail: "suite present in fresh report but missing from baseline — refresh \
                         the baseline so the new suite is gated"
                    .to_string(),
            });
        }
    }
    v
}

fn compare_suite(
    base: &SuiteReport,
    fresh: &SuiteReport,
    tol: &Tolerances,
    out: &mut Vec<Violation>,
) {
    let mut strict = |metric: &str, equal: bool, detail: String| {
        if !equal {
            out.push(Violation {
                suite: base.suite.clone(),
                metric: format!("determinism.{metric}"),
                detail,
            });
        }
    };

    // Determinism fields: bit-equal, no band.
    strict("seed", base.seed == fresh.seed, format!("{} vs {}", base.seed, fresh.seed));
    strict("ticks", base.ticks == fresh.ticks, format!("{} vs {}", base.ticks, fresh.ticks));
    strict(
        "streams",
        base.streams == fresh.streams,
        format!("{} vs {}", base.streams, fresh.streams),
    );
    strict("frames", base.frames == fresh.frames, format!("{} vs {}", base.frames, fresh.frames));
    strict(
        "digest",
        base.determinism_digest == fresh.determinism_digest,
        format!("{} vs {}", base.determinism_digest, fresh.determinism_digest),
    );
    strict(
        "stems_executed",
        base.stems_executed == fresh.stems_executed,
        format!("{} vs {}", base.stems_executed, fresh.stems_executed),
    );
    strict(
        "stems_cached",
        base.stems_cached == fresh.stems_cached,
        format!("{} vs {}", base.stems_cached, fresh.stems_cached),
    );
    strict(
        "stems_skipped",
        base.stems_skipped == fresh.stems_skipped,
        format!("{} vs {}", base.stems_skipped, fresh.stems_skipped),
    );
    strict(
        "stem_cache_hits",
        base.stem_cache_hits == fresh.stem_cache_hits,
        format!("{} vs {}", base.stem_cache_hits, fresh.stem_cache_hits),
    );
    strict(
        "stem_cache_misses",
        base.stem_cache_misses == fresh.stem_cache_misses,
        format!("{} vs {}", base.stem_cache_misses, fresh.stem_cache_misses),
    );
    strict(
        "config_histogram",
        base.config_histogram == fresh.config_histogram,
        "selection histogram changed".to_string(),
    );
    strict(
        "contexts_visited",
        base.contexts_visited == fresh.contexts_visited,
        format!("{:?} vs {:?}", base.contexts_visited, fresh.contexts_visited),
    );
    strict(
        "dropped",
        base.dropped == fresh.dropped,
        format!("{} vs {}", base.dropped, fresh.dropped),
    );
    strict("stalls", base.stalls == fresh.stalls, format!("{} vs {}", base.stalls, fresh.stalls));
    strict(
        "escalations",
        base.escalations == fresh.escalations,
        format!("{} vs {}", base.escalations, fresh.escalations),
    );
    strict(
        "max_final_level",
        base.max_final_level == fresh.max_final_level,
        format!("{} vs {}", base.max_final_level, fresh.max_final_level),
    );
    strict(
        "degraded_frames",
        base.degraded_frames == fresh.degraded_frames,
        format!("{} vs {}", base.degraded_frames, fresh.degraded_frames),
    );
    strict(
        "masked_frames",
        base.masked_frames == fresh.masked_frames,
        format!("{} vs {}", base.masked_frames, fresh.masked_frames),
    );
    strict(
        "int8_frames",
        base.int8_frames == fresh.int8_frames,
        format!("{} vs {}", base.int8_frames, fresh.int8_frames),
    );
    strict(
        "gate_fallbacks",
        base.gate_fallbacks == fresh.gate_fallbacks,
        format!("{} vs {}", base.gate_fallbacks, fresh.gate_fallbacks),
    );

    // Accuracy: may not regress beyond the tolerance.
    if fresh.map_pct < base.map_pct - tol.map_drop_pct {
        out.push(Violation {
            suite: base.suite.clone(),
            metric: "accuracy.map_pct".to_string(),
            detail: format!(
                "regressed {:.4} → {:.4} (allowed drop {})",
                base.map_pct, fresh.map_pct, tol.map_drop_pct
            ),
        });
    }
    // Fusion loss is accuracy-bearing too, and catches box-coordinate
    // drift the count-only digest and a coarse mAP cannot see: it may
    // improve but not grow.
    if fresh.avg_loss > base.avg_loss + 1e-9 {
        out.push(Violation {
            suite: base.suite.clone(),
            metric: "accuracy.avg_loss".to_string(),
            detail: format!("grew {:.6} → {:.6}", base.avg_loss, fresh.avg_loss),
        });
    }

    // Energy / latency: may not grow beyond the noise band. The band is
    // relative *plus* an absolute floor: a zero baseline (a stage a suite
    // never exercises, an empty-histogram percentile) would otherwise
    // make the relative part vanish and fail on any positive dust — or,
    // with a NaN baseline, pass vacuously. The `!(<=)` form fails on NaN
    // on either side instead of silently waving it through.
    let mut banded = |metric: &str, base_v: f64, fresh_v: f64, frac: f64, floor: f64| {
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(fresh_v <= base_v * (1.0 + frac) + floor) {
            out.push(Violation {
                suite: base.suite.clone(),
                metric: metric.to_string(),
                detail: format!(
                    "grew {base_v:.6} → {fresh_v:.6} (band +{:.1}% + {floor})",
                    frac * 100.0
                ),
            });
        }
    };
    let (e_frac, e_floor) = (tol.energy_growth_frac, tol.energy_floor_j);
    let (l_frac, l_floor) = (tol.latency_growth_frac, tol.latency_floor_ms);
    banded("energy.total_gated_j", base.total_gated_j, fresh.total_gated_j, e_frac, e_floor);
    banded(
        "energy.total_platform_j",
        base.total_platform_j,
        fresh.total_platform_j,
        e_frac,
        e_floor,
    );
    for (stage, base_j) in &base.stage_energy.per_stage_j {
        let fresh_j = fresh.stage_energy.per_stage_j.get(stage).copied().unwrap_or(0.0);
        banded(&format!("energy.stage.{stage}"), *base_j, fresh_j, e_frac, e_floor);
    }
    // Mirror the suite-presence symmetry for stage keys: a stage the
    // fresh report charges but the baseline has never seen (renamed or
    // newly added StageKind) would otherwise run ungated while the old
    // key vacuously compares against 0. Banding against a 0.0 baseline
    // flags any charge above the absolute floor.
    for (stage, fresh_j) in &fresh.stage_energy.per_stage_j {
        if !base.stage_energy.per_stage_j.contains_key(stage) {
            banded(&format!("energy.stage.{stage}"), 0.0, *fresh_j, e_frac, e_floor);
        }
    }

    // Latency: mean and tail, banded.
    banded("latency.mean_ms", base.latency.mean_ms, fresh.latency.mean_ms, l_frac, l_floor);
    banded("latency.p50_ms", base.latency.p50_ms, fresh.latency.p50_ms, l_frac, l_floor);
    banded("latency.p95_ms", base.latency.p95_ms, fresh.latency.p95_ms, l_frac, l_floor);
    banded("latency.p99_ms", base.latency.p99_ms, fresh.latency.p99_ms, l_frac, l_floor);
    banded("latency.max_ms", base.latency.max_ms, fresh.latency.max_ms, l_frac, l_floor);

    // throughput_fps / wall_ms: intentionally not gated (host-dependent).
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{BuildMeta, SCHEMA_VERSION};
    use ecofusion_energy::StageRollup;
    use std::collections::BTreeMap;

    fn report() -> BenchReport {
        BenchReport {
            schema: SCHEMA_VERSION,
            build: BuildMeta {
                backend: "blocked".to_string(),
                git_rev: "abc".to_string(),
                scale: "quick".to_string(),
                model: "untrained(1)".to_string(),
                grid: 32,
                num_classes: 8,
                shards: 1,
            },
            suites: vec![SuiteReport {
                suite: "steady_city".to_string(),
                seed: 101,
                streams: 1,
                ticks: 64,
                frames: 64,
                map_pct: 10.0,
                avg_loss: 2.0,
                total_platform_j: 100.0,
                total_gated_j: 110.0,
                stage_energy: StageRollup::from_sums(&[10.0, 20.0, 1.0, 0.0, 75.0, 4.0, 0.0]),
                latency: crate::report::LatencyStats {
                    mean_ms: 50.0,
                    p50_ms: 50.25,
                    p95_ms: 60.25,
                    p99_ms: 66.25,
                    max_ms: 66.1,
                },
                stems_executed: 100,
                stems_cached: 10,
                stems_skipped: 50,
                stem_cache_hits: 10,
                stem_cache_misses: 100,
                cache_hit_rate: 10.0 / 110.0,
                throughput_fps: 200.0,
                wall_ms: 320.0,
                dropped: 0,
                stalls: 0,
                escalations: 0,
                max_final_level: 0,
                degraded_frames: 0,
                masked_frames: 0,
                int8_frames: 0,
                gate_fallbacks: 0,
                contexts_visited: vec!["City".to_string()],
                config_histogram: BTreeMap::new(),
                determinism_digest: "00000000000000aa".to_string(),
                fleet: Vec::new(),
            }],
            int8_speedup: None,
            compiled_speedup: None,
        }
    }

    #[test]
    fn identical_reports_pass() {
        let r = report();
        assert!(compare(&r, &r, &Tolerances::default()).is_empty());
    }

    #[test]
    fn throughput_changes_never_gate() {
        let base = report();
        let mut fresh = report();
        fresh.suites[0].throughput_fps = 1.0;
        fresh.suites[0].wall_ms = 1e6;
        assert!(compare(&base, &fresh, &Tolerances::default()).is_empty());
    }

    #[test]
    fn map_regression_fails_but_improvement_passes() {
        let base = report();
        let mut worse = report();
        worse.suites[0].map_pct = 9.0;
        let violations = compare(&base, &worse, &Tolerances::default());
        assert!(violations.iter().any(|v| v.metric == "accuracy.map_pct"), "{violations:?}");
        let mut better = report();
        better.suites[0].map_pct = 11.0;
        assert!(compare(&base, &better, &Tolerances::default()).is_empty());
    }

    #[test]
    fn hand_edited_baseline_map_fails_the_gate() {
        // The acceptance-criteria scenario: someone edits the committed
        // baseline's mAP upward; the fresh (honest) report must fail.
        let mut baseline = report();
        baseline.suites[0].map_pct += 5.0;
        let fresh = report();
        let violations = compare(&baseline, &fresh, &Tolerances::default());
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].metric, "accuracy.map_pct");
    }

    #[test]
    fn energy_growth_beyond_band_fails() {
        let base = report();
        let mut fresh = report();
        fresh.suites[0].total_gated_j *= 1.05;
        let violations = compare(&base, &fresh, &Tolerances::default());
        assert!(violations.iter().any(|v| v.metric == "energy.total_gated_j"));
        // Inside the band: passes.
        let mut ok = report();
        ok.suites[0].total_gated_j *= 1.01;
        assert!(compare(&base, &ok, &Tolerances::default()).is_empty());
    }

    #[test]
    fn latency_tail_growth_fails() {
        let base = report();
        let mut fresh = report();
        fresh.suites[0].latency.p99_ms *= 1.10;
        assert!(compare(&base, &fresh, &Tolerances::default())
            .iter()
            .any(|v| v.metric == "latency.p99_ms"));
    }

    #[test]
    fn digest_drift_is_strict() {
        let base = report();
        let mut fresh = report();
        fresh.suites[0].determinism_digest = "00000000000000ab".to_string();
        assert!(compare(&base, &fresh, &Tolerances::default())
            .iter()
            .any(|v| v.metric == "determinism.digest"));
    }

    #[test]
    fn missing_suite_and_scale_mismatch_fail() {
        let base = report();
        let mut fresh = report();
        fresh.suites.clear();
        assert!(compare(&base, &fresh, &Tolerances::default())
            .iter()
            .any(|v| v.metric == "presence"));
        let mut full = report();
        full.build.scale = "full".to_string();
        assert!(compare(&base, &full, &Tolerances::default()).iter().any(|v| v.metric == "scale"));
    }

    #[test]
    fn ungated_new_suite_fails_in_both_directions() {
        // A suite only the fresh report has must also be a violation —
        // otherwise a newly added suite runs ungated until someone
        // remembers to refresh the baseline.
        let mut base = report();
        base.suites.clear();
        let fresh = report();
        let violations = compare(&base, &fresh, &Tolerances::default());
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].metric, "presence");
        assert_eq!(violations[0].suite, "steady_city");
    }

    #[test]
    fn fresh_only_stage_key_is_gated() {
        // A renamed StageKind moves charge to a key the baseline lacks;
        // the old key compares vacuously against 0, so the new key must
        // fail on its own.
        let base = report();
        let mut fresh = report();
        let j = fresh.suites[0].stage_energy.per_stage_j.remove("branch").unwrap();
        fresh.suites[0].stage_energy.per_stage_j.insert("branch_v2".to_string(), j);
        let violations = compare(&base, &fresh, &Tolerances::default());
        assert!(violations.iter().any(|v| v.metric == "energy.stage.branch_v2"), "{violations:?}");
    }

    #[test]
    fn zero_baseline_band_has_absolute_floor() {
        // The "select" stage carries 0.0 J in the fixture. A purely
        // relative band around a zero baseline is `fresh > 0 + ε`, which
        // fails on modeling dust — the absolute floor absorbs it.
        let base = report();
        let mut dust = report();
        dust.suites[0].stage_energy.per_stage_j.insert("select".to_string(), 0.01);
        assert!(
            compare(&base, &dust, &Tolerances::default()).is_empty(),
            "charge under the floor must pass on a zero baseline"
        );
        // Real growth past the floor still fails.
        let mut grown = report();
        grown.suites[0].stage_energy.per_stage_j.insert("select".to_string(), 0.06);
        assert!(compare(&base, &grown, &Tolerances::default())
            .iter()
            .any(|v| v.metric == "energy.stage.select"));
        // Same shape for a zero-latency baseline (an empty histogram).
        let mut zero_lat = report();
        zero_lat.suites[0].latency = crate::report::LatencyStats {
            mean_ms: 0.0,
            p50_ms: 0.0,
            p95_ms: 0.0,
            p99_ms: 0.0,
            max_ms: 0.0,
        };
        let mut bucket = zero_lat.clone();
        bucket.suites[0].latency.p99_ms = 0.2;
        assert!(
            compare(&zero_lat, &bucket, &Tolerances::default()).is_empty(),
            "sub-bucket latency on a zero baseline must pass"
        );
        let mut tail = zero_lat.clone();
        tail.suites[0].latency.p99_ms = 5.0;
        assert!(compare(&zero_lat, &tail, &Tolerances::default())
            .iter()
            .any(|v| v.metric == "latency.p99_ms"));
    }

    #[test]
    fn nan_metrics_never_pass_vacuously() {
        // `fresh > band` is false when either side is NaN, which used to
        // wave a poisoned metric through; the NaN-safe form must flag it.
        let base = report();
        let mut fresh = report();
        fresh.suites[0].latency.p99_ms = f64::NAN;
        assert!(compare(&base, &fresh, &Tolerances::default())
            .iter()
            .any(|v| v.metric == "latency.p99_ms"));
        let mut nan_base = report();
        nan_base.suites[0].total_gated_j = f64::NAN;
        assert!(compare(&nan_base, &report(), &Tolerances::default())
            .iter()
            .any(|v| v.metric == "energy.total_gated_j"));
    }

    #[test]
    fn counter_fields_are_strict() {
        let base = report();
        let mut fresh = report();
        fresh.suites[0].int8_frames = 3;
        assert!(compare(&base, &fresh, &Tolerances::default())
            .iter()
            .any(|v| v.metric == "determinism.int8_frames"));
        let mut fb = report();
        fb.suites[0].gate_fallbacks = 1;
        assert!(compare(&base, &fb, &Tolerances::default())
            .iter()
            .any(|v| v.metric == "determinism.gate_fallbacks"));
    }

    #[test]
    fn loss_growth_fails_but_improvement_passes() {
        let base = report();
        let mut worse = report();
        worse.suites[0].avg_loss += 0.1;
        assert!(compare(&base, &worse, &Tolerances::default())
            .iter()
            .any(|v| v.metric == "accuracy.avg_loss"));
        let mut better = report();
        better.suites[0].avg_loss -= 0.1;
        assert!(compare(&base, &better, &Tolerances::default()).is_empty());
    }
}
