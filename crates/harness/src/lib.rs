//! Deterministic workload-suite harness and regression gate.
//!
//! EcoFusion's whole claim is a quantified trade-off curve — energy,
//! latency, and mAP per gating strategy (Eq. 11, Table 2). This crate
//! turns that curve into an *enforced invariant*: named, fully seeded
//! workload suites run end to end through the real
//! [`PerceptionServer`](ecofusion_runtime::PerceptionServer), emit one
//! machine-readable [`BenchReport`] per run, and a compare mode diffs a
//! fresh report against a committed baseline under per-metric tolerances
//! so CI fails when behavior drifts or costs grow.
//!
//! ```text
//!  SuiteId::ALL ──▶ plan(scale) ──▶ stream_specs() + FaultSchedule
//!        │                               │
//!        │                               ▼
//!        │                   PerceptionServer (real runtime:
//!        │                   queues, batching, budget ladder,
//!        │                   health gating, stem caches)
//!        │                               │
//!        ▼                               ▼
//!  run_report() ◀── SuiteAccum ◀── StreamTelemetry / RuntimeReport
//!        │          (mAP, StageRollup, LatencyHistogram
//!        │           percentiles, stem & cache counters,
//!        ▼           FNV-1a selection digest)
//!  BenchReport JSON ──▶ compare(baseline, fresh, Tolerances)
//!                           │
//!                           ▼
//!              Vec<Violation> (empty = gate passes)
//! ```
//!
//! ## The seven suites
//!
//! | suite | exercises |
//! |---|---|
//! | `steady_city`      | steady-state serving, one City stream |
//! | `context_churn`    | drift walk across the whole RADIATE context mix |
//! | `fault_storm`      | scripted dropout/frozen/drift/noise faults with health gating |
//! | `budget_squeeze`   | budget ladder driven to the emergency rung |
//! | `fleet_scale`      | 1/4/16/64/256-stream fleets, cross-stream batching |
//! | `queue_saturation` | stall-policy producers over-producing into short queues |
//! | `mixed_policy`     | heterogeneous per-stream gates in one batch group |
//!
//! Beyond the hand-written suites, the [`scenario`] module defines
//! serializable adversarial scenarios, their coverage signatures, and
//! the distilled record–replay suites the `ecofusion-search` crate
//! discovers; committed distilled suites under `suites/distilled/` are
//! replayed by CI exactly like the table above.
//!
//! ## Determinism contract
//!
//! Every suite is a pure function of its definition: stream seeds, drift
//! walks, sensor noise, fault schedules, and the model weights are all
//! seeded. The report splits metrics into deterministic fields (gated
//! strictly or with explicit bands) and host-dependent wall-clock fields
//! (recorded, never gated) — see [`compare`] for the exact rules.
//!
//! Run it via the `bench_report` binary:
//!
//! ```text
//! cargo run --release -p ecofusion-bench --bin bench_report -- --quick
//! cargo run --release -p ecofusion-bench --bin bench_report -- compare
//! ```

pub mod compare;
pub mod digest;
pub mod report;
pub mod run;
pub mod scenario;
pub mod suites;

pub use compare::{compare, Tolerances, Violation};
pub use report::{
    BenchReport, BuildMeta, CompiledSpeedup, FleetPoint, Int8Speedup, LatencyStats, ShardPoint,
    SuiteReport, SCHEMA_VERSION,
};
pub use run::{
    run_report, run_report_traced, run_suite, run_suite_traced, ModelProvider,
    FLIGHT_RECORDER_EVENTS,
};
pub use scenario::{
    load_distilled_dir, replay_distilled, run_scenario, CoverageSignature, DistilledProvenance,
    DistilledSuite, ReplayDrift, Scenario, ScenarioCounters, ScenarioOutcome, ScenarioSize,
    ScenarioStream, DEFAULT_DISTILLED_DIR, DISTILLED_SCHEMA_VERSION,
};
pub use suites::{
    apply_env_precision, base_options, plan, stream_specs, SuiteId, SuitePlan, MODEL_SEED,
    SUITE_CLASSES, SUITE_GRID,
};

/// Default location of the committed baseline the CI perf gate compares
/// against.
pub const DEFAULT_BASELINE_PATH: &str = "baselines/bench_baseline.json";
