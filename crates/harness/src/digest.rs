//! The behavioral digest shared by the suite harness and the scenario
//! replayer.
//!
//! One FNV-1a-64 hash covers, per stream: a `0xFF` separator, the
//! retained frame count, then per frame the selected configuration index
//! and detection count. Two runs with equal digests made the same
//! selection sequence and produced the same detection counts — the
//! bit-level determinism property both the perf gate and the distilled
//! scenario suites assert.

use ecofusion_runtime::PerceptionServer;

/// FNV-1a 64-bit running hash.
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl Fnv1a {
    /// Mixes one byte.
    pub fn byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    /// Mixes a `u64` (little-endian bytes).
    pub fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Mixes `stream`'s behavioral record (selection sequence + detection
/// counts from its telemetry) into `digest` — the per-stream scheme both
/// [`crate::run`] and [`crate::scenario`] share, kept in one place so
/// they can never drift apart.
pub fn absorb_stream(digest: &mut Fnv1a, server: &PerceptionServer, stream: usize) {
    let t = server.telemetry(stream);
    digest.byte(0xFF);
    digest.u64(t.frames());
    for (config, dets) in t.selected_configs().iter().zip(t.detections()) {
        digest.u64(config.0 as u64);
        digest.u64(dets.len() as u64);
    }
}

/// Formats a finished digest the way reports store it.
pub fn format_digest(digest: &Fnv1a) -> String {
    format!("{:016x}", digest.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vector() {
        // FNV-1a("a") = 0xaf63dc4c8601ec8c.
        let mut h = Fnv1a::default();
        h.byte(b'a');
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn u64_mixes_le_bytes() {
        let mut a = Fnv1a::default();
        a.u64(0x0102_0304_0506_0708);
        let mut b = Fnv1a::default();
        for byte in [0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01] {
            b.byte(byte);
        }
        assert_eq!(a.finish(), b.finish());
    }
}
