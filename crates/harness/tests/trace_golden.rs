//! Golden-trace determinism: a seeded suite run emits a bit-identical
//! event sequence across reruns and across shard counts, and arming the
//! tracer never perturbs the gated report fields.
//!
//! Stream-track events replay the global pick order (the runtime sorts
//! accounting rows by pick index), so they are shard-invariant by
//! construction; `steady_city` additionally clamps to one shard (one
//! stream), making the *whole* event vector — shard and scheduler tracks
//! included — identical between `--shards 1` and `--shards 4`.

use ecofusion_energy::StageKind;
use ecofusion_eval::experiments::common::Scale;
use ecofusion_harness::{run_suite, run_suite_traced, ModelProvider, SuiteId};
use ecofusion_trace::{EventKind, TraceSink, Track};

const CAPACITY: usize = 1 << 16;

fn traced_steady_city(
    provider: &ModelProvider,
    shards: usize,
) -> (ecofusion_harness::SuiteReport, TraceSink) {
    let (report, sink) =
        run_suite_traced(provider, SuiteId::SteadyCity, Scale::Quick, shards, Some(CAPACITY))
            .expect("traced steady_city run");
    (report, sink.expect("traced run returns its sink"))
}

#[test]
fn steady_city_trace_is_bit_identical_across_reruns_and_shard_counts() {
    let provider = ModelProvider::prepare(Scale::Quick);
    let (report1, sink1) = traced_steady_city(&provider, 1);
    let (report1b, sink1b) = traced_steady_city(&provider, 1);
    let (report4, sink4) = traced_steady_city(&provider, 4);

    assert_eq!(sink1.dropped(), 0, "capacity must cover a quick run");
    assert!(!sink1.is_empty(), "traced run must record events");

    // Rerun: the full event sequence (seq, track, t_ns, name, kind, args)
    // is bit-identical.
    assert_eq!(sink1.snapshot(), sink1b.snapshot(), "rerun trace differs");
    assert_eq!(sink1.metrics(), sink1b.metrics(), "rerun metrics differ");

    // Shard counts 1 vs 4: same event sequence and same report digest.
    assert_eq!(sink1.snapshot(), sink4.snapshot(), "shard-count trace differs");
    assert_eq!(sink1.metrics(), sink4.metrics(), "shard-count metrics differ");
    assert_eq!(report1.determinism_digest, report1b.determinism_digest);
    assert_eq!(report1.determinism_digest, report4.determinism_digest);
}

#[test]
fn steady_city_trace_covers_every_stage_of_every_frame() {
    let provider = ModelProvider::prepare(Scale::Quick);
    let (report, sink) = traced_steady_city(&provider, 1);
    assert!(report.frames > 0);
    let begins = |name: &str| {
        sink.events()
            .filter(|e| {
                e.kind == EventKind::Begin && e.name == name && matches!(e.track, Track::Stream(_))
            })
            .count() as u64
    };
    assert_eq!(begins("frame"), report.frames, "one frame span per frame");
    for stage in StageKind::ALL {
        assert_eq!(begins(stage.label()), report.frames, "one `{}` span per frame", stage.label());
    }
    // Scheduler track records one step marker per processed tick.
    let steps =
        sink.events().filter(|e| e.track == Track::Scheduler && e.name == "step").count() as u64;
    assert!(steps > 0, "scheduler track must carry step markers");
}

#[test]
fn arming_the_tracer_changes_no_gated_report_field() {
    let provider = ModelProvider::prepare(Scale::Quick);
    let untraced = run_suite(&provider, SuiteId::SteadyCity, Scale::Quick, 1)
        .expect("untraced steady_city run");
    let (traced, _) = traced_steady_city(&provider, 1);
    assert_eq!(untraced.determinism_digest, traced.determinism_digest);
    assert_eq!(untraced.frames, traced.frames);
    assert_eq!(untraced.map_pct, traced.map_pct);
    assert_eq!(untraced.total_gated_j, traced.total_gated_j);
    assert_eq!(untraced.stems_executed, traced.stems_executed);
    assert_eq!(untraced.cache_hit_rate, traced.cache_hit_rate);
    assert_eq!(untraced.latency.p50_ms, traced.latency.p50_ms);
    assert_eq!(untraced.latency.p99_ms, traced.latency.p99_ms);
}
