//! End-to-end regression-gate properties: a seeded suite re-run is
//! report-identical (even across shard counts), and a hand-edited
//! baseline trips the gate.

use ecofusion_eval::experiments::common::Scale;
use ecofusion_harness::{compare, run_suite, ModelProvider, SuiteId, Tolerances};

#[test]
fn steady_city_quick_rerun_is_report_identical() {
    let provider = ModelProvider::prepare(Scale::Quick);
    // The re-run uses a different shard count on purpose: every
    // deterministic report field must be shard-invariant, so the gate
    // certifies 1-shard vs 2-shard identity exactly as CI's shard matrix
    // does.
    let a = run_suite(&provider, SuiteId::SteadyCity, Scale::Quick, 1).expect("first run");
    let b = run_suite(&provider, SuiteId::SteadyCity, Scale::Quick, 2).expect("second run");

    // Every deterministic field is bit-equal across the re-run...
    assert_eq!(a.frames, b.frames);
    assert_eq!(a.determinism_digest, b.determinism_digest);
    assert_eq!(a.map_pct.to_bits(), b.map_pct.to_bits());
    assert_eq!(a.avg_loss.to_bits(), b.avg_loss.to_bits());
    assert_eq!(a.total_platform_j.to_bits(), b.total_platform_j.to_bits());
    assert_eq!(a.total_gated_j.to_bits(), b.total_gated_j.to_bits());
    assert_eq!(a.stage_energy, b.stage_energy);
    assert_eq!(a.latency.mean_ms.to_bits(), b.latency.mean_ms.to_bits());
    assert_eq!(a.latency.p50_ms.to_bits(), b.latency.p50_ms.to_bits());
    assert_eq!(a.latency.p95_ms.to_bits(), b.latency.p95_ms.to_bits());
    assert_eq!(a.latency.p99_ms.to_bits(), b.latency.p99_ms.to_bits());
    assert_eq!(
        (a.stems_executed, a.stems_cached, a.stems_skipped),
        (b.stems_executed, b.stems_cached, b.stems_skipped)
    );
    assert_eq!(a.config_histogram, b.config_histogram);
    assert_eq!(a.contexts_visited, b.contexts_visited);

    // ...which is exactly what compare() certifies: wrap the suites in
    // reports and gate the re-run against the first run. Only the
    // wall-clock fields may differ, and those are not gated.
    let wrap = |suite| ecofusion_harness::BenchReport {
        schema: ecofusion_harness::SCHEMA_VERSION,
        build: ecofusion_harness::BuildMeta {
            backend: "blocked".to_string(),
            git_rev: "test".to_string(),
            scale: "quick".to_string(),
            model: provider.label().to_string(),
            grid: ecofusion_harness::SUITE_GRID,
            num_classes: ecofusion_harness::SUITE_CLASSES,
            shards: 1,
        },
        suites: vec![suite],
        int8_speedup: None,
        compiled_speedup: None,
    };
    let (base, fresh) = (wrap(a), wrap(b));
    let violations = compare(&base, &fresh, &Tolerances::default());
    assert!(violations.is_empty(), "seeded re-run tripped the gate: {violations:?}");

    // And the JSON round trip through the report file format is
    // lossless, so a committed baseline carries the same bits.
    let back = ecofusion_harness::BenchReport::from_json(&base.to_json()).expect("parses");
    assert_eq!(back, base);
}

#[test]
fn hand_edited_baseline_map_fails_the_gate() {
    let provider = ModelProvider::prepare(Scale::Quick);
    let suite = run_suite(&provider, SuiteId::SteadyCity, Scale::Quick, 1).expect("run");
    let report = ecofusion_harness::BenchReport {
        schema: ecofusion_harness::SCHEMA_VERSION,
        build: ecofusion_harness::BuildMeta {
            backend: "blocked".to_string(),
            git_rev: "test".to_string(),
            scale: "quick".to_string(),
            model: provider.label().to_string(),
            grid: ecofusion_harness::SUITE_GRID,
            num_classes: ecofusion_harness::SUITE_CLASSES,
            shards: 1,
        },
        suites: vec![suite],
        int8_speedup: None,
        compiled_speedup: None,
    };
    // Simulate a baseline whose mAP was edited upward by hand: the
    // honest fresh run must fail the accuracy gate with exactly that
    // violation.
    let mut tampered = report.clone();
    tampered.suites[0].map_pct += 5.0;
    let violations = compare(&tampered, &report, &Tolerances::default());
    assert_eq!(violations.len(), 1, "{violations:?}");
    assert_eq!(violations[0].metric, "accuracy.map_pct");
    assert_eq!(violations[0].suite, "steady_city");

    // The honest direction still passes.
    assert!(compare(&report, &report, &Tolerances::default()).is_empty());
}

#[test]
fn budget_squeeze_reaches_the_emergency_rung() {
    let provider = ModelProvider::prepare(Scale::Quick);
    let suite = run_suite(&provider, SuiteId::BudgetSqueeze, Scale::Quick, 1).expect("run");
    // The ladder for the paper-default base options has 5 rungs; the
    // squeeze must end pinned at the last (int8 knowledge-gate emergency)
    // one, and the frames served there are counted as quantized.
    assert_eq!(suite.max_final_level, 4, "budget squeeze never hit the int8 emergency rung");
    assert!(suite.escalations >= 4);
    assert!(suite.int8_frames > 0, "emergency rung must serve quantized frames");
}

#[test]
fn context_churn_visits_every_radiate_context() {
    let provider = ModelProvider::prepare(Scale::Quick);
    let suite = run_suite(&provider, SuiteId::ContextChurn, Scale::Quick, 2).expect("run");
    assert_eq!(
        suite.contexts_visited.len(),
        ecofusion_scene::Context::ALL.len(),
        "drift walk missed contexts: {:?}",
        suite.contexts_visited
    );
}
