//! Sensor observation models for the EcoFusion reproduction.
//!
//! The RADIATE vehicle carries a ZED stereo camera (left + right), a
//! Velodyne HDL-32e lidar, and a Navtech CTS350-X radar. This crate renders
//! a [`ecofusion_scene::Scene`] into one observation grid per sensor with
//! the degradation physics that drive the paper's results:
//!
//! | Sensor | Strength | Weakness |
//! |---|---|---|
//! | Camera | high contrast, fine detail in daylight | fog/rain/snow attenuation, blind at night, rain streaks |
//! | Lidar  | precise geometry, works at night | heavy attenuation + speckle in fog/snow |
//! | Radar  | weather-proof, long range | coarse angular resolution, clutter ghosts, weak pedestrian returns |
//!
//! All sensors share one bird's-eye grid geometry (a deliberate
//! simplification over perspective camera geometry — the fusion problem is
//! unchanged, and it lets early fusion concatenate grids directly, exactly
//! like the paper's channel-stacked inputs).
//!
//! # Example
//!
//! ```
//! use ecofusion_scene::{Context, ScenarioGenerator};
//! use ecofusion_sensors::{SensorKind, SensorSuite};
//! use ecofusion_tensor::rng::Rng;
//!
//! let mut gen = ScenarioGenerator::new(3);
//! let scene = gen.scene(Context::Fog);
//! let suite = SensorSuite::new(32);
//! let obs = suite.observe(&scene, &mut Rng::new(1));
//! assert_eq!(obs.grid(SensorKind::Radar).shape(), &[1, 1, 32, 32]);
//! ```

pub mod camera;
pub mod grid;
pub mod kind;
pub mod lidar;
pub mod mask;
pub mod radar;
pub mod suite;

pub use camera::CameraModel;
pub use kind::{CameraSide, SensorKind};
pub use lidar::LidarModel;
pub use mask::SensorMask;
pub use radar::RadarModel;
pub use suite::{Observation, SensorSuite};

use ecofusion_scene::Scene;
use ecofusion_tensor::rng::Rng;
use ecofusion_tensor::tensor::Tensor;

/// A sensor that renders a scene into a `(1, 1, grid, grid)` observation.
pub trait SensorModel {
    /// Which physical sensor this is.
    fn kind(&self) -> SensorKind;

    /// Renders `scene` into an observation grid using `rng` for noise.
    fn render(&self, scene: &Scene, grid: usize, rng: &mut Rng) -> Tensor;
}
