//! ZED stereo camera model.

use crate::grid;
use crate::kind::{CameraSide, SensorKind};
use crate::SensorModel;
use ecofusion_scene::Scene;
use ecofusion_tensor::rng::Rng;
use ecofusion_tensor::tensor::Tensor;

/// Optical camera observation model.
///
/// Signal strength scales with ambient illumination and decays with range
/// through scattering media (fog, rain, snow). Precipitation adds streak
/// artefacts; darkness adds shot noise.
///
/// The left camera is modelled slightly noisier than the right (lower
/// signal gain, more noise). RADIATE's left camera stream is empirically
/// worse — the paper measures 74.5 vs 79.0 mAP (Table 1) — and this
/// asymmetry reproduces that ordering.
#[derive(Debug, Clone, Copy)]
pub struct CameraModel {
    side: CameraSide,
}

impl CameraModel {
    /// Creates the camera for the given stereo side.
    pub fn new(side: CameraSide) -> Self {
        CameraModel { side }
    }

    /// Which side this camera sits on.
    pub fn side(&self) -> CameraSide {
        self.side
    }

    /// Per-side signal gain.
    fn gain(&self) -> f32 {
        match self.side {
            CameraSide::Left => 0.78,
            CameraSide::Right => 1.0,
        }
    }

    /// Per-side noise multiplier.
    fn noise_mul(&self) -> f32 {
        match self.side {
            CameraSide::Left => 1.7,
            CameraSide::Right => 1.0,
        }
    }
}

impl SensorModel for CameraModel {
    fn kind(&self) -> SensorKind {
        match self.side {
            CameraSide::Left => SensorKind::CameraLeft,
            CameraSide::Right => SensorKind::CameraRight,
        }
    }

    fn render(&self, scene: &Scene, grid_size: usize, rng: &mut Rng) -> Tensor {
        let profile = scene.context.profile();
        let mut t = grid::empty_grid(grid_size);
        let boxes = scene.ground_truth_boxes(grid_size);
        let occ = grid::occlusion_factors(scene, 0.35);
        for (obj, (b, occ_f)) in scene.objects.iter().zip(boxes.iter().zip(&occ)) {
            // Atmospheric attenuation: visibility^(range / 15 m).
            let atten = (profile.visibility as f32).powf((obj.y as f32 / 15.0).max(0.0));
            let intensity = obj.class.optical_contrast() as f32
                * profile.illumination as f32
                * atten
                * occ_f
                * self.gain();
            grid::splat_box(&mut t, b, intensity, 0.15, rng);
        }
        // Rain/snow streaks.
        let streaks = (profile.precipitation * 12.0) as usize;
        grid::add_vertical_streaks(&mut t, streaks, 0.3, rng);
        // Sensor noise grows in darkness and precipitation.
        let sigma = (0.04
            + 0.08 * profile.precipitation as f32
            + 0.06 * (1.0 - profile.illumination as f32))
            * self.noise_mul();
        grid::add_gaussian_noise(&mut t, sigma, rng);
        grid::clamp(&mut t, 1.5);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecofusion_scene::{Context, ObjectClass, SceneObject};

    fn one_car_scene(ctx: Context) -> Scene {
        let mut s = Scene::empty(ctx, 0);
        s.objects.push(SceneObject::new(ObjectClass::Car, 0.0, 12.0));
        s
    }

    /// Mean intensity inside the object box minus mean outside: a crude SNR.
    fn contrast(t: &Tensor, scene: &Scene, grid: usize) -> f32 {
        let b = scene.ground_truth_boxes(grid)[0];
        let mut inside = 0.0;
        let mut n_in = 0;
        let mut outside = 0.0;
        let mut n_out = 0;
        for y in 0..grid {
            for x in 0..grid {
                let v = t.get4(0, 0, y, x);
                let in_box = (x as f32) >= b.x1
                    && (x as f32) < b.x2
                    && (y as f32) >= b.y1
                    && (y as f32) < b.y2;
                if in_box {
                    inside += v;
                    n_in += 1;
                } else {
                    outside += v;
                    n_out += 1;
                }
            }
        }
        inside / n_in.max(1) as f32 - outside / n_out.max(1) as f32
    }

    #[test]
    fn clear_day_high_contrast() {
        let cam = CameraModel::new(CameraSide::Right);
        let scene = one_car_scene(Context::City);
        let t = cam.render(&scene, 64, &mut Rng::new(1));
        assert!(contrast(&t, &scene, 64) > 0.4, "city contrast too low");
    }

    #[test]
    fn night_kills_camera_contrast() {
        let cam = CameraModel::new(CameraSide::Right);
        let city = one_car_scene(Context::City);
        let night = one_car_scene(Context::Night);
        let tc = cam.render(&city, 64, &mut Rng::new(2));
        let tn = cam.render(&night, 64, &mut Rng::new(2));
        assert!(
            contrast(&tc, &city, 64) > 3.0 * contrast(&tn, &night, 64),
            "night should slash camera contrast"
        );
    }

    #[test]
    fn fog_attenuates_far_objects_more() {
        let cam = CameraModel::new(CameraSide::Right);
        let mut near = Scene::empty(Context::Fog, 0);
        near.objects.push(SceneObject::new(ObjectClass::Car, 0.0, 6.0));
        let mut far = Scene::empty(Context::Fog, 1);
        far.objects.push(SceneObject::new(ObjectClass::Car, 0.0, 34.0));
        let tn = cam.render(&near, 64, &mut Rng::new(3));
        let tf = cam.render(&far, 64, &mut Rng::new(3));
        assert!(
            contrast(&tn, &near, 64) > 2.0 * contrast(&tf, &far, 64).max(0.0),
            "fog should fade far objects"
        );
    }

    #[test]
    fn left_camera_noisier_than_right() {
        let left = CameraModel::new(CameraSide::Left);
        let right = CameraModel::new(CameraSide::Right);
        let scene = one_car_scene(Context::City);
        // Average contrast over several noise draws.
        let mut cl = 0.0;
        let mut cr = 0.0;
        for seed in 0..8 {
            cl += contrast(&left.render(&scene, 64, &mut Rng::new(seed)), &scene, 64);
            cr += contrast(&right.render(&scene, 64, &mut Rng::new(seed)), &scene, 64);
        }
        assert!(cr > cl, "right camera should outperform left ({cr} vs {cl})");
    }

    #[test]
    fn kind_maps_side() {
        assert_eq!(CameraModel::new(CameraSide::Left).kind(), SensorKind::CameraLeft);
        assert_eq!(CameraModel::new(CameraSide::Right).kind(), SensorKind::CameraRight);
    }

    #[test]
    fn output_shape_and_bounds() {
        let cam = CameraModel::new(CameraSide::Right);
        let scene = one_car_scene(Context::Rain);
        let t = cam.render(&scene, 32, &mut Rng::new(5));
        assert_eq!(t.shape(), &[1, 1, 32, 32]);
        assert!(t.min() >= 0.0 && t.max() <= 1.5);
    }
}
