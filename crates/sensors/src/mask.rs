//! Sensor availability masks for fault-aware gating.

use crate::kind::SensorKind;
use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// Which sensors of the rig are currently considered usable.
///
/// A mask is the hard, binary summary a health monitor hands to the gating
/// layer: a sensor marked unavailable means "do not trust branches that
/// need this input". The default mask has every sensor available, which is
/// the clean-path identity — gating with an all-available mask behaves
/// exactly as gating with no mask at all.
///
/// # Example
///
/// ```
/// use ecofusion_sensors::{SensorKind, SensorMask};
/// let m = SensorMask::all_available().without(SensorKind::CameraLeft);
/// assert!(!m.is_available(SensorKind::CameraLeft));
/// assert!(m.is_available(SensorKind::Lidar));
/// assert_eq!(m.available_count(), 3);
/// assert!(!m.allows(&[SensorKind::CameraLeft, SensorKind::CameraRight]));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SensorMask {
    bits: u8,
}

impl Serialize for SensorMask {
    fn to_value(&self) -> Value {
        Value::Map(vec![("bits".to_string(), Value::U64(self.bits as u64))])
    }
}

// Hand-written so deserialization routes through [`SensorMask::from_bits`]:
// out-of-range bits in hand-edited JSON must normalize away, or a mask
// that is semantically all-available would compare unequal to
// `SensorMask::all_available()` and skip the clean-path fast paths.
impl Deserialize for SensorMask {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let entries = v.as_map().ok_or_else(|| DeError::expected("SensorMask object", v))?;
        let bits_value = serde::find_field(entries, "bits")
            .ok_or_else(|| DeError::custom("SensorMask missing field bits"))?;
        Ok(SensorMask::from_bits(u8::from_value(bits_value)?))
    }
}

impl SensorMask {
    /// Mask with every sensor available.
    pub fn all_available() -> Self {
        SensorMask { bits: (1 << SensorKind::COUNT) - 1 }
    }

    /// Mask with no sensor available.
    pub fn none_available() -> Self {
        SensorMask { bits: 0 }
    }

    /// Builds a mask from raw availability bits (bit `i` =
    /// `SensorKind::from_index(i)` available). Bits beyond the sensor
    /// count are ignored.
    pub fn from_bits(bits: u8) -> Self {
        SensorMask { bits: bits & ((1 << SensorKind::COUNT) - 1) }
    }

    /// Raw availability bits.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Whether `kind` is available.
    pub fn is_available(&self, kind: SensorKind) -> bool {
        self.bits & (1 << kind.index()) != 0
    }

    /// Whether every sensor is available (the clean-path identity).
    pub fn is_all_available(&self) -> bool {
        self.bits == (1 << SensorKind::COUNT) - 1
    }

    /// This mask with `kind` marked unavailable.
    pub fn without(mut self, kind: SensorKind) -> Self {
        self.bits &= !(1 << kind.index());
        self
    }

    /// This mask with `kind` marked available again.
    pub fn with(mut self, kind: SensorKind) -> Self {
        self.bits |= 1 << kind.index();
        self
    }

    /// Number of available sensors.
    pub fn available_count(&self) -> usize {
        self.bits.count_ones() as usize
    }

    /// Whether every sensor in `kinds` is available.
    pub fn allows(&self, kinds: &[SensorKind]) -> bool {
        kinds.iter().all(|k| self.is_available(*k))
    }

    /// Whether a sensor-usage bitmask (bit `i` = sensor `i` required)
    /// only requires available sensors.
    pub fn allows_bits(&self, required: u8) -> bool {
        required & !self.bits == 0
    }

    /// The unavailable sensors, in canonical order.
    pub fn unavailable(&self) -> Vec<SensorKind> {
        SensorKind::ALL.into_iter().filter(|k| !self.is_available(*k)).collect()
    }
}

impl Default for SensorMask {
    fn default() -> Self {
        SensorMask::all_available()
    }
}

impl fmt::Display for SensorMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        write!(f, "[")?;
        for k in SensorKind::ALL {
            if self.is_available(k) {
                if !first {
                    write!(f, " ")?;
                }
                write!(f, "{}", k.abbrev())?;
                first = false;
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_all_available() {
        let m = SensorMask::default();
        assert!(m.is_all_available());
        assert_eq!(m.available_count(), SensorKind::COUNT);
        assert!(m.unavailable().is_empty());
        assert!(m.allows(&SensorKind::ALL));
    }

    #[test]
    fn without_and_with_roundtrip() {
        let m = SensorMask::all_available().without(SensorKind::Radar);
        assert!(!m.is_available(SensorKind::Radar));
        assert_eq!(m.unavailable(), vec![SensorKind::Radar]);
        assert!(m.with(SensorKind::Radar).is_all_available());
    }

    #[test]
    fn allows_bits_matches_allows() {
        let m = SensorMask::all_available()
            .without(SensorKind::CameraLeft)
            .without(SensorKind::CameraRight);
        let cams = (1 << SensorKind::CameraLeft.index()) | (1 << SensorKind::CameraRight.index());
        assert!(!m.allows_bits(cams as u8));
        assert!(m.allows_bits(1 << SensorKind::Lidar.index()));
        assert!(m.allows(&[SensorKind::Lidar, SensorKind::Radar]));
    }

    #[test]
    fn from_bits_masks_high_bits() {
        let m = SensorMask::from_bits(0xFF);
        assert!(m.is_all_available());
        assert_eq!(SensorMask::from_bits(0).available_count(), 0);
    }

    #[test]
    fn display_lists_available() {
        let m = SensorMask::all_available().without(SensorKind::CameraLeft);
        assert_eq!(m.to_string(), "[C_R L R]");
        assert_eq!(SensorMask::none_available().to_string(), "[]");
    }

    #[test]
    fn serde_roundtrip() {
        let m = SensorMask::all_available().without(SensorKind::Lidar);
        let json = serde_json::to_string(&m).unwrap();
        let back: SensorMask = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn deserialize_normalizes_out_of_range_bits() {
        let m: SensorMask = serde_json::from_str("{\"bits\":255}").unwrap();
        assert!(m.is_all_available());
        assert_eq!(m, SensorMask::all_available());
        assert!(serde_json::from_str::<SensorMask>("{\"wrong\":1}").is_err());
    }
}
