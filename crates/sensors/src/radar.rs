//! Navtech CTS350-X radar model.

use crate::grid;
use crate::kind::SensorKind;
use crate::SensorModel;
use ecofusion_scene::Scene;
use ecofusion_tensor::rng::Rng;
use ecofusion_tensor::tensor::Tensor;

/// Scanning radar observation model.
///
/// Radar is nearly weather-proof — attenuation barely depends on fog or
/// darkness — which is why late fusion (which includes radar) stays robust
/// in the paper's adverse scenes. The price is coarse azimuth resolution
/// (returns smear laterally), persistent clutter ghosts, and weak returns
/// from low-RCS targets (pedestrians, bicycles). That keeps radar's overall
/// mAP the lowest of the four sensors, matching Table 1.
#[derive(Debug, Clone, Copy, Default)]
pub struct RadarModel;

impl RadarModel {
    /// Creates the radar model.
    pub fn new() -> Self {
        RadarModel
    }
}

impl SensorModel for RadarModel {
    fn kind(&self) -> SensorKind {
        SensorKind::Radar
    }

    fn render(&self, scene: &Scene, grid_size: usize, rng: &mut Rng) -> Tensor {
        let profile = scene.context.profile();
        let mut t = grid::empty_grid(grid_size);
        let boxes = scene.ground_truth_boxes(grid_size);
        let occ = grid::occlusion_factors(scene, 0.75);
        for (obj, (b, occ_f)) in scene.objects.iter().zip(boxes.iter().zip(&occ)) {
            // Minimal range/weather attenuation.
            let atten =
                0.97f32.powf(obj.y as f32 / 10.0) * (1.0 - 0.1 * profile.precipitation as f32);
            let intensity = 0.85 * obj.class.radar_reflectivity() as f32 * atten * occ_f;
            grid::splat_box(&mut t, b, intensity, 0.2, rng);
        }
        // Coarse azimuth: lateral smear.
        let mut t = grid::blur_horizontal(&t, grid_size / 24 + 1);
        // Persistent multipath ghosts plus context clutter.
        let ghosts = 2 + (profile.clutter * 20.0) as usize;
        grid::add_blobs(&mut t, ghosts, 3, 0.35, rng);
        grid::add_gaussian_noise(&mut t, 0.06, rng);
        grid::clamp(&mut t, 1.5);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecofusion_scene::{Context, ObjectClass, SceneObject};

    fn one_obj(ctx: Context, class: ObjectClass, y: f64) -> Scene {
        let mut s = Scene::empty(ctx, 0);
        s.objects.push(SceneObject::new(class, 0.0, y));
        s
    }

    fn box_mean(t: &Tensor, scene: &Scene, grid: usize) -> f32 {
        let b = scene.ground_truth_boxes(grid)[0];
        let mut s = 0.0;
        let mut n = 0;
        for y in b.y1 as usize..(b.y2 as usize).min(grid) {
            for x in b.x1 as usize..(b.x2 as usize).min(grid) {
                s += t.get4(0, 0, y, x);
                n += 1;
            }
        }
        s / n.max(1) as f32
    }

    #[test]
    fn weather_robust() {
        let radar = RadarModel::new();
        let clear = one_obj(Context::City, ObjectClass::Car, 25.0);
        let fog = one_obj(Context::Fog, ObjectClass::Car, 25.0);
        let tc = box_mean(&radar.render(&clear, 64, &mut Rng::new(1)), &clear, 64);
        let tf = box_mean(&radar.render(&fog, 64, &mut Rng::new(1)), &fog, 64);
        assert!(
            (tc - tf).abs() < 0.25 * tc.max(0.01),
            "radar should barely notice fog ({tc} vs {tf})"
        );
    }

    #[test]
    fn truck_stronger_than_pedestrian() {
        let radar = RadarModel::new();
        let truck = one_obj(Context::City, ObjectClass::Truck, 20.0);
        let ped = one_obj(Context::City, ObjectClass::Pedestrian, 20.0);
        let tt = box_mean(&radar.render(&truck, 64, &mut Rng::new(2)), &truck, 64);
        let tp = box_mean(&radar.render(&ped, 64, &mut Rng::new(2)), &ped, 64);
        assert!(tt > 1.5 * tp, "truck {tt} vs pedestrian {tp}");
    }

    #[test]
    fn returns_smear_laterally() {
        let radar = RadarModel::new();
        let scene = one_obj(Context::Rural, ObjectClass::Car, 20.0);
        let t = radar.render(&scene, 64, &mut Rng::new(3));
        let b = scene.ground_truth_boxes(64)[0];
        // Just left of the box there should still be signal (smear).
        let y_mid = ((b.y1 + b.y2) / 2.0) as usize;
        let left_of = (b.x1 as usize).saturating_sub(1);
        assert!(t.get4(0, 0, y_mid, left_of) > 0.05, "expected lateral smear");
    }

    #[test]
    fn ghosts_present_even_in_empty_scene() {
        let radar = RadarModel::new();
        let empty = Scene::empty(Context::Rural, 0);
        let t = radar.render(&empty, 64, &mut Rng::new(4));
        let strong = t.data().iter().filter(|&&v| v > 0.25).count();
        assert!(strong > 5, "radar should show clutter ghosts, got {strong} cells");
    }

    #[test]
    fn output_shape_and_bounds() {
        let radar = RadarModel::new();
        let s = one_obj(Context::Snow, ObjectClass::Bus, 15.0);
        let t = radar.render(&s, 32, &mut Rng::new(5));
        assert_eq!(t.shape(), &[1, 1, 32, 32]);
        assert!(t.min() >= 0.0 && t.max() <= 1.5);
    }
}
