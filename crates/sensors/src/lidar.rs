//! Velodyne HDL-32e lidar model.

use crate::grid;
use crate::kind::SensorKind;
use crate::SensorModel;
use ecofusion_scene::Scene;
use ecofusion_tensor::rng::Rng;
use ecofusion_tensor::tensor::Tensor;

/// Lidar observation model.
///
/// Lidar returns are illumination-independent (it carries its own laser)
/// and geometrically crisp, but scattering media hit it hard: fog and snow
/// attenuate the beam strongly with range and precipitation produces
/// backscatter speckle. This is the physics behind the paper's Fig. 5,
/// where camera+lidar early fusion collapses in Fog and Snow.
#[derive(Debug, Clone, Copy, Default)]
pub struct LidarModel;

impl LidarModel {
    /// Creates the lidar model.
    pub fn new() -> Self {
        LidarModel
    }
}

impl SensorModel for LidarModel {
    fn kind(&self) -> SensorKind {
        SensorKind::Lidar
    }

    fn render(&self, scene: &Scene, grid_size: usize, rng: &mut Rng) -> Tensor {
        let profile = scene.context.profile();
        let mut t = grid::empty_grid(grid_size);
        let boxes = scene.ground_truth_boxes(grid_size);
        let occ = grid::occlusion_factors(scene, 0.3);
        for (obj, (b, occ_f)) in scene.objects.iter().zip(boxes.iter().zip(&occ)) {
            // Beam attenuation: visibility^(range / 10 m) — steeper than the
            // camera because the beam travels out and back.
            let atten = (profile.visibility as f32).powf((obj.y as f32 / 10.0).max(0.0));
            let intensity = 0.95 * atten * occ_f;
            grid::splat_box(&mut t, b, intensity, 0.1, rng);
        }
        // Backscatter speckle from rain/snow.
        let salt_rate = 0.015 + 0.15 * profile.precipitation;
        grid::add_salt_noise(&mut t, salt_rate, 0.8, rng);
        // Ground clutter blobs (snowbanks, spray).
        let blobs = (profile.clutter * 25.0) as usize;
        grid::add_blobs(&mut t, blobs, 2, 0.3, rng);
        grid::add_gaussian_noise(&mut t, 0.03, rng);
        grid::clamp(&mut t, 1.5);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecofusion_scene::{Context, ObjectClass, SceneObject};

    fn one_car(ctx: Context, y: f64) -> Scene {
        let mut s = Scene::empty(ctx, 0);
        s.objects.push(SceneObject::new(ObjectClass::Car, 0.0, y));
        s
    }

    fn box_mean(t: &Tensor, scene: &Scene, grid: usize) -> f32 {
        let b = scene.ground_truth_boxes(grid)[0];
        let mut s = 0.0;
        let mut n = 0;
        for y in b.y1 as usize..(b.y2 as usize).min(grid) {
            for x in b.x1 as usize..(b.x2 as usize).min(grid) {
                s += t.get4(0, 0, y, x);
                n += 1;
            }
        }
        s / n.max(1) as f32
    }

    #[test]
    fn night_does_not_affect_lidar() {
        let lidar = LidarModel::new();
        let day = one_car(Context::City, 15.0);
        let night = one_car(Context::Night, 15.0);
        let td = box_mean(&lidar.render(&day, 64, &mut Rng::new(1)), &day, 64);
        let tn = box_mean(&lidar.render(&night, 64, &mut Rng::new(1)), &night, 64);
        assert!((td - tn).abs() < 0.15, "lidar day {td} vs night {tn} should be similar");
    }

    #[test]
    fn fog_attenuates_strongly() {
        let lidar = LidarModel::new();
        let clear = one_car(Context::City, 25.0);
        let fog = one_car(Context::Fog, 25.0);
        let tc = box_mean(&lidar.render(&clear, 64, &mut Rng::new(2)), &clear, 64);
        let tf = box_mean(&lidar.render(&fog, 64, &mut Rng::new(2)), &fog, 64);
        assert!(tc > 4.0 * tf, "fog should crush lidar returns ({tc} vs {tf})");
    }

    #[test]
    fn snow_produces_speckle() {
        let lidar = LidarModel::new();
        let clear = Scene::empty(Context::City, 0);
        let snow = Scene::empty(Context::Snow, 1);
        let tc = lidar.render(&clear, 64, &mut Rng::new(3));
        let ts = lidar.render(&snow, 64, &mut Rng::new(3));
        let count = |t: &Tensor| t.data().iter().filter(|&&v| v > 0.3).count();
        assert!(
            count(&ts) > 4 * count(&tc).max(1),
            "snow speckle {} vs clear {}",
            count(&ts),
            count(&tc)
        );
    }

    #[test]
    fn output_shape_and_bounds() {
        let lidar = LidarModel::new();
        let s = one_car(Context::Snow, 10.0);
        let t = lidar.render(&s, 48, &mut Rng::new(4));
        assert_eq!(t.shape(), &[1, 1, 48, 48]);
        assert!(t.min() >= 0.0 && t.max() <= 1.5);
    }
}
