//! Grid rasterization and noise primitives shared by all sensor models.

use ecofusion_scene::{GtBox, Scene};
use ecofusion_tensor::rng::Rng;
use ecofusion_tensor::tensor::Tensor;

/// Creates an empty `(1, 1, grid, grid)` observation.
pub fn empty_grid(grid: usize) -> Tensor {
    Tensor::zeros(&[1, 1, grid, grid])
}

/// Splats a box into the grid at `intensity`, with per-cell multiplicative
/// jitter of `±jitter`. Intensities accumulate additively and the caller is
/// expected to clamp at the end of rendering.
pub fn splat_box(t: &mut Tensor, b: &GtBox, intensity: f32, jitter: f32, rng: &mut Rng) {
    let grid = t.shape()[3];
    let x1 = (b.x1.floor().max(0.0)) as usize;
    let y1 = (b.y1.floor().max(0.0)) as usize;
    let x2 = (b.x2.ceil() as usize).min(grid);
    let y2 = (b.y2.ceil() as usize).min(grid);
    for y in y1..y2 {
        for x in x1..x2 {
            let j = 1.0 + jitter * rng.uniform(-1.0, 1.0) as f32;
            let v = t.get4(0, 0, y, x) + intensity * j;
            t.set4(0, 0, y, x, v);
        }
    }
}

/// Adds i.i.d. Gaussian noise of the given standard deviation.
pub fn add_gaussian_noise(t: &mut Tensor, sigma: f32, rng: &mut Rng) {
    if sigma <= 0.0 {
        return;
    }
    for v in t.data_mut() {
        *v += rng.normal(0.0, sigma as f64) as f32;
    }
}

/// Adds salt noise: each cell independently spikes to `amplitude` with
/// probability `rate` (lidar speckle in precipitation).
pub fn add_salt_noise(t: &mut Tensor, rate: f64, amplitude: f32, rng: &mut Rng) {
    if rate <= 0.0 {
        return;
    }
    for v in t.data_mut() {
        if rng.chance(rate) {
            *v += amplitude * rng.uniform(0.5, 1.0) as f32;
        }
    }
}

/// Adds `count` square clutter blobs of side `size` and the given amplitude
/// (radar ghosts / ground returns).
pub fn add_blobs(t: &mut Tensor, count: usize, size: usize, amplitude: f32, rng: &mut Rng) {
    let grid = t.shape()[3];
    if grid <= size {
        return;
    }
    for _ in 0..count {
        let cx = rng.uniform_usize(0, grid - size);
        let cy = rng.uniform_usize(0, grid - size);
        let a = amplitude * rng.uniform(0.5, 1.0) as f32;
        for y in cy..cy + size {
            for x in cx..cx + size {
                let v = t.get4(0, 0, y, x) + a;
                t.set4(0, 0, y, x, v);
            }
        }
    }
}

/// Adds `count` vertical streaks (camera rain artefacts).
pub fn add_vertical_streaks(t: &mut Tensor, count: usize, amplitude: f32, rng: &mut Rng) {
    let grid = t.shape()[3];
    for _ in 0..count {
        let x = rng.uniform_usize(0, grid);
        let y0 = rng.uniform_usize(0, grid / 2);
        let len = rng.uniform_usize(grid / 8, grid / 2);
        let a = amplitude * rng.uniform(0.4, 1.0) as f32;
        for y in y0..(y0 + len).min(grid) {
            let v = t.get4(0, 0, y, x) + a;
            t.set4(0, 0, y, x, v);
        }
    }
}

/// Clamps every cell into `[0, hi]`.
pub fn clamp(t: &mut Tensor, hi: f32) {
    for v in t.data_mut() {
        *v = v.clamp(0.0, hi);
    }
}

/// Horizontally blurs the grid with a box filter of half-width `r`
/// (models coarse radar azimuth resolution).
pub fn blur_horizontal(t: &Tensor, r: usize) -> Tensor {
    let grid = t.shape()[3];
    let mut out = Tensor::zeros(t.shape());
    for y in 0..grid {
        for x in 0..grid {
            let lo = x.saturating_sub(r);
            let hi = (x + r + 1).min(grid);
            let mut s = 0.0;
            for xi in lo..hi {
                s += t.get4(0, 0, y, xi);
            }
            out.set4(0, 0, y, x, s / (hi - lo) as f32);
        }
    }
    out
}

/// Per-object occlusion factors for line-of-sight sensors.
///
/// Sorts objects by range; an object whose lateral span is covered at least
/// 60 % by a strictly nearer object gets its return scaled by
/// `occluded_gain`. Radar diffraction makes radar less affected (higher
/// gain); cameras and lidar more.
pub fn occlusion_factors(scene: &Scene, occluded_gain: f32) -> Vec<f32> {
    let n = scene.objects.len();
    let mut factors = vec![1.0f32; n];
    // Index objects sorted by increasing range (y).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        scene.objects[a].y.partial_cmp(&scene.objects[b].y).unwrap_or(std::cmp::Ordering::Equal)
    });
    for (rank, &i) in order.iter().enumerate() {
        let oi = &scene.objects[i];
        let (hx_i, _) = oi.half_extents_m();
        let (li, ri) = (oi.x - hx_i, oi.x + hx_i);
        let span = (ri - li).max(1e-6);
        // Check all strictly nearer objects for lateral coverage.
        let mut covered = 0.0;
        for &j in order.iter().take(rank) {
            let oj = &scene.objects[j];
            let (hx_j, _) = oj.half_extents_m();
            let (lj, rj) = (oj.x - hx_j, oj.x + hx_j);
            let overlap = (ri.min(rj) - li.max(lj)).max(0.0);
            covered += overlap;
        }
        if covered / span >= 0.6 {
            factors[i] = occluded_gain;
        }
    }
    factors
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecofusion_scene::{Context, ObjectClass, SceneObject};

    fn gt(x1: f32, y1: f32, x2: f32, y2: f32) -> GtBox {
        GtBox { class_id: 0, x1, y1, x2, y2 }
    }

    #[test]
    fn splat_fills_box_cells() {
        let mut t = empty_grid(8);
        let mut rng = Rng::new(1);
        splat_box(&mut t, &gt(2.0, 2.0, 4.0, 4.0), 1.0, 0.0, &mut rng);
        assert_eq!(t.get4(0, 0, 3, 3), 1.0);
        assert_eq!(t.get4(0, 0, 0, 0), 0.0);
        assert_eq!(t.sum(), 4.0);
    }

    #[test]
    fn splat_clamps_to_grid() {
        let mut t = empty_grid(4);
        let mut rng = Rng::new(2);
        splat_box(&mut t, &gt(-5.0, -5.0, 10.0, 10.0), 1.0, 0.0, &mut rng);
        assert_eq!(t.sum(), 16.0);
    }

    #[test]
    fn gaussian_noise_changes_values() {
        let mut t = empty_grid(16);
        let mut rng = Rng::new(3);
        add_gaussian_noise(&mut t, 0.1, &mut rng);
        assert!(t.norm_sq() > 0.0);
        // Zero sigma is a no-op.
        let mut u = empty_grid(16);
        add_gaussian_noise(&mut u, 0.0, &mut rng);
        assert_eq!(u.sum(), 0.0);
    }

    #[test]
    fn salt_noise_rate_controls_density() {
        let mut t = empty_grid(64);
        let mut rng = Rng::new(4);
        add_salt_noise(&mut t, 0.1, 1.0, &mut rng);
        let nonzero = t.data().iter().filter(|&&v| v > 0.0).count();
        let frac = nonzero as f64 / t.len() as f64;
        assert!((frac - 0.1).abs() < 0.03, "salt fraction {frac}");
    }

    #[test]
    fn clamp_bounds_values() {
        let mut t = empty_grid(4);
        t.data_mut()[0] = -3.0;
        t.data_mut()[1] = 9.0;
        clamp(&mut t, 1.0);
        assert_eq!(t.data()[0], 0.0);
        assert_eq!(t.data()[1], 1.0);
    }

    #[test]
    fn blur_preserves_mass_roughly() {
        let mut t = empty_grid(16);
        t.set4(0, 0, 8, 8, 1.0);
        let b = blur_horizontal(&t, 2);
        assert!((b.sum() - 1.0).abs() < 1e-5);
        // Energy is spread laterally.
        assert!(b.get4(0, 0, 8, 8) < 1.0);
        assert!(b.get4(0, 0, 8, 6) > 0.0);
        assert_eq!(b.get4(0, 0, 7, 8), 0.0);
    }

    #[test]
    fn occlusion_shadows_far_object() {
        let mut scene = Scene::empty(Context::City, 0);
        // Near bus fully covering a far car in the same lane.
        let mut bus = SceneObject::new(ObjectClass::Bus, 0.0, 10.0);
        bus.heading = std::f64::consts::FRAC_PI_2; // broadside: wide lateral span
        scene.objects.push(bus);
        scene.objects.push(SceneObject::new(ObjectClass::Car, 0.0, 30.0));
        let f = occlusion_factors(&scene, 0.4);
        assert_eq!(f[0], 1.0, "near object unoccluded");
        assert_eq!(f[1], 0.4, "far object occluded");
    }

    #[test]
    fn no_occlusion_when_laterally_separated() {
        let mut scene = Scene::empty(Context::City, 0);
        scene.objects.push(SceneObject::new(ObjectClass::Car, -10.0, 10.0));
        scene.objects.push(SceneObject::new(ObjectClass::Car, 10.0, 30.0));
        let f = occlusion_factors(&scene, 0.4);
        assert_eq!(f, vec![1.0, 1.0]);
    }

    use ecofusion_scene::Scene;
}
