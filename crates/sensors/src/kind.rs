//! Sensor identity.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Which side of the stereo rig a camera sits on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CameraSide {
    /// Left camera of the ZED stereo pair.
    Left,
    /// Right camera of the ZED stereo pair.
    Right,
}

/// The four physical sensors of the RADIATE platform (paper Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SensorKind {
    /// Left ZED camera (paper: C_L).
    CameraLeft,
    /// Right ZED camera (paper: C_R).
    CameraRight,
    /// Velodyne HDL-32e lidar (paper: L).
    Lidar,
    /// Navtech CTS350-X radar (paper: R).
    Radar,
}

impl SensorKind {
    /// All sensors in canonical (paper Table 1) order.
    pub const ALL: [SensorKind; 4] =
        [SensorKind::CameraLeft, SensorKind::CameraRight, SensorKind::Lidar, SensorKind::Radar];

    /// Number of sensors.
    pub const COUNT: usize = 4;

    /// Canonical index of this sensor in [`SensorKind::ALL`].
    pub fn index(&self) -> usize {
        SensorKind::ALL.iter().position(|s| s == self).expect("sensor in ALL")
    }

    /// Sensor from canonical index.
    ///
    /// Returns `None` for `index >= 4`.
    pub fn from_index(index: usize) -> Option<SensorKind> {
        SensorKind::ALL.get(index).copied()
    }

    /// The paper's abbreviation (C_L, C_R, L, R).
    pub fn abbrev(&self) -> &'static str {
        match self {
            SensorKind::CameraLeft => "C_L",
            SensorKind::CameraRight => "C_R",
            SensorKind::Lidar => "L",
            SensorKind::Radar => "R",
        }
    }

    /// Whether this sensor is one of the two cameras.
    pub fn is_camera(&self) -> bool {
        matches!(self, SensorKind::CameraLeft | SensorKind::CameraRight)
    }

    /// Whether the physical sensor has a spinning assembly that cannot be
    /// fully power-gated (paper §5.5.2: rotating lidar/radar keep motor
    /// power when clock gated).
    pub fn has_motor(&self) -> bool {
        matches!(self, SensorKind::Lidar | SensorKind::Radar)
    }
}

impl fmt::Display for SensorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SensorKind::CameraLeft => "left camera",
            SensorKind::CameraRight => "right camera",
            SensorKind::Lidar => "lidar",
            SensorKind::Radar => "radar",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for (i, s) in SensorKind::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
            assert_eq!(SensorKind::from_index(i), Some(*s));
        }
        assert_eq!(SensorKind::from_index(4), None);
    }

    #[test]
    fn abbreviations_match_paper() {
        assert_eq!(SensorKind::CameraLeft.abbrev(), "C_L");
        assert_eq!(SensorKind::Radar.abbrev(), "R");
    }

    #[test]
    fn camera_and_motor_predicates() {
        assert!(SensorKind::CameraLeft.is_camera());
        assert!(!SensorKind::Lidar.is_camera());
        assert!(SensorKind::Radar.has_motor());
        assert!(!SensorKind::CameraRight.has_motor());
    }
}
