//! The full four-sensor rig.

use crate::camera::CameraModel;
use crate::kind::{CameraSide, SensorKind};
use crate::lidar::LidarModel;
use crate::radar::RadarModel;
use crate::SensorModel;
use ecofusion_scene::Scene;
use ecofusion_tensor::rng::Rng;
use ecofusion_tensor::tensor::Tensor;

/// One rendered observation per sensor for a single scene.
#[derive(Debug, Clone)]
pub struct Observation {
    grids: [Tensor; 4],
    grid_size: usize,
}

impl Observation {
    /// Assembles an observation from one pre-rendered grid per sensor (in
    /// [`SensorKind::ALL`] order) — the constructor fault injectors and
    /// custom pipelines use to rebuild an observation after mutating
    /// grids.
    ///
    /// # Panics
    /// Panics if the grids are not all square `(1, 1, g, g)` tensors of
    /// the same side length.
    pub fn from_grids(grids: [Tensor; 4]) -> Self {
        let shape = grids[0].shape().to_vec();
        assert_eq!(shape.len(), 4, "observation grids must be rank-4");
        assert!(
            shape[0] == 1 && shape[1] == 1 && shape[2] == shape[3],
            "observation grids must be (1, 1, g, g), got {shape:?}"
        );
        for g in &grids[1..] {
            assert_eq!(g.shape(), shape.as_slice(), "observation grids must share one shape");
        }
        Observation { grid_size: shape[3], grids }
    }

    /// The observation grid of a sensor, shape `(1, 1, g, g)`.
    pub fn grid(&self, kind: SensorKind) -> &Tensor {
        &self.grids[kind.index()]
    }

    /// Mutable access to a sensor's grid (fault injection).
    pub fn grid_mut(&mut self, kind: SensorKind) -> &mut Tensor {
        &mut self.grids[kind.index()]
    }

    /// Replaces a sensor's grid.
    ///
    /// # Panics
    /// Panics if the replacement's shape differs from the current grid.
    pub fn set_grid(&mut self, kind: SensorKind, grid: Tensor) {
        assert_eq!(
            grid.shape(),
            self.grids[kind.index()].shape(),
            "replacement grid shape mismatch"
        );
        self.grids[kind.index()] = grid;
    }

    /// Grid side length.
    pub fn grid_size(&self) -> usize {
        self.grid_size
    }

    /// Channel-concatenates the observations of the given sensors in order
    /// (the raw-input form of early fusion, Eq. 3 of the paper).
    ///
    /// # Panics
    /// Panics if `kinds` is empty.
    pub fn stacked(&self, kinds: &[SensorKind]) -> Tensor {
        assert!(!kinds.is_empty(), "stacked needs at least one sensor");
        let parts: Vec<&Tensor> = kinds.iter().map(|k| self.grid(*k)).collect();
        Tensor::concat_channels(&parts)
    }
}

/// The RADIATE sensor rig: two cameras, one lidar, one radar (paper Fig. 2).
#[derive(Debug, Clone)]
pub struct SensorSuite {
    camera_left: CameraModel,
    camera_right: CameraModel,
    lidar: LidarModel,
    radar: RadarModel,
    grid_size: usize,
}

impl SensorSuite {
    /// Creates a suite rendering `grid_size × grid_size` observations.
    ///
    /// # Panics
    /// Panics if `grid_size < 8`.
    pub fn new(grid_size: usize) -> Self {
        assert!(grid_size >= 8, "grid too small to resolve objects");
        SensorSuite {
            camera_left: CameraModel::new(CameraSide::Left),
            camera_right: CameraModel::new(CameraSide::Right),
            lidar: LidarModel::new(),
            radar: RadarModel::new(),
            grid_size,
        }
    }

    /// Grid side length.
    pub fn grid_size(&self) -> usize {
        self.grid_size
    }

    /// Renders all four sensors. Each sensor draws from an independent RNG
    /// stream forked off `rng`, so adding noise draws to one sensor model
    /// never perturbs the others.
    pub fn observe(&self, scene: &Scene, rng: &mut Rng) -> Observation {
        let mut streams: Vec<Rng> = (0..4).map(|i| rng.fork(i as u64)).collect();
        let grids = [
            self.camera_left.render(scene, self.grid_size, &mut streams[0]),
            self.camera_right.render(scene, self.grid_size, &mut streams[1]),
            self.lidar.render(scene, self.grid_size, &mut streams[2]),
            self.radar.render(scene, self.grid_size, &mut streams[3]),
        ];
        Observation { grids, grid_size: self.grid_size }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecofusion_scene::{Context, ScenarioGenerator};

    #[test]
    fn observe_renders_all_four() {
        let mut gen = ScenarioGenerator::new(1);
        let scene = gen.scene(Context::City);
        let suite = SensorSuite::new(32);
        let obs = suite.observe(&scene, &mut Rng::new(2));
        for kind in SensorKind::ALL {
            assert_eq!(obs.grid(kind).shape(), &[1, 1, 32, 32]);
        }
        assert_eq!(obs.grid_size(), 32);
    }

    #[test]
    fn observation_deterministic_given_seed() {
        let mut gen = ScenarioGenerator::new(3);
        let scene = gen.scene(Context::Rain);
        let suite = SensorSuite::new(32);
        let a = suite.observe(&scene, &mut Rng::new(7));
        let b = suite.observe(&scene, &mut Rng::new(7));
        for kind in SensorKind::ALL {
            assert_eq!(a.grid(kind), b.grid(kind));
        }
    }

    #[test]
    fn sensors_see_different_views() {
        let mut gen = ScenarioGenerator::new(4);
        let scene = gen.scene(Context::City);
        let suite = SensorSuite::new(32);
        let obs = suite.observe(&scene, &mut Rng::new(5));
        assert_ne!(obs.grid(SensorKind::CameraRight), obs.grid(SensorKind::Radar));
        assert_ne!(obs.grid(SensorKind::CameraLeft), obs.grid(SensorKind::CameraRight));
    }

    #[test]
    fn stacked_concatenates_channels() {
        let mut gen = ScenarioGenerator::new(6);
        let scene = gen.scene(Context::City);
        let suite = SensorSuite::new(16);
        let obs = suite.observe(&scene, &mut Rng::new(7));
        let stacked =
            obs.stacked(&[SensorKind::CameraLeft, SensorKind::CameraRight, SensorKind::Lidar]);
        assert_eq!(stacked.shape(), &[1, 3, 16, 16]);
    }

    #[test]
    #[should_panic(expected = "at least one sensor")]
    fn stacked_empty_panics() {
        let mut gen = ScenarioGenerator::new(8);
        let scene = gen.scene(Context::City);
        let suite = SensorSuite::new(16);
        let obs = suite.observe(&scene, &mut Rng::new(9));
        let _ = obs.stacked(&[]);
    }

    #[test]
    #[should_panic(expected = "grid too small")]
    fn tiny_grid_panics() {
        let _ = SensorSuite::new(4);
    }

    #[test]
    fn from_grids_and_set_grid_roundtrip() {
        let mut gen = ScenarioGenerator::new(10);
        let scene = gen.scene(Context::City);
        let suite = SensorSuite::new(16);
        let obs = suite.observe(&scene, &mut Rng::new(11));
        let rebuilt = Observation::from_grids([
            obs.grid(SensorKind::CameraLeft).clone(),
            obs.grid(SensorKind::CameraRight).clone(),
            obs.grid(SensorKind::Lidar).clone(),
            obs.grid(SensorKind::Radar).clone(),
        ]);
        assert_eq!(rebuilt.grid_size(), 16);
        for kind in SensorKind::ALL {
            assert_eq!(rebuilt.grid(kind), obs.grid(kind));
        }
        let mut patched = obs.clone();
        patched.set_grid(SensorKind::Lidar, Tensor::zeros(&[1, 1, 16, 16]));
        assert_eq!(patched.grid(SensorKind::Lidar).sum(), 0.0);
        patched.grid_mut(SensorKind::Radar).data_mut()[0] = 9.0;
        assert_eq!(patched.grid(SensorKind::Radar).data()[0], 9.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn set_grid_wrong_shape_panics() {
        let mut gen = ScenarioGenerator::new(12);
        let scene = gen.scene(Context::City);
        let suite = SensorSuite::new(16);
        let mut obs = suite.observe(&scene, &mut Rng::new(13));
        obs.set_grid(SensorKind::Lidar, Tensor::zeros(&[1, 1, 8, 8]));
    }
}
