//! Property tests for sensor identity and the grid noise helpers.

use ecofusion_sensors::grid::{add_blobs, add_salt_noise, blur_horizontal, clamp, empty_grid};
use ecofusion_sensors::{SensorKind, SensorMask};
use ecofusion_tensor::rng::Rng;
use ecofusion_tensor::tensor::Tensor;
use proptest::prelude::*;

/// A grid with seeded uniform content in `[-1, 2]` (covers both clamp
/// sides).
fn seeded_grid(size: usize, seed: u64) -> Tensor {
    let mut t = empty_grid(size);
    let mut rng = Rng::new(seed);
    for v in t.data_mut() {
        *v = rng.uniform(-1.0, 2.0) as f32;
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // --- SensorKind: index/from_index bijection and abbrev uniqueness ---

    #[test]
    fn kind_index_roundtrip_is_bijective(i in 0usize..SensorKind::COUNT) {
        let kind = SensorKind::from_index(i).expect("in range");
        prop_assert_eq!(kind.index(), i);
        // Injective: no other kind maps to the same index.
        for other in SensorKind::ALL {
            if other != kind {
                prop_assert!(other.index() != i);
            }
        }
    }

    #[test]
    fn kind_from_index_none_out_of_range(i in SensorKind::COUNT..1_000usize) {
        prop_assert_eq!(SensorKind::from_index(i), None);
    }

    // --- SensorMask: bits round-trip ---

    #[test]
    fn mask_bits_roundtrip(bits in 0u8..16) {
        let m = SensorMask::from_bits(bits);
        prop_assert_eq!(m.bits(), bits);
        prop_assert_eq!(m.available_count(), bits.count_ones() as usize);
        for k in SensorKind::ALL {
            prop_assert_eq!(m.is_available(k), bits & (1 << k.index()) != 0);
        }
    }

    // --- grid.rs helpers ---

    #[test]
    fn salt_noise_same_seed_is_deterministic(
        seed in 0u64..10_000,
        rate in 0.0f64..0.5,
        amp in 0.1f32..2.0,
    ) {
        let mut a = seeded_grid(16, seed);
        let mut b = a.clone();
        add_salt_noise(&mut a, rate, amp, &mut Rng::new(seed ^ 1));
        add_salt_noise(&mut b, rate, amp, &mut Rng::new(seed ^ 1));
        prop_assert_eq!(a, b);
    }

    #[test]
    fn blobs_same_seed_is_deterministic(
        seed in 0u64..10_000,
        count in 0usize..8,
        size in 1usize..5,
    ) {
        let mut a = seeded_grid(16, seed);
        let mut b = a.clone();
        add_blobs(&mut a, count, size, 0.7, &mut Rng::new(seed ^ 2));
        add_blobs(&mut b, count, size, 0.7, &mut Rng::new(seed ^ 2));
        prop_assert_eq!(a, b);
    }

    #[test]
    fn clamp_bounds_hold_after_salt_noise(
        seed in 0u64..10_000,
        rate in 0.0f64..0.8,
        hi in 0.5f32..3.0,
    ) {
        let mut t = seeded_grid(16, seed);
        add_salt_noise(&mut t, rate, 2.0, &mut Rng::new(seed ^ 3));
        clamp(&mut t, hi);
        for &v in t.data() {
            prop_assert!((0.0..=hi).contains(&v), "{v} outside [0, {hi}]");
        }
    }

    #[test]
    fn clamp_bounds_hold_after_blobs(
        seed in 0u64..10_000,
        count in 0usize..10,
        hi in 0.5f32..3.0,
    ) {
        let mut t = seeded_grid(16, seed);
        add_blobs(&mut t, count, 3, 1.5, &mut Rng::new(seed ^ 4));
        clamp(&mut t, hi);
        for &v in t.data() {
            prop_assert!((0.0..=hi).contains(&v), "{v} outside [0, {hi}]");
        }
    }

    #[test]
    fn blur_radius_zero_is_identity(seed in 0u64..10_000, size in 8usize..32) {
        let t = seeded_grid(size, seed);
        let blurred = blur_horizontal(&t, 0);
        prop_assert_eq!(blurred, t);
    }
}

#[test]
fn abbrevs_are_unique_and_nonempty() {
    let abbrevs: std::collections::BTreeSet<&str> =
        SensorKind::ALL.iter().map(|k| k.abbrev()).collect();
    assert_eq!(abbrevs.len(), SensorKind::COUNT, "abbreviations must be unique");
    assert!(abbrevs.iter().all(|a| !a.is_empty()));
}
