//! Runs the DESIGN.md ablation studies: `gamma`, `rule`, `fusion`, or
//! `all` (default).

use ecofusion_eval::experiments::{
    ablations,
    common::{Scale, Setup},
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_args(&args);
    let which = args
        .iter()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_string());
    eprintln!("preparing setup ({scale:?})...");
    let mut setup = Setup::prepare(scale, 42);
    let mut results = Vec::new();
    if which == "gamma" || which == "all" {
        results.push(ablations::gamma_sweep(&mut setup));
    }
    if which == "rule" || which == "all" {
        results.push(ablations::candidate_rule(&mut setup));
    }
    if which == "fusion" || which == "all" {
        results.push(ablations::fusion_block(&mut setup));
    }
    for r in &results {
        r.print();
    }
    ecofusion_bench::maybe_write_json(&args, "ablations", &results);

    if which == "gate" || which == "all" {
        // Gate-quality analytics: how close the learned gates get to the
        // oracle (paper §5.1 attributes the gap to modeling limitations).
        use ecofusion_gating::GateKind;
        let frames: Vec<&ecofusion_core::Frame> = setup.dataset.test().iter().collect();
        println!("Gate quality vs oracle (lambda_E = 0.05, gamma = 0.5)");
        for gate in [GateKind::Deep, GateKind::Attention] {
            let q = ecofusion_eval::assess_gate(&mut setup.model, &frames, gate, 0.05, 0.5);
            println!(
                "  {:<10} spearman {:.3}, top-1 agreement {:.1}%, joint regret {:.4}",
                q.gate,
                q.mean_spearman,
                q.top1_agreement * 100.0,
                q.mean_regret
            );
        }
    }
}
