//! Regenerates paper Figure 4 (energy–loss trade-off, λ_E sweep per gate).

use ecofusion_eval::experiments::{
    common::{Scale, Setup},
    fig4,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_args(&args);
    eprintln!("preparing setup ({scale:?})...");
    let mut setup = Setup::prepare(scale, 42);
    let result = fig4::run(&mut setup);
    result.print();
    ecofusion_bench::maybe_write_json(&args, "fig4", &result);
}
