//! Runs one workload suite with tracing enabled and dumps the trace.
//!
//! ```text
//! # Chrome trace (load in Perfetto / chrome://tracing) + metrics snapshot:
//! cargo run --release -p ecofusion-bench --bin trace_dump -- --quick
//!
//! # A different suite, on 4 shards, with self-validation:
//! cargo run --release -p ecofusion-bench --bin trace_dump -- \
//!     --suite fault_storm --shards 4 --check
//! ```
//!
//! Flags:
//!
//! * `--suite <name>` — which suite to run (default `steady_city`).
//! * `--quick` / `--full` — workload scale (default quick).
//! * `--shards <n>` — runtime worker shards (default 1). Stream-track
//!   events are shard-invariant; shard tracks differ by layout.
//! * `--capacity <n>` — trace ring capacity in events (default 1048576,
//!   large enough that a quick run records every event).
//! * `--out <path>` — Chrome trace output (default `results/trace.json`).
//! * `--metrics <path>` — Prometheus-style text snapshot output
//!   (default `results/metrics.prom`).
//! * `--check` — after dumping, re-parse the Chrome JSON and assert the
//!   trace is well-formed and complete: non-empty `traceEvents`, zero
//!   ring drops, and one span per pipeline stage per frame. Exits
//!   nonzero on any violation (used by the CI `trace-smoke` job).

use ecofusion_energy::StageKind;
use ecofusion_eval::experiments::common::Scale;
use ecofusion_harness::{run_suite_traced, ModelProvider, SuiteId};
use ecofusion_trace::{chrome_trace_json, prometheus_snapshot, TraceSink};
use std::path::PathBuf;
use std::process::ExitCode;

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

/// `--check`: re-parse the emitted JSON the way a consumer would and
/// verify completeness against the suite report's frame count.
fn check_trace(json: &str, frames: u64, sink: &TraceSink) -> Result<(), String> {
    if sink.dropped() > 0 {
        return Err(format!(
            "ring dropped {} events; raise --capacity so --check sees the whole run",
            sink.dropped()
        ));
    }
    let value: serde::Value =
        serde_json::from_str(json).map_err(|e| format!("chrome trace is not valid JSON: {e}"))?;
    let top = value.as_map().ok_or("top level is not an object")?;
    let events = top
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .and_then(|(_, v)| v.as_seq())
        .ok_or("missing traceEvents array")?;
    if events.is_empty() {
        return Err("traceEvents is empty".into());
    }
    // One Begin span per pipeline stage per frame, plus the frame span
    // that encloses them.
    let begins = |name: &str| -> u64 {
        events
            .iter()
            .filter_map(|e| e.as_map())
            .filter(|m| {
                let field = |k: &str| m.iter().find(|(mk, _)| mk == k).map(|(_, v)| v);
                field("ph").and_then(|v| v.as_str()) == Some("B")
                    && field("name").and_then(|v| v.as_str()) == Some(name)
            })
            .count() as u64
    };
    if begins("frame") != frames {
        return Err(format!("expected {frames} frame spans, found {}", begins("frame")));
    }
    for stage in StageKind::ALL {
        let n = begins(stage.label());
        if n != frames {
            return Err(format!("expected {frames} `{}` stage spans, found {n}", stage.label()));
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(&args);
    let suite_label = flag_value(&args, "--suite").unwrap_or_else(|| "steady_city".into());
    let Some(id) = SuiteId::from_label(&suite_label) else {
        let known: Vec<&str> = SuiteId::ALL.iter().map(|id| id.label()).collect();
        eprintln!("error: unknown suite `{suite_label}` (known: {})", known.join(", "));
        return ExitCode::from(2);
    };
    let shards = match flag_value(&args, "--shards") {
        None => 1,
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("error: --shards expects a positive integer, got `{v}`");
                return ExitCode::from(2);
            }
        },
    };
    let capacity = match flag_value(&args, "--capacity") {
        None => 1 << 20,
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("error: --capacity expects a positive integer, got `{v}`");
                return ExitCode::from(2);
            }
        },
    };
    let out =
        PathBuf::from(flag_value(&args, "--out").unwrap_or_else(|| "results/trace.json".into()));
    let metrics_out = PathBuf::from(
        flag_value(&args, "--metrics").unwrap_or_else(|| "results/metrics.prom".into()),
    );

    eprintln!("tracing suite {suite_label} ({scale:?}, {shards} shard(s), ring {capacity})...");
    let provider = ModelProvider::prepare(scale);
    let (report, sink) = match run_suite_traced(&provider, id, scale, shards, Some(capacity)) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("error: suite run failed: {e:?}");
            return ExitCode::FAILURE;
        }
    };
    let sink = sink.expect("traced run returns its sink");

    let json = chrome_trace_json(&sink);
    if let Some(dir) = out.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("error: cannot write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    if let Some(dir) = metrics_out.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(&metrics_out, prometheus_snapshot(&sink)) {
        eprintln!("error: cannot write {}: {e}", metrics_out.display());
        return ExitCode::FAILURE;
    }
    println!(
        "{}: {} frames, {} events recorded ({} dropped), digest {}",
        suite_label,
        report.frames,
        sink.len(),
        sink.dropped(),
        &report.determinism_digest[..8.min(report.determinism_digest.len())],
    );
    println!("wrote {} and {}", out.display(), metrics_out.display());

    if args.iter().any(|a| a == "--check") {
        match check_trace(&json, report.frames, &sink) {
            Ok(()) => println!("trace check PASS"),
            Err(e) => {
                eprintln!("trace check FAIL: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
