//! Regenerates paper Table 1 (energy consumption and performance
//! evaluation). `--full` runs the full-scale harness; `--json` also writes
//! `results/table1.json`.

use ecofusion_eval::experiments::{
    common::{Scale, Setup},
    table1,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_args(&args);
    eprintln!("preparing setup ({scale:?})...");
    let mut setup = Setup::prepare(scale, 42);
    let result = table1::run(&mut setup);
    result.print();
    ecofusion_bench::maybe_write_json(&args, "table1", &result);
}
