//! Regenerates paper Figure 1 (City vs Rain loss/energy comparison).

use ecofusion_eval::experiments::{
    common::{Scale, Setup},
    fig1,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_args(&args);
    eprintln!("preparing setup ({scale:?})...");
    let mut setup = Setup::prepare(scale, 42);
    let result = fig1::run(&mut setup);
    result.print();
    ecofusion_bench::maybe_write_json(&args, "fig1", &result);
}
