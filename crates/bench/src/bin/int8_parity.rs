//! Int8-vs-f32 parity harness: the CI gate on quantization accuracy.
//!
//! ```text
//! # Run every suite twice (f32, then int8) and gate the mAP drift:
//! cargo run --release -p ecofusion-bench --bin int8_parity -- --quick
//!
//! # Widen the per-suite bound (percentage points):
//! cargo run --release -p ecofusion-bench --bin int8_parity -- --quick --bound 2.0
//! ```
//!
//! The harness runs the full workload-suite registry once at f32 and once
//! with `ECOFUSION_PRECISION=int8` (the same env hook the suites expose to
//! CI), pairs the per-suite mAP numbers into an
//! [`ecofusion_eval::ParityReport`], and exits nonzero when any suite's
//! drift exceeds the bound (default
//! [`ecofusion_eval::DEFAULT_MAX_DRIFT_PP`]). NaN mAP on either side is a
//! violation, never a vacuous pass.
//!
//! It also times the int8 stem and branch kernels against their f32
//! counterparts on the build host and records the ratios in the written
//! report's `int8_speedup` field — informational provenance for the
//! acceptance criterion ("int8 stems/branches measurably cheaper"), never
//! gated, because wall clock on a shared runner is not a stable
//! measurement device.
//!
//! `--out <path>` (default `results/int8_parity.json`) receives the int8
//! run's `BenchReport` with the measured speedups attached.

use ecofusion_detect::stem::STEM_CHANNELS;
use ecofusion_detect::{BranchConfig, BranchDetector, Stem};
use ecofusion_eval::experiments::common::Scale;
use ecofusion_eval::{ParityReport, ParityRow, DEFAULT_MAX_DRIFT_PP};
use ecofusion_harness::{run_report, BenchReport, Int8Speedup};
use ecofusion_tensor::layer::Layer;
use ecofusion_tensor::rng::Rng;
use ecofusion_tensor::tensor::Tensor;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

/// Flags that consume the following argument as their value.
const VALUE_FLAGS: &[&str] = &["--out", "--bound"];

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

fn parse_f64(args: &[String], flag: &str, default: f64) -> f64 {
    match flag_value(args, flag) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("error: {flag} expects a number, got `{v}`");
            std::process::exit(2);
        }),
    }
}

/// Runs every suite at `scale` under the given precision label
/// (`None` = f32 default), restoring the environment afterwards so the
/// two passes cannot leak into each other.
fn run_at(scale: Scale, precision: Option<&str>) -> BenchReport {
    match precision {
        Some(p) => std::env::set_var("ECOFUSION_PRECISION", p),
        None => std::env::remove_var("ECOFUSION_PRECISION"),
    }
    let label = precision.unwrap_or("f32");
    eprintln!("running workload suites at {label} ({scale:?})...");
    let report = match run_report(scale, &[], 1) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {label} suite run failed: {e:?}");
            std::process::exit(1);
        }
    };
    std::env::remove_var("ECOFUSION_PRECISION");
    report
}

/// Median wall-clock seconds of `f` over `iters` runs (after one warmup).
fn time_median(iters: usize, mut f: impl FnMut()) -> f64 {
    f(); // warmup: page in weights, settle allocator
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Times the f32 stem/branch forwards against their quantized
/// counterparts on suite-shaped inputs and returns the speedup ratios.
fn measure_speedups() -> Int8Speedup {
    const ITERS: usize = 9;
    let mut rng = Rng::new(0xBE9C);
    let grid = ecofusion_harness::SUITE_GRID;

    // Stem: one 1-channel sensor at the suite grid, batch of 4 (the
    // scheduler's typical micro-batch shape).
    let mut stem = Stem::new(1, &mut rng);
    let warm = Tensor::randn(&[4, 1, grid, grid], 1.0, &mut rng);
    for _ in 0..5 {
        let _ = stem.forward(&warm, true); // settle batch-norm stats
    }
    let calib: Vec<Tensor> =
        (0..4).map(|_| Tensor::randn(&[1, 1, grid, grid], 1.0, &mut rng)).collect();
    let (pipe, _) = stem.quantize(&calib).expect("stem quantizes");
    let x = Tensor::randn(&[4, 1, grid, grid], 1.0, &mut rng);
    let stem_f32 = time_median(ITERS, || {
        let _ = stem.forward(&x, false);
    });
    let stem_int8 = time_median(ITERS, || {
        let _ = pipe.forward(&x);
    });

    // Branch: the 4-sensor early-fusion head (the widest branch the
    // gate can select), fed stem features at the suite raster.
    let cfg = BranchConfig {
        num_sensors: 4,
        num_classes: ecofusion_harness::SUITE_CLASSES,
        raster: grid,
    };
    let mut branch = BranchDetector::new(cfg, &mut rng);
    let side = Stem::out_size(grid);
    let c_in = STEM_CHANNELS * cfg.num_sensors;
    let warm = Tensor::randn(&[4, c_in, side, side], 1.0, &mut rng);
    for _ in 0..5 {
        let _ = branch.forward(&warm, true);
    }
    let calib: Vec<Tensor> =
        (0..4).map(|_| Tensor::randn(&[1, c_in, side, side], 1.0, &mut rng)).collect();
    let qbranch = branch.quantize(&calib).expect("branch quantizes");
    let feats = Tensor::randn(&[4, c_in, side, side], 1.0, &mut rng);
    let branch_f32 = time_median(ITERS, || {
        let _ = branch.forward(&feats, false);
    });
    let branch_int8 = time_median(ITERS, || {
        let _ = qbranch.forward(&feats);
    });

    Int8Speedup { stem: stem_f32 / stem_int8, branch: branch_f32 / branch_int8 }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    for (i, a) in args.iter().enumerate() {
        let consumed_value = i > 0 && VALUE_FLAGS.contains(&args[i - 1].as_str());
        if !a.starts_with("--") && !consumed_value {
            eprintln!("error: unexpected argument `{a}`");
            return ExitCode::from(2);
        }
    }
    let scale = Scale::from_args(&args);
    let bound = parse_f64(&args, "--bound", DEFAULT_MAX_DRIFT_PP);
    let out = PathBuf::from(
        flag_value(&args, "--out").unwrap_or_else(|| "results/int8_parity.json".into()),
    );

    let f32_report = run_at(scale, None);
    let mut int8_report = run_at(scale, Some("int8"));

    // Pair suites by name; a suite present in one run but not the other
    // would mean the env hook changed the registry, which must never
    // happen silently.
    let mut rows = Vec::new();
    for f in &f32_report.suites {
        let Some(q) = int8_report.suite(&f.suite) else {
            eprintln!("error: suite `{}` missing from the int8 run", f.suite);
            return ExitCode::FAILURE;
        };
        rows.push(ParityRow {
            suite: f.suite.clone(),
            map_f32_pct: f.map_pct,
            map_int8_pct: q.map_pct,
        });
    }
    if rows.len() != int8_report.suites.len() {
        eprintln!("error: int8 run has suites absent from the f32 run");
        return ExitCode::FAILURE;
    }
    let parity = ParityReport::new(rows).with_bound(bound);

    eprintln!("timing int8 kernels vs f32...");
    let speedup = measure_speedups();
    println!(
        "kernel speedup (f32 time / int8 time): stem {:.2}x, branch {:.2}x (informational)",
        speedup.stem, speedup.branch
    );
    int8_report.int8_speedup = Some(speedup);

    print!("{}", parity.render());
    if let Err(e) = int8_report.write_json(&out) {
        eprintln!("error: cannot write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {}", out.display());

    if parity.passes() {
        ExitCode::SUCCESS
    } else {
        eprintln!("int8 parity FAIL: mAP drift past {bound} pp");
        ExitCode::FAILURE
    }
}
