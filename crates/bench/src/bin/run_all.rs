//! Regenerates *every* paper artifact (Fig. 1, Fig. 4, Fig. 5,
//! Tables 1–3, ablations) from a single shared training run.
//!
//! This is the binary behind EXPERIMENTS.md:
//!
//! ```text
//! cargo run --release -p ecofusion-bench --bin run_all -- --full --json
//! ```

use ecofusion_eval::experiments::{
    ablations,
    common::{Scale, Setup},
    fig1, fig4, fig5, table1, table2, table3,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_args(&args);
    eprintln!("preparing shared setup ({scale:?})...");
    let t0 = std::time::Instant::now();
    let mut setup = Setup::prepare(scale, 42);
    eprintln!("setup ready in {:.1}s", t0.elapsed().as_secs_f64());

    let r = table3::run();
    r.print();
    ecofusion_bench::maybe_write_json(&args, "table3", &r);

    let r = table1::run(&mut setup);
    r.print();
    ecofusion_bench::maybe_write_json(&args, "table1", &r);

    let r = table2::run(&mut setup);
    r.print();
    ecofusion_bench::maybe_write_json(&args, "table2", &r);

    let r = fig1::run(&mut setup);
    r.print();
    ecofusion_bench::maybe_write_json(&args, "fig1", &r);

    let r = fig5::run(&mut setup);
    r.print();
    ecofusion_bench::maybe_write_json(&args, "fig5", &r);

    let r = fig4::run(&mut setup);
    r.print();
    ecofusion_bench::maybe_write_json(&args, "fig4", &r);

    let results = vec![
        ablations::gamma_sweep(&mut setup),
        ablations::candidate_rule(&mut setup),
        ablations::fusion_block(&mut setup),
    ];
    for r in &results {
        r.print();
    }
    ecofusion_bench::maybe_write_json(&args, "ablations", &results);
    eprintln!("all artifacts regenerated in {:.1}s total", t0.elapsed().as_secs_f64());
}
