//! Diagnostic harness: per-branch detection quality on a single-context
//! dataset. Not part of the paper reproduction; used to tune training.

use ecofusion_core::{Dataset, DatasetMix, DatasetSpec, InferenceOptions, TrainConfig, Trainer};
use ecofusion_detect::BBox;
use ecofusion_eval::{map_voc, GtFrame};
use ecofusion_scene::Context;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let grid: usize =
        args.iter().position(|a| a == "--grid").map_or(48, |i| args[i + 1].parse().expect("grid"));
    let epochs: usize = args
        .iter()
        .position(|a| a == "--epochs")
        .map_or(10, |i| args[i + 1].parse().expect("epochs"));
    let scenes: usize = args
        .iter()
        .position(|a| a == "--scenes")
        .map_or(100, |i| args[i + 1].parse().expect("scenes"));
    let spec = DatasetSpec {
        seed: 5,
        grid,
        num_scenes: scenes,
        train_fraction: 0.7,
        mix: DatasetMix::Single(Context::City),
    };
    let data = Dataset::generate(&spec);
    let mut config = TrainConfig {
        grid,
        branch_epochs: epochs,
        gate_epochs: 1,
        verbose: true,
        ..TrainConfig::fast_demo()
    };
    config.num_classes = 8;
    let mut trainer = Trainer::new(config, 6);
    let mut model = trainer.train(&data).expect("train");
    let opts = InferenceOptions::new(0.0, 0.5);

    // Per-branch diagnostics over train and test splits.
    let branch_labels: Vec<String> = model.space().branches().iter().map(|b| b.label()).collect();
    for (split, frames) in [("train", data.train()), ("test", data.test())] {
        println!("--- split: {split} ---");
        #[allow(clippy::needless_range_loop)] // b indexes the model and labels alike
        for b in 0..model.space().num_branches() {
            let mut n_dets = 0usize;
            let mut n_gts = 0usize;
            let mut iou_sum = 0.0f32;
            let mut matched = 0usize;
            let mut dets_per_frame = Vec::new();
            let mut gt_frames = Vec::new();
            for f in frames {
                let feats = model.stem_features(&f.obs, false);
                let dets = model.run_branch(b, &feats, opts.score_thresh, opts.nms_iou);
                let gts = f.gt_boxes();
                n_dets += dets.len();
                n_gts += gts.len();
                for gt in &gts {
                    let gb: BBox = (*gt).into();
                    let best = dets.iter().map(|d| d.bbox.iou(&gb)).fold(0.0f32, f32::max);
                    if best > 0.0 {
                        iou_sum += best;
                        matched += 1;
                    }
                }
                dets_per_frame.push(dets);
                gt_frames.push(GtFrame { boxes: gts });
            }
            let ap = map_voc(&dets_per_frame, &gt_frames, 8, 0.5) * 100.0;
            let ap35 = map_voc(&dets_per_frame, &gt_frames, 8, 0.35) * 100.0;
            println!(
            "branch {:<16} dets {:>4} vs gts {:>4} | mean best IoU {:.3} ({} matched) | mAP@.5 {:>6.2}% mAP@.35 {:>6.2}%",
            branch_labels[b],
            n_dets,
            n_gts,
            iou_sum / matched.max(1) as f32,
            matched,
            ap,
            ap35,
        );
        }
    }

    // Late fusion mAP.
    let late = model.baseline_ids().late;
    let mut dets_per_frame = Vec::new();
    let mut gt_frames = Vec::new();
    for f in data.test() {
        let (dets, _) = model.detect_static(f, late, &opts);
        dets_per_frame.push(dets);
        gt_frames.push(GtFrame { boxes: f.gt_boxes() });
    }
    println!(
        "late fusion mAP@.5 = {:.2}%  mAP@.35 = {:.2}%",
        map_voc(&dets_per_frame, &gt_frames, 8, 0.5) * 100.0,
        map_voc(&dets_per_frame, &gt_frames, 8, 0.35) * 100.0
    );
}
