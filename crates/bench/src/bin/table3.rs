//! Regenerates paper Table 3 (sensor clock-gating energy per scenario).
//! Pure energy-model arithmetic; no training involved.

use ecofusion_eval::experiments::table3;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let result = table3::run();
    result.print();
    ecofusion_bench::maybe_write_json(&args, "table3", &result);
}
