//! Runs the fault-matrix robustness sweep: trains the harness model, then
//! evaluates every (fault, severity, context) cell clean vs. fault-blind
//! vs. fault-aware. `--full` uses the full-scale harness configuration;
//! `--json` writes the report next to the other experiment artifacts.

use ecofusion_eval::experiments::robustness::{run_robustness, RobustnessSpec};
use ecofusion_eval::experiments::{Scale, Setup};
use ecofusion_faults::FaultKind;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_args(&args);
    let mut setup = Setup::prepare(scale, 97);
    let mut spec = RobustnessSpec::quick(97, setup.model.grid());
    if scale == Scale::Full {
        spec.frames = 32;
        spec.faults = FaultKind::ALL.to_vec();
        spec.severities = vec![0.25, 0.5, 1.0];
        spec.contexts = ecofusion_scene::Context::ALL.to_vec();
    }
    let report = run_robustness(&mut setup.model, setup.num_classes, &spec);
    report.print();
    ecofusion_bench::maybe_write_json(&args, "robustness", &report);
}
