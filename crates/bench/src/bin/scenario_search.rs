//! Coverage-guided scenario search, suite distillation, and CI replay.
//!
//! ```text
//! # Discover novel-signature scenarios (seeded, deterministic) and
//! # distill the first 2 into committed record-replay suites:
//! cargo run --release -p ecofusion-bench --bin scenario_search -- \
//!     --search --seed 2024 --emit 2 --out-dir suites/distilled
//!
//! # Minimize + distill an existing corpus:
//! cargo run --release -p ecofusion-bench --bin scenario_search -- \
//!     --minimize --corpus results/scenario_corpus.json --out-dir suites/distilled
//!
//! # Replay every committed distilled suite against its recorded
//! # digest/counters (exit 1 on any drift) — the scenario-regression
//! # CI job:
//! cargo run --release -p ecofusion-bench --bin scenario_search -- --replay
//! ```
//!
//! Modes (exactly one):
//!
//! * `--search` — run the coverage-guided search (`--seed`,
//!   `--candidates`, `--ticks` tune it; defaults are the CI-budget
//!   quick shape), print the corpus signatures, and write the corpus
//!   JSON to `--out` (default `results/scenario_corpus.json`). With
//!   `--emit <n>` the first `n` corpus entries are additionally
//!   minimized, distilled, and written under `--out-dir` (default
//!   `suites/distilled`).
//! * `--minimize` — load a corpus JSON (`--corpus`), minimize every
//!   entry (or the first `--emit <n>`), and write the distilled suites
//!   under `--out-dir`.
//! * `--replay` — load every `*.json` under `--dir` (default
//!   `suites/distilled`), re-run each scenario, and compare digest and
//!   counters exactly. Drift details are written as JSON to
//!   `--diff-out` (default `results/scenario_drift.json`) and the exit
//!   code is 1 — the artifact the CI job uploads on failure.
//!
//! Replay is hermetic (fixed model seed, paper-default options, no env
//! precision override) and shard/compile-invariant, so the CI job runs
//! it under `ECOFUSION_COMPILED={0,1}` expecting bit-identical results.

use ecofusion_harness::{load_distilled_dir, replay_distilled, ReplayDrift, DEFAULT_DISTILLED_DIR};
use ecofusion_search::distill;
use ecofusion_search::search::{search, CorpusEntry, Evaluator, SearchConfig};
use serde::Serialize;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Flags that consume the following argument as their value.
const VALUE_FLAGS: &[&str] = &[
    "--seed",
    "--candidates",
    "--ticks",
    "--emit",
    "--out",
    "--out-dir",
    "--corpus",
    "--dir",
    "--diff-out",
];

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

fn parse_u64(args: &[String], flag: &str, default: u64) -> u64 {
    match flag_value(args, flag) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("error: {flag} expects an integer, got `{v}`");
            std::process::exit(2);
        }),
    }
}

/// Rejects unknown flags and stray positionals so a typo'd mode (say
/// `--serach`) fails loudly instead of silently replaying nothing.
fn validate_args(args: &[String]) {
    let modes = ["--search", "--minimize", "--replay"];
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if VALUE_FLAGS.contains(&a.as_str()) {
            i += 2;
        } else if modes.contains(&a.as_str()) {
            i += 1;
        } else {
            eprintln!("error: unknown argument `{a}`");
            std::process::exit(2);
        }
    }
}

fn write_json<T: Serialize>(path: &Path, value: &T) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, format!("{e:?}")))?;
    std::fs::write(path, json + "\n")
}

/// Minimizes + distills `count` corpus entries and writes each as
/// `<out_dir>/auto_s<seed>_<idx>.json`. Returns `false` on any failure.
fn emit_distilled(corpus: &[CorpusEntry], count: usize, seed: u64, out_dir: &Path) -> bool {
    let mut evaluator = Evaluator::new();
    let mut ok = true;
    for (i, entry) in corpus.iter().take(count).enumerate() {
        let name = format!("auto_s{seed}_{i:02}");
        let before = entry.scenario.size().total();
        let suite = match distill(entry, &name, seed, &mut evaluator) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: distilling {name} failed: {e:?}");
                ok = false;
                continue;
            }
        };
        let after = suite.scenario.size().total();
        let path = out_dir.join(format!("{name}.json"));
        match write_json(&path, &suite) {
            Ok(()) => eprintln!(
                "distilled {} ({} -> {} mutable inputs, digest {})",
                path.display(),
                before,
                after,
                suite.expected_digest,
            ),
            Err(e) => {
                eprintln!("error: cannot write {}: {e}", path.display());
                ok = false;
            }
        }
    }
    ok
}

fn print_corpus(corpus: &[CorpusEntry]) {
    println!(
        "{:<22} {:>6} {:>9} {:>6} {:>6} {:>7} {:>8}  signature",
        "scenario", "frames", "rungs", "churn", "drops", "stalls", "mAPloss"
    );
    for e in corpus {
        let s = &e.signature;
        println!(
            "{:<22} {:>6} {:>#09b} {:>6} {:>6} {:>7} {:>8}  {}",
            e.scenario.name,
            e.outcome.counters.frames,
            s.rungs,
            e.outcome.counters.churn,
            e.outcome.counters.dropped,
            e.outcome.counters.stalls,
            s.map_loss_bucket,
            serde_json::to_string(s).unwrap_or_default(),
        );
    }
}

/// One failing suite's drift record, as written to `--diff-out`.
#[derive(Serialize)]
struct SuiteDrift {
    suite: String,
    path: String,
    drifts: Vec<ReplayDrift>,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    validate_args(&args);
    let modes: Vec<&str> = ["--search", "--minimize", "--replay"]
        .into_iter()
        .filter(|m| args.iter().any(|a| a == m))
        .collect();
    if modes.len() != 1 {
        eprintln!("error: pass exactly one of --search / --minimize / --replay");
        return ExitCode::from(2);
    }
    let out_dir = PathBuf::from(
        flag_value(&args, "--out-dir").unwrap_or_else(|| DEFAULT_DISTILLED_DIR.to_string()),
    );

    match modes[0] {
        "--search" => {
            let cfg = SearchConfig {
                seed: parse_u64(&args, "--seed", 2024),
                candidates: parse_u64(&args, "--candidates", 48) as usize,
                ticks: parse_u64(&args, "--ticks", 48),
            };
            eprintln!(
                "searching: seed {}, {} candidates, {} ticks...",
                cfg.seed, cfg.candidates, cfg.ticks
            );
            let corpus = match search(&cfg) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("error: search failed: {e:?}");
                    return ExitCode::FAILURE;
                }
            };
            println!("{} distinct-signature scenarios discovered", corpus.len());
            print_corpus(&corpus);
            let out = PathBuf::from(
                flag_value(&args, "--out").unwrap_or_else(|| "results/scenario_corpus.json".into()),
            );
            if let Err(e) = write_json(&out, &corpus) {
                eprintln!("error: cannot write {}: {e}", out.display());
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {}", out.display());
            let emit = parse_u64(&args, "--emit", 0) as usize;
            if emit > 0 && !emit_distilled(&corpus, emit, cfg.seed, &out_dir) {
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        "--minimize" => {
            let corpus_path = PathBuf::from(
                flag_value(&args, "--corpus")
                    .unwrap_or_else(|| "results/scenario_corpus.json".into()),
            );
            let corpus: Vec<CorpusEntry> = match std::fs::read_to_string(&corpus_path)
                .map_err(|e| e.to_string())
                .and_then(|s| serde_json::from_str(&s).map_err(|e| format!("{e:?}")))
            {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("error: cannot load corpus {}: {e}", corpus_path.display());
                    return ExitCode::FAILURE;
                }
            };
            let seed = parse_u64(&args, "--seed", 2024);
            let emit = parse_u64(&args, "--emit", corpus.len() as u64) as usize;
            if emit_distilled(&corpus, emit, seed, &out_dir) {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        "--replay" => {
            let dir = PathBuf::from(
                flag_value(&args, "--dir").unwrap_or_else(|| DEFAULT_DISTILLED_DIR.to_string()),
            );
            let suites = match load_distilled_dir(&dir) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: cannot load distilled suites from {}: {e}", dir.display());
                    return ExitCode::FAILURE;
                }
            };
            if suites.is_empty() {
                eprintln!("error: no distilled suites under {}", dir.display());
                return ExitCode::FAILURE;
            }
            let mut failing: Vec<SuiteDrift> = Vec::new();
            for (path, suite) in &suites {
                match replay_distilled(suite) {
                    Ok(drifts) if drifts.is_empty() => {
                        println!("replay PASS: {} (digest {})", suite.name, suite.expected_digest);
                    }
                    Ok(drifts) => {
                        eprintln!(
                            "replay FAIL: {} ({} drifted field(s))",
                            suite.name,
                            drifts.len()
                        );
                        for d in &drifts {
                            eprintln!("  {}: expected {}, got {}", d.field, d.expected, d.actual);
                        }
                        failing.push(SuiteDrift {
                            suite: suite.name.clone(),
                            path: path.display().to_string(),
                            drifts,
                        });
                    }
                    Err(e) => {
                        eprintln!("replay ERROR: {}: {e:?}", suite.name);
                        failing.push(SuiteDrift {
                            suite: suite.name.clone(),
                            path: path.display().to_string(),
                            drifts: vec![ReplayDrift {
                                field: "run".to_string(),
                                expected: "completes".to_string(),
                                actual: format!("{e:?}"),
                            }],
                        });
                    }
                }
            }
            if failing.is_empty() {
                println!(
                    "scenario regression PASS: {} suite(s) replayed bit-identically",
                    suites.len()
                );
                return ExitCode::SUCCESS;
            }
            let diff_out = PathBuf::from(
                flag_value(&args, "--diff-out")
                    .unwrap_or_else(|| "results/scenario_drift.json".into()),
            );
            if let Err(e) = write_json(&diff_out, &failing) {
                eprintln!("error: cannot write {}: {e}", diff_out.display());
            } else {
                eprintln!("wrote drift diff {}", diff_out.display());
            }
            eprintln!(
                "scenario regression FAIL: {}/{} suite(s) drifted\n\
                 if the behavior change is deliberate, re-record with --minimize \
                 (or --search --emit) and commit the refreshed suites",
                failing.len(),
                suites.len()
            );
            ExitCode::FAILURE
        }
        _ => unreachable!(),
    }
}
