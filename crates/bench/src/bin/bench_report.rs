//! Workload-suite bench reports and the perf/accuracy regression gate.
//!
//! ```text
//! # Run every suite and write the machine-readable report:
//! cargo run --release -p ecofusion-bench --bin bench_report -- --quick
//!
//! # Gate a fresh run against the committed baseline (exit 1 on drift):
//! cargo run --release -p ecofusion-bench --bin bench_report -- compare
//!
//! # Refresh the committed baseline after a deliberate behavior change:
//! cargo run --release -p ecofusion-bench --bin bench_report -- refresh-baseline
//! ```
//!
//! Modes:
//!
//! * *(default)* — run the suites at `--quick` (default) or `--full`
//!   scale, print a summary table, and write the `BenchReport` JSON to
//!   `--out` (default `results/bench_report.json`).
//! * `compare` — obtain fresh reports (run the suites, or load
//!   `--report <path>` if given; the flag is repeatable, and every
//!   report's band violations are printed in one run with a single
//!   combined exit code), load the baseline from `--baseline`
//!   (default `baselines/bench_baseline.json`), and diff under the gate
//!   tolerances. Exits nonzero on any violation. Bands are tunable:
//!   `--map-band <pp>`, `--energy-band <frac>`, `--latency-band <frac>`.
//! * `refresh-baseline` — run the suites and overwrite the baseline file.
//!
//! `--suite <name>` (repeatable) restricts a run to named suites —
//! useful for debugging one workload, but note the committed baseline
//! covers all five, so a restricted run will fail `compare` on the
//! missing ones.
//!
//! `--shards <n>` runs the suites on `n` runtime worker shards
//! (default 1). Every deterministic report field is shard-invariant, so
//! an N-shard report still compares cleanly against a 1-shard baseline —
//! the CI shard-matrix step relies on exactly that. Only wall-clock
//! throughput and the per-shard breakdown change.
//!
//! `compare --flight-recorder` arms the flight recorder: each suite runs
//! with a bounded trace ring (the last few thousand events), and when the
//! gate **fails** the recorder dumps one Chrome-trace JSON plus one
//! Prometheus text snapshot per suite under `--flight-dir` (default
//! `results/flight`) — load the `.trace.json` in Perfetto to see exactly
//! which stage, ladder move, or fault preceded the drift. On a passing
//! gate nothing is written. The traced run is bit-identical to the
//! untraced one (tracing observes the serial accounting phases only), so
//! arming the recorder never changes the gate verdict.

use ecofusion_detect::stem::STEM_CHANNELS;
use ecofusion_detect::{BranchConfig, BranchDetector, Stem};
use ecofusion_eval::experiments::common::Scale;
use ecofusion_harness::{
    compare, run_report_traced, BenchReport, CompiledSpeedup, Tolerances, DEFAULT_BASELINE_PATH,
    FLIGHT_RECORDER_EVENTS,
};
use ecofusion_tensor::graph::compile_quant_pipe;
use ecofusion_tensor::layer::Layer;
use ecofusion_tensor::rng::Rng;
use ecofusion_tensor::tensor::Tensor;
use ecofusion_trace::{chrome_trace_json, prometheus_snapshot, TraceSink};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

/// Flags that consume the following argument as their value.
const VALUE_FLAGS: &[&str] = &[
    "--out",
    "--baseline",
    "--report",
    "--suite",
    "--shards",
    "--map-band",
    "--energy-band",
    "--latency-band",
    "--flight-dir",
];

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

/// The positional (non-flag, non-flag-value) arguments, wherever they
/// appear. At most one is allowed — the mode — so a misplaced mode like
/// `--quick compare` errors out instead of silently running the default
/// mode with the gate never executed.
fn positionals(args: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if VALUE_FLAGS.contains(&a.as_str()) {
            i += 2;
        } else if a.starts_with("--") {
            i += 1;
        } else {
            out.push(a.clone());
            i += 1;
        }
    }
    out
}

fn flag_values(args: &[String], flag: &str) -> Vec<String> {
    let mut out = Vec::new();
    for (i, a) in args.iter().enumerate() {
        if a == flag {
            if let Some(v) = args.get(i + 1) {
                out.push(v.clone());
            }
        }
    }
    out
}

fn parse_f64(args: &[String], flag: &str, default: f64) -> f64 {
    match flag_value(args, flag) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("error: {flag} expects a number, got `{v}`");
            std::process::exit(2);
        }),
    }
}

fn print_table(report: &BenchReport) {
    println!(
        "backend {} | rev {} | scale {} | model {} | shards {}",
        report.build.backend,
        report.build.git_rev,
        report.build.scale,
        report.build.model,
        report.build.shards,
    );
    println!(
        "{:<14} {:>7} {:>8} {:>11} {:>9} {:>9} {:>9} {:>13} {:>9} {:>10}",
        "suite",
        "frames",
        "mAP(%)",
        "gated (J)",
        "p50 ms",
        "p99 ms",
        "stems",
        "cache hit(%)",
        "fps",
        "digest"
    );
    for s in &report.suites {
        println!(
            "{:<14} {:>7} {:>8.3} {:>11.3} {:>9.2} {:>9.2} {:>9} {:>13.1} {:>9.1} {:>10}",
            s.suite,
            s.frames,
            s.map_pct,
            s.total_gated_j,
            s.latency.p50_ms,
            s.latency.p99_ms,
            s.stems_executed,
            s.cache_hit_rate * 100.0,
            s.throughput_fps,
            &s.determinism_digest[..8.min(s.determinism_digest.len())],
        );
        for f in &s.fleet {
            println!(
                "  └ fleet {:>3} streams: {:>5} frames, avg batch {:>5.2}, {:>8.1} fps on {} shard(s)",
                f.streams, f.frames, f.avg_batch_size, f.throughput_fps, f.shards.max(1)
            );
            for p in &f.per_shard {
                println!(
                    "      shard {}: {:>2} streams, {:>5} frames, {:>4} batches, {:>3} steals ({} frames), busy {:>7.1} ms",
                    p.shard, p.streams, p.frames, p.batches, p.steals, p.stolen_frames, p.busy_ms
                );
            }
        }
    }
}

/// The acceptance-criteria speedup line: 4-shard vs 1-shard wall-clock
/// throughput on the 64-stream fleet. Recorded and printed, never gated —
/// wall clock on a shared runner is not a stable measurement device, and
/// the ≥2× expectation only holds on a multi-core host.
fn print_fleet_speedup(report: &BenchReport) {
    let Some(fleet) = report.suite("fleet_scale") else { return };
    let Some(point) = fleet.fleet.iter().find(|f| f.streams == 64) else { return };
    println!(
        "fleet_scale 64-stream point: {:.1} fps on {} shard(s); rerun with `--shards 1`/`--shards 4` \
         to measure the multi-core speedup (target: 4-shard >= 2x 1-shard on a multi-core host)",
        point.throughput_fps,
        point.shards.max(1),
    );
}

fn fresh_report(scale: Scale, args: &[String]) -> BenchReport {
    fresh_report_traced(scale, args, None).0
}

/// Ratio of two alternating timed closures (a-time / b-time), as the
/// median of per-pair ratios. Interleaving the two sides within each
/// sample cancels the slow frequency / load drift of shared runners that
/// sequential medians cannot — only the ratio is reported, so a globally
/// slow window biases both sides equally.
fn ratio_median(iters: usize, mut a: impl FnMut(), mut b: impl FnMut()) -> f64 {
    a();
    b(); // warmup both sides
    let mut ratios: Vec<f64> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            a();
            let ta = t.elapsed().as_secs_f64();
            let t = Instant::now();
            b();
            let tb = t.elapsed().as_secs_f64();
            ta / tb
        })
        .collect();
    ratios.sort_by(|x, y| x.total_cmp(y));
    ratios[ratios.len() / 2]
}

/// Times the eager stem/branch forwards against their fused compiled
/// plans on batch-8 suite shapes (f32 and int8) and returns the speedup
/// ratios. Informational provenance for the fused-compiler acceptance
/// criterion — never gated, because wall clock on a shared runner is not
/// a stable measurement device.
fn measure_compiled_speedup() -> CompiledSpeedup {
    const ITERS: usize = 21;
    const BATCH: usize = 8;
    let mut rng = Rng::new(0xC0DE);
    let grid = ecofusion_harness::SUITE_GRID;

    // Stem: one 1-channel sensor at the suite grid, batch of 8 (the
    // scheduler's micro-batch cap).
    let mut stem = Stem::new(1, &mut rng);
    let warm = Tensor::randn(&[4, 1, grid, grid], 1.0, &mut rng);
    for _ in 0..5 {
        let _ = stem.forward(&warm, true); // settle batch-norm stats
    }
    let calib: Vec<Tensor> =
        (0..4).map(|_| Tensor::randn(&[1, 1, grid, grid], 1.0, &mut rng)).collect();
    let (pipe, _) = stem.quantize(&calib).expect("stem quantizes");
    let x = Tensor::randn(&[BATCH, 1, grid, grid], 1.0, &mut rng);
    let mut plan = stem.compile(x.shape()).expect("stem compiles");
    let mut out = Tensor::zeros(plan.out_shape());
    let stem_f32 = ratio_median(
        ITERS,
        || {
            let _ = stem.forward(&x, false);
        },
        || plan.execute_into(&x, &mut out),
    );
    let mut qplan = compile_quant_pipe(&pipe, x.shape()).expect("stem pipe compiles");
    let stem_int8 = ratio_median(
        ITERS,
        || {
            let _ = pipe.forward(&x);
        },
        || qplan.execute_into(&x, &mut out),
    );

    // Branch: the 4-sensor early-fusion backbone + head on batch-8 stem
    // features at the suite raster.
    let cfg = BranchConfig {
        num_sensors: 4,
        num_classes: ecofusion_harness::SUITE_CLASSES,
        raster: grid,
    };
    let mut branch = BranchDetector::new(cfg, &mut rng);
    let side = Stem::out_size(grid);
    let c_in = STEM_CHANNELS * cfg.num_sensors;
    let warm = Tensor::randn(&[4, c_in, side, side], 1.0, &mut rng);
    for _ in 0..5 {
        let _ = branch.forward(&warm, true);
    }
    let calib: Vec<Tensor> =
        (0..4).map(|_| Tensor::randn(&[1, c_in, side, side], 1.0, &mut rng)).collect();
    let qbranch = branch.quantize(&calib).expect("branch quantizes");
    let feats = Tensor::randn(&[BATCH, c_in, side, side], 1.0, &mut rng);
    let mut bplan = branch.compile(feats.shape()).expect("branch compiles");
    let mut bout = Tensor::zeros(bplan.out_shape());
    let branch_f32 = ratio_median(
        ITERS,
        || {
            let _ = branch.forward(&feats, false);
        },
        || bplan.execute_into(&feats, &mut bout),
    );
    let mut qbplan = qbranch.compile(feats.shape()).expect("quant branch compiles");
    let branch_int8 = ratio_median(
        ITERS,
        || {
            let _ = qbranch.forward(&feats);
        },
        || qbplan.execute_into(&feats, &mut bout),
    );

    CompiledSpeedup { stem_f32, branch_f32, stem_int8, branch_int8 }
}

/// Runs the suites, optionally with the flight recorder armed
/// (`trace_capacity = Some(..)` attaches a bounded `TraceSink` per suite).
fn fresh_report_traced(
    scale: Scale,
    args: &[String],
    trace_capacity: Option<usize>,
) -> (BenchReport, Vec<(String, TraceSink)>) {
    let only = flag_values(args, "--suite");
    let shards = match flag_value(args, "--shards") {
        None => 1,
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("error: --shards expects a positive integer, got `{v}`");
                std::process::exit(2);
            }
        },
    };
    // A typo here must not produce an empty report (or clobber the
    // baseline) with exit 0.
    for name in &only {
        if ecofusion_harness::SuiteId::from_label(name).is_none() {
            let known: Vec<&str> =
                ecofusion_harness::SuiteId::ALL.iter().map(|id| id.label()).collect();
            eprintln!("error: unknown suite `{name}` (known: {})", known.join(", "));
            std::process::exit(2);
        }
    }
    let armed = if trace_capacity.is_some() { ", flight recorder armed" } else { "" };
    eprintln!("running workload suites ({scale:?}, {shards} shard(s){armed})...");
    match run_report_traced(scale, &only, shards, trace_capacity) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("error: suite run failed: {e:?}");
            std::process::exit(1);
        }
    }
}

/// Writes one Chrome trace and one Prometheus snapshot per suite into
/// `dir`. Only called on a failed gate — a passing run leaves no files.
fn dump_flight(dir: &Path, sinks: &[(String, TraceSink)]) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("error: cannot create flight dir {}: {e}", dir.display());
        return;
    }
    for (suite, sink) in sinks {
        let trace_path = dir.join(format!("{suite}.trace.json"));
        let prom_path = dir.join(format!("{suite}.prom"));
        if let Err(e) = std::fs::write(&trace_path, chrome_trace_json(sink)) {
            eprintln!("error: cannot write {}: {e}", trace_path.display());
            continue;
        }
        if let Err(e) = std::fs::write(&prom_path, prometheus_snapshot(sink)) {
            eprintln!("error: cannot write {}: {e}", prom_path.display());
        }
        eprintln!(
            "flight recorder: {} ({} events, {} dropped) + {}",
            trace_path.display(),
            sink.len(),
            sink.dropped(),
            prom_path.display(),
        );
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(&args);
    let baseline_path = PathBuf::from(
        flag_value(&args, "--baseline").unwrap_or_else(|| DEFAULT_BASELINE_PATH.to_string()),
    );
    // The mode is the single positional argument (flags may come before
    // or after it); `bench_report --quick` runs the default report mode.
    let modes = positionals(&args);
    if modes.len() > 1 {
        eprintln!("error: more than one mode given: {modes:?}");
        return ExitCode::from(2);
    }
    let mode = modes.first().map(String::as_str);

    match mode {
        None => {
            let out = PathBuf::from(
                flag_value(&args, "--out").unwrap_or_else(|| "results/bench_report.json".into()),
            );
            let mut report = fresh_report(scale, &args);
            eprintln!("timing compiled plans vs eager stages...");
            let speedup = measure_compiled_speedup();
            println!(
                "compiled speedup (eager time / compiled time, batch 8): \
                 stem {:.2}x / {:.2}x int8, branch {:.2}x / {:.2}x int8 (informational)",
                speedup.stem_f32, speedup.stem_int8, speedup.branch_f32, speedup.branch_int8
            );
            report.compiled_speedup = Some(speedup);
            print_table(&report);
            print_fleet_speedup(&report);
            if let Err(e) = report.write_json(&out) {
                eprintln!("error: cannot write {}: {e}", out.display());
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {}", out.display());
            ExitCode::SUCCESS
        }
        Some("compare") => {
            let tol = Tolerances {
                map_drop_pct: parse_f64(&args, "--map-band", Tolerances::default().map_drop_pct),
                energy_growth_frac: parse_f64(
                    &args,
                    "--energy-band",
                    Tolerances::default().energy_growth_frac,
                ),
                latency_growth_frac: parse_f64(
                    &args,
                    "--latency-band",
                    Tolerances::default().latency_growth_frac,
                ),
                // Absolute floors stay at their defaults; the bands above
                // are the CI-tunable knobs.
                ..Tolerances::default()
            };
            let baseline = match BenchReport::load_json(&baseline_path) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!(
                        "error: cannot load baseline {}: {e}\n\
                         (generate one with `bench_report refresh-baseline`)",
                        baseline_path.display()
                    );
                    return ExitCode::FAILURE;
                }
            };
            let flight = args.iter().any(|a| a == "--flight-recorder");
            let flight_dir = PathBuf::from(
                flag_value(&args, "--flight-dir").unwrap_or_else(|| "results/flight".into()),
            );
            // `--report` is repeatable: every given report is diffed
            // against the baseline and ALL band violations are printed
            // in one run, with a single exit at the end — so a matrix
            // job can gate several recorded reports in one invocation.
            let report_paths = flag_values(&args, "--report");
            let (labeled, flight_sinks) = if report_paths.is_empty() {
                let (fresh, sinks) =
                    fresh_report_traced(scale, &args, flight.then_some(FLIGHT_RECORDER_EVENTS));
                (vec![("fresh run".to_string(), fresh)], sinks)
            } else {
                let mut labeled = Vec::with_capacity(report_paths.len());
                for path in &report_paths {
                    match BenchReport::load_json(&PathBuf::from(path)) {
                        Ok(r) => labeled.push((path.clone(), r)),
                        Err(e) => {
                            eprintln!("error: cannot load report {path}: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
                (labeled, Vec::new())
            };
            let mut total_violations = 0usize;
            for (label, fresh) in &labeled {
                let violations = compare(&baseline, fresh, &tol);
                for v in &violations {
                    eprintln!("  [{label}] {v}");
                }
                total_violations += violations.len();
            }
            if total_violations == 0 {
                println!(
                    "perf gate PASS: {} report(s) x {} suites vs {} (map band {} pp, energy band {:.1}%, latency band {:.1}%)",
                    labeled.len(),
                    baseline.suites.len(),
                    baseline_path.display(),
                    tol.map_drop_pct,
                    tol.energy_growth_frac * 100.0,
                    tol.latency_growth_frac * 100.0,
                );
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "perf gate FAIL: {total_violations} violation(s) across {} report(s)",
                    labeled.len()
                );
                if !flight_sinks.is_empty() {
                    dump_flight(&flight_dir, &flight_sinks);
                }
                eprintln!(
                    "if this drift is deliberate, refresh the baseline:\n\
                       cargo run --release -p ecofusion-bench --bin bench_report -- refresh-baseline"
                );
                ExitCode::FAILURE
            }
        }
        Some("refresh-baseline") => {
            let report = fresh_report(scale, &args);
            print_table(&report);
            if let Err(e) = report.write_json(&baseline_path) {
                eprintln!("error: cannot write {}: {e}", baseline_path.display());
                return ExitCode::FAILURE;
            }
            eprintln!("refreshed baseline {}", baseline_path.display());
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!(
                "error: unknown mode `{other}` (expected no mode, `compare`, or `refresh-baseline`)"
            );
            ExitCode::from(2)
        }
    }
}
