//! Regenerates paper Figure 5 (per-scenario loss and energy).

use ecofusion_eval::experiments::{
    common::{Scale, Setup},
    fig5,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_args(&args);
    eprintln!("preparing setup ({scale:?})...");
    let mut setup = Setup::prepare(scale, 42);
    let result = fig5::run(&mut setup);
    result.print();
    ecofusion_bench::maybe_write_json(&args, "fig5", &result);
}
