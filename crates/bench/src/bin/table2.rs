//! Regenerates paper Table 2 (gating method evaluation).

use ecofusion_eval::experiments::{
    common::{Scale, Setup},
    table2,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_args(&args);
    eprintln!("preparing setup ({scale:?})...");
    let mut setup = Setup::prepare(scale, 42);
    let result = table2::run(&mut setup);
    result.print();
    ecofusion_bench::maybe_write_json(&args, "table2", &result);
}
