//! Shared helpers for the benchmark binaries and criterion benches.
//!
//! The `[[bin]]` targets (`table1`, `table2`, `table3`, `fig1`, `fig4`,
//! `fig5`, `ablations`) regenerate the paper's tables and figures; run them
//! with `cargo run --release -p ecofusion-bench --bin <name>` (add `--full`
//! for the full-scale harness). The criterion benches measure the
//! wall-clock cost of the pipeline components on this machine — a separate
//! quantity from the calibrated PX2 numbers the tables report.

use ecofusion_core::{Dataset, DatasetSpec, EcoFusionModel};
use ecofusion_tensor::rng::Rng;
use serde::Serialize;
use std::path::PathBuf;

/// Builds a small untrained model + dataset pair for component benches
/// (criterion measures compute, not accuracy, so training is skipped).
pub fn bench_fixture(seed: u64) -> (EcoFusionModel, Dataset) {
    let dataset = Dataset::generate(&DatasetSpec::small(seed));
    let mut rng = Rng::new(seed.wrapping_add(99));
    let model = EcoFusionModel::new(dataset.grid(), 8, &mut rng);
    (model, dataset)
}

/// Writes an experiment result as JSON next to the repository's `results/`
/// directory when `--json` is among the CLI arguments. Errors are reported
/// to stderr but never fatal — table output on stdout is the primary
/// artifact.
pub fn maybe_write_json<T: Serialize>(args: &[String], name: &str, value: &T) {
    if !args.iter().any(|a| a == "--json") {
        return;
    }
    let dir = PathBuf::from("results");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                eprintln!("wrote {}", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialize {name}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_builds() {
        let (model, data) = bench_fixture(1);
        assert_eq!(model.grid(), data.grid());
        assert!(!data.test().is_empty());
    }
}
