//! Microbenchmarks of the NN substrate kernels, including the
//! reference-vs-blocked backend comparison the backend layer is judged
//! by: the blocked backend must hold a ≥3× advantage on the 128³ matmul
//! and the representative stem convolution below.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ecofusion_tensor::backend::{get, BackendKind, ConvSpec};
use ecofusion_tensor::layer::{Conv2d, Layer, SelfAttention2d};
use ecofusion_tensor::rng::Rng;
use ecofusion_tensor::tensor::Tensor;

const BACKENDS: [(&str, BackendKind); 2] =
    [("reference", BackendKind::Reference), ("blocked", BackendKind::Blocked)];

/// The acceptance shape: 128×128×128 matmul per backend.
fn bench_backend_matmul(c: &mut Criterion) {
    let mut rng = Rng::new(7);
    let a = Tensor::randn(&[128, 128], 1.0, &mut rng);
    let b = Tensor::randn(&[128, 128], 1.0, &mut rng);
    let mut group = c.benchmark_group("backend_matmul_128x128x128");
    for (name, kind) in BACKENDS {
        let backend = get(kind);
        group.bench_with_input(BenchmarkId::from_parameter(name), &backend, |bench, be| {
            bench.iter(|| black_box(a.matmul_with(&b, *be)));
        });
    }
    group.finish();
}

/// A representative stem convolution (`Stem`'s 3×3 over a 64 px raster)
/// per backend.
fn bench_backend_stem_conv(c: &mut Criterion) {
    let mut rng = Rng::new(8);
    let spec = ConvSpec { in_channels: 1, out_channels: 8, kernel: 3, stride: 1, padding: 1 };
    let x = Tensor::randn(&[1, 1, 64, 64], 1.0, &mut rng);
    let w = Tensor::randn(&[8, spec.patch_len()], 0.2, &mut rng);
    let bias = vec![0.1f32; 8];
    let mut group = c.benchmark_group("backend_stem_conv_1to8_64px");
    for (name, kind) in BACKENDS {
        let backend = get(kind);
        let mut scratch = Vec::new();
        group.bench_with_input(BenchmarkId::from_parameter(name), &backend, |bench, be| {
            bench.iter(|| black_box(be.conv2d_forward(&x, &w, &bias, &spec, &mut scratch)));
        });
    }
    group.finish();
}

/// A branch-backbone convolution shape per backend, forward and backward.
fn bench_backend_branch_conv(c: &mut Criterion) {
    let mut rng = Rng::new(9);
    let spec = ConvSpec { in_channels: 8, out_channels: 16, kernel: 3, stride: 2, padding: 1 };
    let x = Tensor::randn(&[1, 8, 32, 32], 1.0, &mut rng);
    let w = Tensor::randn(&[16, spec.patch_len()], 0.2, &mut rng);
    let bias = vec![0.0f32; 16];
    let (ho, wo) = spec.out_size(32, 32);
    let grad = Tensor::randn(&[1, 16, ho, wo], 1.0, &mut rng);
    let mut group = c.benchmark_group("backend_branch_conv_8to16_s2_32px");
    for (name, kind) in BACKENDS {
        let backend = get(kind);
        let mut scratch = Vec::new();
        group.bench_with_input(BenchmarkId::new("forward", name), &backend, |bench, be| {
            bench.iter(|| black_box(be.conv2d_forward(&x, &w, &bias, &spec, &mut scratch)));
        });
        group.bench_with_input(BenchmarkId::new("backward", name), &backend, |bench, be| {
            bench.iter(|| black_box(be.conv2d_backward(&x, &w, &grad, &spec, &mut scratch, false)));
        });
    }
    group.finish();
}

fn bench_matmul(c: &mut Criterion) {
    let mut rng = Rng::new(1);
    let a = Tensor::randn(&[64, 128], 1.0, &mut rng);
    let b = Tensor::randn(&[128, 64], 1.0, &mut rng);
    c.bench_function("matmul_64x128x64", |bench| {
        bench.iter(|| black_box(a.matmul(&b)));
    });
    c.bench_function("matmul_tn_64x128x64", |bench| {
        let at = a.transpose();
        bench.iter(|| black_box(at.matmul_tn(&b)));
    });
}

fn bench_conv(c: &mut Criterion) {
    let mut rng = Rng::new(2);
    let mut conv = Conv2d::new(8, 16, 3, 2, 1, &mut rng);
    let x = Tensor::randn(&[1, 8, 32, 32], 1.0, &mut rng);
    c.bench_function("conv2d_8to16_s2_32px_forward", |bench| {
        bench.iter(|| black_box(conv.forward(&x, false)));
    });
    c.bench_function("conv2d_8to16_s2_32px_train_step", |bench| {
        bench.iter(|| {
            let y = conv.forward(&x, true);
            conv.zero_grad();
            black_box(conv.backward(&y));
        });
    });
}

fn bench_attention(c: &mut Criterion) {
    let mut rng = Rng::new(3);
    let mut attn = SelfAttention2d::new(16, &mut rng);
    let x = Tensor::randn(&[1, 16, 16, 16], 1.0, &mut rng);
    c.bench_function("self_attention_16ch_256tokens", |bench| {
        bench.iter(|| black_box(attn.forward(&x, false)));
    });
}

criterion_group!(
    benches,
    bench_backend_matmul,
    bench_backend_stem_conv,
    bench_backend_branch_conv,
    bench_matmul,
    bench_conv,
    bench_attention
);
criterion_main!(benches);
