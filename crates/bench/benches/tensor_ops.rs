//! Microbenchmarks of the NN substrate kernels.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ecofusion_tensor::layer::{Conv2d, Layer, SelfAttention2d};
use ecofusion_tensor::rng::Rng;
use ecofusion_tensor::tensor::Tensor;

fn bench_matmul(c: &mut Criterion) {
    let mut rng = Rng::new(1);
    let a = Tensor::randn(&[64, 128], 1.0, &mut rng);
    let b = Tensor::randn(&[128, 64], 1.0, &mut rng);
    c.bench_function("matmul_64x128x64", |bench| {
        bench.iter(|| black_box(a.matmul(&b)));
    });
    c.bench_function("matmul_tn_64x128x64", |bench| {
        let at = a.transpose();
        bench.iter(|| black_box(at.matmul_tn(&b)));
    });
}

fn bench_conv(c: &mut Criterion) {
    let mut rng = Rng::new(2);
    let mut conv = Conv2d::new(8, 16, 3, 2, 1, &mut rng);
    let x = Tensor::randn(&[1, 8, 32, 32], 1.0, &mut rng);
    c.bench_function("conv2d_8to16_s2_32px_forward", |bench| {
        bench.iter(|| black_box(conv.forward(&x, false)));
    });
    c.bench_function("conv2d_8to16_s2_32px_train_step", |bench| {
        bench.iter(|| {
            let y = conv.forward(&x, true);
            conv.zero_grad();
            black_box(conv.backward(&y));
        });
    });
}

fn bench_attention(c: &mut Criterion) {
    let mut rng = Rng::new(3);
    let mut attn = SelfAttention2d::new(16, &mut rng);
    let x = Tensor::randn(&[1, 16, 16, 16], 1.0, &mut rng);
    c.bench_function("self_attention_16ch_256tokens", |bench| {
        bench.iter(|| black_box(attn.forward(&x, false)));
    });
}

criterion_group!(benches, bench_matmul, bench_conv, bench_attention);
criterion_main!(benches);
