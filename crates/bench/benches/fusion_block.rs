//! Fusion-block microbenchmarks: WBF (the paper's §4.4 block) vs NMS.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ecofusion_detect::{nms, soft_nms, weighted_boxes_fusion, BBox, Detection, WbfParams};
use ecofusion_tensor::rng::Rng;

fn random_detections(n: usize, rng: &mut Rng) -> Vec<Detection> {
    (0..n)
        .map(|_| {
            let x = rng.uniform(0.0, 56.0) as f32;
            let y = rng.uniform(0.0, 56.0) as f32;
            let w = rng.uniform(4.0, 12.0) as f32;
            let h = rng.uniform(4.0, 12.0) as f32;
            Detection::new(
                BBox::new(x, y, x + w, y + h),
                rng.uniform_usize(0, 8),
                rng.uniform(0.05, 1.0) as f32,
            )
        })
        .collect()
}

fn bench_fusers(c: &mut Criterion) {
    let mut group = c.benchmark_group("fusion_block");
    for &n in &[8usize, 32, 128] {
        let mut rng = Rng::new(n as u64);
        // Four branches' worth of detections.
        let branches: Vec<Vec<Detection>> =
            (0..4).map(|_| random_detections(n / 4, &mut rng)).collect();
        let flat: Vec<Detection> = branches.iter().flatten().copied().collect();
        group.bench_with_input(BenchmarkId::new("wbf", n), &branches, |b, branches| {
            b.iter(|| black_box(weighted_boxes_fusion(branches, &WbfParams::default(), 4)));
        });
        group.bench_with_input(BenchmarkId::new("nms", n), &flat, |b, flat| {
            b.iter(|| black_box(nms(flat.clone(), 0.5)));
        });
        group.bench_with_input(BenchmarkId::new("soft_nms", n), &flat, |b, flat| {
            b.iter(|| black_box(soft_nms(flat.clone(), 0.5, 0.05)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fusers);
criterion_main!(benches);
