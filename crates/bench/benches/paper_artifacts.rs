//! One criterion group per paper artifact, measuring the compute behind
//! each table/figure. The corresponding `[[bin]]` targets regenerate the
//! full tables (training included); these benches time the steady-state
//! per-frame work each artifact's rows are made of.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ecofusion_bench::bench_fixture;
use ecofusion_core::InferenceOptions;
use ecofusion_eval::experiments::table3;
use ecofusion_eval::map_voc;
use ecofusion_eval::GtFrame;
use ecofusion_gating::GateKind;

/// Fig. 1 / Fig. 5 rows: one frame under each static fusion method.
fn artifact_fig1_fig5(c: &mut Criterion) {
    let (mut model, data) = bench_fixture(11);
    let frame = &data.test()[0];
    let opts = InferenceOptions::new(0.0, 0.5);
    let b = model.baseline_ids();
    let mut group = c.benchmark_group("fig1_fig5_methods");
    group.bench_function("none_radar", |bench| {
        bench.iter(|| black_box(model.detect_static(frame, b.radar, &opts)))
    });
    group.bench_function("late_fusion", |bench| {
        bench.iter(|| black_box(model.detect_static(frame, b.late, &opts)))
    });
    group.bench_function("ecofusion_attention", |bench| {
        let opts = InferenceOptions::new(0.01, 0.5);
        bench.iter(|| black_box(model.infer(frame, &opts).unwrap()))
    });
    group.finish();
}

/// Table 1 columns: mAP computation over a frame set.
fn artifact_table1_map(c: &mut Criterion) {
    let (mut model, data) = bench_fixture(12);
    let opts = InferenceOptions::new(0.0, 0.5);
    let late = model.baseline_ids().late;
    let dets: Vec<Vec<ecofusion_detect::Detection>> =
        data.test().iter().map(|f| model.detect_static(f, late, &opts).0).collect();
    let gts: Vec<GtFrame> = data.test().iter().map(|f| GtFrame { boxes: f.gt_boxes() }).collect();
    c.bench_function("table1_map_voc", |bench| {
        bench.iter(|| black_box(map_voc(&dets, &gts, 8, 0.5)))
    });
}

/// Table 2 rows: gate prediction + joint optimization for each gate.
fn artifact_table2_gates(c: &mut Criterion) {
    let (mut model, data) = bench_fixture(13);
    let frame = &data.test()[0];
    let mut group = c.benchmark_group("table2_gate_inference");
    for (name, gate) in [
        ("knowledge", GateKind::Knowledge),
        ("deep", GateKind::Deep),
        ("attention", GateKind::Attention),
        ("loss_based_oracle", GateKind::LossBased),
    ] {
        let opts = InferenceOptions::new(0.01, 0.5).with_gate(gate);
        group.bench_function(name, |bench| {
            bench.iter(|| black_box(model.infer(frame, &opts).unwrap()))
        });
    }
    group.finish();
}

/// Fig. 4: the Eq. 7–9 joint optimization over all 127 configurations.
fn artifact_fig4_optimizer(c: &mut Criterion) {
    use ecofusion_core::{select_config, CandidateRule};
    use ecofusion_energy::{Px2Model, StemPolicy};
    let space = ecofusion_core::ConfigSpace::canonical();
    let energies = space.energies(&Px2Model::default(), StemPolicy::Adaptive);
    let mut rng = ecofusion_tensor::rng::Rng::new(14);
    let losses: Vec<f32> = (0..space.num_configs()).map(|_| rng.uniform(0.5, 6.0) as f32).collect();
    c.bench_function("fig4_joint_optimization_127_configs", |bench| {
        bench
            .iter(|| black_box(select_config(&losses, &energies, 0.05, 0.5, CandidateRule::Margin)))
    });
}

/// Table 3: the full clock-gating energy table (pure arithmetic).
fn artifact_table3(c: &mut Criterion) {
    c.bench_function("table3_energy_model", |bench| bench.iter(|| black_box(table3::run())));
}

criterion_group!(
    benches,
    artifact_fig1_fig5,
    artifact_table1_map,
    artifact_table2_gates,
    artifact_fig4_optimizer,
    artifact_table3
);
criterion_main!(benches);
