//! End-to-end pipeline wall-clock benchmarks (this machine's latency — a
//! different quantity from the calibrated PX2 latencies the tables report).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ecofusion_bench::bench_fixture;
use ecofusion_core::{EcoFusionModel, Frame, InferenceOptions};
use ecofusion_faults::{FaultInjector, FaultKind, FaultSchedule, SensorHealthMonitor};
use ecofusion_gating::GateKind;
use ecofusion_runtime::{PerceptionServer, RuntimeConfig, StreamSpec, VehicleStream};
use ecofusion_scene::Context;
use ecofusion_sensors::{SensorKind, SensorMask};
use ecofusion_tensor::rng::Rng;

fn bench_static_configs(c: &mut Criterion) {
    let (mut model, data) = bench_fixture(7);
    let frame = &data.test()[0];
    let opts = InferenceOptions::new(0.0, 0.5);
    let b = model.baseline_ids();
    let mut group = c.benchmark_group("static_config");
    for (name, id) in
        [("single_camera", b.camera_right), ("early_fusion", b.early), ("late_fusion", b.late)]
    {
        group.bench_function(name, |bench| {
            bench.iter(|| black_box(model.detect_static(frame, id, &opts)));
        });
    }
    group.finish();
}

fn bench_adaptive(c: &mut Criterion) {
    let (mut model, data) = bench_fixture(8);
    let frame = &data.test()[0];
    let mut group = c.benchmark_group("adaptive_infer");
    for (name, gate) in [
        ("knowledge", GateKind::Knowledge),
        ("deep", GateKind::Deep),
        ("attention", GateKind::Attention),
    ] {
        let opts = InferenceOptions::new(0.01, 0.5).with_gate(gate);
        group.bench_function(name, |bench| {
            bench.iter(|| black_box(model.infer(frame, &opts).unwrap()));
        });
    }
    group.finish();
}

fn bench_stems_and_gate_features(c: &mut Criterion) {
    let (mut model, data) = bench_fixture(9);
    let frame = &data.test()[0];
    c.bench_function("stem_features_all_sensors", |bench| {
        bench.iter(|| black_box(model.stem_features(&frame.obs, false)));
    });
}

/// Batched vs. sequential adaptive inference over the same 8 frames: the
/// amortization the `infer_batch` path buys (shared stems, one gate pass,
/// grouped branch execution).
fn bench_batched_inference(c: &mut Criterion) {
    let (mut model, data) = bench_fixture(10);
    let frames: Vec<_> = data.test().iter().take(8).cloned().collect();
    let opts = InferenceOptions::new(0.01, 0.5).with_gate(GateKind::Attention);
    let mut group = c.benchmark_group("adaptive_infer_8_frames");
    group.bench_function("sequential", |bench| {
        bench.iter(|| {
            for f in &frames {
                black_box(model.infer(f, &opts).unwrap());
            }
        });
    });
    group.bench_function("batched", |bench| {
        bench.iter(|| black_box(model.infer_batch(&frames, &opts).unwrap()));
    });
    group.finish();
}

/// The multi-stream runtime at 8 concurrent vehicle streams: per-stream
/// sequential `infer` (the no-runtime baseline) vs. the
/// `PerceptionServer` coalescing the same frames into cross-stream
/// micro-batches. Results are bit-identical between the two paths (the
/// runtime's integration tests assert it frame by frame); the difference
/// is pure throughput. Cross-stream amortization covers the per-call
/// work — stems, the gate network pass, branch dispatch, and on
/// multi-core hosts the batched GEMMs cross the backend's thread fan-out
/// threshold that per-frame shapes never reach.
fn bench_multistream_runtime(c: &mut Criterion) {
    const STREAMS: u64 = 8;
    const FRAMES_PER_STREAM: usize = 4;
    let specs: Vec<StreamSpec> = (0..STREAMS)
        .map(|i| {
            StreamSpec::new(3000 + i, 32)
                .with_opts(InferenceOptions::new(0.01, 0.5).with_gate(GateKind::Attention))
        })
        .collect();
    let frames: Vec<Vec<Frame>> =
        specs.iter().map(|s| VehicleStream::new(*s).generate(FRAMES_PER_STREAM)).collect();
    let mut group = c.benchmark_group("multistream_8_streams");
    group.bench_function("per_stream_sequential", |bench| {
        let mut model = EcoFusionModel::new(32, 8, &mut Rng::new(4));
        bench.iter(|| {
            for (spec, stream_frames) in specs.iter().zip(&frames) {
                for frame in stream_frames {
                    black_box(model.infer(frame, &spec.base_opts).unwrap());
                }
            }
        });
    });
    // One shard (pinned — the single-core batching claim) and one shard
    // per hardware-ish core: on a multi-core host the sharded row shows
    // the worker fan-out, on a single-core box it shows its overhead.
    for shards in [1usize, 4] {
        group.bench_function(format!("cross_stream_batched_{shards}_shard"), |bench| {
            let model = EcoFusionModel::new(32, 8, &mut Rng::new(4));
            let cfg = RuntimeConfig {
                max_batch: STREAMS as usize,
                num_classes: 8,
                ..RuntimeConfig::default()
            }
            .with_shards(shards);
            let mut server = PerceptionServer::new(model, &specs, cfg);
            bench.iter(|| {
                // Ingest one frame per stream per tick, process, repeat —
                // the live scheduler's steady state (telemetry accounting
                // is part of serving and stays in the measurement).
                for round in 0..FRAMES_PER_STREAM {
                    for (i, stream_frames) in frames.iter().enumerate() {
                        server.ingest(i, stream_frames[round].clone());
                    }
                    server.process_step().unwrap();
                    server.advance_tick();
                }
                black_box(server.drain().unwrap());
            });
        });
    }
    group.finish();
}

/// Per-stage wall-clock of the staged pipeline, plus the demand-driven
/// stem rule's effect per context: the knowledge gate defers stems until
/// after `Select`, so only the winner's stems execute. The setup prints
/// (and asserts) stems-executed per context — the acceptance signal that
/// pruned contexts run measurably fewer than four stems per frame.
fn bench_stage_breakdown(c: &mut Criterion) {
    let (mut model, data) = bench_fixture(12);
    let frame = data.test()[0].clone();
    let mut group = c.benchmark_group("stage_breakdown");

    // Stems-skipped-per-context under the knowledge gate (City under
    // camera dropout exercises the degraded fallback ladder).
    let know = InferenceOptions::new(0.01, 0.5).with_gate(GateKind::Knowledge);
    let no_cams = SensorMask::all_available()
        .without(SensorKind::CameraLeft)
        .without(SensorKind::CameraRight);
    let mut gen = ecofusion_scene::ScenarioGenerator::new(21);
    let suite = ecofusion_sensors::SensorSuite::new(model.grid());
    let mut any_pruned = false;
    for context in Context::ALL {
        let scene = gen.scene(context);
        let f = Frame { obs: suite.observe(&scene, &mut Rng::new(77)), scene };
        let clean = model.infer(&f, &know).unwrap().stage_trace.stems_executed;
        let degraded =
            model.infer(&f, &know.with_health(no_cams)).unwrap().stage_trace.stems_executed;
        eprintln!(
            "stage_breakdown: {context:?}: {clean}/4 stems executed (knowledge), \
             {degraded}/4 under camera dropout"
        );
        any_pruned |= clean < 4 || degraded < 4;
    }
    assert!(any_pruned, "demand-driven stems must prune at least one context below 4");

    // Per-stage wall-clock on this machine.
    let stem_grid = frame.obs.grid(SensorKind::Lidar).clone();
    group.bench_function("stems_one_sensor", |bench| {
        let stem = &mut model.stems_mut()[SensorKind::Lidar.index()];
        bench.iter(|| black_box(ecofusion_tensor::layer::Layer::forward(stem, &stem_grid, false)));
    });
    let feats = model.stem_features(&frame.obs, false);
    let gate_feats = EcoFusionModel::gate_features(&feats);
    group.bench_function("gate_score_attention", |bench| {
        let input = ecofusion_gating::GateInput::with_context(&gate_feats, frame.scene.context);
        bench.iter(|| {
            black_box(ecofusion_gating::Gate::predict(&mut model.gates_mut().attention, &input))
        });
    });
    let opts = InferenceOptions::new(0.01, 0.5);
    let predicted = vec![0.5f32; model.space().num_configs()];
    let energies = model.space().energies(model.px2(), ecofusion_energy::StemPolicy::Adaptive);
    group.bench_function("select", |bench| {
        bench.iter(|| {
            black_box(ecofusion_core::select_config(
                &predicted,
                &energies,
                opts.lambda_e,
                opts.gamma,
                opts.rule,
            ))
        });
    });
    group.bench_function("branch_single_camera", |bench| {
        bench.iter(|| black_box(model.run_branch(0, &feats, opts.score_thresh, opts.nms_iou)));
    });

    // Int8 counterparts of the stem and branch stages — the kernels the
    // quantized emergency rung serves with. Same inputs as the f32 rows
    // above, so the pairs read as direct per-stage speedups.
    model.ensure_quant().expect("model quantizes");
    let qsnap = model.quantized().expect("quant image cached").clone();
    group.bench_function("stems_one_sensor_int8", |bench| {
        let pipe = qsnap.stem(SensorKind::Lidar.index());
        bench.iter(|| black_box(pipe.forward(&stem_grid)));
    });
    let branch0_input = model.branch_input(0, &feats);
    group.bench_function("branch_single_camera_int8", |bench| {
        let qbranch = qsnap.branch(0);
        bench.iter(|| black_box(qbranch.forward(&branch0_input)));
    });
    let branch_outs: Vec<Vec<ecofusion_detect::Detection>> =
        (0..4).map(|b| model.run_branch(b, &feats, opts.score_thresh, opts.nms_iou)).collect();
    group.bench_function("fuse_wbf_late4", |bench| {
        bench.iter(|| black_box(model.fuse(&branch_outs)));
    });
    let late_specs = model.space().branch_specs(model.baseline_ids().late);
    group.bench_function("account", |bench| {
        bench.iter(|| {
            black_box(ecofusion_core::pipeline::account(
                model.px2(),
                model.sensor_power(),
                &late_specs,
                ecofusion_energy::StemPolicy::Adaptive,
            ))
        });
    });

    // End to end: pruned knowledge inference vs the all-stems learned
    // gate on the same frame.
    group.bench_function("infer_knowledge_pruned", |bench| {
        bench.iter(|| black_box(model.infer(&frame, &know).unwrap()));
    });
    group.bench_function("infer_attention_all_stems", |bench| {
        bench.iter(|| black_box(model.infer(&frame, &opts).unwrap()));
    });
    // The emergency rung's full path: knowledge gate, pruned stems,
    // int8 stem/branch kernels.
    let know_int8 = know.with_precision(ecofusion_core::Precision::Int8);
    group.bench_function("infer_knowledge_pruned_int8", |bench| {
        bench.iter(|| black_box(model.infer(&frame, &know_int8).unwrap()));
    });
    group.finish();
}

/// Eager vs fused-compiled execution of the Stems and Branch stage
/// kernels on batch-8 shapes, f32 and int8 — the graph compiler's
/// speedup, read as adjacent pairs. The compiled rows run
/// `CompiledPlan::execute_into` on a warm plan: one im2col + GEMM per
/// conv block with the BN+ReLU epilogue fused into the write-back, zero
/// steady-state allocations.
fn bench_fused_pipeline(c: &mut Criterion) {
    use ecofusion_tensor::graph::compile_quant_pipe;
    use ecofusion_tensor::layer::Layer;
    use ecofusion_tensor::tensor::Tensor;

    let (mut model, _) = bench_fixture(13);
    let grid = model.grid();
    let mut rng = Rng::new(0xF05E);
    let mut group = c.benchmark_group("fused_pipeline");

    // Stems stage: one 1-channel sensor, batch 8 (the scheduler's
    // micro-batch cap).
    let x = Tensor::randn(&[8, 1, grid, grid], 1.0, &mut rng);
    {
        let stem = &mut model.stems_mut()[SensorKind::Lidar.index()];
        let mut plan = stem.compile(x.shape()).expect("stem compiles");
        let mut out = Tensor::zeros(plan.out_shape());
        group.bench_function("stem_batch8_eager", |bench| {
            bench.iter(|| black_box(Layer::forward(stem, &x, false)));
        });
        group.bench_function("stem_batch8_compiled", |bench| {
            bench.iter(|| plan.execute_into(black_box(&x), &mut out));
        });
    }

    // Branch stage: the single-camera branch on batch-8 stem features.
    let side = grid / 2;
    let feats = Tensor::randn(&[8, 8, side, side], 1.0, &mut rng);
    {
        let mut bplan = {
            let branch = &model.branches_mut()[0];
            branch.compile(feats.shape()).expect("branch compiles")
        };
        let mut bout = Tensor::zeros(bplan.out_shape());
        let branch = &mut model.branches_mut()[0];
        group.bench_function("branch_batch8_eager", |bench| {
            bench.iter(|| black_box(branch.forward(&feats, false)));
        });
        group.bench_function("branch_batch8_compiled", |bench| {
            bench.iter(|| bplan.execute_into(black_box(&feats), &mut bout));
        });
    }

    // Int8 counterparts off the model's quantized image.
    model.ensure_quant().expect("model quantizes");
    let qsnap = model.quantized().expect("quant image cached").clone();
    {
        let pipe = qsnap.stem(SensorKind::Lidar.index());
        let mut qplan = compile_quant_pipe(pipe, x.shape()).expect("stem pipe compiles");
        let mut out = Tensor::zeros(qplan.out_shape());
        group.bench_function("stem_batch8_int8_eager", |bench| {
            bench.iter(|| black_box(pipe.forward(&x)));
        });
        group.bench_function("stem_batch8_int8_compiled", |bench| {
            bench.iter(|| qplan.execute_into(black_box(&x), &mut out));
        });
    }
    {
        let qbranch = qsnap.branch(0);
        let mut qbplan = qbranch.compile(feats.shape()).expect("quant branch compiles");
        let mut bout = Tensor::zeros(qbplan.out_shape());
        group.bench_function("branch_batch8_int8_eager", |bench| {
            bench.iter(|| black_box(qbranch.forward(&feats)));
        });
        group.bench_function("branch_batch8_int8_compiled", |bench| {
            bench.iter(|| qbplan.execute_into(black_box(&feats), &mut bout));
        });
    }
    group.finish();
}

/// Per-frame cost of the fault subsystem next to the inference it rides
/// along with: injector passthrough (clean frame), injector with three
/// active faults, and one health-monitor update. All three must be
/// negligible vs. `adaptive_infer` — the subsystem's overhead budget.
fn bench_fault_pipeline(c: &mut Criterion) {
    let (_, data) = bench_fixture(11);
    let frame = data.test()[0].clone();
    let context = frame.scene.context;
    let mut group = c.benchmark_group("fault_pipeline");

    let mut clean_injector = FaultInjector::new(FaultSchedule::empty(), 3);
    group.bench_function("injector_passthrough", |bench| {
        bench.iter(|| black_box(clean_injector.apply(frame.obs.clone(), context)));
    });

    let schedule = FaultSchedule::empty().with_camera_dropout(0, u64::MAX).with_event(
        SensorKind::Lidar,
        FaultKind::NoiseBurst,
        0,
        u64::MAX,
        1.0,
    );
    let mut active_injector = FaultInjector::new(schedule, 3);
    group.bench_function("injector_three_active_faults", |bench| {
        bench.iter(|| black_box(active_injector.apply(frame.obs.clone(), context)));
    });

    let mut monitor = SensorHealthMonitor::default();
    group.bench_function("health_monitor_update", |bench| {
        bench.iter(|| {
            monitor.update(black_box(&frame.obs));
            black_box(monitor.mask())
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_static_configs,
    bench_adaptive,
    bench_stems_and_gate_features,
    bench_batched_inference,
    bench_multistream_runtime,
    bench_stage_breakdown,
    bench_fused_pipeline,
    bench_fault_pipeline
);
criterion_main!(benches);
