//! End-to-end pipeline wall-clock benchmarks (this machine's latency — a
//! different quantity from the calibrated PX2 latencies the tables report).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ecofusion_bench::bench_fixture;
use ecofusion_core::InferenceOptions;
use ecofusion_gating::GateKind;

fn bench_static_configs(c: &mut Criterion) {
    let (mut model, data) = bench_fixture(7);
    let frame = &data.test()[0];
    let opts = InferenceOptions::new(0.0, 0.5);
    let b = model.baseline_ids();
    let mut group = c.benchmark_group("static_config");
    for (name, id) in [
        ("single_camera", b.camera_right),
        ("early_fusion", b.early),
        ("late_fusion", b.late),
    ] {
        group.bench_function(name, |bench| {
            bench.iter(|| black_box(model.detect_static(frame, id, &opts)));
        });
    }
    group.finish();
}

fn bench_adaptive(c: &mut Criterion) {
    let (mut model, data) = bench_fixture(8);
    let frame = &data.test()[0];
    let mut group = c.benchmark_group("adaptive_infer");
    for (name, gate) in [
        ("knowledge", GateKind::Knowledge),
        ("deep", GateKind::Deep),
        ("attention", GateKind::Attention),
    ] {
        let opts = InferenceOptions::new(0.01, 0.5).with_gate(gate);
        group.bench_function(name, |bench| {
            bench.iter(|| black_box(model.infer(frame, &opts).unwrap()));
        });
    }
    group.finish();
}

fn bench_stems_and_gate_features(c: &mut Criterion) {
    let (mut model, data) = bench_fixture(9);
    let frame = &data.test()[0];
    c.bench_function("stem_features_all_sensors", |bench| {
        bench.iter(|| black_box(model.stem_features(&frame.obs, false)));
    });
}

criterion_group!(benches, bench_static_configs, bench_adaptive, bench_stems_and_gate_features);
criterion_main!(benches);
