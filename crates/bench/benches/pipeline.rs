//! End-to-end pipeline wall-clock benchmarks (this machine's latency — a
//! different quantity from the calibrated PX2 latencies the tables report).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ecofusion_bench::bench_fixture;
use ecofusion_core::InferenceOptions;
use ecofusion_gating::GateKind;

fn bench_static_configs(c: &mut Criterion) {
    let (mut model, data) = bench_fixture(7);
    let frame = &data.test()[0];
    let opts = InferenceOptions::new(0.0, 0.5);
    let b = model.baseline_ids();
    let mut group = c.benchmark_group("static_config");
    for (name, id) in
        [("single_camera", b.camera_right), ("early_fusion", b.early), ("late_fusion", b.late)]
    {
        group.bench_function(name, |bench| {
            bench.iter(|| black_box(model.detect_static(frame, id, &opts)));
        });
    }
    group.finish();
}

fn bench_adaptive(c: &mut Criterion) {
    let (mut model, data) = bench_fixture(8);
    let frame = &data.test()[0];
    let mut group = c.benchmark_group("adaptive_infer");
    for (name, gate) in [
        ("knowledge", GateKind::Knowledge),
        ("deep", GateKind::Deep),
        ("attention", GateKind::Attention),
    ] {
        let opts = InferenceOptions::new(0.01, 0.5).with_gate(gate);
        group.bench_function(name, |bench| {
            bench.iter(|| black_box(model.infer(frame, &opts).unwrap()));
        });
    }
    group.finish();
}

fn bench_stems_and_gate_features(c: &mut Criterion) {
    let (mut model, data) = bench_fixture(9);
    let frame = &data.test()[0];
    c.bench_function("stem_features_all_sensors", |bench| {
        bench.iter(|| black_box(model.stem_features(&frame.obs, false)));
    });
}

/// Batched vs. sequential adaptive inference over the same 8 frames: the
/// amortization the `infer_batch` path buys (shared stems, one gate pass,
/// grouped branch execution).
fn bench_batched_inference(c: &mut Criterion) {
    let (mut model, data) = bench_fixture(10);
    let frames: Vec<_> = data.test().iter().take(8).cloned().collect();
    let opts = InferenceOptions::new(0.01, 0.5).with_gate(GateKind::Attention);
    let mut group = c.benchmark_group("adaptive_infer_8_frames");
    group.bench_function("sequential", |bench| {
        bench.iter(|| {
            for f in &frames {
                black_box(model.infer(f, &opts).unwrap());
            }
        });
    });
    group.bench_function("batched", |bench| {
        bench.iter(|| black_box(model.infer_batch(&frames, &opts).unwrap()));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_static_configs,
    bench_adaptive,
    bench_stems_and_gate_features,
    bench_batched_inference
);
criterion_main!(benches);
