//! Gate input bundle.

use ecofusion_scene::Context;
use ecofusion_tensor::tensor::Tensor;

/// Everything a gating strategy may consult for one frame.
///
/// Learned gates use only `features`; the knowledge gate needs the
/// externally identified `context` (weather service, GPS — paper §4.2.1);
/// the loss-based oracle needs the a-posteriori `oracle_losses`.
#[derive(Debug)]
pub struct GateInput<'a> {
    /// Concatenated stem features of all sensors, shape `(1, C, H, W)`.
    pub features: &'a Tensor,
    /// Externally identified driving context, if available.
    pub context: Option<Context>,
    /// Ground-truth per-configuration losses, if available.
    pub oracle_losses: Option<&'a [f32]>,
}

impl<'a> GateInput<'a> {
    /// Input carrying only stem features (what learned gates need).
    pub fn features_only(features: &'a Tensor) -> Self {
        GateInput { features, context: None, oracle_losses: None }
    }

    /// Input with features and external context.
    pub fn with_context(features: &'a Tensor, context: Context) -> Self {
        GateInput { features, context: Some(context), oracle_losses: None }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let t = Tensor::zeros(&[1, 1, 2, 2]);
        let a = GateInput::features_only(&t);
        assert!(a.context.is_none() && a.oracle_losses.is_none());
        let b = GateInput::with_context(&t, Context::Fog);
        assert_eq!(b.context, Some(Context::Fog));
    }
}
