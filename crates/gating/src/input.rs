//! Gate input bundle.

use ecofusion_scene::Context;
use ecofusion_sensors::SensorMask;
use ecofusion_tensor::tensor::Tensor;

/// Everything a gating strategy may consult for one frame.
///
/// Learned gates use only `features`; the knowledge gate needs the
/// externally identified `context` (weather service, GPS — paper §4.2.1);
/// the loss-based oracle needs the a-posteriori `oracle_losses`. The
/// optional `sensor_health` mask (from a
/// `SensorHealthMonitor`) lets fault-aware gates steer away from
/// configurations that need a dead sensor; `None` and an all-available
/// mask are equivalent, so the clean path is unchanged.
#[derive(Debug)]
pub struct GateInput<'a> {
    /// Concatenated stem features of all sensors, shape `(1, C, H, W)`.
    pub features: &'a Tensor,
    /// Externally identified driving context, if available.
    pub context: Option<Context>,
    /// Ground-truth per-configuration losses, if available.
    pub oracle_losses: Option<&'a [f32]>,
    /// Online sensor availability estimate, if health monitoring runs.
    pub sensor_health: Option<SensorMask>,
}

impl<'a> GateInput<'a> {
    /// Input carrying only stem features (what learned gates need).
    pub fn features_only(features: &'a Tensor) -> Self {
        GateInput { features, context: None, oracle_losses: None, sensor_health: None }
    }

    /// Input with features and external context.
    pub fn with_context(features: &'a Tensor, context: Context) -> Self {
        GateInput { features, context: Some(context), oracle_losses: None, sensor_health: None }
    }

    /// Same input with a sensor availability mask attached.
    pub fn with_health(mut self, mask: SensorMask) -> Self {
        self.sensor_health = Some(mask);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecofusion_sensors::SensorKind;

    #[test]
    fn constructors() {
        let t = Tensor::zeros(&[1, 1, 2, 2]);
        let a = GateInput::features_only(&t);
        assert!(a.context.is_none() && a.oracle_losses.is_none() && a.sensor_health.is_none());
        let b = GateInput::with_context(&t, Context::Fog);
        assert_eq!(b.context, Some(Context::Fog));
        let m = SensorMask::all_available().without(SensorKind::Lidar);
        let c = GateInput::features_only(&t).with_health(m);
        assert_eq!(c.sensor_health, Some(m));
    }
}
