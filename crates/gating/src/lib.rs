//! Context-aware gating strategies (paper §4.2).
//!
//! A gate inspects the stem features `F` of the current frame and estimates
//! the fusion loss `L_f(φ)` of every detector configuration `φ ∈ Φ`; the
//! joint optimizer (in `ecofusion-core`) then picks the configuration to
//! execute. Four strategies are implemented, exactly as in the paper:
//!
//! * [`KnowledgeGate`] (§4.2.1) — static, externally supplied context →
//!   hand-picked configuration. Not tunable by `λ_E`.
//! * [`DeepGate`] (§4.2.2) — three conv layers + one MLP layer regressing
//!   the loss of every configuration from `F`.
//! * [`AttentionGate`] (§4.2.3) — the deep gate with an added
//!   self-attention layer over the feature map.
//! * [`LossBasedGate`] (§4.2.4) — a-posteriori oracle: consumes the true
//!   loss of every configuration; an upper bound, not deployable.
//!
//! Gates are deliberately decoupled from the configuration semantics: they
//! output one predicted loss per configuration index and `ecofusion-core`
//! owns the mapping from indices to branch ensembles.

pub mod deep;
pub mod input;
pub mod knowledge;
pub mod oracle;

pub use deep::{AttentionGate, DeepGate};
pub use input::GateInput;
pub use knowledge::{GateError, KnowledgeGate};
pub use oracle::LossBasedGate;

use serde::{Deserialize, Serialize};
use std::fmt;

/// Which gating strategy a gate implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum GateKind {
    /// Static domain-knowledge rules keyed on external context.
    Knowledge,
    /// Learned CNN+MLP loss predictor.
    Deep,
    /// Learned predictor with self-attention.
    Attention,
    /// Ground-truth-loss oracle (theoretical best case).
    LossBased,
}

impl GateKind {
    /// All gate kinds in paper (Table 2) order.
    pub const ALL: [GateKind; 4] =
        [GateKind::Knowledge, GateKind::Deep, GateKind::Attention, GateKind::LossBased];
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GateKind::Knowledge => "Knowledge",
            GateKind::Deep => "Deep",
            GateKind::Attention => "Attention",
            GateKind::LossBased => "Loss-Based",
        };
        f.write_str(s)
    }
}

/// A gating strategy: estimates per-configuration fusion losses.
pub trait Gate: Send {
    /// The strategy this gate implements.
    fn kind(&self) -> GateKind;

    /// Number of configurations scored.
    fn num_configs(&self) -> usize;

    /// Estimates `L_f(φ)` for every configuration.
    ///
    /// # Panics
    /// Implementations panic if the input lacks what the strategy needs
    /// (context for [`KnowledgeGate`], oracle losses for
    /// [`LossBasedGate`]).
    fn predict(&mut self, input: &GateInput<'_>) -> Vec<f32>;

    /// Estimates losses for a batch of frames in one call.
    ///
    /// `features` stacks the per-frame stem features along the batch axis
    /// (`(N, C, H, W)`); `inputs` carries the per-frame context and oracle
    /// data (and per-frame feature views for the default path). Learned
    /// gates override this with a single batched network pass; the default
    /// simply predicts frame by frame.
    ///
    /// # Panics
    /// Panics if `features`'s batch dimension differs from `inputs.len()`.
    fn predict_batch(
        &mut self,
        features: &ecofusion_tensor::Tensor,
        inputs: &[GateInput<'_>],
    ) -> Vec<Vec<f32>> {
        assert_eq!(features.shape()[0], inputs.len(), "predict_batch length mismatch");
        inputs.iter().map(|input| self.predict(input)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_display_as_in_table2() {
        assert_eq!(GateKind::LossBased.to_string(), "Loss-Based");
        assert_eq!(GateKind::Attention.to_string(), "Attention");
        assert_eq!(GateKind::ALL.len(), 4);
    }
}
