//! Knowledge gating (§4.2.1).

use crate::input::GateInput;
use crate::{Gate, GateKind};
use ecofusion_scene::Context;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Loss value assigned to configurations the knowledge gate did not pick:
/// large enough that the joint optimizer never selects them.
pub const KNOWLEDGE_REJECT_LOSS: f32 = 1.0e6;

/// Static, rule-based gate: domain knowledge maps each rigidly defined
/// driving context to one configuration. The context is assumed to come
/// from external sources (weather service, GPS, clock — paper §4.2.1), so
/// this gate never looks at the stem features.
///
/// Because its output is 0 for the chosen configuration and effectively
/// infinite for all others, the downstream `λ_E` optimization cannot trade
/// the choice off — matching the paper's observation that Knowledge "lacks
/// tunability" (identical loss/energy for every `λ_E` in Table 2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KnowledgeGate {
    rules: BTreeMap<Context, usize>,
    num_configs: usize,
}

impl KnowledgeGate {
    /// Creates a gate from explicit context → configuration-index rules.
    ///
    /// # Panics
    /// Panics if any rule points beyond `num_configs` or if no rule exists
    /// for some context in [`Context::ALL`].
    pub fn new(rules: BTreeMap<Context, usize>, num_configs: usize) -> Self {
        for c in Context::ALL {
            let idx = rules
                .get(&c)
                .unwrap_or_else(|| panic!("knowledge gate missing rule for context {c:?}"));
            assert!(*idx < num_configs, "rule for {c:?} out of range");
        }
        KnowledgeGate { rules, num_configs }
    }

    /// The configured choice for a context.
    pub fn choice(&self, context: Context) -> usize {
        self.rules[&context]
    }
}

impl Gate for KnowledgeGate {
    fn kind(&self) -> GateKind {
        GateKind::Knowledge
    }

    fn num_configs(&self) -> usize {
        self.num_configs
    }

    fn predict(&mut self, input: &GateInput<'_>) -> Vec<f32> {
        let context =
            input.context.expect("knowledge gating requires an externally identified context");
        let mut out = vec![KNOWLEDGE_REJECT_LOSS; self.num_configs];
        out[self.rules[&context]] = 0.0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecofusion_tensor::tensor::Tensor;

    fn rules() -> BTreeMap<Context, usize> {
        Context::ALL.iter().enumerate().map(|(i, c)| (*c, i % 3)).collect()
    }

    #[test]
    fn picks_configured_rule() {
        let mut g = KnowledgeGate::new(rules(), 3);
        let t = Tensor::zeros(&[1, 1, 2, 2]);
        let pred = g.predict(&GateInput::with_context(&t, Context::City));
        let chosen = g.choice(Context::City);
        assert_eq!(pred[chosen], 0.0);
        assert!(pred.iter().enumerate().all(|(i, &v)| i == chosen || v >= KNOWLEDGE_REJECT_LOSS));
    }

    #[test]
    #[should_panic(expected = "externally identified context")]
    fn missing_context_panics() {
        let mut g = KnowledgeGate::new(rules(), 3);
        let t = Tensor::zeros(&[1, 1, 2, 2]);
        let _ = g.predict(&GateInput::features_only(&t));
    }

    #[test]
    #[should_panic(expected = "missing rule")]
    fn incomplete_rules_panics() {
        let mut r = rules();
        r.remove(&Context::Snow);
        let _ = KnowledgeGate::new(r, 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rule_panics() {
        let mut r = rules();
        r.insert(Context::City, 99);
        let _ = KnowledgeGate::new(r, 3);
    }
}
