//! Knowledge gating (§4.2.1).

use crate::input::GateInput;
use crate::{Gate, GateKind};
use ecofusion_scene::Context;
use ecofusion_sensors::SensorMask;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Loss value assigned to configurations the knowledge gate did not pick:
/// large enough that the joint optimizer never selects them.
pub const KNOWLEDGE_REJECT_LOSS: f32 = 1.0e6;

/// Typed error from strict knowledge-gate construction
/// ([`KnowledgeGate::try_new`]) or lookup ([`KnowledgeGate::try_choice`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateError {
    /// No rule maps this context to a configuration.
    MissingRule(Context),
    /// A context's rule points beyond the configuration space.
    RuleOutOfRange(Context, usize),
}

impl fmt::Display for GateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GateError::MissingRule(c) => {
                write!(f, "knowledge gate missing rule for context {c:?}")
            }
            GateError::RuleOutOfRange(c, idx) => {
                write!(f, "knowledge gate rule for {c:?} points at config {idx}, out of range")
            }
        }
    }
}

impl Error for GateError {}

/// Static, rule-based gate: domain knowledge maps each rigidly defined
/// driving context to one configuration. The context is assumed to come
/// from external sources (weather service, GPS, clock — paper §4.2.1), so
/// this gate never looks at the stem features.
///
/// Because its output is 0 for the chosen configuration and effectively
/// infinite for all others, the downstream `λ_E` optimization cannot trade
/// the choice off — matching the paper's observation that Knowledge "lacks
/// tunability" (identical loss/energy for every `λ_E` in Table 2).
///
/// # Degraded-context rules
///
/// A gate built with [`KnowledgeGate::with_degraded_rules`] additionally
/// knows which sensors each configuration consumes and, per context, an
/// ordered list of fallback configurations. When the input carries a
/// [`SensorMask`] that rules out the primary choice, the gate walks the
/// context's fallbacks and picks the first one whose sensors are all
/// available — e.g. "City normally runs `{E(C_L+C_R+L)}`, but with the
/// cameras dead, run lidar+radar instead". With no mask (or an
/// all-available one) behavior is bit-identical to the plain gate.
///
/// # Missing-rule fallback
///
/// A rule map may be incomplete (a deployment that never trained rules
/// for a context it now encounters). Lookups for an unmapped context do
/// not panic: they degrade to [`KnowledgeGate::fallback_choice`] — the
/// configuration with the fewest required sensors (the cheapest
/// single-sensor branch when degraded rules are configured, index 0
/// otherwise) — and [`Gate::predict`] counts the event in
/// [`KnowledgeGate::fallback_events`]. Use [`KnowledgeGate::try_new`]
/// when an incomplete map should be a hard error instead.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KnowledgeGate {
    rules: BTreeMap<Context, usize>,
    num_configs: usize,
    /// Per-context ordered fallback configurations for degraded sensing.
    #[serde(default)]
    fallbacks: BTreeMap<Context, Vec<usize>>,
    /// Sensor-usage bitmask per configuration (bit `i` = canonical sensor
    /// `i` required); empty when degraded rules are not configured.
    #[serde(default)]
    config_sensors: Vec<u8>,
    /// Times a prediction hit a context with no rule and degraded to the
    /// fallback choice.
    #[serde(default)]
    fallback_events: u64,
}

impl KnowledgeGate {
    /// Creates a gate from explicit context → configuration-index rules.
    /// Contexts absent from `rules` degrade at lookup time (see the
    /// missing-rule fallback above) instead of failing here.
    ///
    /// # Panics
    /// Panics if any rule points beyond `num_configs`.
    pub fn new(rules: BTreeMap<Context, usize>, num_configs: usize) -> Self {
        for (c, idx) in &rules {
            assert!(*idx < num_configs, "rule for {c:?} out of range");
        }
        KnowledgeGate {
            rules,
            num_configs,
            fallbacks: BTreeMap::new(),
            config_sensors: Vec::new(),
            fallback_events: 0,
        }
    }

    /// Strict construction: every context in [`Context::ALL`] must have an
    /// in-range rule.
    ///
    /// # Errors
    /// Returns [`GateError::MissingRule`] for the first unmapped context
    /// or [`GateError::RuleOutOfRange`] for the first bad index.
    pub fn try_new(rules: BTreeMap<Context, usize>, num_configs: usize) -> Result<Self, GateError> {
        for c in Context::ALL {
            match rules.get(&c) {
                None => return Err(GateError::MissingRule(c)),
                Some(&idx) if idx >= num_configs => {
                    return Err(GateError::RuleOutOfRange(c, idx));
                }
                Some(_) => {}
            }
        }
        Ok(Self::new(rules, num_configs))
    }

    /// Equips the gate with degraded-context rules: `fallbacks` lists, per
    /// context, alternative configurations in preference order, and
    /// `config_sensors` gives each configuration's required-sensor bitmask
    /// (bit `i` = canonical sensor `i`).
    ///
    /// # Panics
    /// Panics if `config_sensors` does not cover every configuration or a
    /// fallback index is out of range.
    pub fn with_degraded_rules(
        mut self,
        fallbacks: BTreeMap<Context, Vec<usize>>,
        config_sensors: Vec<u8>,
    ) -> Self {
        assert_eq!(
            config_sensors.len(),
            self.num_configs,
            "config_sensors must cover every configuration"
        );
        for (c, list) in &fallbacks {
            for idx in list {
                assert!(*idx < self.num_configs, "fallback for {c:?} out of range");
            }
        }
        self.fallbacks = fallbacks;
        self.config_sensors = config_sensors;
        self
    }

    /// Whether a rule exists for the context.
    pub fn has_rule(&self, context: Context) -> bool {
        self.rules.contains_key(&context)
    }

    /// The choice an unmapped context degrades to: the configuration with
    /// the fewest required sensors (ties broken by lowest index), or
    /// config 0 when degraded rules — and thus sensor usage — are not
    /// configured.
    pub fn fallback_choice(&self) -> usize {
        self.config_sensors
            .iter()
            .enumerate()
            .min_by_key(|(i, bits)| (bits.count_ones(), *i))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// The configured choice for a context, degrading to
    /// [`KnowledgeGate::fallback_choice`] when no rule exists.
    pub fn choice(&self, context: Context) -> usize {
        self.rules.get(&context).copied().unwrap_or_else(|| self.fallback_choice())
    }

    /// Strict lookup of a context's rule.
    ///
    /// # Errors
    /// Returns [`GateError::MissingRule`] when the context is unmapped.
    pub fn try_choice(&self, context: Context) -> Result<usize, GateError> {
        self.rules.get(&context).copied().ok_or(GateError::MissingRule(context))
    }

    /// Predictions that degraded to the fallback choice because the
    /// context had no rule.
    pub fn fallback_events(&self) -> u64 {
        self.fallback_events
    }

    /// The choice for a context given an availability mask: the primary
    /// rule when its sensors are all available (or degraded rules are not
    /// configured), otherwise the first healthy fallback. Falls back to
    /// the primary rule when nothing in the list is fully healthy.
    pub fn choice_with_health(&self, context: Context, mask: SensorMask) -> usize {
        let primary = self.choice(context);
        if self.config_sensors.is_empty() || mask.is_all_available() {
            return primary;
        }
        if mask.allows_bits(self.config_sensors[primary]) {
            return primary;
        }
        self.fallbacks
            .get(&context)
            .and_then(|list| {
                list.iter().find(|idx| mask.allows_bits(self.config_sensors[**idx])).copied()
            })
            .unwrap_or(primary)
    }

    /// Whether degraded-context rules are configured.
    pub fn has_degraded_rules(&self) -> bool {
        !self.config_sensors.is_empty()
    }
}

impl Gate for KnowledgeGate {
    fn kind(&self) -> GateKind {
        GateKind::Knowledge
    }

    fn num_configs(&self) -> usize {
        self.num_configs
    }

    fn predict(&mut self, input: &GateInput<'_>) -> Vec<f32> {
        let context =
            input.context.expect("knowledge gating requires an externally identified context");
        if !self.has_rule(context) {
            self.fallback_events += 1;
        }
        let chosen = match input.sensor_health {
            Some(mask) => self.choice_with_health(context, mask),
            None => self.choice(context),
        };
        let mut out = vec![KNOWLEDGE_REJECT_LOSS; self.num_configs];
        out[chosen] = 0.0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecofusion_tensor::tensor::Tensor;

    fn rules() -> BTreeMap<Context, usize> {
        Context::ALL.iter().enumerate().map(|(i, c)| (*c, i % 3)).collect()
    }

    #[test]
    fn picks_configured_rule() {
        let mut g = KnowledgeGate::new(rules(), 3);
        let t = Tensor::zeros(&[1, 1, 2, 2]);
        let pred = g.predict(&GateInput::with_context(&t, Context::City));
        let chosen = g.choice(Context::City);
        assert_eq!(pred[chosen], 0.0);
        assert!(pred.iter().enumerate().all(|(i, &v)| i == chosen || v >= KNOWLEDGE_REJECT_LOSS));
    }

    #[test]
    #[should_panic(expected = "externally identified context")]
    fn missing_context_panics() {
        let mut g = KnowledgeGate::new(rules(), 3);
        let t = Tensor::zeros(&[1, 1, 2, 2]);
        let _ = g.predict(&GateInput::features_only(&t));
    }

    #[test]
    fn incomplete_rules_degrade_instead_of_panicking() {
        let mut r = rules();
        r.remove(&Context::Snow);
        let mut g = KnowledgeGate::new(r, 3);
        assert!(!g.has_rule(Context::Snow));
        assert_eq!(g.try_choice(Context::Snow), Err(GateError::MissingRule(Context::Snow)));
        // Without sensor usage configured, the fallback is config 0.
        assert_eq!(g.choice(Context::Snow), 0);
        let t = Tensor::zeros(&[1, 1, 2, 2]);
        let pred = g.predict(&GateInput::with_context(&t, Context::Snow));
        assert_eq!(pred[0], 0.0);
        assert_eq!(g.fallback_events(), 1);
        // Mapped contexts do not count as fallbacks.
        let _ = g.predict(&GateInput::with_context(&t, Context::City));
        assert_eq!(g.fallback_events(), 1);
    }

    #[test]
    fn try_new_rejects_incomplete_or_out_of_range_rules() {
        let mut r = rules();
        r.remove(&Context::Snow);
        assert_eq!(
            KnowledgeGate::try_new(r, 3).unwrap_err(),
            GateError::MissingRule(Context::Snow)
        );
        let mut bad = rules();
        bad.insert(Context::City, 99);
        assert_eq!(
            KnowledgeGate::try_new(bad, 3).unwrap_err(),
            GateError::RuleOutOfRange(Context::City, 99)
        );
        assert!(KnowledgeGate::try_new(rules(), 3).is_ok());
        assert!(!GateError::MissingRule(Context::Snow).to_string().is_empty());
    }

    #[test]
    fn missing_rule_fallback_prefers_fewest_sensors() {
        // Sensor usage configured: the fallback is the cheapest
        // single-sensor config (lidar-only, index 1), not index 0.
        let mut g = degraded_gate_missing(Context::Snow);
        assert_eq!(g.fallback_choice(), 1);
        assert_eq!(g.choice(Context::Snow), 1);
        let t = Tensor::zeros(&[1, 1, 2, 2]);
        let pred = g.predict(
            &GateInput::with_context(&t, Context::Snow).with_health(SensorMask::all_available()),
        );
        assert_eq!(pred[1], 0.0);
        assert_eq!(g.fallback_events(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rule_panics() {
        let mut r = rules();
        r.insert(Context::City, 99);
        let _ = KnowledgeGate::new(r, 3);
    }

    use ecofusion_sensors::SensorKind;

    /// Three toy configs: 0 = cameras, 1 = lidar, 2 = lidar+radar.
    fn degraded_gate() -> KnowledgeGate {
        let sensors = vec![
            (1 << SensorKind::CameraLeft.index()) | (1 << SensorKind::CameraRight.index()),
            1 << SensorKind::Lidar.index(),
            (1 << SensorKind::Lidar.index()) | (1 << SensorKind::Radar.index()),
        ];
        let mut rules: BTreeMap<Context, usize> = Context::ALL.iter().map(|c| (*c, 0)).collect();
        rules.insert(Context::Night, 2);
        let fallbacks: BTreeMap<Context, Vec<usize>> =
            Context::ALL.iter().map(|c| (*c, vec![2, 1])).collect();
        KnowledgeGate::new(rules, 3).with_degraded_rules(fallbacks, sensors)
    }

    /// [`degraded_gate`] with one context's rule removed.
    fn degraded_gate_missing(missing: Context) -> KnowledgeGate {
        let sensors = vec![
            (1 << SensorKind::CameraLeft.index()) | (1 << SensorKind::CameraRight.index()),
            1 << SensorKind::Lidar.index(),
            (1 << SensorKind::Lidar.index()) | (1 << SensorKind::Radar.index()),
        ];
        let mut rules: BTreeMap<Context, usize> = Context::ALL.iter().map(|c| (*c, 0)).collect();
        rules.remove(&missing);
        let fallbacks: BTreeMap<Context, Vec<usize>> =
            Context::ALL.iter().map(|c| (*c, vec![2, 1])).collect();
        KnowledgeGate::new(rules, 3).with_degraded_rules(fallbacks, sensors)
    }

    #[test]
    fn healthy_mask_keeps_primary_rule() {
        let mut g = degraded_gate();
        let t = Tensor::zeros(&[1, 1, 2, 2]);
        let all = SensorMask::all_available();
        assert_eq!(g.choice_with_health(Context::City, all), 0);
        let pred = g.predict(&GateInput::with_context(&t, Context::City).with_health(all));
        assert_eq!(pred[0], 0.0);
    }

    #[test]
    fn dead_camera_falls_back_in_preference_order() {
        let mut g = degraded_gate();
        let t = Tensor::zeros(&[1, 1, 2, 2]);
        let no_cams = SensorMask::all_available()
            .without(SensorKind::CameraLeft)
            .without(SensorKind::CameraRight);
        // Primary (cameras) is broken; first fallback (lidar+radar) is
        // healthy.
        assert_eq!(g.choice_with_health(Context::City, no_cams), 2);
        let pred = g.predict(&GateInput::with_context(&t, Context::City).with_health(no_cams));
        assert_eq!(pred[2], 0.0);
        assert!(pred[0] >= KNOWLEDGE_REJECT_LOSS);
        // With radar also dead, the next fallback (lidar alone) wins.
        let lidar_only = no_cams.without(SensorKind::Radar);
        assert_eq!(g.choice_with_health(Context::City, lidar_only), 1);
    }

    #[test]
    fn healthy_primary_ignores_fallbacks_and_exhausted_list_keeps_primary() {
        let g = degraded_gate();
        // Night's primary (lidar+radar) is healthy even without cameras.
        let no_cams = SensorMask::all_available()
            .without(SensorKind::CameraLeft)
            .without(SensorKind::CameraRight);
        assert_eq!(g.choice_with_health(Context::Night, no_cams), 2);
        // Everything dead: nothing in the list is healthy, keep primary.
        assert_eq!(g.choice_with_health(Context::City, SensorMask::none_available()), 0);
    }

    #[test]
    fn gate_without_degraded_rules_ignores_mask() {
        let mut g = KnowledgeGate::new(rules(), 3);
        assert!(!g.has_degraded_rules());
        let t = Tensor::zeros(&[1, 1, 2, 2]);
        let no_cams = SensorMask::all_available().without(SensorKind::CameraLeft);
        let with_mask = g.predict(&GateInput::with_context(&t, Context::City).with_health(no_cams));
        let without = g.predict(&GateInput::with_context(&t, Context::City));
        assert_eq!(with_mask, without);
    }

    #[test]
    #[should_panic(expected = "cover every configuration")]
    fn mismatched_sensor_map_panics() {
        let _ = KnowledgeGate::new(rules(), 3).with_degraded_rules(BTreeMap::new(), vec![0u8; 2]);
    }
}
