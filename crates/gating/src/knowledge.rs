//! Knowledge gating (§4.2.1).

use crate::input::GateInput;
use crate::{Gate, GateKind};
use ecofusion_scene::Context;
use ecofusion_sensors::SensorMask;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Loss value assigned to configurations the knowledge gate did not pick:
/// large enough that the joint optimizer never selects them.
pub const KNOWLEDGE_REJECT_LOSS: f32 = 1.0e6;

/// Static, rule-based gate: domain knowledge maps each rigidly defined
/// driving context to one configuration. The context is assumed to come
/// from external sources (weather service, GPS, clock — paper §4.2.1), so
/// this gate never looks at the stem features.
///
/// Because its output is 0 for the chosen configuration and effectively
/// infinite for all others, the downstream `λ_E` optimization cannot trade
/// the choice off — matching the paper's observation that Knowledge "lacks
/// tunability" (identical loss/energy for every `λ_E` in Table 2).
///
/// # Degraded-context rules
///
/// A gate built with [`KnowledgeGate::with_degraded_rules`] additionally
/// knows which sensors each configuration consumes and, per context, an
/// ordered list of fallback configurations. When the input carries a
/// [`SensorMask`] that rules out the primary choice, the gate walks the
/// context's fallbacks and picks the first one whose sensors are all
/// available — e.g. "City normally runs `{E(C_L+C_R+L)}`, but with the
/// cameras dead, run lidar+radar instead". With no mask (or an
/// all-available one) behavior is bit-identical to the plain gate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KnowledgeGate {
    rules: BTreeMap<Context, usize>,
    num_configs: usize,
    /// Per-context ordered fallback configurations for degraded sensing.
    #[serde(default)]
    fallbacks: BTreeMap<Context, Vec<usize>>,
    /// Sensor-usage bitmask per configuration (bit `i` = canonical sensor
    /// `i` required); empty when degraded rules are not configured.
    #[serde(default)]
    config_sensors: Vec<u8>,
}

impl KnowledgeGate {
    /// Creates a gate from explicit context → configuration-index rules.
    ///
    /// # Panics
    /// Panics if any rule points beyond `num_configs` or if no rule exists
    /// for some context in [`Context::ALL`].
    pub fn new(rules: BTreeMap<Context, usize>, num_configs: usize) -> Self {
        for c in Context::ALL {
            let idx = rules
                .get(&c)
                .unwrap_or_else(|| panic!("knowledge gate missing rule for context {c:?}"));
            assert!(*idx < num_configs, "rule for {c:?} out of range");
        }
        KnowledgeGate { rules, num_configs, fallbacks: BTreeMap::new(), config_sensors: Vec::new() }
    }

    /// Equips the gate with degraded-context rules: `fallbacks` lists, per
    /// context, alternative configurations in preference order, and
    /// `config_sensors` gives each configuration's required-sensor bitmask
    /// (bit `i` = canonical sensor `i`).
    ///
    /// # Panics
    /// Panics if `config_sensors` does not cover every configuration or a
    /// fallback index is out of range.
    pub fn with_degraded_rules(
        mut self,
        fallbacks: BTreeMap<Context, Vec<usize>>,
        config_sensors: Vec<u8>,
    ) -> Self {
        assert_eq!(
            config_sensors.len(),
            self.num_configs,
            "config_sensors must cover every configuration"
        );
        for (c, list) in &fallbacks {
            for idx in list {
                assert!(*idx < self.num_configs, "fallback for {c:?} out of range");
            }
        }
        self.fallbacks = fallbacks;
        self.config_sensors = config_sensors;
        self
    }

    /// The configured choice for a context.
    pub fn choice(&self, context: Context) -> usize {
        self.rules[&context]
    }

    /// The choice for a context given an availability mask: the primary
    /// rule when its sensors are all available (or degraded rules are not
    /// configured), otherwise the first healthy fallback. Falls back to
    /// the primary rule when nothing in the list is fully healthy.
    pub fn choice_with_health(&self, context: Context, mask: SensorMask) -> usize {
        let primary = self.rules[&context];
        if self.config_sensors.is_empty() || mask.is_all_available() {
            return primary;
        }
        if mask.allows_bits(self.config_sensors[primary]) {
            return primary;
        }
        self.fallbacks
            .get(&context)
            .and_then(|list| {
                list.iter().find(|idx| mask.allows_bits(self.config_sensors[**idx])).copied()
            })
            .unwrap_or(primary)
    }

    /// Whether degraded-context rules are configured.
    pub fn has_degraded_rules(&self) -> bool {
        !self.config_sensors.is_empty()
    }
}

impl Gate for KnowledgeGate {
    fn kind(&self) -> GateKind {
        GateKind::Knowledge
    }

    fn num_configs(&self) -> usize {
        self.num_configs
    }

    fn predict(&mut self, input: &GateInput<'_>) -> Vec<f32> {
        let context =
            input.context.expect("knowledge gating requires an externally identified context");
        let chosen = match input.sensor_health {
            Some(mask) => self.choice_with_health(context, mask),
            None => self.rules[&context],
        };
        let mut out = vec![KNOWLEDGE_REJECT_LOSS; self.num_configs];
        out[chosen] = 0.0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecofusion_tensor::tensor::Tensor;

    fn rules() -> BTreeMap<Context, usize> {
        Context::ALL.iter().enumerate().map(|(i, c)| (*c, i % 3)).collect()
    }

    #[test]
    fn picks_configured_rule() {
        let mut g = KnowledgeGate::new(rules(), 3);
        let t = Tensor::zeros(&[1, 1, 2, 2]);
        let pred = g.predict(&GateInput::with_context(&t, Context::City));
        let chosen = g.choice(Context::City);
        assert_eq!(pred[chosen], 0.0);
        assert!(pred.iter().enumerate().all(|(i, &v)| i == chosen || v >= KNOWLEDGE_REJECT_LOSS));
    }

    #[test]
    #[should_panic(expected = "externally identified context")]
    fn missing_context_panics() {
        let mut g = KnowledgeGate::new(rules(), 3);
        let t = Tensor::zeros(&[1, 1, 2, 2]);
        let _ = g.predict(&GateInput::features_only(&t));
    }

    #[test]
    #[should_panic(expected = "missing rule")]
    fn incomplete_rules_panics() {
        let mut r = rules();
        r.remove(&Context::Snow);
        let _ = KnowledgeGate::new(r, 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rule_panics() {
        let mut r = rules();
        r.insert(Context::City, 99);
        let _ = KnowledgeGate::new(r, 3);
    }

    use ecofusion_sensors::SensorKind;

    /// Three toy configs: 0 = cameras, 1 = lidar, 2 = lidar+radar.
    fn degraded_gate() -> KnowledgeGate {
        let sensors = vec![
            (1 << SensorKind::CameraLeft.index()) | (1 << SensorKind::CameraRight.index()),
            1 << SensorKind::Lidar.index(),
            (1 << SensorKind::Lidar.index()) | (1 << SensorKind::Radar.index()),
        ];
        let mut rules: BTreeMap<Context, usize> = Context::ALL.iter().map(|c| (*c, 0)).collect();
        rules.insert(Context::Night, 2);
        let fallbacks: BTreeMap<Context, Vec<usize>> =
            Context::ALL.iter().map(|c| (*c, vec![2, 1])).collect();
        KnowledgeGate::new(rules, 3).with_degraded_rules(fallbacks, sensors)
    }

    #[test]
    fn healthy_mask_keeps_primary_rule() {
        let mut g = degraded_gate();
        let t = Tensor::zeros(&[1, 1, 2, 2]);
        let all = SensorMask::all_available();
        assert_eq!(g.choice_with_health(Context::City, all), 0);
        let pred = g.predict(&GateInput::with_context(&t, Context::City).with_health(all));
        assert_eq!(pred[0], 0.0);
    }

    #[test]
    fn dead_camera_falls_back_in_preference_order() {
        let mut g = degraded_gate();
        let t = Tensor::zeros(&[1, 1, 2, 2]);
        let no_cams = SensorMask::all_available()
            .without(SensorKind::CameraLeft)
            .without(SensorKind::CameraRight);
        // Primary (cameras) is broken; first fallback (lidar+radar) is
        // healthy.
        assert_eq!(g.choice_with_health(Context::City, no_cams), 2);
        let pred = g.predict(&GateInput::with_context(&t, Context::City).with_health(no_cams));
        assert_eq!(pred[2], 0.0);
        assert!(pred[0] >= KNOWLEDGE_REJECT_LOSS);
        // With radar also dead, the next fallback (lidar alone) wins.
        let lidar_only = no_cams.without(SensorKind::Radar);
        assert_eq!(g.choice_with_health(Context::City, lidar_only), 1);
    }

    #[test]
    fn healthy_primary_ignores_fallbacks_and_exhausted_list_keeps_primary() {
        let g = degraded_gate();
        // Night's primary (lidar+radar) is healthy even without cameras.
        let no_cams = SensorMask::all_available()
            .without(SensorKind::CameraLeft)
            .without(SensorKind::CameraRight);
        assert_eq!(g.choice_with_health(Context::Night, no_cams), 2);
        // Everything dead: nothing in the list is healthy, keep primary.
        assert_eq!(g.choice_with_health(Context::City, SensorMask::none_available()), 0);
    }

    #[test]
    fn gate_without_degraded_rules_ignores_mask() {
        let mut g = KnowledgeGate::new(rules(), 3);
        assert!(!g.has_degraded_rules());
        let t = Tensor::zeros(&[1, 1, 2, 2]);
        let no_cams = SensorMask::all_available().without(SensorKind::CameraLeft);
        let with_mask = g.predict(&GateInput::with_context(&t, Context::City).with_health(no_cams));
        let without = g.predict(&GateInput::with_context(&t, Context::City));
        assert_eq!(with_mask, without);
    }

    #[test]
    #[should_panic(expected = "cover every configuration")]
    fn mismatched_sensor_map_panics() {
        let _ = KnowledgeGate::new(rules(), 3).with_degraded_rules(BTreeMap::new(), vec![0u8; 2]);
    }
}
