//! Learned gates: Deep (§4.2.2) and Attention (§4.2.3).

use crate::input::GateInput;
use crate::{Gate, GateKind};
use ecofusion_tensor::layer::{Conv2d, Flatten, Layer, Linear, ReLU, SelfAttention2d, Sequential};
use ecofusion_tensor::loss;
use ecofusion_tensor::param::Param;
use ecofusion_tensor::rng::Rng;
use ecofusion_tensor::tensor::Tensor;

/// Builds the 3-conv trunk shared by both learned gates.
///
/// `spatial` must be divisible by 8 (three stride-2 convolutions).
fn build_net(
    in_channels: usize,
    spatial: usize,
    num_configs: usize,
    with_attention: bool,
    rng: &mut Rng,
) -> Sequential {
    assert!(
        spatial.is_multiple_of(8) && spatial >= 8,
        "gate input spatial size must be a multiple of 8"
    );
    // No normalization layers: the gate must see absolute signal levels
    // (a fog frame is globally dimmer than a clear one), and batch-size-1
    // batch norm would erase exactly that context cue.
    let mut layers: Vec<Box<dyn Layer>> =
        vec![Box::new(Conv2d::new(in_channels, 16, 3, 2, 1, rng)), Box::new(ReLU::new())];
    if with_attention {
        // The attention gate adds one self-attention layer so the gate can
        // focus on informative regions of the feature map (§4.2.3).
        layers.push(Box::new(SelfAttention2d::new(16, rng)));
    }
    layers.extend([
        Box::new(Conv2d::new(16, 16, 3, 2, 1, rng)) as Box<dyn Layer>,
        Box::new(ReLU::new()),
        Box::new(Conv2d::new(16, 8, 3, 2, 1, rng)),
        Box::new(ReLU::new()),
        Box::new(Flatten::new()),
        Box::new(Linear::new(8 * (spatial / 8) * (spatial / 8), num_configs, rng)),
    ]);
    Sequential::new(layers)
}

macro_rules! learned_gate {
    ($(#[$doc:meta])* $name:ident, $kind:expr, $attention:expr) => {
        $(#[$doc])*
        pub struct $name {
            net: Sequential,
            num_configs: usize,
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!(stringify!($name), "(configs={})"), self.num_configs)
            }
        }

        impl $name {
            /// Creates a gate over stem features of shape
            /// `(1, in_channels, spatial, spatial)` scoring `num_configs`
            /// configurations.
            pub fn new(
                in_channels: usize,
                spatial: usize,
                num_configs: usize,
                rng: &mut Rng,
            ) -> Self {
                $name { net: build_net(in_channels, spatial, num_configs, $attention, rng), num_configs }
            }

            /// One regression training step against the true per-config
            /// losses; returns the smooth-L1 loss. Parameter gradients
            /// accumulate for the caller's optimizer.
            ///
            /// # Panics
            /// Panics if `target_losses.len() != num_configs`.
            pub fn train_step(&mut self, features: &Tensor, target_losses: &[f32]) -> f32 {
                assert_eq!(target_losses.len(), self.num_configs, "target length mismatch");
                let pred = self.net.forward(features, true);
                // Regress log1p(loss): fusion losses are heavy-tailed (a
                // missed-everything config costs 4+ while the configs that
                // matter differ by tenths), and raw-scale smooth-L1 lets
                // the tail dominate. The log squash makes the gate rank
                // the *good* configurations accurately; `predict`
                // transforms back to loss scale.
                let squashed: Vec<f32> =
                    target_losses.iter().map(|t| t.max(0.0).ln_1p()).collect();
                let target = Tensor::from_vec(&[1, self.num_configs], squashed);
                let (l, grad) = loss::smooth_l1(&pred, &target, 1.0);
                let _ = self.net.backward(&grad);
                l
            }
        }

        impl Gate for $name {
            fn kind(&self) -> GateKind {
                $kind
            }

            fn num_configs(&self) -> usize {
                self.num_configs
            }

            fn predict(&mut self, input: &GateInput<'_>) -> Vec<f32> {
                let out = self.net.forward(input.features, false);
                // Inverse of the log1p squash used in training, clamped so
                // a slightly-negative regression output stays a valid loss.
                out.into_vec().into_iter().map(|v| v.exp_m1().max(0.0)).collect()
            }

            fn predict_batch(
                &mut self,
                features: &Tensor,
                inputs: &[GateInput<'_>],
            ) -> Vec<Vec<f32>> {
                assert_eq!(
                    features.shape()[0],
                    inputs.len(),
                    "predict_batch length mismatch"
                );
                // One batched pass through the gate network: the stem
                // features of every frame share the convolution lowering
                // and the final linear GEMM.
                let out = self.net.forward(features, false); // (N, configs)
                out.data()
                    .chunks(self.num_configs)
                    .map(|row| row.iter().map(|v| v.exp_m1().max(0.0)).collect())
                    .collect()
            }
        }

        impl Layer for $name {
            fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
                self.net.forward(x, train)
            }

            fn backward(&mut self, grad_out: &Tensor) -> Tensor {
                self.net.backward(grad_out)
            }

            fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
                self.net.visit_params(f);
            }

            fn visit_buffers(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
                self.net.visit_buffers(f);
            }

            fn name(&self) -> &'static str {
                stringify!($name)
            }
        }
    };
}

learned_gate!(
    /// Deep gate (§4.2.2): three convolution layers and one MLP layer
    /// regressing the fusion loss of every configuration from the stem
    /// features.
    DeepGate,
    GateKind::Deep,
    false
);

learned_gate!(
    /// Attention gate (§4.2.3): identical to [`DeepGate`] plus a
    /// self-attention layer that lets the gate weigh informative areas of
    /// the input feature map.
    AttentionGate,
    GateKind::Attention,
    true
);

#[cfg(test)]
mod tests {
    use super::*;
    use ecofusion_tensor::optim::{Optimizer, Sgd};

    fn features(rng: &mut Rng) -> Tensor {
        Tensor::randn(&[1, 4, 16, 16], 1.0, rng)
    }

    #[test]
    fn output_length_matches_configs() {
        let mut rng = Rng::new(1);
        let mut g = DeepGate::new(4, 16, 7, &mut rng);
        let f = features(&mut rng);
        let pred = g.predict(&GateInput::features_only(&f));
        assert_eq!(pred.len(), 7);
        assert_eq!(g.num_configs(), 7);
    }

    #[test]
    fn attention_gate_has_more_params_than_deep() {
        let mut rng = Rng::new(2);
        let mut d = DeepGate::new(4, 16, 5, &mut rng);
        let mut a = AttentionGate::new(4, 16, 5, &mut rng);
        assert!(a.param_count() > d.param_count());
    }

    #[test]
    fn deep_gate_learns_constant_targets() {
        let mut rng = Rng::new(3);
        let mut g = DeepGate::new(4, 16, 3, &mut rng);
        let f = features(&mut rng);
        let targets = [0.5f32, 2.0, 1.0];
        let mut opt = Sgd::new(0.01, 0.9, 0.0);
        for _ in 0..300 {
            g.zero_grad();
            let _ = g.train_step(&f, &targets);
            opt.step(&mut g);
        }
        let pred = g.predict(&GateInput::features_only(&f));
        for (p, t) in pred.iter().zip(&targets) {
            assert!((p - t).abs() < 0.2, "pred {pred:?} vs targets {targets:?}");
        }
    }

    #[test]
    fn attention_gate_learns_constant_targets() {
        let mut rng = Rng::new(4);
        let mut g = AttentionGate::new(4, 16, 2, &mut rng);
        let f = features(&mut rng);
        let targets = [1.5f32, 0.25];
        let mut opt = Sgd::new(0.01, 0.9, 0.0);
        for _ in 0..300 {
            g.zero_grad();
            let _ = g.train_step(&f, &targets);
            opt.step(&mut g);
        }
        let pred = g.predict(&GateInput::features_only(&f));
        for (p, t) in pred.iter().zip(&targets) {
            assert!((p - t).abs() < 0.25, "pred {pred:?} vs targets {targets:?}");
        }
    }

    #[test]
    fn gates_discriminate_inputs_after_training() {
        // Two distinct inputs with opposite targets: the gate must learn
        // input-dependent predictions, not just the mean.
        let mut rng = Rng::new(5);
        let mut g = DeepGate::new(4, 16, 2, &mut rng);
        let fa = Tensor::full(&[1, 4, 16, 16], 1.0);
        let fb = Tensor::full(&[1, 4, 16, 16], -1.0);
        let ta = [0.2f32, 1.8];
        let tb = [1.8f32, 0.2];
        let mut opt = Sgd::new(0.01, 0.9, 0.0);
        for _ in 0..300 {
            g.zero_grad();
            let _ = g.train_step(&fa, &ta);
            let _ = g.train_step(&fb, &tb);
            opt.step(&mut g);
        }
        let pa = g.predict(&GateInput::features_only(&fa));
        let pb = g.predict(&GateInput::features_only(&fb));
        assert!(pa[0] < pa[1], "pa {pa:?}");
        assert!(pb[0] > pb[1], "pb {pb:?}");
    }

    #[test]
    #[should_panic(expected = "target length")]
    fn wrong_target_len_panics() {
        let mut rng = Rng::new(6);
        let mut g = DeepGate::new(4, 16, 3, &mut rng);
        let f = features(&mut rng);
        let _ = g.train_step(&f, &[1.0]);
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn bad_spatial_panics() {
        let mut rng = Rng::new(7);
        let _ = DeepGate::new(4, 12, 3, &mut rng);
    }

    #[test]
    fn predict_batch_matches_per_frame() {
        let mut rng = Rng::new(8);
        let mut deep = DeepGate::new(4, 16, 5, &mut rng);
        let mut attn = AttentionGate::new(4, 16, 5, &mut rng);
        let batch = Tensor::randn(&[3, 4, 16, 16], 1.0, &mut rng);
        let frames: Vec<Tensor> = (0..3).map(|i| batch.select_batch(i)).collect();
        let inputs: Vec<GateInput<'_>> = frames.iter().map(GateInput::features_only).collect();
        for gate in [&mut deep as &mut dyn Gate, &mut attn as &mut dyn Gate] {
            let batched = gate.predict_batch(&batch, &inputs);
            assert_eq!(batched.len(), 3);
            for (i, input) in inputs.iter().enumerate() {
                let single = gate.predict(input);
                for (a, b) in batched[i].iter().zip(&single) {
                    assert!((a - b).abs() <= 1e-5 * (1.0 + a.abs()), "frame {i}: {a} vs {b}");
                }
            }
        }
    }
}
