//! Loss-based (oracle) gating (§4.2.4).

use crate::input::GateInput;
use crate::{Gate, GateKind};
use serde::{Deserialize, Serialize};

/// A-posteriori oracle gate: returns the *true* fusion loss of every
/// configuration for the current input. Not deployable (it requires ground
/// truth), but it upper-bounds what a perfect learned gate could achieve —
/// the paper's "theoretical best-case" row in Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LossBasedGate {
    num_configs: usize,
}

impl LossBasedGate {
    /// Creates an oracle over `num_configs` configurations.
    pub fn new(num_configs: usize) -> Self {
        LossBasedGate { num_configs }
    }
}

impl Gate for LossBasedGate {
    fn kind(&self) -> GateKind {
        GateKind::LossBased
    }

    fn num_configs(&self) -> usize {
        self.num_configs
    }

    fn predict(&mut self, input: &GateInput<'_>) -> Vec<f32> {
        let oracle = input
            .oracle_losses
            .expect("loss-based gating requires a-posteriori per-configuration losses");
        assert_eq!(oracle.len(), self.num_configs, "oracle loss count mismatch");
        oracle.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecofusion_tensor::tensor::Tensor;

    #[test]
    fn returns_oracle_values() {
        let mut g = LossBasedGate::new(3);
        let t = Tensor::zeros(&[1, 1, 2, 2]);
        let oracle = [0.5, 0.2, 0.9];
        let input = GateInput {
            features: &t,
            context: None,
            oracle_losses: Some(&oracle),
            sensor_health: None,
        };
        assert_eq!(g.predict(&input), vec![0.5, 0.2, 0.9]);
    }

    #[test]
    #[should_panic(expected = "a-posteriori")]
    fn missing_oracle_panics() {
        let mut g = LossBasedGate::new(3);
        let t = Tensor::zeros(&[1, 1, 2, 2]);
        let _ = g.predict(&GateInput::features_only(&t));
    }

    #[test]
    #[should_panic(expected = "count mismatch")]
    fn wrong_len_panics() {
        let mut g = LossBasedGate::new(3);
        let t = Tensor::zeros(&[1, 1, 2, 2]);
        let oracle = [0.5];
        let input = GateInput {
            features: &t,
            context: None,
            oracle_losses: Some(&oracle),
            sensor_health: None,
        };
        let _ = g.predict(&input);
    }
}
