//! Per-stream runtime telemetry, aggregated into the same
//! [`EvalSummary`] the offline experiment harness reports.

use crate::hist::LatencyHistogram;
use ecofusion_core::{ConfigId, InferenceOutput, Precision};
use ecofusion_detect::{fusion_loss, Detection};
use ecofusion_energy::StageKind;
use ecofusion_eval::{map_voc, EvalSummary, GtFrame};
use ecofusion_scene::GtBox;
use std::collections::BTreeMap;

/// Upper bound on retained per-frame history (detections + ground truth
/// for the mAP computation). Beyond it the oldest half is discarded, so a
/// long-lived server stays bounded in memory: scalar counters (frames,
/// energy, latency, loss, histogram) remain exact over the whole run,
/// while the summary's mAP covers the most recent window.
pub const HISTORY_CAP: usize = 65_536;

/// Rolling per-stream counters plus the per-frame record needed to compute
/// detection accuracy at report time.
#[derive(Debug, Default)]
pub struct StreamTelemetry {
    frames: u64,
    platform_j: f64,
    total_gated_j: f64,
    latency_ms: f64,
    latency_hist: LatencyHistogram,
    loss_sum: f64,
    queue_wait_ticks: u64,
    config_histogram: BTreeMap<String, usize>,
    dets_per_frame: Vec<Vec<Detection>>,
    selected_configs: Vec<ConfigId>,
    gt_frames: Vec<GtFrame>,
    degraded_frames: u64,
    masked_frames: u64,
    stems_executed: u64,
    stems_cached: u64,
    stems_skipped: u64,
    int8_frames: u64,
    gate_fallbacks: u64,
    stage_energy_j: [f64; StageKind::COUNT],
    stage_latency_ms: [f64; StageKind::COUNT],
}

impl StreamTelemetry {
    /// Creates empty telemetry.
    pub fn new() -> Self {
        StreamTelemetry::default()
    }

    /// Records one processed frame: the inference output, the frame's
    /// ground truth, and how many scheduler ticks it waited in queue.
    pub fn record(&mut self, output: &InferenceOutput, gts: Vec<GtBox>, wait_ticks: u64) {
        self.frames += 1;
        self.platform_j += output.energy.platform.joules();
        self.total_gated_j += output.energy.total_gated().joules();
        self.latency_ms += output.energy.latency.millis();
        self.latency_hist.record(output.energy.latency.millis());
        self.loss_sum += fusion_loss(&output.detections, &gts).total() as f64;
        self.queue_wait_ticks += wait_ticks;
        let trace = &output.stage_trace;
        self.stems_executed += trace.stems_executed as u64;
        self.stems_cached += trace.stems_cached as u64;
        self.stems_skipped += trace.stems_skipped as u64;
        if output.precision == Precision::Int8 {
            self.int8_frames += 1;
        }
        self.gate_fallbacks += u64::from(output.gate_fallbacks);
        for (i, stage) in StageKind::ALL.into_iter().enumerate() {
            self.stage_energy_j[i] += trace.cost(stage).energy.joules();
            self.stage_latency_ms[i] += trace.cost(stage).latency.millis();
        }
        *self.config_histogram.entry(output.selected_label.clone()).or_default() += 1;
        if self.dets_per_frame.len() >= HISTORY_CAP {
            // Drop the oldest half in one amortized move so unbounded
            // serving cannot grow memory without limit.
            let keep = HISTORY_CAP / 2;
            self.dets_per_frame.drain(..self.dets_per_frame.len() - keep);
            self.selected_configs.drain(..self.selected_configs.len() - keep);
            self.gt_frames.drain(..self.gt_frames.len() - keep);
        }
        self.dets_per_frame.push(output.detections.clone());
        self.selected_configs.push(output.selected_config);
        self.gt_frames.push(GtFrame { boxes: gts });
    }

    /// Fused detections of the retained frames (the most recent
    /// [`HISTORY_CAP`]-bounded window), in processing order.
    pub fn detections(&self) -> &[Vec<Detection>] {
        &self.dets_per_frame
    }

    /// Configuration selected for each retained frame, in processing
    /// order (aligned with [`StreamTelemetry::detections`]).
    pub fn selected_configs(&self) -> &[ConfigId] {
        &self.selected_configs
    }

    /// Notes the health verdict the stream's monitor reached for one
    /// frame: `degraded` when any sensor was not healthy, `masked` when
    /// the availability mask actually ruled sensors out. Called once per
    /// processed frame, alongside [`StreamTelemetry::record`].
    pub fn note_health(&mut self, degraded: bool, masked: bool) {
        if degraded {
            self.degraded_frames += 1;
        }
        if masked {
            self.masked_frames += 1;
        }
    }

    /// Frames processed while at least one sensor was degraded or failed.
    pub fn degraded_frames(&self) -> u64 {
        self.degraded_frames
    }

    /// Frames processed while the health mask ruled out at least one
    /// sensor.
    pub fn masked_frames(&self) -> u64 {
        self.masked_frames
    }

    /// Total stems the demand-driven pipeline actually ran.
    pub fn stems_executed(&self) -> u64 {
        self.stems_executed
    }

    /// Total stems served from the stream's feature cache (or an
    /// identical in-batch grid).
    pub fn stems_cached(&self) -> u64 {
        self.stems_cached
    }

    /// Total stems pruned by the demand-driven plan.
    pub fn stems_skipped(&self) -> u64 {
        self.stems_skipped
    }

    /// Frames whose perception stages ran int8-quantized (the emergency
    /// ladder rung, or an explicit [`Precision::Int8`] option).
    pub fn int8_frames(&self) -> u64 {
        self.int8_frames
    }

    /// Frames on which the knowledge gate had no rule for the scene
    /// context and degraded to its cheapest-configuration fallback.
    pub fn gate_fallbacks(&self) -> u64 {
        self.gate_fallbacks
    }

    /// Total modeled per-stage energy, Joules, in [`StageKind::ALL`]
    /// order (sums to the whole-run Eq. 11 total).
    pub fn stage_energy_j(&self) -> &[f64; StageKind::COUNT] {
        &self.stage_energy_j
    }

    /// Total modeled per-stage latency, ms, in [`StageKind::ALL`] order.
    pub fn stage_latency_ms(&self) -> &[f64; StageKind::COUNT] {
        &self.stage_latency_ms
    }

    /// Fixed-bucket histogram of per-frame modeled latency (every
    /// recorded frame, not just the retained mAP window).
    pub fn latency_histogram(&self) -> &LatencyHistogram {
        &self.latency_hist
    }

    /// The `p`-th percentile of per-frame modeled latency, ms (upper
    /// bucket edge; see [`LatencyHistogram::percentile`]).
    pub fn latency_percentile_ms(&self, p: f64) -> f64 {
        self.latency_hist.percentile(p)
    }

    /// Frames recorded.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Frames currently inside the retained mAP window — what
    /// [`StreamTelemetry::summary`] actually computes accuracy over.
    /// Equal to [`StreamTelemetry::frames`] until [`HISTORY_CAP`] is
    /// first exceeded; bounded by the cap afterwards. Surfaced as
    /// [`StreamReport::map_window_frames`](crate::StreamReport::map_window_frames)
    /// so long-run reports say which frames their mAP covers.
    pub fn retained_frames(&self) -> usize {
        self.dets_per_frame.len()
    }

    /// Total platform (PX2) energy spent, Joules.
    pub fn platform_j(&self) -> f64 {
        self.platform_j
    }

    /// Total platform + clock-gated sensor energy spent, Joules (Eq. 11).
    pub fn total_gated_j(&self) -> f64 {
        self.total_gated_j
    }

    /// Mean queueing delay per frame, in scheduler ticks.
    pub fn avg_queue_wait_ticks(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.queue_wait_ticks as f64 / self.frames as f64
        }
    }

    /// Aggregates into the harness's [`EvalSummary`]: mAP over the
    /// retained ([`HISTORY_CAP`]-bounded) frame window, exact
    /// whole-run means for loss/energy/latency, and the full
    /// configuration histogram. Returns a zeroed summary when no frames
    /// were recorded.
    ///
    /// On runs longer than [`HISTORY_CAP`] frames the summary's
    /// `map_pct` is therefore a *windowed* accuracy — it covers the
    /// most recent [`StreamTelemetry::retained_frames`] frames, not the
    /// whole run — while every scalar mean in the summary stays exact
    /// over all [`StreamTelemetry::frames`] frames.
    pub fn summary(&self, num_classes: usize) -> EvalSummary {
        let n = self.frames.max(1) as f64;
        let map = if self.frames == 0 {
            0.0
        } else {
            map_voc(&self.dets_per_frame, &self.gt_frames, num_classes, 0.5) as f64
        };
        EvalSummary {
            map_pct: map * 100.0,
            avg_loss: self.loss_sum / n,
            avg_energy_j: self.platform_j / n,
            avg_latency_ms: self.latency_ms / n,
            avg_total_gated_j: self.total_gated_j / n,
            avg_stems_executed: self.stems_executed as f64 / n,
            stage_energy_j: if self.frames == 0 {
                Vec::new()
            } else {
                self.stage_energy_j.iter().map(|s| s / n).collect()
            },
            frames: self.frames as usize,
            config_histogram: self.config_histogram.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecofusion_core::{Dataset, DatasetSpec, EcoFusionModel, InferenceOptions};
    use ecofusion_tensor::rng::Rng;

    #[test]
    fn empty_telemetry_zeroed() {
        let t = StreamTelemetry::new();
        let s = t.summary(8);
        assert_eq!(s.frames, 0);
        assert_eq!(s.map_pct, 0.0);
        assert_eq!(t.avg_queue_wait_ticks(), 0.0);
    }

    #[test]
    fn record_accumulates_and_matches_summary() -> Result<(), ecofusion_core::model::InferError> {
        let data = Dataset::generate(&DatasetSpec::small(21));
        let mut model = EcoFusionModel::new(32, 8, &mut Rng::new(2));
        let opts = InferenceOptions::new(0.01, 0.5);
        let mut t = StreamTelemetry::new();
        let mut manual_platform = 0.0;
        for (i, f) in data.test().iter().take(3).enumerate() {
            let out = model.infer(f, &opts)?;
            manual_platform += out.energy.platform.joules();
            t.record(&out, f.gt_boxes(), i as u64);
        }
        assert_eq!(t.frames(), 3);
        assert!((t.platform_j() - manual_platform).abs() < 1e-12);
        assert!((t.avg_queue_wait_ticks() - 1.0).abs() < 1e-12);
        let s = t.summary(8);
        assert_eq!(s.frames, 3);
        assert!((s.avg_energy_j - manual_platform / 3.0).abs() < 1e-12);
        assert_eq!(s.config_histogram.values().sum::<usize>(), 3);
        assert!(s.avg_total_gated_j >= s.avg_energy_j);
        // The histogram sees every frame; its exact mean matches the
        // summary's running mean and its percentiles bracket it.
        assert_eq!(t.latency_histogram().count(), 3);
        assert!((t.latency_histogram().mean() - s.avg_latency_ms).abs() < 1e-9);
        let p50 = t.latency_percentile_ms(50.0);
        let p99 = t.latency_percentile_ms(99.0);
        assert!(p50 > 0.0 && p99 >= p50);
        Ok(())
    }

    #[test]
    fn precision_and_fallback_counters_accumulate() -> Result<(), ecofusion_core::model::InferError>
    {
        let data = Dataset::generate(&DatasetSpec::small(22));
        let mut model = EcoFusionModel::new(32, 8, &mut Rng::new(2));
        let mut t = StreamTelemetry::new();
        let frame = &data.test()[0];
        let f32_out = model.infer(frame, &InferenceOptions::new(0.01, 0.5))?;
        t.record(&f32_out, frame.gt_boxes(), 0);
        assert_eq!(t.int8_frames(), 0);
        let int8_opts = InferenceOptions::new(0.01, 0.5).with_precision(Precision::Int8);
        let mut int8_out = model.infer(frame, &int8_opts)?;
        int8_out.gate_fallbacks = 2;
        t.record(&int8_out, frame.gt_boxes(), 0);
        assert_eq!(t.frames(), 2);
        assert_eq!(t.int8_frames(), 1);
        assert_eq!(t.gate_fallbacks(), 2);
        Ok(())
    }

    #[test]
    fn health_counters_accumulate_independently() {
        let mut t = StreamTelemetry::new();
        t.note_health(false, false);
        t.note_health(true, false);
        t.note_health(true, true);
        assert_eq!(t.degraded_frames(), 2);
        assert_eq!(t.masked_frames(), 1);
        // Health notes do not count as processed frames.
        assert_eq!(t.frames(), 0);
    }
}
