//! Sharded multi-core execution of one scheduler step.
//!
//! The [`PerceptionServer`](crate::PerceptionServer) partitions its
//! streams round-robin across `shards` workers. Every processing step
//! still *picks* frames with the single global round-robin coalescer —
//! the pop schedule (and therefore every backpressure drop, stall, and
//! queue-wait tick) is computed exactly as in the single-core scheduler,
//! which is what makes per-stream behavior independent of the shard
//! count. The picked frames are then grouped per `(home shard, options)`
//! into [`StepUnit`]s and executed in parallel by one worker thread per
//! shard, each against its own replica of the (read-only at inference
//! time) `EcoFusionModel`, fanned out with [`std::thread::scope`] — the
//! same dependency-free pattern as the Blocked tensor backend.
//!
//! **Work stealing.** A worker that drains its own shard's units claims
//! whole units from the shard with the most unclaimed work (ties to the
//! lowest shard id), newest unit first. The hand-off granularity is the
//! unit: all frames a stream contributed to a step live in one unit, in
//! FIFO order, so stealing can never reorder or split a stream's frames.
//! Claims go through one atomic compare-exchange per unit — no queues,
//! no locks on the hot path — and because batched inference is
//! bit-identical regardless of which (identical) model replica runs it,
//! the nondeterministic *claim order* cannot perturb any output.
//!
//! **Determinism invariant.** Per-stream outputs, selection digests, and
//! reports are bit-identical for any shard count and with stealing on or
//! off. The scheduler guarantees this by construction: global pick →
//! parallel execute (result-invariant) → serial accounting in unit
//! order. The runtime test suite asserts it directly.

use ecofusion_core::model::InferError;
use ecofusion_core::{EcoFusionModel, Frame, InferenceOptions, InferenceOutput, StemFeatureCache};
use serde::Serialize;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// The home shard of a stream: streams are dealt round-robin so
/// neighboring stream indices land on different workers.
pub(crate) fn shard_of(stream: usize, num_shards: usize) -> usize {
    stream % num_shards
}

/// One worker shard: a private model replica plus executed-work counters.
/// Replicas are restored from a single snapshot of the serving model, and
/// inference never mutates observable model state, so all replicas stay
/// bit-identical for the server's lifetime.
pub(crate) struct ShardState {
    pub(crate) model: EcoFusionModel,
    pub(crate) frames: u64,
    pub(crate) batches: u64,
    pub(crate) steals: u64,
    pub(crate) stolen_frames: u64,
    pub(crate) busy_ns: u64,
}

impl ShardState {
    pub(crate) fn new(model: EcoFusionModel) -> Self {
        ShardState { model, frames: 0, batches: 0, steals: 0, stolen_frames: 0, busy_ns: 0 }
    }
}

/// What one shard's worker actually did over a run (host-dependent where
/// noted; never part of the shard-determinism invariant).
#[derive(Debug, Clone, Serialize)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// Streams whose home this shard is.
    pub streams: usize,
    /// Frames this worker executed (own + stolen).
    pub frames: u64,
    /// Micro-batches this worker executed.
    pub batches: u64,
    /// Units this worker claimed from other shards.
    pub steals: u64,
    /// Frames inside those stolen units.
    pub stolen_frames: u64,
    /// Wall-clock time this worker spent executing, ms (host-dependent).
    pub busy_ms: f64,
}

/// The mutable payload of one work unit: one shard's frames sharing one
/// set of inference options, plus the stem-feature caches of the lanes
/// involved (moved in so a stolen unit still hits its streams' caches,
/// keeping hit/miss counters shard- and steal-invariant).
pub(crate) struct UnitPayload {
    pub(crate) opts: InferenceOptions,
    /// Global lane index per frame, in pick order.
    pub(crate) lane_ids: Vec<usize>,
    pub(crate) frames: Vec<Frame>,
    /// Queue-wait ticks per frame.
    pub(crate) waits: Vec<u64>,
    /// Global pick index per frame within the step. Accounting sorts all
    /// frames of a step by this, so telemetry, budget moves, and trace
    /// events replay in the single global pick order regardless of how
    /// the frames were grouped into units (= regardless of shard count).
    pub(crate) picks: Vec<u64>,
    /// The worker that actually executed the unit (differs from the home
    /// shard exactly when the unit was stolen). Recorded by the worker,
    /// read by the serial accounting phase for shard-track trace spans;
    /// with stealing enabled it is schedule-dependent, like
    /// [`ShardReport::busy_ms`], and explicitly outside the determinism
    /// invariant.
    pub(crate) executed_by: usize,
    /// Stem caches of the distinct lanes in this unit, moved out of the
    /// server for the duration of the step.
    pub(crate) caches: Vec<StemFeatureCache>,
    /// Global lane index per cache slot (for restoring after the join).
    pub(crate) cache_lanes: Vec<usize>,
    /// Cache-slot index per frame (parallel to `frames`).
    pub(crate) cache_slot: Vec<usize>,
    /// Filled by the executing worker.
    pub(crate) outputs: Option<Result<Vec<InferenceOutput>, InferError>>,
}

/// One claimable piece of a step: the unit of parallel execution and of
/// work stealing.
pub(crate) struct StepUnit {
    /// Home shard (the worker that executes it unless stolen).
    pub(crate) shard: usize,
    claimed: AtomicBool,
    payload: Mutex<UnitPayload>,
}

impl StepUnit {
    pub(crate) fn new(shard: usize, payload: UnitPayload) -> Self {
        StepUnit { shard, claimed: AtomicBool::new(false), payload: Mutex::new(payload) }
    }

    /// Consumes the unit after the join (single-threaded again).
    pub(crate) fn into_payload(self) -> UnitPayload {
        self.payload.into_inner().expect("no worker panicked holding a unit")
    }

    fn try_claim(&self) -> bool {
        self.claimed.compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire).is_ok()
    }

    fn is_claimed(&self) -> bool {
        self.claimed.load(Ordering::Acquire)
    }
}

/// Executes every unit, fanning out one scoped worker thread per shard
/// when there is parallelism to exploit. Outputs land inside the units;
/// callers account them serially afterwards, in unit order.
pub(crate) fn execute_units(shards: &mut [ShardState], units: &[StepUnit], stealing: bool) {
    // Serial fast path: a single shard (the default) or a single unit
    // gains nothing from threads; run inline with zero overhead. Each
    // unit still executes on its home shard's model so the counters
    // attribute work the same way the parallel path does.
    if shards.len() == 1 || units.len() == 1 {
        for unit in units {
            if !unit.try_claim() {
                continue;
            }
            let started = Instant::now();
            let shard = unit.shard.min(shards.len() - 1);
            run_unit(unit, &mut shards[shard], shard);
            shards[shard].busy_ns += started.elapsed().as_nanos() as u64;
        }
        return;
    }
    let num_shards = shards.len();
    std::thread::scope(|scope| {
        for (sid, state) in shards.iter_mut().enumerate() {
            scope.spawn(move || {
                let started = Instant::now();
                loop {
                    // Own work first, in unit order.
                    let unit =
                        units.iter().find(|u| u.shard == sid && u.try_claim()).or_else(|| {
                            if stealing {
                                claim_steal(units, sid, num_shards)
                            } else {
                                None
                            }
                        });
                    let Some(unit) = unit else { break };
                    run_unit(unit, state, sid);
                }
                state.busy_ns += started.elapsed().as_nanos() as u64;
            });
        }
    });
}

/// Runs one claimed unit on `state`'s model replica, recording the
/// executing worker's counters.
fn run_unit(unit: &StepUnit, state: &mut ShardState, worker: usize) {
    let mut payload = unit.payload.lock().expect("unit payload lock");
    let UnitPayload { opts, frames, caches, cache_slot, outputs, executed_by, .. } = &mut *payload;
    let result = state.model.infer_batch_cached(frames, opts, caches, cache_slot);
    let n = frames.len() as u64;
    *outputs = Some(result);
    *executed_by = worker;
    state.frames += n;
    state.batches += 1;
    if unit.shard != worker {
        state.steals += 1;
        state.stolen_frames += n;
    }
}

/// Steals one unit for `thief`: picks the victim shard with the most
/// unclaimed units (ties to the lowest shard id) and claims its newest
/// unclaimed unit. Retries on claim races until no unclaimed foreign work
/// remains.
fn claim_steal(units: &[StepUnit], thief: usize, num_shards: usize) -> Option<&StepUnit> {
    loop {
        let mut backlog = vec![0usize; num_shards];
        for u in units {
            if !u.is_claimed() {
                backlog[u.shard] += 1;
            }
        }
        let victim = backlog
            .iter()
            .enumerate()
            .filter(|&(sid, &n)| sid != thief && n > 0)
            .max_by_key(|&(sid, &n)| (n, std::cmp::Reverse(sid)))?
            .0;
        // Newest first: the oldest units are what the victim's own worker
        // is about to reach, so stealing from the back minimizes claim
        // contention.
        for u in units.iter().rev() {
            if u.shard == victim && u.try_claim() {
                return Some(u);
            }
        }
        // Raced out of every candidate; re-survey.
    }
}
