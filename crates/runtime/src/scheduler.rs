//! The multi-stream scheduler: round-robin frame coalescing into
//! cross-stream micro-batches, budget-driven policy adaptation, and the
//! aggregate runtime report.

use crate::budget::{default_ladder, BudgetController};
use crate::queue::{FrameQueue, IngestOutcome, QueuedFrame};
use crate::stream::{StreamSpec, VehicleStream};
use crate::telemetry::StreamTelemetry;
use ecofusion_core::model::InferError;
use ecofusion_core::{EcoFusionModel, Frame, InferenceOptions, StemFeatureCache};
use ecofusion_eval::EvalSummary;
use ecofusion_faults::SensorHealthMonitor;
use ecofusion_gating::GateKind;
use ecofusion_sensors::SensorMask;
use serde::Serialize;

/// Scheduler parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimeConfig {
    /// Maximum frames coalesced into the micro-batches of one processing
    /// step (across all streams).
    pub max_batch: usize,
    /// Object classes, for the mAP in per-stream summaries.
    pub num_classes: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig { max_batch: 8, num_classes: 8 }
    }
}

/// One stream's server-side state.
struct Lane {
    queue: FrameQueue,
    controller: BudgetController,
    base_opts: InferenceOptions,
    opts: InferenceOptions,
    telemetry: StreamTelemetry,
    monitor: SensorHealthMonitor,
    health_gating: bool,
    stalls: u64,
    malformed: u64,
}

impl Lane {
    fn new(spec: &StreamSpec) -> Self {
        Lane {
            queue: FrameQueue::new(spec.queue_capacity, spec.backpressure),
            controller: BudgetController::new(spec.budget, default_ladder(&spec.base_opts)),
            base_opts: spec.base_opts,
            opts: spec.base_opts,
            telemetry: StreamTelemetry::new(),
            monitor: SensorHealthMonitor::default(),
            health_gating: spec.health_gating,
            stalls: 0,
            malformed: 0,
        }
    }

    /// The availability mask the lane's gating currently runs with (all
    /// available when fault-aware gating is off).
    fn active_mask(&self) -> SensorMask {
        if self.health_gating {
            self.monitor.mask()
        } else {
            SensorMask::all_available()
        }
    }
}

/// Everything the report says about one stream.
#[derive(Debug, Clone, Serialize)]
pub struct StreamReport {
    /// Stream index (position in the spec list).
    pub stream: usize,
    /// The harness-compatible accuracy/energy/latency summary.
    pub summary: EvalSummary,
    /// Frames evicted by drop-oldest backpressure.
    pub dropped: u64,
    /// Producer stalls under stall backpressure.
    pub stalls: u64,
    /// Deepest the stream's queue ever got.
    pub queue_high_water: usize,
    /// Mean scheduler-tick queueing delay per processed frame.
    pub avg_queue_wait_ticks: f64,
    /// Median per-frame modeled latency, ms (fixed-bucket histogram
    /// upper edge; the mean stays in `summary.avg_latency_ms`).
    pub latency_p50_ms: f64,
    /// 95th-percentile per-frame modeled latency, ms.
    pub latency_p95_ms: f64,
    /// 99th-percentile per-frame modeled latency, ms.
    pub latency_p99_ms: f64,
    /// Budget escalations (moves to a cheaper policy).
    pub escalations: u64,
    /// Budget relaxations (moves back toward the base policy).
    pub relaxations: u64,
    /// Escalation level at the end of the run (0 = base policy).
    pub final_level: usize,
    /// Gate in force at the end of the run.
    pub final_gate: GateKind,
    /// `λ_E` in force at the end of the run.
    pub final_lambda_e: f64,
    /// Rolling mean total energy at the end of the run, Joules/frame.
    pub rolling_energy_j: f64,
    /// Total platform energy spent by the stream, Joules.
    pub total_platform_j: f64,
    /// Total platform + clock-gated sensor energy spent, Joules.
    pub total_gated_j: f64,
    /// Frames processed while the health monitor saw a degraded or failed
    /// sensor.
    pub degraded_frames: u64,
    /// Frames processed with at least one sensor masked out of gating.
    pub masked_frames: u64,
    /// Stems the demand-driven pipeline actually ran for the stream.
    pub stems_executed: u64,
    /// Stems served from the stream's feature cache (frozen grids).
    pub stems_cached: u64,
    /// Stems pruned by the demand-driven plan (never run at all).
    pub stems_skipped: u64,
    /// Stem-cache lookups that found a matching grid.
    pub stem_cache_hits: u64,
    /// Stem-cache lookups that missed.
    pub stem_cache_misses: u64,
    /// Mean per-stage total energy per frame, Joules, in
    /// `StageKind::ALL` order (empty before the first frame).
    pub stage_energy_j: Vec<f64>,
    /// Health-state transitions (e.g. healthy → failed) over the run.
    pub health_transitions: u64,
    /// Per-sensor health scores at the end of the run, canonical order.
    pub final_health: Vec<f64>,
    /// Availability mask in force at the end of the run.
    pub final_mask: SensorMask,
    /// Whether fault-aware gating was enabled for the stream.
    pub health_gating: bool,
    /// Frames rejected at ingest validation (grid mismatch).
    pub rejected_malformed: u64,
}

/// Aggregate outcome of a runtime session.
#[derive(Debug, Clone, Serialize)]
pub struct RuntimeReport {
    /// Per-stream reports, in stream order.
    pub per_stream: Vec<StreamReport>,
    /// Frames processed across all streams.
    pub frames: u64,
    /// Micro-batches executed (`infer_batch` calls).
    pub batches: u64,
    /// Mean frames per micro-batch.
    pub avg_batch_size: f64,
    /// Sum of per-stream platform energy, Joules.
    pub total_platform_j: f64,
    /// Sum of per-stream platform + gated sensor energy, Joules.
    pub total_gated_j: f64,
    /// Stems executed across all streams.
    pub total_stems_executed: u64,
    /// Stems pruned or served from caches across all streams (the
    /// compute the staged pipeline saved vs. always-run-four).
    pub total_stems_saved: u64,
}

/// The multi-stream perception server.
///
/// Frames enter per-stream bounded queues via
/// [`PerceptionServer::ingest`]; each [`PerceptionServer::process_step`]
/// pops up to `max_batch` ready frames round-robin across streams, groups
/// them by their stream's *current* [`InferenceOptions`], and runs one
/// [`EcoFusionModel::infer_batch`] per group. Because the batched path is
/// bit-identical to per-frame [`EcoFusionModel::infer`], coalescing frames
/// from different vehicles changes throughput, never results.
///
/// # Example
///
/// ```
/// use ecofusion_core::EcoFusionModel;
/// use ecofusion_runtime::{PerceptionServer, RuntimeConfig, StreamSpec, VehicleStream};
/// use ecofusion_tensor::rng::Rng;
///
/// let model = EcoFusionModel::new(32, 8, &mut Rng::new(1));
/// let specs = [StreamSpec::new(10, 32), StreamSpec::new(11, 32)];
/// let mut server = PerceptionServer::new(model, &specs, RuntimeConfig::default());
/// let mut streams: Vec<VehicleStream> = specs.iter().map(|s| VehicleStream::new(*s)).collect();
/// for (i, s) in streams.iter_mut().enumerate() {
///     server.ingest(i, s.next_frame());
/// }
/// let processed = server.process_step().unwrap();
/// assert_eq!(processed, 2);
/// ```
pub struct PerceptionServer {
    model: EcoFusionModel,
    lanes: Vec<Lane>,
    /// Per-stream stem-feature caches (parallel to `lanes`), kept out of
    /// `Lane` so they can be borrowed alongside the model during a step.
    stem_caches: Vec<StemFeatureCache>,
    cfg: RuntimeConfig,
    tick: u64,
    batches: u64,
    batched_frames: u64,
}

impl PerceptionServer {
    /// Creates a server for the given streams.
    ///
    /// # Panics
    /// Panics if `specs` is empty, `cfg.max_batch` is zero, or a spec's
    /// grid does not match the model's.
    pub fn new(model: EcoFusionModel, specs: &[StreamSpec], cfg: RuntimeConfig) -> Self {
        assert!(!specs.is_empty(), "server needs at least one stream");
        assert!(cfg.max_batch > 0, "max_batch must be positive");
        for (i, s) in specs.iter().enumerate() {
            assert_eq!(s.grid, model.grid(), "stream {i} grid does not match model");
        }
        PerceptionServer {
            model,
            lanes: specs.iter().map(Lane::new).collect(),
            stem_caches: specs.iter().map(|_| StemFeatureCache::new()).collect(),
            cfg,
            tick: 0,
            batches: 0,
            batched_frames: 0,
        }
    }

    /// Number of streams served.
    pub fn num_streams(&self) -> usize {
        self.lanes.len()
    }

    /// Current scheduler tick.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Advances the scheduler clock by one tick.
    pub fn advance_tick(&mut self) {
        self.tick += 1;
    }

    /// Offers a frame to `stream`'s queue under its backpressure policy.
    ///
    /// A frame rendered at a different grid size than the model is
    /// rejected here with [`IngestOutcome::RejectedMalformed`] — validating
    /// at the ingest boundary means a malformed frame can never fail a
    /// micro-batch mid-step (which would lose the healthy frames coalesced
    /// with it), and rejecting instead of panicking means one broken
    /// producer cannot take down the whole server.
    ///
    /// # Panics
    /// Panics if `stream` is out of range (a caller bug, not a data
    /// fault).
    pub fn ingest(&mut self, stream: usize, frame: Frame) -> IngestOutcome {
        if frame.obs.grid_size() != self.model.grid() {
            self.lanes[stream].malformed += 1;
            return IngestOutcome::RejectedMalformed;
        }
        let tick = self.tick;
        self.lanes[stream].queue.push(frame, tick)
    }

    /// Whether `stream`'s queue would apply backpressure to a push now.
    pub fn queue_full(&self, stream: usize) -> bool {
        self.lanes[stream].queue.is_full()
    }

    /// Records a producer stall for `stream` (the simulation driver calls
    /// this instead of generating a frame when a stall-policy queue is
    /// full).
    pub fn record_stall(&mut self, stream: usize) {
        self.lanes[stream].stalls += 1;
    }

    /// Frames currently queued across all streams.
    pub fn queued(&self) -> usize {
        self.lanes.iter().map(|l| l.queue.len()).sum()
    }

    /// The inference options `stream` currently runs with (reflects any
    /// budget adaptation so far).
    pub fn stream_options(&self, stream: usize) -> InferenceOptions {
        self.lanes[stream].opts
    }

    /// The budget controller of `stream`.
    pub fn controller(&self, stream: usize) -> &BudgetController {
        &self.lanes[stream].controller
    }

    /// The telemetry of `stream`.
    pub fn telemetry(&self, stream: usize) -> &StreamTelemetry {
        &self.lanes[stream].telemetry
    }

    /// The health monitor of `stream`.
    pub fn health(&self, stream: usize) -> &SensorHealthMonitor {
        &self.lanes[stream].monitor
    }

    /// The stem-feature cache of `stream`.
    pub fn stem_cache(&self, stream: usize) -> &StemFeatureCache {
        &self.stem_caches[stream]
    }

    /// Runs one processing step: pops up to `max_batch` ready frames
    /// round-robin across streams (oldest first within each stream),
    /// groups them by their stream's current options, and feeds each group
    /// through one batched inference. Returns the number of frames
    /// processed (0 when all queues are empty).
    ///
    /// # Errors
    /// Propagates [`InferError`] from the model (a queued frame rendered
    /// at the wrong grid size).
    pub fn process_step(&mut self) -> Result<usize, InferError> {
        let picked = self.coalesce();
        if picked.is_empty() {
            return Ok(0);
        }
        // Health monitoring: every popped frame updates its lane's monitor
        // before options are grouped, so the mask each micro-batch runs
        // with reflects the newest evidence. When several frames of one
        // lane are popped in a single step they all execute under the
        // lane's final (most-informed) mask, and telemetry counts against
        // that same mask so the counters always describe the gating that
        // actually ran. With fault-aware gating off (the default) the
        // monitor still tracks health for telemetry but the lane's
        // options — and therefore every inference result — stay
        // untouched.
        for (lane_idx, queued) in &picked {
            self.lanes[*lane_idx].monitor.update(&queued.frame.obs);
        }
        for lane in &mut self.lanes {
            if lane.health_gating {
                lane.opts.health = lane.active_mask();
            }
        }
        for (lane_idx, _) in &picked {
            let lane = &mut self.lanes[*lane_idx];
            let mask = lane.active_mask();
            lane.telemetry.note_health(lane.monitor.degraded_count() > 0, !mask.is_all_available());
        }
        let processed = picked.len();
        for (opts, lanes, frames, waits) in self.group_by_options(picked) {
            // Each frame consults its own stream's stem-feature cache, so
            // frozen grids (faults, static scenes) skip the stem convs.
            let outputs =
                self.model.infer_batch_cached(&frames, &opts, &mut self.stem_caches, &lanes)?;
            self.batches += 1;
            self.batched_frames += outputs.len() as u64;
            for (((lane_idx, frame), output), wait) in
                lanes.into_iter().zip(&frames).zip(&outputs).zip(waits)
            {
                let lane = &mut self.lanes[lane_idx];
                lane.telemetry.record(output, frame.gt_boxes(), wait);
                if let Some(step) = lane.controller.record(output.energy.total_gated().joules()) {
                    lane.opts = step.apply(&lane.base_opts);
                    // Policy rungs are built from the base options; the
                    // health mask must survive ladder moves.
                    if lane.health_gating {
                        lane.opts.health = lane.monitor.mask();
                    }
                }
            }
        }
        Ok(processed)
    }

    /// Partitions picked frames into groups sharing identical options,
    /// preserving first-seen order (deterministic).
    #[allow(clippy::type_complexity)]
    fn group_by_options(
        &self,
        picked: Vec<(usize, QueuedFrame)>,
    ) -> Vec<(InferenceOptions, Vec<usize>, Vec<Frame>, Vec<u64>)> {
        let mut groups: Vec<(InferenceOptions, Vec<usize>, Vec<Frame>, Vec<u64>)> = Vec::new();
        let tick = self.tick;
        for (lane_idx, queued) in picked {
            let opts = self.lanes[lane_idx].opts;
            let wait = tick.saturating_sub(queued.enqueue_tick);
            let entry = match groups.iter_mut().find(|(o, ..)| *o == opts) {
                Some(e) => e,
                None => {
                    groups.push((opts, Vec::new(), Vec::new(), Vec::new()));
                    groups.last_mut().expect("just pushed")
                }
            };
            entry.1.push(lane_idx);
            entry.2.push(queued.frame);
            entry.3.push(wait);
        }
        groups
    }

    /// Processes until every queue is empty. Returns total frames
    /// processed.
    ///
    /// # Errors
    /// Propagates [`InferError`] from the model.
    pub fn drain(&mut self) -> Result<usize, InferError> {
        let mut total = 0;
        loop {
            let n = self.process_step()?;
            if n == 0 {
                return Ok(total);
            }
            total += n;
        }
    }

    /// Round-robin pick of up to `max_batch` queued frames across lanes.
    fn coalesce(&mut self) -> Vec<(usize, QueuedFrame)> {
        let mut picked = Vec::with_capacity(self.cfg.max_batch);
        'fill: loop {
            let mut any = false;
            for i in 0..self.lanes.len() {
                if picked.len() >= self.cfg.max_batch {
                    break 'fill;
                }
                if let Some(q) = self.lanes[i].queue.pop() {
                    picked.push((i, q));
                    any = true;
                }
            }
            if !any {
                break;
            }
        }
        picked
    }

    /// Builds the aggregate report.
    pub fn report(&self) -> RuntimeReport {
        let per_stream: Vec<StreamReport> = self
            .lanes
            .iter()
            .enumerate()
            .map(|(i, lane)| {
                let summary = lane.telemetry.summary(self.cfg.num_classes);
                let stage_energy_j = summary.stage_energy_j.clone();
                StreamReport {
                    stream: i,
                    summary,
                    dropped: lane.queue.dropped(),
                    // Producer stalls surface two ways: the simulation driver
                    // defers generation (record_stall), while direct ingest
                    // against a full stall-policy queue is rejected by the
                    // queue itself. The report covers both.
                    stalls: lane.stalls + lane.queue.rejected(),
                    queue_high_water: lane.queue.high_water(),
                    avg_queue_wait_ticks: lane.telemetry.avg_queue_wait_ticks(),
                    latency_p50_ms: lane.telemetry.latency_percentile_ms(50.0),
                    latency_p95_ms: lane.telemetry.latency_percentile_ms(95.0),
                    latency_p99_ms: lane.telemetry.latency_percentile_ms(99.0),
                    escalations: lane.controller.escalations(),
                    relaxations: lane.controller.relaxations(),
                    final_level: lane.controller.level(),
                    final_gate: lane.opts.gate,
                    final_lambda_e: lane.opts.lambda_e,
                    rolling_energy_j: lane.controller.rolling_mean_j(),
                    total_platform_j: lane.telemetry.platform_j(),
                    total_gated_j: lane.telemetry.total_gated_j(),
                    degraded_frames: lane.telemetry.degraded_frames(),
                    masked_frames: lane.telemetry.masked_frames(),
                    stems_executed: lane.telemetry.stems_executed(),
                    stems_cached: lane.telemetry.stems_cached(),
                    stems_skipped: lane.telemetry.stems_skipped(),
                    stem_cache_hits: self.stem_caches[i].hits(),
                    stem_cache_misses: self.stem_caches[i].misses(),
                    stage_energy_j,
                    health_transitions: lane.monitor.transitions(),
                    final_health: lane.monitor.scores().to_vec(),
                    final_mask: lane.active_mask(),
                    health_gating: lane.health_gating,
                    rejected_malformed: lane.malformed,
                }
            })
            .collect();
        let frames: u64 = per_stream.iter().map(|s| s.summary.frames as u64).sum();
        RuntimeReport {
            frames,
            batches: self.batches,
            avg_batch_size: if self.batches == 0 {
                0.0
            } else {
                self.batched_frames as f64 / self.batches as f64
            },
            total_platform_j: per_stream.iter().map(|s| s.total_platform_j).sum(),
            total_gated_j: per_stream.iter().map(|s| s.total_gated_j).sum(),
            total_stems_executed: per_stream.iter().map(|s| s.stems_executed).sum(),
            total_stems_saved: per_stream.iter().map(|s| s.stems_cached + s.stems_skipped).sum(),
            per_stream,
        }
    }
}

/// Drives `server` for `ticks` scheduler ticks against live streams: each
/// tick, every stream due per its period/phase produces one frame (unless
/// its stall-policy queue is full, which defers the producer), then one
/// processing step runs. Remaining queued frames are drained at the end so
/// the report covers every accepted frame.
///
/// # Errors
/// Propagates [`InferError`] from the model.
///
/// # Panics
/// Panics if `streams.len()` differs from the server's stream count.
pub fn run_simulation(
    server: &mut PerceptionServer,
    streams: &mut [VehicleStream],
    ticks: u64,
) -> Result<(), InferError> {
    run_simulation_observed(server, streams, ticks, |_| {})
}

/// [`run_simulation`] with a per-frame observer: `on_frame` sees every
/// produced frame just before it is offered to the server (whether or not
/// backpressure later drops it). The workload-suite harness uses this to
/// record visited contexts without duplicating the scheduling loop.
///
/// # Errors
/// Propagates [`InferError`] from the model.
///
/// # Panics
/// Panics if `streams.len()` differs from the server's stream count.
pub fn run_simulation_observed(
    server: &mut PerceptionServer,
    streams: &mut [VehicleStream],
    ticks: u64,
    mut on_frame: impl FnMut(&Frame),
) -> Result<(), InferError> {
    assert_eq!(streams.len(), server.num_streams(), "stream/server mismatch");
    for tick in 0..ticks {
        for (i, stream) in streams.iter_mut().enumerate() {
            if !stream.emits_at(tick) {
                continue;
            }
            let stall_policy =
                stream.spec().backpressure == crate::queue::BackpressurePolicy::Stall;
            if stall_policy && server.queue_full(i) {
                server.record_stall(i);
                continue;
            }
            let frame = stream.next_frame();
            on_frame(&frame);
            server.ingest(i, frame);
        }
        server.process_step()?;
        server.advance_tick();
    }
    server.drain()?;
    Ok(())
}
