//! The multi-stream scheduler: round-robin frame coalescing into
//! cross-stream micro-batches, sharded multi-core execution (see
//! [`crate::shard`]), budget-driven policy adaptation (per-stream ladders
//! plus an optional fleet-wide headroom coordinator), and the aggregate
//! runtime report.

use crate::budget::{
    default_ladder, redistribute_headroom, BudgetController, BudgetPosture, BudgetTimeline,
    FleetBudgetPolicy,
};
use crate::hist::LatencyHistogram;
use crate::queue::{FrameQueue, IngestOutcome, QueuedFrame};
use crate::shard::{execute_units, shard_of, ShardReport, ShardState, StepUnit, UnitPayload};
use crate::stream::{StreamSpec, VehicleStream};
use crate::telemetry::StreamTelemetry;
use ecofusion_core::model::InferError;
use ecofusion_core::{
    trace_frame, CandidateRule, EcoFusionModel, Frame, InferenceOptions, InferenceOutput,
    Precision, StemFeatureCache,
};
use ecofusion_eval::EvalSummary;
use ecofusion_faults::{HealthState, SensorHealthMonitor};
use ecofusion_gating::GateKind;
use ecofusion_sensors::{SensorKind, SensorMask};
use ecofusion_trace::{ns_from_ms, ArgValue, TraceSink, Track, TICK_NS};
use serde::Serialize;
use std::collections::BTreeMap;

/// Scheduler parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimeConfig {
    /// Maximum frames coalesced into the micro-batches of one processing
    /// step (across all streams).
    pub max_batch: usize,
    /// Object classes, for the mAP in per-stream summaries.
    pub num_classes: usize,
    /// Worker shards the streams are partitioned across (round-robin by
    /// stream index, clamped to the stream count). Per-stream outputs,
    /// digests, and reports are bit-identical for any value; shards only
    /// change which worker thread executes each micro-batch.
    pub shards: usize,
    /// Whether a drained shard may steal ready work units from the
    /// deepest neighbor (only meaningful with `shards > 1`; stealing is
    /// also output-invariant).
    pub work_stealing: bool,
    /// Fleet-wide budget coordination: under-budget streams donate
    /// headroom to over-budget ones each step. `None` (the default)
    /// keeps every stream on its own budget.
    pub fleet_budget: Option<FleetBudgetPolicy>,
}

impl Default for RuntimeConfig {
    /// `max_batch` 8, 8 classes, work stealing on, no fleet budget, and
    /// the shard count from the `ECOFUSION_SHARDS` environment variable
    /// (default 1). The env hook exists so the whole test suite can be
    /// re-run under a shard matrix in CI without touching each test; it
    /// cannot change any asserted output, because outputs are
    /// shard-count-invariant.
    fn default() -> Self {
        RuntimeConfig {
            max_batch: 8,
            num_classes: 8,
            shards: shards_from_env(),
            work_stealing: true,
            fleet_budget: None,
        }
    }
}

impl RuntimeConfig {
    /// Same config with a fixed shard count (ignores `ECOFUSION_SHARDS`).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Same config with work stealing switched on or off.
    pub fn with_work_stealing(mut self, on: bool) -> Self {
        self.work_stealing = on;
        self
    }

    /// Same config with a fleet budget coordinator.
    pub fn with_fleet_budget(mut self, policy: FleetBudgetPolicy) -> Self {
        self.fleet_budget = Some(policy);
        self
    }
}

/// Shard count from `ECOFUSION_SHARDS` (CI matrix hook), default 1.
fn shards_from_env() -> usize {
    std::env::var("ECOFUSION_SHARDS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// A totally ordered grouping key over [`InferenceOptions`]: float fields
/// by bit pattern, enums by discriminant, the health mask by its bits.
/// Two options values produced by the policy ladder / health gating are
/// semantically equal iff their keys are equal, so keyed grouping batches
/// exactly what the old linear `find` over `PartialEq` batched — in
/// O(log groups) per frame instead of O(groups).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct OptionsKey {
    gate: GateKind,
    rule: u8,
    lambda_bits: u64,
    gamma_bits: u32,
    score_bits: u32,
    nms_bits: u32,
    health_bits: u8,
    precision: u8,
}

impl OptionsKey {
    fn of(opts: &InferenceOptions) -> Self {
        OptionsKey {
            gate: opts.gate,
            rule: match opts.rule {
                CandidateRule::Margin => 0,
                CandidateRule::PaperEq7 => 1,
            },
            lambda_bits: opts.lambda_e.to_bits(),
            gamma_bits: opts.gamma.to_bits(),
            score_bits: opts.score_thresh.to_bits(),
            nms_bits: opts.nms_iou.to_bits(),
            health_bits: opts.health.bits(),
            precision: opts.precision.discriminant(),
        }
    }
}

/// One stream's server-side state.
struct Lane {
    queue: FrameQueue,
    controller: BudgetController,
    base_opts: InferenceOptions,
    opts: InferenceOptions,
    telemetry: StreamTelemetry,
    monitor: SensorHealthMonitor,
    health_gating: bool,
    stalls: u64,
    malformed: u64,
    /// Scripted budget retargets (see [`BudgetTimeline`]); applied at the
    /// top of each processing step against the scheduler tick.
    timeline: Option<BudgetTimeline>,
}

impl Lane {
    fn new(spec: &StreamSpec) -> Self {
        Lane {
            queue: FrameQueue::new(spec.queue_capacity, spec.backpressure),
            controller: BudgetController::new(spec.budget, default_ladder(&spec.base_opts)),
            base_opts: spec.base_opts,
            opts: spec.base_opts,
            telemetry: StreamTelemetry::new(),
            monitor: SensorHealthMonitor::default(),
            health_gating: spec.health_gating,
            stalls: 0,
            malformed: 0,
            timeline: None,
        }
    }

    /// The availability mask the lane's gating currently runs with (all
    /// available when fault-aware gating is off).
    fn active_mask(&self) -> SensorMask {
        if self.health_gating {
            self.monitor.mask()
        } else {
            SensorMask::all_available()
        }
    }
}

/// Everything the report says about one stream.
#[derive(Debug, Clone, Serialize)]
pub struct StreamReport {
    /// Stream index (position in the spec list).
    pub stream: usize,
    /// The harness-compatible accuracy/energy/latency summary.
    pub summary: EvalSummary,
    /// Frames actually inside the summary's mAP window. Telemetry keeps
    /// at most [`crate::telemetry::HISTORY_CAP`] per-frame records (the
    /// oldest half is discarded beyond that), so on runs longer than the
    /// cap `summary.map_pct` covers only these most recent frames while
    /// the scalar counters stay exact over the whole run. Equal to
    /// `summary.frames` until the cap is first hit.
    pub map_window_frames: usize,
    /// Frames evicted by drop-oldest backpressure.
    pub dropped: u64,
    /// Producer stalls under stall backpressure.
    pub stalls: u64,
    /// Deepest the stream's queue ever got.
    pub queue_high_water: usize,
    /// Mean scheduler-tick queueing delay per processed frame.
    pub avg_queue_wait_ticks: f64,
    /// Median per-frame modeled latency, ms (fixed-bucket histogram
    /// upper edge; the mean stays in `summary.avg_latency_ms`).
    pub latency_p50_ms: f64,
    /// 95th-percentile per-frame modeled latency, ms.
    pub latency_p95_ms: f64,
    /// 99th-percentile per-frame modeled latency, ms.
    pub latency_p99_ms: f64,
    /// Budget escalations (moves to a cheaper policy).
    pub escalations: u64,
    /// Budget relaxations (moves back toward the base policy).
    pub relaxations: u64,
    /// Escalation level at the end of the run (0 = base policy).
    pub final_level: usize,
    /// Gate in force at the end of the run.
    pub final_gate: GateKind,
    /// `λ_E` in force at the end of the run.
    pub final_lambda_e: f64,
    /// Rolling mean total energy at the end of the run, Joules/frame.
    pub rolling_energy_j: f64,
    /// Fleet-coordinator grant in force at the end of the run,
    /// Joules/frame (0 without a fleet budget).
    pub granted_j: f64,
    /// Total platform energy spent by the stream, Joules.
    pub total_platform_j: f64,
    /// Total platform + clock-gated sensor energy spent, Joules.
    pub total_gated_j: f64,
    /// Frames processed while the health monitor saw a degraded or failed
    /// sensor.
    pub degraded_frames: u64,
    /// Frames processed with at least one sensor masked out of gating.
    pub masked_frames: u64,
    /// Stems the demand-driven pipeline actually ran for the stream.
    pub stems_executed: u64,
    /// Stems served from the stream's feature cache (frozen grids).
    pub stems_cached: u64,
    /// Stems pruned by the demand-driven plan (never run at all).
    pub stems_skipped: u64,
    /// Frames whose perception stages ran int8-quantized (the emergency
    /// rung of the default ladder, or an explicit `Precision::Int8`).
    pub int8_frames: u64,
    /// Frames on which the knowledge gate was missing a context rule and
    /// degraded to its cheapest-configuration fallback.
    pub gate_fallbacks: u64,
    /// Numeric precision in force at the end of the run.
    pub final_precision: Precision,
    /// Stem-cache lookups that found a matching grid.
    pub stem_cache_hits: u64,
    /// Stem-cache lookups that missed.
    pub stem_cache_misses: u64,
    /// Mean per-stage total energy per frame, Joules, in
    /// `StageKind::ALL` order (empty before the first frame).
    pub stage_energy_j: Vec<f64>,
    /// Health-state transitions (e.g. healthy → failed) over the run.
    pub health_transitions: u64,
    /// Per-sensor health scores at the end of the run, canonical order.
    pub final_health: Vec<f64>,
    /// Availability mask in force at the end of the run.
    pub final_mask: SensorMask,
    /// Whether fault-aware gating was enabled for the stream.
    pub health_gating: bool,
    /// Frames rejected at ingest validation (grid mismatch).
    pub rejected_malformed: u64,
}

/// Aggregate outcome of a runtime session.
#[derive(Debug, Clone, Serialize)]
pub struct RuntimeReport {
    /// Per-stream reports, in stream order.
    pub per_stream: Vec<StreamReport>,
    /// Frames processed across all streams.
    pub frames: u64,
    /// Micro-batches executed (`infer_batch` calls).
    pub batches: u64,
    /// Mean frames per micro-batch.
    pub avg_batch_size: f64,
    /// Sum of per-stream platform energy, Joules.
    pub total_platform_j: f64,
    /// Sum of per-stream platform + gated sensor energy, Joules.
    pub total_gated_j: f64,
    /// Stems executed across all streams.
    pub total_stems_executed: u64,
    /// Frames that ran int8-quantized, across all streams.
    pub total_int8_frames: u64,
    /// Knowledge-gate missing-rule fallbacks, across all streams.
    pub total_gate_fallbacks: u64,
    /// Stems pruned or served from caches across all streams (the
    /// compute the staged pipeline saved vs. always-run-four).
    pub total_stems_saved: u64,
    /// Fleet-wide mean modeled latency, ms, from the merged per-stream
    /// histograms (0 before the first frame).
    pub latency_mean_ms: f64,
    /// Fleet-wide median modeled latency, ms (bucket upper edge).
    pub latency_p50_ms: f64,
    /// Fleet-wide 95th-percentile modeled latency, ms.
    pub latency_p95_ms: f64,
    /// Fleet-wide 99th-percentile modeled latency, ms.
    pub latency_p99_ms: f64,
    /// Fleet-wide maximum modeled latency, ms (exact).
    pub latency_max_ms: f64,
    /// Sum of fleet-coordinator grants in force at the end of the run,
    /// Joules/frame.
    pub total_granted_j: f64,
    /// Per-shard execution stats (which worker did what; the wall-clock
    /// fields are host-dependent and never part of the determinism
    /// invariant).
    pub shards: Vec<ShardReport>,
}

/// The multi-stream perception server.
///
/// Frames enter per-stream bounded queues via
/// [`PerceptionServer::ingest`]; each [`PerceptionServer::process_step`]
/// pops up to `max_batch` ready frames round-robin across streams, groups
/// them by `(home shard, current [`InferenceOptions`])`, and runs one
/// batched inference per group — in parallel across worker shards when
/// `cfg.shards > 1`, with work stealing for imbalanced fleets. Because
/// the batched path is bit-identical to per-frame
/// [`EcoFusionModel::infer`] and the pick phase is global, coalescing,
/// sharding, and stealing change throughput, never results: per-stream
/// outputs and reports are bit-identical for any shard count.
///
/// # Example
///
/// ```
/// use ecofusion_core::EcoFusionModel;
/// use ecofusion_runtime::{PerceptionServer, RuntimeConfig, StreamSpec, VehicleStream};
/// use ecofusion_tensor::rng::Rng;
///
/// let model = EcoFusionModel::new(32, 8, &mut Rng::new(1));
/// let specs = [StreamSpec::new(10, 32), StreamSpec::new(11, 32)];
/// let mut server = PerceptionServer::new(model, &specs, RuntimeConfig::default());
/// let mut streams: Vec<VehicleStream> = specs.iter().map(|s| VehicleStream::new(*s)).collect();
/// for (i, s) in streams.iter_mut().enumerate() {
///     server.ingest(i, s.next_frame());
/// }
/// let processed = server.process_step().unwrap();
/// assert_eq!(processed, 2);
/// ```
pub struct PerceptionServer {
    /// Worker shards; shard 0 holds the original model, the rest hold
    /// snapshot-restored replicas (restore is inference-bit-identical).
    shards: Vec<ShardState>,
    lanes: Vec<Lane>,
    /// Per-stream stem-feature caches (parallel to `lanes`), kept out of
    /// `Lane` so they can be moved into work units during a step.
    stem_caches: Vec<StemFeatureCache>,
    cfg: RuntimeConfig,
    tick: u64,
    batches: u64,
    batched_frames: u64,
    /// Optional event sink (see [`PerceptionServer::set_tracer`]). Only
    /// the serial scheduler phases write to it — never the worker
    /// threads — which is what keeps the event sequence deterministic
    /// and the sink lock-free.
    tracer: Option<TraceSink>,
    /// Per-stream virtual clocks, ns: where the next frame span on each
    /// stream track may begin (floored to the current tick).
    stream_clock_ns: Vec<u64>,
    /// Per-shard virtual clocks, ns, for the unit spans on shard tracks.
    shard_clock_ns: Vec<u64>,
    /// Scheduler-track clock, ns: disambiguates the multiple processing
    /// steps a drain runs within one tick.
    sched_clock_ns: u64,
}

/// What one [`PerceptionServer::process_step_stats`] call did — the
/// per-step scheduler stats shared by the [`SimObserver`] hook and the
/// tracer, so the harness and the flight recorder observe the runtime
/// through one path.
///
/// All fields except `steals`/`stolen_frames` are shard-count-invariant;
/// steal counts depend on thread timing (like
/// [`crate::ShardReport::busy_ms`]) and are always 0 with a single shard.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StepStats {
    /// Scheduler tick the step ran at.
    pub tick: u64,
    /// Frames processed (0 when every queue was empty).
    pub frames: usize,
    /// Work units (micro-batches) the frames were grouped into.
    pub units: usize,
    /// Frames per executed micro-batch, in unit order.
    pub batch_sizes: Vec<usize>,
    /// Units claimed by a non-home worker during this step.
    pub steals: u64,
    /// Frames inside those stolen units.
    pub stolen_frames: u64,
    /// Frames still queued across all streams after the step.
    pub queued_after: usize,
}

impl PerceptionServer {
    /// Creates a server for the given streams.
    ///
    /// With `cfg.shards > 1` the model is snapshotted once and restored
    /// into one replica per extra shard; snapshot restore is proven
    /// inference-bit-identical, and inference never mutates observable
    /// model state, so every shard serves exactly the same function. The
    /// shard count is clamped to the stream count (an idle shard is pure
    /// overhead).
    ///
    /// # Panics
    /// Panics if `specs` is empty, `cfg.max_batch` or `cfg.shards` is
    /// zero, or a spec's grid does not match the model's.
    pub fn new(model: EcoFusionModel, specs: &[StreamSpec], cfg: RuntimeConfig) -> Self {
        assert!(!specs.is_empty(), "server needs at least one stream");
        assert!(cfg.max_batch > 0, "max_batch must be positive");
        assert!(cfg.shards > 0, "shards must be positive");
        for (i, s) in specs.iter().enumerate() {
            assert_eq!(s.grid, model.grid(), "stream {i} grid does not match model");
        }
        let num_shards = cfg.shards.min(specs.len());
        let mut model = model;
        let mut shards = Vec::with_capacity(num_shards);
        if num_shards > 1 {
            let snapshot = model.snapshot();
            for _ in 1..num_shards {
                shards.push(ShardState::new(snapshot.restore().expect("replica restores")));
            }
        }
        shards.insert(0, ShardState::new(model));
        let num_shards = shards.len();
        PerceptionServer {
            shards,
            lanes: specs.iter().map(Lane::new).collect(),
            stem_caches: specs.iter().map(|_| StemFeatureCache::new()).collect(),
            cfg,
            tick: 0,
            batches: 0,
            batched_frames: 0,
            tracer: None,
            stream_clock_ns: vec![0; specs.len()],
            shard_clock_ns: vec![0; num_shards],
            sched_clock_ns: 0,
        }
    }

    /// Installs an event sink; every subsequent step emits frame/stage
    /// spans, scheduler unit spans, and decision events into it. Pass
    /// [`TraceSink::disabled`] (or never call this) for the zero-overhead
    /// path — instrumentation is skipped at its first branch.
    pub fn set_tracer(&mut self, sink: TraceSink) {
        self.tracer = Some(sink);
    }

    /// Removes and returns the installed sink (for export after a run).
    pub fn take_tracer(&mut self) -> Option<TraceSink> {
        self.tracer.take()
    }

    /// The installed sink, if any.
    pub fn tracer(&self) -> Option<&TraceSink> {
        self.tracer.as_ref()
    }

    /// Whether an enabled sink is installed.
    fn tracing(&self) -> bool {
        self.tracer.as_ref().is_some_and(|t| t.is_enabled())
    }

    /// Number of streams served.
    pub fn num_streams(&self) -> usize {
        self.lanes.len()
    }

    /// Number of worker shards (after clamping to the stream count).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The serving model (shard 0's instance).
    fn model(&self) -> &EcoFusionModel {
        &self.shards[0].model
    }

    /// Current scheduler tick.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Advances the scheduler clock by one tick.
    pub fn advance_tick(&mut self) {
        self.tick += 1;
    }

    /// Offers a frame to `stream`'s queue under its backpressure policy.
    ///
    /// A frame rendered at a different grid size than the model is
    /// rejected here with [`IngestOutcome::RejectedMalformed`] — validating
    /// at the ingest boundary means a malformed frame can never fail a
    /// micro-batch mid-step (which would lose the healthy frames coalesced
    /// with it), and rejecting instead of panicking means one broken
    /// producer cannot take down the whole server.
    ///
    /// # Panics
    /// Panics if `stream` is out of range (a caller bug, not a data
    /// fault).
    pub fn ingest(&mut self, stream: usize, frame: Frame) -> IngestOutcome {
        if frame.obs.grid_size() != self.model().grid() {
            self.lanes[stream].malformed += 1;
            return IngestOutcome::RejectedMalformed;
        }
        let tick = self.tick;
        self.lanes[stream].queue.push(frame, tick)
    }

    /// Whether `stream`'s queue would apply backpressure to a push now.
    pub fn queue_full(&self, stream: usize) -> bool {
        self.lanes[stream].queue.is_full()
    }

    /// Records a producer stall for `stream` (the simulation driver calls
    /// this instead of generating a frame when a stall-policy queue is
    /// full).
    pub fn record_stall(&mut self, stream: usize) {
        self.lanes[stream].stalls += 1;
    }

    /// Frames currently queued across all streams.
    pub fn queued(&self) -> usize {
        self.lanes.iter().map(|l| l.queue.len()).sum()
    }

    /// The inference options `stream` currently runs with (reflects any
    /// budget adaptation so far).
    pub fn stream_options(&self, stream: usize) -> InferenceOptions {
        self.lanes[stream].opts
    }

    /// The budget controller of `stream`.
    pub fn controller(&self, stream: usize) -> &BudgetController {
        &self.lanes[stream].controller
    }

    /// The telemetry of `stream`.
    pub fn telemetry(&self, stream: usize) -> &StreamTelemetry {
        &self.lanes[stream].telemetry
    }

    /// The health monitor of `stream`.
    pub fn health(&self, stream: usize) -> &SensorHealthMonitor {
        &self.lanes[stream].monitor
    }

    /// The stem-feature cache of `stream`.
    pub fn stem_cache(&self, stream: usize) -> &StemFeatureCache {
        &self.stem_caches[stream]
    }

    /// Installs a scripted budget timeline on `stream`: at the top of
    /// every processing step, the phase in force at the current tick (if
    /// any) retargets the stream's budget controller via
    /// [`BudgetController::set_target_j`]. Retargeting moves only the
    /// target — the rolling window and ladder level are kept, so the
    /// controller adapts against the new target from existing evidence
    /// exactly as it would against a real supply change.
    ///
    /// # Panics
    /// Panics if `stream` is out of range or the timeline is invalid.
    pub fn set_budget_timeline(&mut self, stream: usize, timeline: BudgetTimeline) {
        assert!(timeline.is_structurally_valid(), "budget timeline must be valid");
        self.lanes[stream].timeline = Some(timeline);
    }

    /// Applies every lane's scripted budget timeline at the current tick
    /// (no-op for lanes without one or whose target is already in force).
    fn apply_budget_timelines(&mut self) {
        let tick = self.tick;
        let mut retargets: Vec<(usize, f64)> = Vec::new();
        for (i, lane) in self.lanes.iter_mut().enumerate() {
            let Some(target) = lane.timeline.as_ref().and_then(|t| t.target_at(tick)) else {
                continue;
            };
            if lane.controller.budget().target_j != target {
                lane.controller.set_target_j(target);
                retargets.push((i, target));
            }
        }
        if let Some(tr) = self.tracer.as_mut().filter(|t| t.is_enabled()) {
            for (stream, target) in retargets {
                tr.instant(
                    Track::Stream(stream as u32),
                    tick * TICK_NS,
                    "budget_retarget",
                    vec![("tick", ArgValue::U64(tick)), ("target_j", ArgValue::F64(target))],
                );
                tr.bump("ecofusion_budget_retargets_total", 1.0);
            }
        }
    }

    /// Runs one processing step: pops up to `max_batch` ready frames
    /// round-robin across streams (oldest first within each stream),
    /// groups them by `(home shard, current options)`, executes the
    /// groups in parallel across the worker shards (with work stealing),
    /// and accounts the results serially in group order. Returns the
    /// number of frames processed (0 when all queues are empty).
    ///
    /// The pick phase is global and serial — identical to the single-core
    /// scheduler for any shard count — so backpressure, queue waits, and
    /// every per-stream output are shard-count-invariant.
    ///
    /// # Errors
    /// Propagates [`InferError`] from the model (a queued frame rendered
    /// at the wrong grid size).
    pub fn process_step(&mut self) -> Result<usize, InferError> {
        self.process_step_stats().map(|stats| stats.frames)
    }

    /// [`PerceptionServer::process_step`] returning the per-step
    /// scheduler stats ([`StepStats`]) instead of just the frame count.
    /// The simulation driver feeds these to its [`SimObserver`] — the
    /// same observation the tracer's scheduler track records.
    ///
    /// # Errors
    /// Propagates [`InferError`] from the model.
    pub fn process_step_stats(&mut self) -> Result<StepStats, InferError> {
        let tick = self.tick;
        self.apply_budget_timelines();
        let picked = self.coalesce();
        if picked.is_empty() {
            return Ok(StepStats { tick, ..StepStats::default() });
        }
        let tracing = self.tracing();
        // Health monitoring: every popped frame updates its lane's monitor
        // before options are grouped, so the mask each micro-batch runs
        // with reflects the newest evidence. When several frames of one
        // lane are popped in a single step they all execute under the
        // lane's final (most-informed) mask, and telemetry counts against
        // that same mask so the counters always describe the gating that
        // actually ran. With fault-aware gating off (the default) the
        // monitor still tracks health for telemetry but the lane's
        // options — and therefore every inference result — stay
        // untouched.
        let mut transitions: Vec<(usize, usize, HealthState, HealthState)> = Vec::new();
        for (lane_idx, queued) in &picked {
            let monitor = &mut self.lanes[*lane_idx].monitor;
            let before = monitor.states();
            monitor.update(&queued.frame.obs);
            if tracing {
                for (sensor, (b, a)) in before.into_iter().zip(monitor.states()).enumerate() {
                    if b != a {
                        transitions.push((*lane_idx, sensor, b, a));
                    }
                }
            }
        }
        for lane in &mut self.lanes {
            if lane.health_gating {
                lane.opts.health = lane.active_mask();
            }
        }
        for (lane_idx, _) in &picked {
            let lane = &mut self.lanes[*lane_idx];
            let mask = lane.active_mask();
            lane.telemetry.note_health(lane.monitor.degraded_count() > 0, !mask.is_all_available());
        }
        // Monitor updates run in pick order, so the transition events do
        // too — deterministic for any shard count.
        if let Some(tr) = self.tracer.as_mut() {
            for (lane, sensor, from, to) in transitions {
                tr.instant(
                    Track::Stream(lane as u32),
                    tick * TICK_NS,
                    "health",
                    vec![
                        ("sensor", ArgValue::Str(SensorKind::ALL[sensor].abbrev())),
                        ("from", ArgValue::Str(health_label(from))),
                        ("to", ArgValue::Str(health_label(to))),
                        ("tick", ArgValue::U64(tick)),
                    ],
                );
                tr.bump("ecofusion_health_transitions_total", 1.0);
            }
        }
        let processed = picked.len();
        let step_ns = self.sched_clock_ns.max(tick * TICK_NS);
        let steals_before: (u64, u64) =
            self.shards.iter().fold((0, 0), |(s, f), sh| (s + sh.steals, f + sh.stolen_frames));
        let units = self.build_units(picked);
        let num_units = units.len();
        execute_units(&mut self.shards, &units, self.cfg.work_stealing);
        let (steals, stolen_frames) = {
            let after: (u64, u64) =
                self.shards.iter().fold((0, 0), |(s, f), sh| (s + sh.steals, f + sh.stolen_frames));
            (after.0 - steals_before.0, after.1 - steals_before.1)
        };
        let batch_sizes = self.account_units(units, step_ns)?;
        self.coordinate_fleet_budget();
        let queued_after = self.queued();
        // Flush fused-plan-cache deltas from every replica. Deltas only
        // drain while tracing so counters stay cumulative over a traced
        // run; idle replicas contribute zero, which keeps the totals
        // shard-count-invariant for single-stream golden suites.
        let plans = if tracing {
            self.shards.iter_mut().fold((0u64, 0u64, 0u64), |(h, m, c), sh| {
                let d = sh.model.take_plan_delta();
                (h + d.hits, m + d.misses, c + d.compiles)
            })
        } else {
            (0, 0, 0)
        };
        if let Some(tr) = self.tracer.as_mut().filter(|_| tracing) {
            tr.instant(
                Track::Scheduler,
                step_ns,
                "step",
                vec![
                    ("tick", ArgValue::U64(tick)),
                    ("frames", ArgValue::U64(processed as u64)),
                    ("units", ArgValue::U64(num_units as u64)),
                    ("steals", ArgValue::U64(steals)),
                ],
            );
            tr.counter(Track::Scheduler, step_ns, "queued", queued_after as f64);
            tr.bump("ecofusion_steps_total", 1.0);
            if steals > 0 {
                tr.bump("ecofusion_steals_total", steals as f64);
            }
            if plans.0 > 0 {
                tr.bump("ecofusion_plan_cache_hits_total", plans.0 as f64);
            }
            if plans.1 > 0 {
                tr.bump("ecofusion_plan_cache_misses_total", plans.1 as f64);
            }
            if plans.2 > 0 {
                tr.bump("ecofusion_plan_cache_compiles_total", plans.2 as f64);
            }
        }
        self.sched_clock_ns = step_ns + 1;
        Ok(StepStats {
            tick,
            frames: processed,
            units: num_units,
            batch_sizes,
            steals,
            stolen_frames,
            queued_after,
        })
    }

    /// Partitions picked frames into work units keyed on `(home shard,
    /// options)`, preserving first-seen order. Keyed grouping is O(n log
    /// g) in the number of distinct groups, instead of the old O(n·g)
    /// linear scan per frame.
    ///
    /// Each lane contributes to exactly one unit per step (one home
    /// shard, one current options value), so moving its stem cache into
    /// the unit is safe, and all its frames stay in FIFO pick order
    /// inside that unit — the property that lets work stealing hand off
    /// whole units without ever reordering a stream.
    fn build_units(&mut self, picked: Vec<(usize, QueuedFrame)>) -> Vec<StepUnit> {
        let tick = self.tick;
        let num_shards = self.shards.len();
        struct UnitBuild {
            shard: usize,
            opts: InferenceOptions,
            lane_ids: Vec<usize>,
            frames: Vec<Frame>,
            waits: Vec<u64>,
            picks: Vec<u64>,
        }
        let mut index: BTreeMap<(usize, OptionsKey), usize> = BTreeMap::new();
        let mut builds: Vec<UnitBuild> = Vec::new();
        for (pick, (lane_idx, queued)) in picked.into_iter().enumerate() {
            let opts = self.lanes[lane_idx].opts;
            let shard = shard_of(lane_idx, num_shards);
            let wait = tick.saturating_sub(queued.enqueue_tick);
            let slot = *index.entry((shard, OptionsKey::of(&opts))).or_insert_with(|| {
                builds.push(UnitBuild {
                    shard,
                    opts,
                    lane_ids: Vec::new(),
                    frames: Vec::new(),
                    waits: Vec::new(),
                    picks: Vec::new(),
                });
                builds.len() - 1
            });
            let entry = &mut builds[slot];
            entry.lane_ids.push(lane_idx);
            entry.frames.push(queued.frame);
            entry.waits.push(wait);
            entry.picks.push(pick as u64);
        }
        builds
            .into_iter()
            .map(|UnitBuild { shard, opts, lane_ids, frames, waits, picks }| {
                // Move the distinct lanes' stem caches into the unit so a
                // stolen unit still serves its streams' caches (hit/miss
                // counters stay invariant under stealing).
                let mut cache_lanes: Vec<usize> = Vec::new();
                let mut cache_slot = Vec::with_capacity(frames.len());
                for &lane in &lane_ids {
                    let slot = cache_lanes.iter().position(|&l| l == lane).unwrap_or_else(|| {
                        cache_lanes.push(lane);
                        cache_lanes.len() - 1
                    });
                    cache_slot.push(slot);
                }
                let caches = cache_lanes
                    .iter()
                    .map(|&lane| std::mem::take(&mut self.stem_caches[lane]))
                    .collect();
                StepUnit::new(
                    shard,
                    UnitPayload {
                        opts,
                        lane_ids,
                        frames,
                        waits,
                        picks,
                        executed_by: shard,
                        caches,
                        cache_lanes,
                        cache_slot,
                        outputs: None,
                    },
                )
            })
            .collect()
    }

    /// Serial post-join accounting: restores the moved stem caches and
    /// emits the shard-track unit spans in unit (= first-seen group)
    /// order, then records telemetry and budget spend per frame in
    /// **global pick order**. Per-lane accounting state is identical
    /// either way (each lane's frames stay in its own FIFO order inside
    /// one unit), but replaying the flat pick order also makes the
    /// emitted stream-track event sequence — and any future cross-lane
    /// accounting — independent of how units were grouped across shards.
    /// Returns the executed batch sizes, in unit order.
    fn account_units(
        &mut self,
        units: Vec<StepUnit>,
        step_ns: u64,
    ) -> Result<Vec<usize>, InferError> {
        let tick = self.tick;
        let tracing = self.tracing();
        let mut first_err = None;
        let mut batch_sizes = Vec::with_capacity(units.len());
        struct Row {
            pick: u64,
            lane: usize,
            frame: Frame,
            output: InferenceOutput,
            wait: u64,
        }
        let mut rows: Vec<Row> = Vec::new();
        for unit in units {
            let home = unit.shard;
            let payload = unit.into_payload();
            // Caches go back even when a unit failed: a lost step must
            // not silently reset a stream's stem cache.
            for (lane, cache) in payload.cache_lanes.into_iter().zip(payload.caches) {
                self.stem_caches[lane] = cache;
            }
            let outputs = match payload.outputs.expect("every unit was executed") {
                Ok(outputs) => outputs,
                Err(e) => {
                    first_err = first_err.or(Some(e));
                    continue;
                }
            };
            self.batches += 1;
            self.batched_frames += outputs.len() as u64;
            batch_sizes.push(outputs.len());
            if tracing {
                // Unit span on the executing worker's shard track; with
                // stealing on and several shards the executor (and so
                // this span's track and any steal marker) is
                // schedule-dependent — documented as outside the
                // determinism invariant, like `ShardReport::busy_ms`.
                let worker = payload.executed_by;
                let tr = self.tracer.as_mut().expect("tracing implies a sink");
                let track = Track::Shard(worker as u32);
                let start = self.shard_clock_ns[worker].max(step_ns);
                let dur: u64 = outputs.iter().map(|o| ns_from_ms(o.energy.latency.millis())).sum();
                let streams =
                    payload.lane_ids.iter().map(usize::to_string).collect::<Vec<_>>().join(",");
                tr.begin(
                    track,
                    start,
                    "unit",
                    vec![
                        ("home", ArgValue::U64(home as u64)),
                        ("worker", ArgValue::U64(worker as u64)),
                        ("frames", ArgValue::U64(outputs.len() as u64)),
                        ("streams", ArgValue::Text(streams)),
                        ("tick", ArgValue::U64(tick)),
                    ],
                );
                if worker != home {
                    tr.instant(
                        track,
                        start,
                        "steal",
                        vec![
                            ("victim", ArgValue::U64(home as u64)),
                            ("thief", ArgValue::U64(worker as u64)),
                            ("frames", ArgValue::U64(outputs.len() as u64)),
                        ],
                    );
                }
                tr.end(track, start + dur, "unit");
                self.shard_clock_ns[worker] = start + dur;
            }
            for ((((lane, frame), output), wait), pick) in payload
                .lane_ids
                .into_iter()
                .zip(payload.frames)
                .zip(outputs)
                .zip(payload.waits)
                .zip(payload.picks)
            {
                rows.push(Row { pick, lane, frame, output, wait });
            }
        }
        rows.sort_by_key(|r| r.pick);
        for row in rows {
            let lane = &mut self.lanes[row.lane];
            lane.telemetry.record(&row.output, row.frame.gt_boxes(), row.wait);
            let mut frame_end_ns = 0;
            if tracing {
                let tr = self.tracer.as_mut().expect("tracing implies a sink");
                let start = self.stream_clock_ns[row.lane].max(tick * TICK_NS);
                frame_end_ns = trace_frame(tr, row.lane as u32, tick, start, &row.output);
                self.stream_clock_ns[row.lane] = frame_end_ns;
                if row.output.gate_fallbacks > 0 {
                    tr.instant(
                        Track::Stream(row.lane as u32),
                        start,
                        "gate_fallback",
                        vec![("tick", ArgValue::U64(tick))],
                    );
                    tr.bump("ecofusion_gate_fallbacks_total", row.output.gate_fallbacks as f64);
                }
            }
            let level_before = lane.controller.level();
            if let Some(step) = lane.controller.record(row.output.energy.total_gated().joules()) {
                lane.opts = step.apply(&lane.base_opts);
                // Policy rungs are built from the base options; the
                // health mask must survive ladder moves.
                if lane.health_gating {
                    lane.opts.health = lane.monitor.mask();
                }
                if tracing {
                    let level = lane.controller.level();
                    let (direction, reason) = if level > level_before {
                        ("escalate", "rolling energy over target")
                    } else {
                        ("relax", "rolling energy under relax margin")
                    };
                    let tr = self.tracer.as_mut().expect("tracing implies a sink");
                    tr.instant(
                        Track::Stream(row.lane as u32),
                        frame_end_ns,
                        "ladder",
                        vec![
                            ("from", ArgValue::U64(level_before as u64)),
                            ("to", ArgValue::U64(level as u64)),
                            ("direction", ArgValue::Str(direction)),
                            ("reason", ArgValue::Str(reason)),
                            ("gate", ArgValue::Text(step.gate.to_string())),
                            ("lambda_e", ArgValue::F64(step.lambda_e)),
                            ("precision", ArgValue::Str(step.precision.label())),
                        ],
                    );
                    tr.bump(
                        &format!("ecofusion_ladder_moves_total{{direction=\"{direction}\"}}"),
                        1.0,
                    );
                    // Per-rung occupancy rides the metrics map (never
                    // evicted, unlike ring events) so coverage scoring can
                    // recover the set of rungs a run visited.
                    tr.bump(&format!("ecofusion_ladder_rung_total{{level=\"{level}\"}}"), 1.0);
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(batch_sizes),
        }
    }

    /// Fleet budget coordination, once per step at the barrier: computes
    /// grants from per-stream rolling means (shard-invariant state, in
    /// lane order) and installs them on the controllers for the *next*
    /// step. No-op without a configured policy.
    fn coordinate_fleet_budget(&mut self) {
        let Some(policy) = self.cfg.fleet_budget else {
            return;
        };
        let postures: Vec<BudgetPosture> = self
            .lanes
            .iter()
            .map(|lane| BudgetPosture {
                target_j: lane.controller.budget().target_j,
                rolling_mean_j: lane.controller.rolling_mean_j(),
                window_full: lane.controller.window_full(),
            })
            .collect();
        let grants = redistribute_headroom(&policy, &postures);
        for (lane, grant) in self.lanes.iter_mut().zip(grants) {
            lane.controller.set_grant_j(grant);
        }
    }

    /// Processes until every queue is empty. Returns total frames
    /// processed.
    ///
    /// # Errors
    /// Propagates [`InferError`] from the model.
    pub fn drain(&mut self) -> Result<usize, InferError> {
        let mut total = 0;
        loop {
            let n = self.process_step()?;
            if n == 0 {
                return Ok(total);
            }
            total += n;
        }
    }

    /// Emits a fault-activation marker for `stream` (the simulation
    /// driver calls this when a stream's [`VehicleStream::fault_counts`]
    /// advanced while producing a frame). No-op without an enabled sink.
    fn trace_fault(&mut self, stream: usize, tick: u64, events: u64) {
        let Some(tr) = self.tracer.as_mut().filter(|t| t.is_enabled()) else {
            return;
        };
        tr.instant(
            Track::Stream(stream as u32),
            tick * TICK_NS,
            "fault",
            vec![("tick", ArgValue::U64(tick)), ("events", ArgValue::U64(events))],
        );
        tr.bump("ecofusion_fault_events_total", events as f64);
    }

    /// Round-robin pick of up to `max_batch` queued frames across lanes.
    fn coalesce(&mut self) -> Vec<(usize, QueuedFrame)> {
        let mut picked = Vec::with_capacity(self.cfg.max_batch);
        'fill: loop {
            let mut any = false;
            for i in 0..self.lanes.len() {
                if picked.len() >= self.cfg.max_batch {
                    break 'fill;
                }
                if let Some(q) = self.lanes[i].queue.pop() {
                    picked.push((i, q));
                    any = true;
                }
            }
            if !any {
                break;
            }
        }
        picked
    }

    /// Builds the aggregate report.
    pub fn report(&self) -> RuntimeReport {
        let per_stream: Vec<StreamReport> = self
            .lanes
            .iter()
            .enumerate()
            .map(|(i, lane)| {
                let summary = lane.telemetry.summary(self.cfg.num_classes);
                let stage_energy_j = summary.stage_energy_j.clone();
                StreamReport {
                    stream: i,
                    summary,
                    map_window_frames: lane.telemetry.retained_frames(),
                    dropped: lane.queue.dropped(),
                    // Producer stalls surface two ways: the simulation driver
                    // defers generation (record_stall), while direct ingest
                    // against a full stall-policy queue is rejected by the
                    // queue itself. The report covers both.
                    stalls: lane.stalls + lane.queue.rejected(),
                    queue_high_water: lane.queue.high_water(),
                    avg_queue_wait_ticks: lane.telemetry.avg_queue_wait_ticks(),
                    latency_p50_ms: lane.telemetry.latency_percentile_ms(50.0),
                    latency_p95_ms: lane.telemetry.latency_percentile_ms(95.0),
                    latency_p99_ms: lane.telemetry.latency_percentile_ms(99.0),
                    escalations: lane.controller.escalations(),
                    relaxations: lane.controller.relaxations(),
                    final_level: lane.controller.level(),
                    final_gate: lane.opts.gate,
                    final_lambda_e: lane.opts.lambda_e,
                    rolling_energy_j: lane.controller.rolling_mean_j(),
                    granted_j: lane.controller.grant_j(),
                    total_platform_j: lane.telemetry.platform_j(),
                    total_gated_j: lane.telemetry.total_gated_j(),
                    degraded_frames: lane.telemetry.degraded_frames(),
                    masked_frames: lane.telemetry.masked_frames(),
                    stems_executed: lane.telemetry.stems_executed(),
                    stems_cached: lane.telemetry.stems_cached(),
                    stems_skipped: lane.telemetry.stems_skipped(),
                    int8_frames: lane.telemetry.int8_frames(),
                    gate_fallbacks: lane.telemetry.gate_fallbacks(),
                    final_precision: lane.opts.precision,
                    stem_cache_hits: self.stem_caches[i].hits(),
                    stem_cache_misses: self.stem_caches[i].misses(),
                    stage_energy_j,
                    health_transitions: lane.monitor.transitions(),
                    final_health: lane.monitor.scores().to_vec(),
                    final_mask: lane.active_mask(),
                    health_gating: lane.health_gating,
                    rejected_malformed: lane.malformed,
                }
            })
            .collect();
        let frames: u64 = per_stream.iter().map(|s| s.summary.frames as u64).sum();
        // Fleet-wide latency: merge the per-stream histograms (exact for
        // mean/max, bucket-edge percentiles). Merging per-stream state in
        // lane order keeps the result shard-count-invariant.
        let mut fleet_hist = LatencyHistogram::new();
        for lane in &self.lanes {
            fleet_hist.merge(lane.telemetry.latency_histogram());
        }
        let num_shards = self.shards.len();
        let shards = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, s)| ShardReport {
                shard: i,
                streams: (0..self.lanes.len()).filter(|&l| shard_of(l, num_shards) == i).count(),
                frames: s.frames,
                batches: s.batches,
                steals: s.steals,
                stolen_frames: s.stolen_frames,
                busy_ms: s.busy_ns as f64 / 1e6,
            })
            .collect();
        RuntimeReport {
            frames,
            batches: self.batches,
            avg_batch_size: if self.batches == 0 {
                0.0
            } else {
                self.batched_frames as f64 / self.batches as f64
            },
            total_platform_j: per_stream.iter().map(|s| s.total_platform_j).sum(),
            total_gated_j: per_stream.iter().map(|s| s.total_gated_j).sum(),
            total_stems_executed: per_stream.iter().map(|s| s.stems_executed).sum(),
            total_int8_frames: per_stream.iter().map(|s| s.int8_frames).sum(),
            total_gate_fallbacks: per_stream.iter().map(|s| s.gate_fallbacks).sum(),
            total_stems_saved: per_stream.iter().map(|s| s.stems_cached + s.stems_skipped).sum(),
            latency_mean_ms: fleet_hist.mean(),
            latency_p50_ms: fleet_hist.percentile(50.0),
            latency_p95_ms: fleet_hist.percentile(95.0),
            latency_p99_ms: fleet_hist.percentile(99.0),
            latency_max_ms: fleet_hist.max(),
            total_granted_j: per_stream.iter().map(|s| s.granted_j).sum(),
            shards,
            per_stream,
        }
    }
}

/// Drives `server` for `ticks` scheduler ticks against live streams: each
/// tick, every stream due per its period/phase produces one frame (unless
/// its stall-policy queue is full, which defers the producer), then one
/// processing step runs. Remaining queued frames are drained at the end so
/// the report covers every accepted frame.
///
/// # Errors
/// Propagates [`InferError`] from the model.
///
/// # Panics
/// Panics if `streams.len()` differs from the server's stream count.
pub fn run_simulation(
    server: &mut PerceptionServer,
    streams: &mut [VehicleStream],
    ticks: u64,
) -> Result<(), InferError> {
    run_simulation_observed(server, streams, ticks, |_: &Frame| {})
}

/// Observer of a [`run_simulation_observed`] drive: sees every produced
/// frame and the scheduler stats of every non-empty processing step.
/// Both hooks default to no-ops, and any `FnMut(&Frame)` closure is an
/// observer (frame hook only), so the pre-existing closure call sites
/// keep working unchanged. The workload-suite harness and the tracer
/// share this single observation path.
pub trait SimObserver {
    /// Called with every produced frame, just before it is offered to
    /// the server (whether or not backpressure later drops it).
    fn on_frame(&mut self, _frame: &Frame) {}

    /// Called after every processing step that handled at least one
    /// frame, with that step's scheduler stats.
    fn on_step(&mut self, _stats: &StepStats) {}
}

impl<F: FnMut(&Frame)> SimObserver for F {
    fn on_frame(&mut self, frame: &Frame) {
        self(frame)
    }
}

/// [`run_simulation`] with a [`SimObserver`]: the observer sees every
/// produced frame and the per-step scheduler stats (tick, batch sizes,
/// steals). Fault-schedule activations are also surfaced here — the
/// driver is the only place that can see a stream's injector counters
/// advance — as `fault` trace events when the server has a tracer.
///
/// # Errors
/// Propagates [`InferError`] from the model.
///
/// # Panics
/// Panics if `streams.len()` differs from the server's stream count.
pub fn run_simulation_observed(
    server: &mut PerceptionServer,
    streams: &mut [VehicleStream],
    ticks: u64,
    mut observer: impl SimObserver,
) -> Result<(), InferError> {
    assert_eq!(streams.len(), server.num_streams(), "stream/server mismatch");
    let mut fault_events: Vec<u64> = streams.iter().map(|s| s.fault_counts().1).collect();
    for tick in 0..ticks {
        for (i, stream) in streams.iter_mut().enumerate() {
            if !stream.emits_at(tick) {
                continue;
            }
            let stall_policy =
                stream.spec().backpressure == crate::queue::BackpressurePolicy::Stall;
            // An over-producing source emits `burst()` frames per due
            // tick (1 for every pre-existing spec); the stall check runs
            // per frame so a queue that fills mid-burst defers only the
            // remainder of the burst.
            for _ in 0..stream.spec().burst() {
                if stall_policy && server.queue_full(i) {
                    server.record_stall(i);
                    continue;
                }
                let frame = stream.next_frame();
                let (_, events) = stream.fault_counts();
                if events > fault_events[i] {
                    server.trace_fault(i, tick, events - fault_events[i]);
                    fault_events[i] = events;
                }
                observer.on_frame(&frame);
                server.ingest(i, frame);
            }
        }
        let stats = server.process_step_stats()?;
        if stats.frames > 0 {
            observer.on_step(&stats);
        }
        server.advance_tick();
    }
    // Drain every remaining queued frame so the report covers everything
    // accepted, still surfacing each step to the observer.
    loop {
        let stats = server.process_step_stats()?;
        if stats.frames == 0 {
            break;
        }
        observer.on_step(&stats);
    }
    Ok(())
}

/// Static label of a health state for trace event arguments.
fn health_label(state: HealthState) -> &'static str {
    match state {
        HealthState::Healthy => "healthy",
        HealthState::Degraded => "degraded",
        HealthState::Failed => "failed",
    }
}
