//! Per-stream energy budgeting: rolling spend vs. target, with a policy
//! ladder that trades accuracy for energy when a stream runs hot.

use ecofusion_core::InferenceOptions;
use ecofusion_gating::GateKind;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A stream's energy target: rolling mean total (platform + clock-gated
/// sensor) energy per frame must stay at or below `target_j`.
///
/// # Example
///
/// ```
/// use ecofusion_runtime::EnergyBudget;
/// let b = EnergyBudget::per_frame(6.0);
/// assert_eq!(b.target_j, 6.0);
/// assert!(EnergyBudget::unlimited().target_j.is_infinite());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyBudget {
    /// Target Joules per frame (platform + gated sensors, Eq. 11).
    pub target_j: f64,
    /// Frames in the rolling window the spend is averaged over.
    pub window: usize,
    /// De-escalation threshold as a fraction of `target_j`: the controller
    /// relaxes one level only once the rolling mean falls below
    /// `relax_margin * target_j` (hysteresis; must be `< 1`).
    pub relax_margin: f64,
}

impl EnergyBudget {
    /// A budget of `target_j` Joules/frame with the default window (16
    /// frames) and relax margin (0.8).
    pub fn per_frame(target_j: f64) -> Self {
        EnergyBudget { target_j, window: 16, relax_margin: 0.8 }
    }

    /// No budget: the controller never escalates and the stream keeps its
    /// base inference options.
    pub fn unlimited() -> Self {
        EnergyBudget::per_frame(f64::INFINITY)
    }
}

/// Candidate margin `γ` of the wider mid-ladder rungs: configurations up
/// to this much predicted loss above the best become tradeable for energy.
pub const WIDE_GAMMA: f32 = 2.0;

/// Candidate margin of the top "emergency" rung: wide enough that *every*
/// configuration is a candidate (it exceeds the knowledge gate's reject
/// loss), so `λ_E = 1` selects the globally cheapest branch.
pub const EMERGENCY_GAMMA: f32 = 1.0e9;

/// One rung of the adaptation ladder: the gate, energy weight, and
/// candidate margin a stream runs with at that escalation level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PolicyStep {
    /// Gating strategy at this level.
    pub gate: GateKind,
    /// Energy weight `λ_E` at this level.
    pub lambda_e: f64,
    /// Candidate margin `γ` at this level (wider = more energy headroom
    /// for the joint optimizer, at some accuracy risk).
    pub gamma: f32,
}

impl PolicyStep {
    /// Applies this step to a stream's base options.
    pub fn apply(&self, base: &InferenceOptions) -> InferenceOptions {
        InferenceOptions { gate: self.gate, lambda_e: self.lambda_e, gamma: self.gamma, ..*base }
    }
}

/// Default ladder for a stream whose base options are `base`: keep the
/// base gate while raising `λ_E`, then widen the candidate margin so the
/// energy weight has real choices, and finally drop to an emergency rung —
/// knowledge gate (a static context lookup, the cheapest to evaluate) with
/// every configuration a candidate and `λ_E = 1`, which executes the
/// single cheapest branch.
///
/// Consecutive rungs that the `max` clamps make identical to their
/// predecessor (a base `λ_E` already at 0.7, say) are dropped, so every
/// escalation changes the actual policy instead of burning an observation
/// window on a no-op.
pub fn default_ladder(base: &InferenceOptions) -> Vec<PolicyStep> {
    let candidates = [
        PolicyStep { gate: base.gate, lambda_e: base.lambda_e, gamma: base.gamma },
        PolicyStep { gate: base.gate, lambda_e: base.lambda_e.max(0.35), gamma: base.gamma },
        PolicyStep {
            gate: base.gate,
            lambda_e: base.lambda_e.max(0.7),
            gamma: base.gamma.max(WIDE_GAMMA),
        },
        PolicyStep { gate: GateKind::Knowledge, lambda_e: 1.0, gamma: EMERGENCY_GAMMA },
    ];
    let mut ladder: Vec<PolicyStep> = Vec::with_capacity(candidates.len());
    for step in candidates {
        if ladder.last() != Some(&step) {
            ladder.push(step);
        }
    }
    ladder
}

/// Hysteretic per-stream budget controller.
///
/// Feed it every processed frame's total energy via
/// [`BudgetController::record`]; when the rolling mean exceeds the budget
/// it climbs one rung of the ladder (cheaper policy), and when the mean
/// drops below the relax margin it climbs back down. The window is cleared
/// on every level change so one adaptation must prove itself over a full
/// window before the next.
#[derive(Debug, Clone)]
pub struct BudgetController {
    budget: EnergyBudget,
    ladder: Vec<PolicyStep>,
    level: usize,
    window: VecDeque<f64>,
    sum: f64,
    escalations: u64,
    relaxations: u64,
}

impl BudgetController {
    /// Creates a controller over `ladder` (level 0 = base policy).
    ///
    /// # Panics
    /// Panics if `ladder` is empty, or if the budget's window is zero or
    /// its relax margin is not in `(0, 1)`.
    pub fn new(budget: EnergyBudget, ladder: Vec<PolicyStep>) -> Self {
        assert!(!ladder.is_empty(), "policy ladder must have at least one step");
        assert!(budget.window > 0, "budget window must be positive");
        assert!(
            budget.relax_margin > 0.0 && budget.relax_margin < 1.0,
            "relax_margin must be in (0, 1)"
        );
        BudgetController {
            budget,
            ladder,
            level: 0,
            window: VecDeque::new(),
            sum: 0.0,
            escalations: 0,
            relaxations: 0,
        }
    }

    /// Records one frame's total energy spend. Returns the new policy step
    /// if the controller changed level, `None` otherwise.
    pub fn record(&mut self, total_j: f64) -> Option<PolicyStep> {
        self.window.push_back(total_j);
        self.sum += total_j;
        if self.window.len() > self.budget.window {
            self.sum -= self.window.pop_front().expect("non-empty window");
        }
        // Adapt only on a full window: a single hot frame is noise.
        if self.window.len() < self.budget.window {
            return None;
        }
        let mean = self.sum / self.window.len() as f64;
        if mean > self.budget.target_j && self.level + 1 < self.ladder.len() {
            self.level += 1;
            self.escalations += 1;
            self.reset_window();
            Some(self.ladder[self.level])
        } else if mean < self.budget.target_j * self.budget.relax_margin && self.level > 0 {
            self.level -= 1;
            self.relaxations += 1;
            self.reset_window();
            Some(self.ladder[self.level])
        } else {
            None
        }
    }

    fn reset_window(&mut self) {
        self.window.clear();
        self.sum = 0.0;
    }

    /// Rolling mean spend over the current window (0 when empty).
    pub fn rolling_mean_j(&self) -> f64 {
        if self.window.is_empty() {
            0.0
        } else {
            self.sum / self.window.len() as f64
        }
    }

    /// Current escalation level (0 = base policy).
    pub fn level(&self) -> usize {
        self.level
    }

    /// The policy step currently in force.
    pub fn current(&self) -> PolicyStep {
        self.ladder[self.level]
    }

    /// The configured budget.
    pub fn budget(&self) -> EnergyBudget {
        self.budget
    }

    /// Times the controller moved to a cheaper policy.
    pub fn escalations(&self) -> u64 {
        self.escalations
    }

    /// Times the controller moved back toward the base policy.
    pub fn relaxations(&self) -> u64 {
        self.relaxations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_opts() -> InferenceOptions {
        InferenceOptions::new(0.01, 0.5)
    }

    fn controller(target: f64, window: usize) -> BudgetController {
        let budget = EnergyBudget { target_j: target, window, relax_margin: 0.8 };
        BudgetController::new(budget, default_ladder(&base_opts()))
    }

    #[test]
    fn escalates_when_over_budget() {
        let mut c = controller(2.0, 4);
        let mut changed = None;
        for _ in 0..4 {
            changed = c.record(3.0);
        }
        let step = changed.expect("full hot window escalates");
        assert_eq!(c.level(), 1);
        assert!(step.lambda_e > base_opts().lambda_e);
        assert_eq!(c.escalations(), 1);
    }

    #[test]
    fn needs_full_window_before_acting() {
        let mut c = controller(2.0, 8);
        for _ in 0..7 {
            assert!(c.record(100.0).is_none(), "partial window must not escalate");
        }
        assert_eq!(c.level(), 0);
    }

    #[test]
    fn window_cleared_after_escalation() {
        let mut c = controller(2.0, 4);
        for _ in 0..4 {
            c.record(3.0);
        }
        assert_eq!(c.level(), 1);
        // Three more hot frames: window not yet refilled, no double jump.
        for _ in 0..3 {
            assert!(c.record(3.0).is_none());
        }
        c.record(3.0);
        assert_eq!(c.level(), 2);
    }

    #[test]
    fn relaxes_with_hysteresis() {
        let mut c = controller(2.0, 4);
        for _ in 0..4 {
            c.record(3.0);
        }
        assert_eq!(c.level(), 1);
        // Spend just under target but above the 0.8 margin: hold.
        for _ in 0..8 {
            assert!(c.record(1.9).is_none());
        }
        assert_eq!(c.level(), 1);
        // Well under the margin: relax back to base.
        for _ in 0..4 {
            c.record(1.0);
        }
        assert_eq!(c.level(), 0);
        assert_eq!(c.relaxations(), 1);
    }

    #[test]
    fn tops_out_at_ladder_end() {
        let mut c = controller(0.5, 2);
        for _ in 0..40 {
            c.record(10.0);
        }
        assert_eq!(c.level(), default_ladder(&base_opts()).len() - 1);
        assert_eq!(c.current().gate, GateKind::Knowledge);
    }

    #[test]
    fn ladder_dedupes_noop_rungs() {
        // Base options already at the mid-ladder values: the clamped
        // rungs collapse and only base + emergency remain.
        let base = InferenceOptions::new(0.8, 3.0);
        let ladder = default_ladder(&base);
        assert_eq!(ladder.len(), 2, "{ladder:?}");
        for w in ladder.windows(2) {
            assert_ne!(w[0], w[1], "consecutive duplicate rung");
        }
        assert_eq!(ladder.last().unwrap().gate, GateKind::Knowledge);
        // A low base keeps all four distinct rungs.
        assert_eq!(default_ladder(&base_opts()).len(), 4);
    }

    #[test]
    fn unlimited_budget_never_escalates() {
        let budget = EnergyBudget::unlimited();
        let mut c = BudgetController::new(budget, default_ladder(&base_opts()));
        for _ in 0..100 {
            assert!(c.record(1e9).is_none());
        }
        assert_eq!(c.level(), 0);
    }

    #[test]
    fn rolling_mean_tracks_window() {
        let mut c = controller(100.0, 4);
        c.record(2.0);
        c.record(4.0);
        assert!((c.rolling_mean_j() - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "ladder")]
    fn empty_ladder_panics() {
        let _ = BudgetController::new(EnergyBudget::per_frame(1.0), Vec::new());
    }
}
